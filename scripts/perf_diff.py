#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json records and flag regressions.

The benches emit flat machine-readable records (see bench/bench_json.hpp):

    {"bench": "...", "results": [
        {"name": "...", "n": 123, "median_ns": 1.0e6},
        {"name": "...", "n": 123, "ratio": 6.1},
        {"name": "...", "n": 123, "rate_per_s": 1.2e4},
        {"name": "...", "n": 123, "p50_ns": 8.1e4, "p90_ns": 1.2e5, "p99_ns": 3.4e5}]}

This differ is the missing half of the perf-trajectory loop: CI downloads
the previous successful run's bench-json artifact, runs the current
benches, and renders a markdown verdict into the job summary. Entries are
matched on (bench, name, n). A `median_ns` entry regresses when it got
slower by more than the noise threshold; `ratio` and `rate_per_s` entries
(speedups, hit rates, sustained throughput — bigger is better) regress
when they dropped by more than the threshold. Latency-distribution
entries (p50_ns/p90_ns/p99_ns) are expanded into one time record per
percentile — "name:p99" — so a tail regression is flagged even when the
median held, under the same rule. Entries whose value field this version
does not recognize (a newer bench schema) are counted and noted, never a
crash: an old differ must degrade gracefully against new artifacts.
Shared-runner numbers are noisy, so the default threshold is
generous and the exit code stays 0 unless --strict is passed: the summary
flags trends, it does not gate merges.

Usage:
    perf_diff.py --baseline prev-bench/ --current build/ [--threshold 0.30]
                 [--strict]
"""

import argparse
import glob
import json
import os
import sys


def load_records(directory):
    """Returns ({(bench, name, n): (kind, value)}, unknown_kind_count).

    kind is "median_ns", "ratio", or "rate_per_s". Profile records (a
    "work" field: raw engine-work totals from the profiling layer) are
    counted in unknown_kind_count and skipped without a warning — they are
    workload bookkeeping, not perf numbers, and never diffable. Entries
    carrying none of the known value fields are counted in
    unknown_kind_count so the summary can note them (a newer bench schema
    than this differ knows).

    Defensive by design: this runs as a best-effort CI summary step, so a
    malformed artifact, a renamed bench, or a half-written JSON must come
    back as "fewer records" (with a stderr note), never a stack trace.
    Keys are coerced to (str, str, int) so tuple sorting cannot raise
    TypeError on mixed-type fields.
    """
    records = {}
    unknown = 0
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping {path}: {error}", file=sys.stderr)
            continue
        if not isinstance(data, dict):
            print(f"warning: skipping {path}: not a JSON object", file=sys.stderr)
            continue
        bench = str(data.get("bench", os.path.basename(path)))
        results = data.get("results", [])
        if not isinstance(results, list):
            print(f"warning: skipping {path}: 'results' is not a list", file=sys.stderr)
            continue
        for entry in results:
            if not isinstance(entry, dict):
                continue
            try:
                n = int(entry.get("n", 0))
            except (TypeError, ValueError):
                n = 0
            name = str(entry.get("name", "?"))
            key = (bench, name, n)
            try:
                if "median_ns" in entry:
                    records[key] = ("median_ns", float(entry["median_ns"]))
                elif "ratio" in entry:
                    records[key] = ("ratio", float(entry["ratio"]))
                elif "rate_per_s" in entry:
                    records[key] = ("rate_per_s", float(entry["rate_per_s"]))
                elif "p50_ns" in entry:
                    # Latency distributions fan out into one time record per
                    # percentile so each tail diffs independently.
                    for field in ("p50_ns", "p90_ns", "p99_ns"):
                        if field in entry:
                            records[(bench, f"{name}:{field[:-3]}", n)] = \
                                ("median_ns", float(entry[field]))
                elif "work" in entry:
                    # Work-attribution profile record: raw engine-work
                    # totals (DP cells, search nodes). Machine- and
                    # workload-shaped, not a perf verdict — note, never
                    # compare, never crash.
                    unknown += 1
                else:
                    unknown += 1
                    print(f"warning: {path}: unrecognized record kind for {key} "
                          f"(fields: {sorted(set(entry) - {'name', 'n'})})",
                          file=sys.stderr)
            except (TypeError, ValueError):
                print(f"warning: {path}: non-numeric value for {key}", file=sys.stderr)
    return records, unknown


def fmt_value(kind, value):
    if kind == "ratio":
        return f"{value:.2f}x"
    if kind == "rate_per_s":
        return f"{value:.0f}/s"
    if value >= 1e9:
        return f"{value / 1e9:.2f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="dir with previous BENCH_*.json")
    parser.add_argument("--current", required=True, help="dir with this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative noise threshold (default 0.30 = 30%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when regressions are found")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline):
        print("### Perf diff\n\nNo baseline directory — nothing to compare "
              "(first run on this branch, or the previous run's bench artifact "
              "was not downloadable).")
        return 0

    baseline, _ = load_records(args.baseline)
    current, unknown_current = load_records(args.current)

    if not baseline:
        print("### Perf diff\n\nNo baseline bench records found — nothing to compare "
              "(first run, or the previous artifact expired).")
        return 0
    if not current:
        print("### Perf diff\n\nNo current bench records found — did the benches run?")
        return 0

    regressions, improvements, steady = [], [], []
    for key, (kind, now) in sorted(current.items()):
        if key not in baseline:
            continue
        base_kind, before = baseline[key]
        if base_kind != kind or before <= 0 or now <= 0:
            continue
        # Normalize so "bigger change = worse" for every kind (median_ns
        # is smaller-better; ratio and rate_per_s are bigger-better).
        change = (now / before - 1.0) if kind == "median_ns" else (before / now - 1.0)
        row = (key, kind, before, now, change)
        if change > args.threshold:
            regressions.append(row)
        elif change < -args.threshold:
            improvements.append(row)
        else:
            steady.append(row)

    compared = len(regressions) + len(improvements) + len(steady)
    print("### Perf diff vs previous run")
    print()
    print(f"Compared **{compared}** records at a ±{args.threshold:.0%} noise threshold: "
          f"**{len(regressions)} regressed**, {len(improvements)} improved, "
          f"{len(steady)} steady.")

    def table(title, rows):
        print(f"\n#### {title}\n")
        print("| bench | metric | n | before | after | change |")
        print("|---|---|---|---|---|---|")
        for (bench, name, n), kind, before, now, change in rows:
            # change > 0 is always "worse" after normalization above.
            if kind == "median_ns":
                direction = "slower" if change > 0 else "faster"
            else:
                direction = "lower" if change > 0 else "higher"
            print(f"| {bench} | {name} | {n} | {fmt_value(kind, before)} | "
                  f"{fmt_value(kind, now)} | {abs(change):.0%} {direction} |")

    if regressions:
        table("Regressions (beyond noise)", regressions)
    if improvements:
        table("Improvements", improvements)

    new_keys = [key for key in current if key not in baseline]
    gone_keys = [key for key in baseline if key not in current]
    if new_keys:
        print(f"\nNew records without a baseline (a bench was added or renamed — "
              f"expected on the run introducing it): {len(new_keys)}")
    if unknown_current:
        print(f"\nSkipped {unknown_current} current record(s) that are not perf "
              f"comparisons: profile work records (raw engine-work totals) and "
              f"any kinds newer than this differ.")
    if gone_keys:
        print(f"\nBaseline records with no current counterpart (a bench was removed "
              f"or renamed): "
              f"{', '.join('/'.join(map(str, key)) for key in sorted(gone_keys))}")

    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
