/// E8 — Corollary 3: the pmax-approximation via L(1)-labeling.
///
/// For each p, measures the realized ratio (span of the scaled coloring) /
/// lambda_p against the proved bound pmax. On small-diameter graphs the
/// realized ratio is far below the bound because lambda_1 = n - 1 is
/// already close to lambda_p / pmin.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/solvers.hpp"

using namespace lptsp;

int main() {
  std::printf("E8: pmax-approximation via scaled coloring (Corollary 3)\n");
  Table table({"p", "bound", "n", "seeds", "mean ratio", "max ratio"});

  const std::vector<PVec> ps{PVec::L21(), PVec::Lpq(3, 2), PVec({2, 2}), PVec({2, 1, 1}),
                             PVec({4, 3, 2})};
  for (const PVec& p : ps) {
    for (const int n : {8, 10}) {
      const int seeds = 15;
      double sum = 0;
      double worst = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        const Graph graph =
            lptsp::bench::workload_graph(n, p.k(), static_cast<std::uint64_t>(seed * 53 + n));
        SolveOptions options;
        options.engine = Engine::HeldKarp;
        const Weight optimal = solve_labeling(graph, p, options).span;
        const PmaxApproxResult approx = pmax_approx_labeling(graph, p);
        const double ratio =
            optimal == 0 ? 1.0 : static_cast<double>(approx.span) / static_cast<double>(optimal);
        sum += ratio;
        worst = std::max(worst, ratio);
      }
      table.add_row({lptsp::bench::pvec_name(p), std::to_string(p.pmax()), std::to_string(n),
                     std::to_string(seeds), format_ratio(sum / seeds), format_ratio(worst)});
    }
  }

  table.print("E8 — Corollary 3 (expect max ratio <= pmax, usually much smaller)");
  return 0;
}
