#pragma once

/// Shared helpers for the experiment binaries (E1..E10). Each binary
/// regenerates one claim of the paper as a printed table; EXPERIMENTS.md
/// records claim-vs-measured.

#include <string>

#include "core/pvec.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace lptsp::bench {

/// Standard workload of the paper's target class: random connected graphs
/// with an enforced diameter cap.
inline Graph workload_graph(int n, int diam, std::uint64_t seed, double edge_prob = 0.25) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 12345);
  return random_with_diameter_at_most(n, diam, edge_prob, rng);
}

// These helpers build strings with += instead of operator+ chains to keep
// GCC 12's -Wrestrict false positive (PR105651) out of every bench TU this
// header is inlined into.
inline std::string pvec_name(const PVec& p) {
  std::string name = "L";
  name += p.to_string();
  return name;
}

/// "numer/denom" counter cells ("12/12 matches").
inline std::string fraction(long long numer, long long denom) {
  std::string text = std::to_string(numer);
  text += "/";
  text += std::to_string(denom);
  return text;
}

}  // namespace lptsp::bench
