#pragma once

/// Shared helpers for the experiment binaries (E1..E10). Each binary
/// regenerates one claim of the paper as a printed table; EXPERIMENTS.md
/// records claim-vs-measured.

#include <string>

#include "core/pvec.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace lptsp::bench {

/// Standard workload of the paper's target class: random connected graphs
/// with an enforced diameter cap.
inline Graph workload_graph(int n, int diam, std::uint64_t seed, double edge_prob = 0.25) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 12345);
  return random_with_diameter_at_most(n, diam, edge_prob, rng);
}

inline std::string pvec_name(const PVec& p) { return "L" + p.to_string(); }

}  // namespace lptsp::bench
