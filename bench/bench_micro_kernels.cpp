/// Micro-benchmarks (google-benchmark) for the hot kernels behind the
/// experiment binaries: BFS all-pairs distances, the Theorem-2 reduction,
/// Held-Karp layers, 2-opt passes, and the blossom matching. These are the
/// numbers to watch when optimizing; the E-binaries measure end-to-end
/// claims instead.

#include <benchmark/benchmark.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/construct.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/local_search.hpp"
#include "tsp/matching.hpp"
#include "util/rng.hpp"

namespace {

using namespace lptsp;

Graph make_graph(int n, double prob, std::uint64_t seed) {
  Rng rng(seed);
  return random_with_diameter_at_most(n, 3, prob, rng);
}

void BM_AllPairsBfs(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_distances(graph, 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllPairsBfs)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNSquared);

void BM_Reduction(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 2);
  const PVec p({2, 2, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_to_path_tsp(graph, p, 1));
  }
}
BENCHMARK(BM_Reduction)->Arg(64)->Arg(128)->Arg(256);

void BM_HeldKarp(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.3, 3);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(held_karp_path(reduced.instance));
  }
}
BENCHMARK(BM_HeldKarp)->Arg(12)->Arg(14)->Arg(16);

void BM_TwoOptPass(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 4);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  Rng rng(7);
  Order order = rng.permutation(reduced.instance.n());
  for (auto _ : state) {
    Order copy = order;
    benchmark::DoNotOptimize(two_opt_pass(reduced.instance, copy));
  }
}
BENCHMARK(BM_TwoOptPass)->Arg(128)->Arg(256)->Arg(512);

void BM_NearestNeighbor(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 5);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nearest_neighbor_path(reduced.instance, 0));
  }
}
BENCHMARK(BM_NearestNeighbor)->Arg(128)->Arg(512);

void BM_BlossomMatching(benchmark::State& state) {
  Rng rng(9);
  const Graph graph = erdos_renyi(static_cast<int>(state.range(0)), 0.2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_cardinality_matching(graph));
  }
}
BENCHMARK(BM_BlossomMatching)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
