/// Micro-benchmarks (google-benchmark) for the hot kernels behind the
/// experiment binaries — BFS all-pairs distances, the Theorem-2 reduction,
/// Held-Karp layers, 2-opt passes, and the blossom matching — plus the
/// per-ISA kernel ablation: every dispatch tier this machine supports
/// (scalar / AVX2 / AVX-512) is timed on the same inputs and the speedups
/// are written to BENCH_micro_kernels.json.
///
/// Acceptance (when the machine has AVX2): the AVX2 APSP word-intersection
/// kernel and the AVX2 Held-Karp min-reduction must be >= 1.3x over the
/// scalar tier. The ablation runs before the google-benchmark suite; pass
/// --benchmark_filter=<none-matching> to run only the ablation (CI does).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "tsp/candidates.hpp"
#include "tsp/construct.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/local_search.hpp"
#include "tsp/matching.hpp"
#include "util/rng.hpp"

namespace {

using namespace lptsp;

Graph make_graph(int n, double prob, std::uint64_t seed) {
  Rng rng(seed);
  return random_with_diameter_at_most(n, 3, prob, rng);
}

using kernels::supported_tiers;

/// Per-ISA ablation. Three workloads, each timed once per supported tier:
///
///  * APSP on K_{2000,49}: the two sides of a complete bipartite graph
///    make the bulk (side-A x side-A) pairs non-adjacent with all their
///    common neighbors packed into the LAST adjacency words, so the
///    word-intersection scan runs long instead of exiting on word 0 —
///    the kernel-bound case wider ISAs accelerate. A realistic random
///    diameter-2 lane rides along for context (its scan exits early on
///    most pairs, so its speedup is naturally smaller).
///  * The Held-Karp layer min-reduction on synthetic dp rows at the DP's
///    real row width (n = 22), int16 and int32 tables.
///  * The candidate-build census scans (range-min + count-equal) on a
///    two-valued weight row like reduced labeling metrics produce.
///
/// Returns 0 on acceptance, 1 when an AVX2-capable machine fails the
/// >= 1.3x floor.
int run_isa_ablation() {
  lptsp::bench::BenchJson json("micro_kernels");
  const std::vector<IsaTier> tiers = supported_tiers();
  const IsaTier restore = kernels::active_isa_tier();
  std::printf("micro_kernels ISA ablation — detected tier: %s (tiers:",
              isa_tier_name(kernels::detected_isa_tier()));
  for (const IsaTier tier : tiers) std::printf(" %s", isa_tier_name(tier));
  std::printf(")\n");
  // Tier index as the tracked value: if a future run lands on a runner
  // with a different ISA, the perf differ flags this entry alongside the
  // apsp_*/hk_* swings it explains.
  json.record_ratio("detected_tier_index", 0,
                    static_cast<double>(kernels::detected_isa_tier()));

  double apsp_ns[3] = {0, 0, 0};
  double hk16_ns[3] = {0, 0, 0};
  double hk32_ns[3] = {0, 0, 0};

  // --- APSP word-intersection kernel ---------------------------------
  {
    const Graph adversarial = complete_bipartite(2000, 49);
    const Graph realistic = lptsp::bench::workload_graph(1024, 2, 77, 0.15);
    for (const IsaTier tier : tiers) {
      kernels::set_isa_tier(tier);
      const double adv_ns =
          lptsp::bench::median_ns(3, [&] { (void)all_pairs_distances(adversarial, 1); });
      const double real_ns =
          lptsp::bench::median_ns(3, [&] { (void)all_pairs_distances(realistic, 1); });
      apsp_ns[static_cast<int>(tier)] = adv_ns;
      json.record(std::string("apsp_diam2_bipartite_") + isa_tier_name(tier), adversarial.n(),
                  adv_ns);
      json.record(std::string("apsp_diam2_er_") + isa_tier_name(tier), realistic.n(), real_ns);
      std::printf("  apsp %-6s  bipartite %8.2f ms   er(1024) %8.2f ms\n", isa_tier_name(tier),
                  adv_ns / 1e6, real_ns / 1e6);
    }
  }

  // --- Held-Karp layer min-reduction ---------------------------------
  {
    constexpr int kRowWidth = 22;  // the DP's max row width (options.max_n)
    constexpr int kRows = 1 << 15;
    Rng rng(4242);
    std::vector<std::int16_t> dp16(static_cast<std::size_t>(kRows) * kRowWidth);
    std::vector<std::int32_t> dp32(dp16.size());
    for (std::size_t i = 0; i < dp16.size(); ++i) {
      dp16[i] = static_cast<std::int16_t>(rng.uniform_index(16383));
      dp32[i] = static_cast<std::int32_t>(rng.uniform_index(1u << 30));
    }
    std::vector<std::int16_t> w16(kRowWidth);
    std::vector<std::int32_t> w32(kRowWidth);
    for (int j = 0; j < kRowWidth; ++j) {
      w16[static_cast<std::size_t>(j)] = static_cast<std::int16_t>(2 + 2 * (j % 2));
      w32[static_cast<std::size_t>(j)] = 2 + 2 * (j % 2);
    }
    for (const IsaTier tier : tiers) {
      const kernels::KernelTable& table = kernels::kernel_table_for(tier);
      long long sink = 0;
      const double ns16 = lptsp::bench::median_ns(5, [&] {
        for (int r = 0; r < kRows; ++r) {
          sink += table.hk_min_i16(dp16.data() + static_cast<std::size_t>(r) * kRowWidth,
                                   w16.data(), kRowWidth);
        }
      });
      const double ns32 = lptsp::bench::median_ns(5, [&] {
        for (int r = 0; r < kRows; ++r) {
          sink += table.hk_min_i32(dp32.data() + static_cast<std::size_t>(r) * kRowWidth,
                                   w32.data(), kRowWidth);
        }
      });
      benchmark::DoNotOptimize(sink);
      hk16_ns[static_cast<int>(tier)] = ns16;
      hk32_ns[static_cast<int>(tier)] = ns32;
      json.record(std::string("hk_min_i16_") + isa_tier_name(tier), kRows, ns16);
      json.record(std::string("hk_min_i32_") + isa_tier_name(tier), kRows, ns32);
      std::printf("  hk-min %-6s  i16 %8.0f ns/32k rows   i32 %8.0f ns/32k rows\n",
                  isa_tier_name(tier), ns16, ns32);
    }
    // End-to-end: the whole DP through the dispatched tier.
    const Graph graph = lptsp::bench::workload_graph(18, 2, 4);
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    for (const IsaTier tier : tiers) {
      kernels::set_isa_tier(tier);
      const double ns =
          lptsp::bench::median_ns(3, [&] { (void)held_karp_path(reduced.instance); });
      json.record(std::string("held_karp_n18_") + isa_tier_name(tier), 18, ns);
      std::printf("  held-karp(n=18) %-6s  %8.2f ms\n", isa_tier_name(tier), ns / 1e6);
    }
  }

  // --- candidate-build census scans ----------------------------------
  {
    constexpr int kWidth = 4096;
    Rng rng(99);
    std::vector<std::int64_t> weights(kWidth);
    for (auto& w : weights) w = 2 + 2 * static_cast<std::int64_t>(rng.uniform_index(2));
    for (const IsaTier tier : tiers) {
      const kernels::KernelTable& table = kernels::kernel_table_for(tier);
      long long sink = 0;
      const double ns = lptsp::bench::median_ns(5, [&] {
        for (int rep = 0; rep < 64; ++rep) {
          const std::int64_t cheapest = table.weight_range_min(weights.data(), kWidth);
          sink += table.weight_range_count_eq(weights.data(), kWidth, cheapest);
        }
      });
      benchmark::DoNotOptimize(sink);
      json.record(std::string("candidate_census_") + isa_tier_name(tier), kWidth, ns);
      std::printf("  census %-6s  %8.0f ns/64 rows\n", isa_tier_name(tier), ns);
    }
  }

  kernels::set_isa_tier(restore);

  // Speedups vs scalar, recorded for the perf differ; acceptance floors
  // only where the tier exists.
  int rc = 0;
  for (const IsaTier tier : tiers) {
    if (tier == IsaTier::Scalar) continue;
    const int t = static_cast<int>(tier);
    const double apsp_speedup = apsp_ns[0] / apsp_ns[t];
    const double hk16_speedup = hk16_ns[0] / hk16_ns[t];
    const double hk32_speedup = hk32_ns[0] / hk32_ns[t];
    json.record_ratio(std::string("apsp_bipartite_speedup_") + isa_tier_name(tier) +
                          "_vs_scalar",
                      2049, apsp_speedup);
    json.record_ratio(std::string("hk_min_i16_speedup_") + isa_tier_name(tier) + "_vs_scalar",
                      22, hk16_speedup);
    json.record_ratio(std::string("hk_min_i32_speedup_") + isa_tier_name(tier) + "_vs_scalar",
                      22, hk32_speedup);
    std::printf("  %s vs scalar: apsp %.2fx, hk-min i16 %.2fx, i32 %.2fx\n",
                isa_tier_name(tier), apsp_speedup, hk16_speedup, hk32_speedup);
    if (tier == IsaTier::Avx2) {
      if (apsp_speedup < 1.3) {
        std::printf("ACCEPTANCE FAILED: AVX2 APSP kernel %.2fx < 1.3x over scalar\n",
                    apsp_speedup);
        rc = 1;
      }
      if (hk16_speedup < 1.3) {
        std::printf("ACCEPTANCE FAILED: AVX2 Held-Karp i16 min-reduction %.2fx < 1.3x over "
                    "scalar\n",
                    hk16_speedup);
        rc = 1;
      }
    }
  }
  if (tiers.size() == 1) {
    std::printf("  (scalar-only machine: per-ISA acceptance vacuously passes)\n");
  }
  std::printf("wrote %s\n", json.write().c_str());
  return rc;
}

void BM_AllPairsBfs(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_distances(graph, 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllPairsBfs)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNSquared);

void BM_Reduction(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 2);
  const PVec p({2, 2, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_to_path_tsp(graph, p, 1));
  }
}
BENCHMARK(BM_Reduction)->Arg(64)->Arg(128)->Arg(256);

void BM_HeldKarp(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.3, 3);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(held_karp_path(reduced.instance));
  }
}
BENCHMARK(BM_HeldKarp)->Arg(12)->Arg(14)->Arg(16);

void BM_TwoOptPass(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 4);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  Rng rng(7);
  Order order = rng.permutation(reduced.instance.n());
  for (auto _ : state) {
    Order copy = order;
    benchmark::DoNotOptimize(two_opt_pass(reduced.instance, copy));
  }
}
BENCHMARK(BM_TwoOptPass)->Arg(128)->Arg(256)->Arg(512);

void BM_NearestNeighbor(benchmark::State& state) {
  const Graph graph = make_graph(static_cast<int>(state.range(0)), 0.05, 5);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nearest_neighbor_path(reduced.instance, 0));
  }
}
BENCHMARK(BM_NearestNeighbor)->Arg(128)->Arg(512);

void BM_BlossomMatching(benchmark::State& state) {
  Rng rng(9);
  const Graph graph = erdos_renyi(static_cast<int>(state.range(0)), 0.2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_cardinality_matching(graph));
  }
}
BENCHMARK(BM_BlossomMatching)->Arg(64)->Arg(128);

/// Per-tier variants of the dispatched kernels, registered at runtime for
/// exactly the tiers this machine supports (google-benchmark lane of the
/// same ablation; the JSON lane above is what CI consumes).
void BM_CandidateListsBuild(benchmark::State& state, IsaTier tier) {
  const Graph graph = lptsp::bench::workload_graph(512, 2, 11, 0.2);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  const IsaTier restore = kernels::active_isa_tier();
  kernels::set_isa_tier(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CandidateLists(reduced.instance));
  }
  kernels::set_isa_tier(restore);
}

void BM_HeldKarpTier(benchmark::State& state, IsaTier tier) {
  const Graph graph = lptsp::bench::workload_graph(16, 2, 4);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  const IsaTier restore = kernels::active_isa_tier();
  kernels::set_isa_tier(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(held_karp_path(reduced.instance));
  }
  kernels::set_isa_tier(restore);
}

}  // namespace

int main(int argc, char** argv) {
  // A filter aimed at a specific gbench lane skips the multi-second
  // ablation (and leaves BENCH_micro_kernels.json untouched); plain runs
  // and the documented --benchmark_filter=ISA_ABLATION_ONLY keep it.
  bool want_ablation = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark_filter=", 0) == 0 &&
        arg.find("ISA_ABLATION") == std::string_view::npos) {
      want_ablation = false;
    }
  }
  const int ablation_rc = want_ablation ? run_isa_ablation() : 0;
  for (const IsaTier tier : supported_tiers()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_CandidateListsBuild/") + isa_tier_name(tier)).c_str(),
        BM_CandidateListsBuild, tier);
    benchmark::RegisterBenchmark((std::string("BM_HeldKarpTier/") + isa_tier_name(tier)).c_str(),
                                 BM_HeldKarpTier, tier);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ablation_rc;
}
