/// A3 (related-work baseline) — the polynomial tree solver.
///
/// The paper's introduction contrasts its small-diameter result with the
/// known polynomial classes, trees foremost (Chang–Kuo; the linear-time
/// algorithm of [21] is called "quite involved"). This bench runs the
/// in-repo Chang–Kuo DP: exactness vs the direct oracle at small n,
/// the Delta+1 / Delta+2 dichotomy frequencies, and scaling far beyond
/// anything the exponential solvers reach — quantifying the paper's point
/// that tree structure (not tree-LIKE structure) is what buys tractability.

#include <cstdio>

#include "bench_common.hpp"
#include "core/exact_bb.hpp"
#include "core/tree_labeling.hpp"
#include "graph/properties.hpp"

using namespace lptsp;

int main() {
  std::printf("A3: Chang-Kuo polynomial L(2,1) tree solver\n");

  Table exactness({"n", "trees", "matches oracle", "delta+1", "delta+2"});
  Rng rng(17);
  for (const int n : {6, 8, 10}) {
    const int trees = 30;
    int matches = 0;
    int plus_one = 0;
    for (int trial = 0; trial < trees; ++trial) {
      const Graph tree = random_tree(n, rng);
      const TreeL21Result result = l21_tree(tree);
      if (result.span == exact_labeling_branch_and_bound(tree, PVec::L21()).span) ++matches;
      if (result.is_delta_plus_one) ++plus_one;
    }
    exactness.add_row({std::to_string(n), std::to_string(trees),
                       std::to_string(matches) + "/" + std::to_string(trees),
                       std::to_string(plus_one), std::to_string(trees - plus_one)});
  }
  exactness.print("A3a — exactness vs direct oracle + dichotomy split");

  Table scaling({"n", "delta", "span", "time[s]"});
  for (const int n : {100, 400, 1600, 6400}) {
    const Graph tree = random_tree(n, rng);
    const Timer timer;
    const TreeL21Result result = l21_tree(tree);
    scaling.add_row({std::to_string(n), std::to_string(max_degree(tree)),
                     std::to_string(result.span), format_double(timer.seconds(), 3)});
  }
  scaling.print("A3b — polynomial scaling (exponential solvers stop near n=20)");
  return 0;
}
