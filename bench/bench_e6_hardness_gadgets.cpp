/// E6 — Theorems 1 and 3: the W[1]-hardness gadgets behave as proved.
///
/// Theorem 1: G has a Hamiltonian cycle iff the false-twin + two-pendant
/// gadget has a Hamiltonian path.
/// Theorem 3 (Griggs–Yeh construction): lambda_{2,1}(complement + universal
/// vertex) equals n+1 exactly when G has a Hamiltonian path, and is >= n+2
/// otherwise. Both are verified on dense/sparse random samples; the table
/// counts agreement on both sides of the threshold.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solvers.hpp"
#include "graph/properties.hpp"
#include "ham/gadgets.hpp"
#include "ham/hamiltonian.hpp"

using namespace lptsp;

int main() {
  std::printf("E6: hardness gadget verification (Theorems 1 and 3)\n");

  Table theorem1({"n", "edge prob", "samples", "HC=yes", "agree", "time[s]"});
  for (const double prob : {0.3, 0.5, 0.7}) {
    const int n = 10;
    const int samples = 40;
    int cycles = 0;
    int agree = 0;
    Rng rng(static_cast<std::uint64_t>(prob * 1000));
    const Timer timer;
    for (int trial = 0; trial < samples; ++trial) {
      const Graph graph = erdos_renyi(n, prob, rng);
      const bool has_cycle = has_hamiltonian_cycle(graph);
      const HcToHpGadget gadget = hc_to_hp_gadget(graph, rng.uniform_int(0, n - 1));
      if (has_cycle) ++cycles;
      if (has_cycle == has_hamiltonian_path(gadget.graph)) ++agree;
    }
    theorem1.add_row({std::to_string(n), format_double(prob, 2), std::to_string(samples),
                      std::to_string(cycles), std::to_string(agree) + "/" + std::to_string(samples),
                      format_double(timer.seconds(), 2)});
  }
  theorem1.print("E6a — Theorem 1 gadget: HC(G) <=> HP(gadget) (expect full agreement)");

  Table theorem3({"n", "edge prob", "samples", "HP=yes", "lambda=n+1 iff HP", "time[s]"});
  for (const double prob : {0.35, 0.5, 0.65}) {
    const int n = 9;
    const int samples = 25;
    int traceable = 0;
    int agree = 0;
    Rng rng(static_cast<std::uint64_t>(prob * 977));
    const Timer timer;
    for (int trial = 0; trial < samples; ++trial) {
      const Graph graph = erdos_renyi(n, prob, rng);
      const bool has_path = has_hamiltonian_path(graph);
      if (has_path) ++traceable;
      const Graph gadget = griggs_yeh_gadget(graph);
      SolveOptions options;
      options.engine = Engine::HeldKarp;
      const Weight span = solve_labeling(gadget, PVec::L21(), options).span;
      const bool threshold = (span == n + 1);
      if (threshold == has_path && span >= n + 1) ++agree;
    }
    theorem3.add_row({std::to_string(n), format_double(prob, 2), std::to_string(samples),
                      std::to_string(traceable),
                      std::to_string(agree) + "/" + std::to_string(samples),
                      format_double(timer.seconds(), 2)});
  }
  theorem3.print("E6b — Theorem 3 gadget: span threshold separates HamPath (expect full)");
  return 0;
}
