/// E7 — Propositions 1 & 2 and Theorem 4.
///
/// Part A verifies mw(G) = mw(complement G) and nd(G^2) <= mw(G) across a
/// generator sweep (the two structural facts the FPT results rest on).
/// Part B runs the L(1) (= coloring of G^k) solvers: the nd-kernel route
/// of Theorem 4 against plain exact coloring, reporting kernel sizes —
/// twin-rich (small modular-width) graphs shrink dramatically.

#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "core/l1_labeling.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "params/modular_decomposition.hpp"
#include "params/neighborhood_diversity.hpp"

using namespace lptsp;

int main() {
  std::printf("E7: modular-width / neighborhood-diversity structure (Prop 1, 2; Thm 4)\n");

  Table propositions({"family", "n", "samples", "mw(G)==mw(co-G)", "nd(G^2)<=mw(G)"});
  Rng rng(3);
  const int samples = 10;
  struct Family {
    const char* name;
    std::function<Graph()> make;
  };
  std::vector<Family> families;
  families.push_back({"erdos-renyi(12,.3)", [&rng] {
                        Rng local = rng.split();
                        return random_connected(12, 0.3, local);
                      }});
  families.push_back({"cograph(12)", [&rng] {
                        // Proposition 2 assumes a connected graph; union-
                        // rooted cograph draws are resampled away.
                        Rng local = rng.split();
                        Graph graph = random_cograph(12, local);
                        while (!is_connected(graph)) graph = random_cograph(12, local);
                        return graph;
                      }});
  families.push_back({"split(12)", [&rng] {
                        Rng local = rng.split();
                        return random_split_graph(12, 0.5, 0.3, local);
                      }});
  families.push_back({"geometric(12)", [&rng] {
                        Rng local = rng.split();
                        return random_geometric_small_diameter(12, 5.0, 3, local);
                      }});

  for (const auto& family : families) {
    int prop1 = 0;
    int prop2 = 0;
    for (int trial = 0; trial < samples; ++trial) {
      const Graph graph = family.make();
      if (modular_width(graph) == modular_width(complement(graph))) ++prop1;
      const Graph connected_probe = graph;  // families are connected by construction
      if (neighborhood_diversity(power(connected_probe, 2)) <= modular_width(graph)) ++prop2;
    }
    propositions.add_row({family.name, "12", std::to_string(samples),
                          std::to_string(prop1) + "/" + std::to_string(samples),
                          std::to_string(prop2) + "/" + std::to_string(samples)});
  }
  propositions.print("E7a — Propositions 1 and 2 (expect full agreement)");

  Table l1({"family", "n", "k", "span", "kernel", "nd-kernel[s]", "plain exact[s]"});
  Rng l1_rng(11);
  struct L1Case {
    const char* name;
    Graph graph;
    int k;
  };
  std::vector<L1Case> cases;
  {
    Rng local = l1_rng.split();
    cases.push_back({"cograph join(30)", join(random_cograph(15, local), random_cograph(15, local)), 1});
  }
  cases.push_back({"multipartite(8x4)", complete_multipartite({8, 8, 8, 8}), 1});
  {
    Rng local = l1_rng.split();
    cases.push_back({"split(24)", random_split_graph(24, 0.4, 0.3, local), 2});
  }
  {
    Rng local = l1_rng.split();
    cases.push_back({"sparse random(18)", random_connected(18, 0.12, local), 2});
  }

  for (auto& l1_case : cases) {
    Timer timer;
    const L1Result kernel = l1_labeling_nd_kernel(l1_case.graph, l1_case.k);
    const double kernel_seconds = timer.seconds();
    timer.reset();
    const L1Result exact = l1_labeling_exact(l1_case.graph, l1_case.k);
    const double exact_seconds = timer.seconds();
    l1.add_row({l1_case.name, std::to_string(l1_case.graph.n()), std::to_string(l1_case.k),
                std::to_string(kernel.span) + (kernel.span == exact.span ? " (==exact)" : " (MISMATCH)"),
                std::to_string(kernel.kernel_size) + "/" + std::to_string(l1_case.graph.n()),
                format_double(kernel_seconds, 4), format_double(exact_seconds, 4)});
  }
  l1.print("E7b — Theorem 4: L(1) via nd-kernel (expect ==exact, small kernels on twin-rich)");
  return 0;
}
