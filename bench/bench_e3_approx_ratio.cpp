/// E3 — Corollary 1: "approximable within 1.5 in polynomial time".
///
/// Runs the Christofides–Hoogeveen path variant and the double-MST walk on
/// reduced instances against exact Held-Karp optima, over many seeds per
/// size. The paper's (Zenklusen-based) claim is ratio <= 1.5; our
/// implementable variant guarantees 1.5*(1+2/(n-1)) for the bounded metric
/// and empirically sits at or very near 1.0.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/reduction.hpp"
#include "tsp/christofides.hpp"
#include "tsp/held_karp.hpp"

using namespace lptsp;

int main() {
  std::printf("E3: approximation ratios vs exact optimum (Corollary 1)\n");
  Table table({"n", "p", "seeds", "christofides mean", "christofides max", "double-mst mean",
               "double-mst max", "certified matchings"});

  const int seeds = 25;
  for (const PVec& p : {PVec::L21(), PVec({2, 2, 1})}) {
    for (int n = 10; n <= 16; n += 3) {
      double chr_sum = 0;
      double chr_max = 0;
      double mst_sum = 0;
      double mst_max = 0;
      int certified = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        const Graph graph =
            lptsp::bench::workload_graph(n, p.k(), static_cast<std::uint64_t>(seed * 100 + n));
        const auto reduced = reduce_to_path_tsp(graph, p);
        const Weight optimal = held_karp_path(reduced.instance).cost;

        const ChristofidesResult christofides = christofides_path(reduced.instance);
        const double chr_ratio =
            static_cast<double>(christofides.solution.cost) / static_cast<double>(optimal);
        chr_sum += chr_ratio;
        chr_max = std::max(chr_max, chr_ratio);
        if (christofides.matching_certified) ++certified;

        const double mst_ratio = static_cast<double>(double_mst_path(reduced.instance).cost) /
                                 static_cast<double>(optimal);
        mst_sum += mst_ratio;
        mst_max = std::max(mst_max, mst_ratio);
      }
      table.add_row({std::to_string(n), lptsp::bench::pvec_name(p), std::to_string(seeds),
                     format_ratio(chr_sum / seeds), format_ratio(chr_max),
                     format_ratio(mst_sum / seeds), format_ratio(mst_max),
                     lptsp::bench::fraction(certified, seeds)});
    }
  }

  table.print("E3 — approximation quality (paper: 1.5-approximable; expect max << 1.5)");
  return 0;
}
