/// E4 — the practical claim: high-performance TSP engines (the paper names
/// Lin-Kernighan implementations, LKH/Concorde) solve L(p)-LABELING well
/// through the reduction.
///
/// Sweeps the in-repo engine portfolio over growing reduced instances and
/// reports span, gap to the MST lower bound, and wall time. Expected
/// shape: construction-only engines are fast but loose; LK-style closes
/// most of the gap; chained LK is best and still fast — mirroring the
/// practical pitch of the paper.

#include <cstdio>

#include "bench_common.hpp"
#include "graph/operations.hpp"
#include "core/solvers.hpp"
#include "core/reduction.hpp"
#include "tsp/lower_bounds.hpp"

using namespace lptsp;

int main() {
  std::printf("E4: engine portfolio on reduced L(2,1) instances\n");
  Table table({"n", "engine", "span", "heavy steps", "gap vs LB", "time[s]"});

  const std::vector<Engine> engines{Engine::NearestNeighbor, Engine::GreedyEdge,
                                    Engine::NearestNeighbor2Opt, Engine::LinKernighanStyle,
                                    Engine::ChainedLK, Engine::Christofides, Engine::DoubleMst};

  for (const int n : {50, 100, 200, 400}) {
    // Hard diameter-2 family for L(2,1): adjacent pairs cost 2 and
    // distance-2 pairs cost 1, so optimal orders walk non-edges — i.e.
    // Hamiltonian-ish paths in the COMPLEMENT (the Griggs-Yeh direction).
    // Complements of sparse ER graphs are dense diameter-2 graphs whose
    // complement path partition s* is large (every isolated ER vertex is
    // a universal vertex of G and forces a heavy step), so the "heavy
    // steps" column (span - (n-1)) genuinely separates the engines.
    Rng rng(static_cast<std::uint64_t>(n) * 7919 + 5);
    const Graph graph = complement(erdos_renyi(n, 1.4 / n, rng));
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    // Held-Karp ascent tightens the certificate well beyond the raw MST
    // bound on this family (the 'gap vs LB' column is then meaningful).
    const Weight lower = held_karp_ascent_lower_bound(reduced.instance, 800);

    for (const Engine engine : engines) {
      SolveOptions options;
      options.engine = engine;
      options.seed = 42;
      options.chained_lk.restarts = 2;
      options.chained_lk.kicks = n <= 200 ? 20 : 8;
      const Timer timer;
      const SolveResult result = solve_labeling(graph, PVec::L21(), options);
      const double seconds = timer.seconds();
      table.add_row({std::to_string(n), engine_name(engine), std::to_string(result.span),
                     std::to_string(result.span - (n - 1)),
                     format_ratio(static_cast<double>(result.span) / static_cast<double>(lower)),
                     format_double(seconds, 3)});
    }
  }

  table.print("E4 — engines (heavy steps = forced distance-2 moves; expect chained-lk best)");
  return 0;
}
