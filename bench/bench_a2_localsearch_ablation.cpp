/// A2 (ablation) — which local-search component earns its keep.
///
/// Starting from identical nearest-neighbor constructions on the hard
/// dense diameter-2 family (complement of sparse ER; see E4), apply each
/// component in isolation and in combination. Expected shape: 2-opt does
/// the heavy lifting, Or-opt adds segment moves 2-opt cannot express, the
/// VND combination beats both, and double-bridge kicks rescue VND from
/// its local optima.

#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/reduction.hpp"
#include "graph/operations.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"

using namespace lptsp;

int main() {
  std::printf("A2: local-search component ablation (hard dense diameter-2 family)\n");
  lptsp::bench::BenchJson json("a2_localsearch_ablation");
  Table table({"n", "variant", "span", "improvement vs NN", "time[s]"});

  Weight vnd_total = 0;
  Weight fixed_k_total = 0;
  Weight tie_aware_total = 0;
  for (const int n : {100, 200, 400}) {
    Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
    const Graph graph = complement(erdos_renyi(n, 1.4 / n, rng));
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    const PathSolution nn = nearest_neighbor_path(reduced.instance, 0);

    struct Variant {
      const char* name;
      Weight cost;
      double seconds;
    };
    std::vector<Variant> variants;

    {
      variants.push_back({"nn only", nn.cost, 0.0});
    }
    {
      Order order = nn.order;
      const Timer timer;
      two_opt(reduced.instance, order);
      variants.push_back({"nn + 2opt", path_length(reduced.instance, order), timer.seconds()});
    }
    {
      Order order = nn.order;
      const Timer timer;
      or_opt(reduced.instance, order);
      variants.push_back({"nn + oropt", path_length(reduced.instance, order), timer.seconds()});
    }
    {
      Order order = nn.order;
      const Timer timer;
      vnd(reduced.instance, order);
      const Weight cost = path_length(reduced.instance, order);
      vnd_total += cost;
      variants.push_back({"nn + vnd", cost, timer.seconds()});
    }
    {
      // The candidate-list optimizer (2-opt + Or-opt over k-nearest lists
      // with don't-look bits) with FIXED-length lists: the pre-tie-aware
      // baseline, kept as the ablation control.
      Order order = nn.order;
      const Timer timer;
      const CandidateLists fixed(reduced.instance, CandidateLists::kDefaultK,
                                 /*tie_aware=*/false);
      PathOptimizer optimizer(reduced.instance, fixed);
      optimizer.optimize(order);
      const Weight cost = path_length(reduced.instance, order);
      fixed_k_total += cost;
      variants.push_back({"nn + cand-vnd k10", cost, timer.seconds()});
    }
    {
      // Tie-aware lists (the default): on this two-valued reduced metric
      // every vertex keeps its whole cheapest weight tier (capped), so
      // the candidate search stops truncating the cheap tier at an
      // arbitrary vertex-id boundary.
      Order order = nn.order;
      const Timer timer;
      PathOptimizer optimizer(reduced.instance);
      optimizer.optimize(order);
      const Weight cost = path_length(reduced.instance, order);
      tie_aware_total += cost;
      variants.push_back({"nn + cand-vnd ties", cost, timer.seconds()});
    }
    {
      ChainedLkOptions options;
      options.restarts = 1;
      options.kicks = 25;
      options.seed = 3;
      const Timer timer;
      const PathSolution chained = chained_lk_path(reduced.instance, options);
      variants.push_back({"cand-vnd + kicks", chained.cost, timer.seconds()});
    }

    for (const auto& variant : variants) {
      table.add_row({std::to_string(n), variant.name, std::to_string(variant.cost),
                     std::to_string(nn.cost - variant.cost),
                     format_double(variant.seconds, 3)});
      std::string key = "a2_";
      for (const char* c = variant.name; *c != '\0'; ++c) {
        key += (*c == ' ' || *c == '+') ? '_' : *c;
      }
      json.record(key, n, variant.seconds * 1e9);
      json.record_ratio(key + "_improvement", n, static_cast<double>(nn.cost - variant.cost));
    }
  }

  table.print("A2 — local-search ablation (legacy full-matrix vs candidate-list fast path)");

  // Ablation acceptance. Local search is not monotone in neighborhood
  // size (a bigger list can steer the descent to a different fixpoint),
  // so the honest claims, aggregated over sizes from identical NN starts,
  // are: tie-aware stays within 1% of BOTH the fixed-k lists it replaces
  // AND the O(n^2)-per-pass full-matrix VND it approximates — i.e. the
  // cheap-tier expansion keeps candidate search at reference quality on
  // the two-valued metrics it was built for, never meaningfully worse.
  json.record_ratio("a2_tie_aware_vs_fixed_k_span", 0,
                    static_cast<double>(fixed_k_total) / static_cast<double>(tie_aware_total));
  json.record_ratio("a2_tie_aware_vs_vnd_span", 0,
                    static_cast<double>(vnd_total) / static_cast<double>(tie_aware_total));
  const auto within_1pct = [](Weight lhs, Weight rhs) { return 100 * lhs <= 101 * rhs; };
  if (!within_1pct(tie_aware_total, fixed_k_total) ||
      !within_1pct(tie_aware_total, vnd_total)) {
    std::printf("ABLATION FAILED: tie-aware span total %lld vs fixed-k %lld, full-vnd %lld\n",
                static_cast<long long>(tie_aware_total), static_cast<long long>(fixed_k_total),
                static_cast<long long>(vnd_total));
    return 1;
  }
  std::printf("ablation: tie-aware span total %lld within 1%% of fixed-k %lld and "
              "full-vnd %lld — PASS\n",
              static_cast<long long>(tie_aware_total), static_cast<long long>(fixed_k_total),
              static_cast<long long>(vnd_total));
  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
