/// E5 — Corollary 2: diameter-2 L(p,q) via PARTITION INTO PATHS.
///
/// Part A: on random diameter-2 graphs, the path-partition formula must
/// match the TSP pipeline exactly for every (p,q) with max <= 2*min —
/// including the p > q case that runs on the complement.
/// Part B: the modular-decomposition route — the exact cotree DP on
/// cographs — against the generic exact partition, plus its speed at
/// sizes where the 2^n DP is impossible.

#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/cograph_paths.hpp"
#include "core/partition_paths.hpp"
#include "core/solvers.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"

using namespace lptsp;

int main() {
  std::printf("E5: Corollary 2 — diameter-2 labeling via path partition\n");
  lptsp::bench::BenchJson json("e5_diameter2_paths");
  const Timer wall;

  Table formula({"family", "n", "(p,q)", "cases", "formula==TSP", "mean s*", "time[s]"});
  const std::vector<std::pair<int, int>> pqs{{2, 1}, {1, 2}, {3, 2}, {2, 3}, {1, 1}, {4, 3}};
  for (const bool dense_family : {false, true}) {
  for (const int n : {10, 14, 18}) {
    for (const auto& [p, q] : pqs) {
      int matches = 0;
      int cases = 12;
      double partition_sum = 0;
      const Timer timer;
      for (int seed = 0; seed < cases; ++seed) {
        // The dense family (complement of sparse ER, still diameter <= 2)
        // forces non-trivial path partitions: isolated ER vertices are
        // universal in G, so s* > 1 under p > q and the complement branch
        // is genuinely exercised.
        Rng rng(static_cast<std::uint64_t>(seed * 31 + n + p * 7 + q));
        const Graph graph =
            dense_family
                ? complement(erdos_renyi(n, 2.0 / n, rng))
                : lptsp::bench::workload_graph(n, 2,
                                               static_cast<std::uint64_t>(seed * 31 + n + p * 7 + q));
        if (dense_family && (!is_connected(graph) || diameter(graph) > 2)) {
          --seed;  // resample the rare bad draw deterministically forward
          continue;
        }
        SolveOptions options;
        options.engine = Engine::HeldKarp;
        const Weight via_tsp = solve_labeling(graph, PVec::Lpq(p, q), options).span;
        const Diameter2Result via_partition = lpq_span_diameter2(graph, p, q);
        if (via_partition.span == via_tsp) ++matches;
        partition_sum += via_partition.partition_size;
      }
      // += concatenation sidesteps GCC 12's -Wrestrict false positive
      // (PR105651) on operator+ chains over temporaries.
      std::string pq = "(";
      pq += std::to_string(p);
      pq += ",";
      pq += std::to_string(q);
      pq += ")";
      formula.add_row({dense_family ? "dense(co-ER)" : "diam2-random", std::to_string(n), pq,
                       std::to_string(cases), lptsp::bench::fraction(matches, cases),
                       format_double(partition_sum / cases, 2), format_double(timer.seconds(), 2)});
      // Per-case pipeline cost (solve_labeling + partition formula), the
      // HK-dominated hot path this experiment stresses.
      json.record((dense_family ? std::string("e5a_dense_pq") : std::string("e5a_random_pq")) +
                      pq,
                  n, timer.seconds() * 1e9 / cases);
    }
  }
  }
  formula.print("E5a — Corollary-2 formula vs TSP pipeline (expect all matches)");

  Table cotree({"n", "graphs", "cotree==exact", "cotree time[s]", "exact time[s]"});
  Rng rng(7);
  for (const int n : {12, 16, 20}) {
    int agreements = 0;
    const int graphs = 15;
    double cotree_time = 0;
    double exact_time = 0;
    for (int trial = 0; trial < graphs; ++trial) {
      const Graph graph = join(random_cograph(n / 2, rng), random_cograph(n - n / 2, rng));
      Timer timer;
      const int via_cotree = cograph_min_path_cover(graph);
      cotree_time += timer.seconds();
      timer.reset();
      const int via_exact = path_partition_exact(graph).size();
      exact_time += timer.seconds();
      if (via_cotree == via_exact) ++agreements;
    }
    cotree.add_row({std::to_string(n), std::to_string(graphs),
                    lptsp::bench::fraction(agreements, graphs),
                    format_double(cotree_time, 3), format_double(exact_time, 3)});
    json.record("e5b_exact_partition_per_graph", n, exact_time * 1e9 / graphs);
  }
  cotree.print("E5b — cotree DP (mw<=2 FPT route) vs exact 2^n DP");

  Table scale({"n", "cograph paths s*", "time[s]"});
  for (const int n : {100, 400, 1600}) {
    // A union of random cographs: the cover count stays > 1 instead of
    // collapsing to a single Hamiltonian path as join-rooted draws do.
    const Graph graph = disjoint_union(
        random_cograph(n / 2, rng),
        disjoint_union(random_cograph(n / 4, rng), random_cograph(n - n / 2 - n / 4, rng)));
    const Timer timer;
    const int cover = cograph_min_path_cover(graph);
    scale.add_row({std::to_string(n), std::to_string(cover), format_double(timer.seconds(), 3)});
    json.record("e5c_cotree_cover", n, timer.seconds() * 1e9);
  }
  scale.print("E5c — cotree DP scales far beyond the 2^n exact solver");

  json.record("e5_total_wall", 0, wall.seconds() * 1e9);
  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
