/// E9 — the O(nm) reduction and the parallel substrate.
///
/// Part A: reduction wall time against n*m; the "t/(nm) [ns]" column
/// should stay roughly constant, confirming the claimed O(nm) + O(n^2)
/// complexity. Part B: thread sweep for the three parallelizable kernels
/// (APSP BFS fan-out, Held-Karp layers, chained-LK multi-start). On a
/// single-core host the sweep documents overhead rather than speedup; on
/// multicore machines the same binary shows the scaling.

#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/reduction.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/held_karp.hpp"

using namespace lptsp;

int main() {
  std::printf("E9: O(nm) reduction + parallel substrate (hardware threads: %u)\n",
              std::thread::hardware_concurrency());

  Table reduction({"n", "m", "n*m", "time[s]", "t/(nm) [ns]"});
  for (const int n : {100, 200, 400, 800}) {
    const Graph graph = lptsp::bench::workload_graph(n, 3, static_cast<std::uint64_t>(n), 0.02);
    const Timer timer;
    const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}), 1);
    const double seconds = timer.seconds();
    const double nm = static_cast<double>(graph.n()) * graph.m();
    reduction.add_row({std::to_string(n), std::to_string(graph.m()),
                       std::to_string(static_cast<long long>(nm)), format_double(seconds, 4),
                       format_double(seconds / nm * 1e9, 2)});
    (void)reduced;
  }
  reduction.print("E9a — Theorem 2 reduction time (expect flat t/(nm))");

  Table threads({"kernel", "threads", "time[s]", "result"});
  {
    const Graph graph = lptsp::bench::workload_graph(600, 3, 9, 0.02);
    for (const unsigned t : {1u, 2u, 4u}) {
      const Timer timer;
      const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}), t);
      threads.add_row({"apsp+reduce(n=600)", std::to_string(t), format_double(timer.seconds(), 3),
                       std::to_string(reduced.instance.max_weight())});
    }
  }
  {
    const Graph graph = lptsp::bench::workload_graph(18, 2, 4);
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    for (const unsigned t : {1u, 2u, 4u}) {
      HeldKarpOptions options;
      options.threads = t;
      const Timer timer;
      const PathSolution solution = held_karp_path(reduced.instance, options);
      threads.add_row({"held-karp(n=18)", std::to_string(t), format_double(timer.seconds(), 3),
                       std::to_string(solution.cost)});
    }
  }
  {
    const Graph graph = lptsp::bench::workload_graph(150, 2, 5, 0.05);
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    for (const unsigned t : {1u, 2u, 4u}) {
      ChainedLkOptions options;
      options.restarts = 4;
      options.kicks = 10;
      options.seed = 1;
      options.threads = t;
      const Timer timer;
      const PathSolution solution = chained_lk_path(reduced.instance, options);
      threads.add_row({"chained-lk(n=150)", std::to_string(t), format_double(timer.seconds(), 3),
                       std::to_string(solution.cost)});
    }
  }
  threads.print("E9b — thread sweep (identical results required; speedup needs multicore)");
  return 0;
}
