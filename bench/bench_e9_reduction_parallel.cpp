/// E9 — the O(nm) reduction and the parallel substrate.
///
/// Part A: reduction wall time against n*m; the "t/(nm) [ns]" column
/// should stay roughly constant, confirming the claimed O(nm) + O(n^2)
/// complexity. Part B: thread sweep for the three parallelizable kernels
/// (APSP BFS fan-out, Held-Karp layers, chained-LK multi-start). On a
/// single-core host the sweep documents overhead rather than speedup; on
/// multicore machines the same binary shows the scaling. Part C: the
/// paper's own diameter-2 target class, where the bit-parallel
/// word-intersection kernel replaces per-source adjacency-list BFS — both
/// lanes run in-binary so the speedup is measured on the same machine and
/// recorded in BENCH_e9_reduction_parallel.json.

#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/reduction.hpp"
#include "graph/bfs.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/held_karp.hpp"

using namespace lptsp;

int main() {
  std::printf("E9: O(nm) reduction + parallel substrate (hardware threads: %u)\n",
              std::thread::hardware_concurrency());
  lptsp::bench::BenchJson json("e9_reduction_parallel");

  Table reduction({"n", "m", "n*m", "time[s]", "t/(nm) [ns]"});
  for (const int n : {100, 200, 400, 800}) {
    const Graph graph = lptsp::bench::workload_graph(n, 3, static_cast<std::uint64_t>(n), 0.02);
    const double ns = lptsp::bench::median_ns(3, [&] {
      const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}), 1);
      (void)reduced;
    });
    const double seconds = ns / 1e9;
    const double nm = static_cast<double>(graph.n()) * graph.m();
    reduction.add_row({std::to_string(n), std::to_string(graph.m()),
                       std::to_string(static_cast<long long>(nm)), format_double(seconds, 4),
                       format_double(seconds / nm * 1e9, 2)});
    json.record("reduce_diam3", n, ns);
  }
  reduction.print("E9a — Theorem 2 reduction time (expect flat t/(nm))");

  Table threads({"kernel", "threads", "time[s]", "result"});
  {
    const Graph graph = lptsp::bench::workload_graph(600, 3, 9, 0.02);
    for (const unsigned t : {1u, 2u, 4u}) {
      const Timer timer;
      const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}), t);
      threads.add_row({"apsp+reduce(n=600)", std::to_string(t), format_double(timer.seconds(), 3),
                       std::to_string(reduced.instance.max_weight())});
      if (t == 1) json.record("apsp_reduce_serial", 600, timer.seconds() * 1e9);
    }
  }
  {
    const Graph graph = lptsp::bench::workload_graph(18, 2, 4);
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    for (const unsigned t : {1u, 2u, 4u}) {
      HeldKarpOptions options;
      options.threads = t;
      const Timer timer;
      const PathSolution solution = held_karp_path(reduced.instance, options);
      threads.add_row({"held-karp(n=18)", std::to_string(t), format_double(timer.seconds(), 3),
                       std::to_string(solution.cost)});
      if (t == 1) json.record("held_karp", 18, timer.seconds() * 1e9);
    }
  }
  {
    const Graph graph = lptsp::bench::workload_graph(150, 2, 5, 0.05);
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
    for (const unsigned t : {1u, 2u, 4u}) {
      ChainedLkOptions options;
      options.restarts = 4;
      options.kicks = 10;
      options.seed = 1;
      options.threads = t;
      const Timer timer;
      const PathSolution solution = chained_lk_path(reduced.instance, options);
      threads.add_row({"chained-lk(n=150)", std::to_string(t), format_double(timer.seconds(), 3),
                       std::to_string(solution.cost)});
      if (t == 1) json.record("chained_lk", 150, timer.seconds() * 1e9);
    }
  }
  threads.print("E9b — thread sweep (identical results required; speedup needs multicore)");

  // Part C: diameter-2 inputs (the paper's target class). The bit-parallel
  // kernel answers dist(u,v) from one adjacency bit and a word-wise row
  // intersection; the reference lane is the pre-optimization per-source
  // adjacency-list BFS, kept in the library exactly for this comparison.
  Table diam2({"n", "m", "apsp-bitpar[ms]", "apsp-reference[ms]", "speedup"});
  for (const int n : {256, 512, 1024}) {
    const Graph graph =
        lptsp::bench::workload_graph(n, 2, static_cast<std::uint64_t>(n) * 7 + 1, 0.15);
    const double fast_ns =
        lptsp::bench::median_ns(3, [&] { (void)all_pairs_distances(graph, 1); });
    const double reference_ns =
        lptsp::bench::median_ns(3, [&] { (void)all_pairs_distances_reference(graph, 1); });
    diam2.add_row({std::to_string(n), std::to_string(graph.m()), format_double(fast_ns / 1e6, 2),
                   format_double(reference_ns / 1e6, 2), format_ratio(reference_ns / fast_ns)});
    json.record("diam2_apsp_bitparallel", n, fast_ns);
    json.record("diam2_apsp_reference", n, reference_ns);
    json.record_ratio("diam2_apsp_speedup_vs_reference", n, reference_ns / fast_ns);
  }
  diam2.print("E9c — diameter-2 all-pairs: bit-parallel kernel vs list-BFS reference");

  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
