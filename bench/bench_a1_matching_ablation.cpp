/// A1 (ablation) — the matching engine inside Christofides.
///
/// DESIGN.md motivates a two-valued exact shortcut (blossom cardinality on
/// the cheap subgraph) for the diameter-2 instances the paper targets.
/// This ablation quantifies what it buys: on MST odd-vertex sets, compare
/// the exact DP, the two-valued reduction, and the greedy+swap fallback —
/// weight achieved, certification, and time.

#include <cstdio>

#include "bench_common.hpp"
#include "core/reduction.hpp"
#include "tsp/matching.hpp"
#include "tsp/mst.hpp"

using namespace lptsp;

int main() {
  std::printf("A1: matching-engine ablation on MST odd-vertex sets\n");
  Table table({"instance", "odd set", "engine", "weight", "certified", "time[ms]"});

  struct Workload {
    std::string name;
    Graph graph;
    PVec p;
  };
  Rng rng(13);
  std::vector<Workload> workloads;
  workloads.push_back({"diam2 n=16 (2-valued)",
                       random_with_diameter_at_most(16, 2, 0.25, rng), PVec::L21()});
  workloads.push_back({"diam2 n=120 (2-valued)",
                       random_with_diameter_at_most(120, 2, 0.04, rng), PVec::L21()});
  workloads.push_back({"diam3 n=16 (3-valued)",
                       random_with_diameter_at_most(16, 3, 0.2, rng), PVec({2, 2, 1})});
  workloads.push_back({"diam3 n=120 (3-valued)",
                       random_with_diameter_at_most(120, 3, 0.03, rng), PVec({2, 2, 1})});

  for (const auto& workload : workloads) {
    const auto reduced = reduce_to_path_tsp(workload.graph, workload.p);
    const std::vector<int> odd = prim_mst(reduced.instance).odd_degree_vertices();
    const int k = static_cast<int>(odd.size());

    struct EngineRow {
      const char* name;
      bool runnable;
      MatchingResult (*run)(const MetricInstance&, const std::vector<int>&);
    };
    const bool two_valued_ok = reduced.instance.distinct_weights().size() <= 2;
    const std::vector<EngineRow> engines{
        {"dp-exact", k <= 20, &min_weight_perfect_matching_dp},
        {"two-valued", two_valued_ok, &min_weight_perfect_matching_two_valued},
        {"greedy+swap", true, &greedy_perfect_matching},
        {"dispatcher", true, &min_weight_perfect_matching},
    };
    for (const auto& engine : engines) {
      if (!engine.runnable) {
        table.add_row({workload.name, std::to_string(k), engine.name, "-", "-", "-"});
        continue;
      }
      const Timer timer;
      const MatchingResult result = engine.run(reduced.instance, odd);
      table.add_row({workload.name, std::to_string(k), engine.name,
                     std::to_string(result.weight), result.certified_optimal ? "yes" : "no",
                     format_double(timer.millis(), 2)});
    }
  }

  table.print("A1 — matching ablation (two-valued must equal dp-exact where both run)");
  return 0;
}
