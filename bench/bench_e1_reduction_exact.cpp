/// E1 — Theorem 2 + Claim 1 exactness.
///
/// Exhaustively enumerates ALL connected graphs on 4..6 vertices (plus a
/// random sample at n = 7, 8) whose diameter fits the tested p, and checks
/// that the TSP route (reduce -> Held-Karp) returns exactly lambda_p as
/// certified by the order-enumeration oracle. The paper claims equality;
/// the "mismatch" column must be all zeros.

#include <cstdio>

#include "bench_common.hpp"
#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "graph/properties.hpp"
#include "tsp/held_karp.hpp"

using namespace lptsp;

namespace {

struct SweepResult {
  long long in_scope = 0;
  long long mismatches = 0;
  double seconds = 0;
};

SweepResult sweep_exhaustive(int n, const PVec& p) {
  SweepResult result;
  const Timer timer;
  const std::uint64_t masks = std::uint64_t{1} << (n * (n - 1) / 2);
  for (std::uint64_t mask = 0; mask < masks; ++mask) {
    const Graph graph = graph_from_edge_mask(n, mask);
    if (!is_connected(graph) || diameter(graph) > p.k()) continue;
    ++result.in_scope;
    const auto reduced = reduce_to_path_tsp(graph, p);
    const Weight via_tsp = held_karp_path(reduced.instance).cost;
    if (via_tsp != min_span_over_all_orders(graph, p)) ++result.mismatches;
  }
  result.seconds = timer.seconds();
  return result;
}

SweepResult sweep_random(int n, const PVec& p, int samples) {
  SweepResult result;
  const Timer timer;
  Rng rng(static_cast<std::uint64_t>(n) * 1000003 + p.pmax());
  for (int trial = 0; trial < samples; ++trial) {
    const Graph graph = random_with_diameter_at_most(n, p.k(), 0.25, rng);
    ++result.in_scope;
    const auto reduced = reduce_to_path_tsp(graph, p);
    const Weight via_tsp = held_karp_path(reduced.instance).cost;
    if (via_tsp != min_span_over_all_orders(graph, p)) ++result.mismatches;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

int main() {
  std::printf("E1: Theorem 2 exactness — lambda_p(G) == optimal Path-TSP weight\n");
  Table table({"mode", "n", "p", "graphs", "mismatches", "time[s]"});

  const std::vector<PVec> diam2{PVec::L21(), PVec({1, 1}), PVec::Lpq(3, 2), PVec({2, 2})};
  const std::vector<PVec> diam3{PVec({2, 1, 1}), PVec({2, 2, 1}), PVec({4, 3, 2})};

  for (int n = 4; n <= 6; ++n) {
    for (const PVec& p : diam2) {
      const SweepResult result = sweep_exhaustive(n, p);
      table.add_row({"exhaustive", std::to_string(n), lptsp::bench::pvec_name(p),
                     std::to_string(result.in_scope), std::to_string(result.mismatches),
                     format_double(result.seconds, 2)});
    }
  }
  for (int n = 5; n <= 6; ++n) {
    for (const PVec& p : diam3) {
      const SweepResult result = sweep_exhaustive(n, p);
      table.add_row({"exhaustive", std::to_string(n), lptsp::bench::pvec_name(p),
                     std::to_string(result.in_scope), std::to_string(result.mismatches),
                     format_double(result.seconds, 2)});
    }
  }
  for (int n = 7; n <= 8; ++n) {
    for (const PVec& p : {PVec::L21(), PVec({2, 2, 1})}) {
      const SweepResult result = sweep_random(n, p, 400);
      table.add_row({"random", std::to_string(n), lptsp::bench::pvec_name(p),
                     std::to_string(result.in_scope), std::to_string(result.mismatches),
                     format_double(result.seconds, 2)});
    }
  }

  table.print("E1 — reduction exactness (expect mismatches == 0 everywhere)");
  return 0;
}
