/// S2 — socket front-end overhead: loopback round-trips vs direct submit.
///
/// The serving claim behind lptspd: putting the batch labeling service
/// behind its binary wire protocol costs little enough that the socket
/// lane sustains at least half the throughput of calling
/// BatchSolver::submit in-process on the same 90%-repeat workload (the
/// frequency-assignment pattern S1 established). Both lanes use identical
/// solver options and identically generated request streams; the network
/// lane additionally pays encode + TCP loopback + decode per request and
/// response, pipelined through one connection.

#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "graph/operations.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/batch_solver.hpp"
#include "util/fault.hpp"

using namespace lptsp;

namespace {

std::vector<SolveRequest> make_workload(int count, double repeat_ratio, int base_pool,
                                        std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  std::vector<Graph> bases;
  bases.reserve(static_cast<std::size_t>(base_pool));
  for (int b = 0; b < base_pool; ++b) {
    bases.push_back(random_with_diameter_at_most(60, 2, 0.15, rng));
  }
  std::vector<SolveRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SolveRequest request;
    if (rng.bernoulli(repeat_ratio)) {
      const Graph& base = bases[rng.uniform_index(bases.size())];
      request.graph = relabel(base, rng.permutation(base.n()));
    } else {
      request.graph = random_with_diameter_at_most(60, 2, 0.15, rng);
    }
    request.p = PVec::L21();
    request.deadline = std::chrono::milliseconds{40};
    request.id = static_cast<std::uint64_t>(i) + 1;
    requests.push_back(std::move(request));
  }
  return requests;
}

BatchSolver::Options service_options() {
  BatchSolver::Options options;
  options.request_workers = 4;
  options.engine_workers = 4;
  return options;
}

}  // namespace

int main() {
  std::printf("S2: lptspd loopback throughput vs direct submit (n=60, 90%% repeats, L(2,1))\n");
  lptsp::bench::BenchJson json("s2_network_throughput");

  constexpr int kRequests = 150;
  constexpr int kBasePool = 5;
  const std::vector<SolveRequest> requests = make_workload(kRequests, 0.9, kBasePool, 93);

  // Lane 1: direct in-process submit (futures pipeline).
  double direct_rps = 0;
  {
    BatchSolver solver(service_options());
    const Timer timer;
    std::vector<std::future<SolveResponse>> futures;
    futures.reserve(requests.size());
    for (const SolveRequest& request : requests) futures.push_back(solver.submit(request));
    int ok = 0;
    for (auto& future : futures) ok += future.get().ok() ? 1 : 0;
    const double seconds = timer.seconds();
    direct_rps = kRequests / seconds;
    std::printf("  direct:   %3d ok, %.3fs, %.1f req/s (engine solves: %llu)\n", ok, seconds,
                direct_rps, static_cast<unsigned long long>(solver.engine_solves()));
    json.record("direct_submit_req_ns_at_90pct", kRequests, seconds * 1e9 / kRequests);
    json.record_rate("direct_submit_rate_at_90pct", kRequests, direct_rps);
  }

  // Lane 2: the same stream through a real TCP loopback connection,
  // fully pipelined (submit everything, then drain out of order).
  double loopback_rps = 0;
  double warm_rtt_ns = 0;
  double trace_retained = 1.0;
  {
    BatchSolver solver(service_options());
    LabelingServer::Options server_options;
    server_options.max_inflight_per_connection = 512;  // bench pipelines all 150
    LabelingServer server(solver, server_options);
    server.start();
    LabelingClient client;
    client.connect("127.0.0.1", server.port());

    const Timer timer;
    for (const SolveRequest& request : requests) client.submit(request);
    int ok = 0;
    for (int i = 0; i < kRequests; ++i) ok += client.next().ok() ? 1 : 0;
    const double seconds = timer.seconds();
    loopback_rps = kRequests / seconds;
    std::printf("  loopback: %3d ok, %.3fs, %.1f req/s (engine solves: %llu)\n", ok, seconds,
                loopback_rps, static_cast<unsigned long long>(solver.engine_solves()));
    json.record("loopback_req_ns_at_90pct", kRequests, seconds * 1e9 / kRequests);

    // Warm-cache single-request latency: the wire cost with the solve
    // amortized away (every request below is a cache hit). The full
    // distribution, not just the median — loopback RTT tails expose
    // event-loop scheduling hiccups a median hides.
    const SolveRequest& warm = requests.front();
    std::vector<double> rtt_samples;
    rtt_samples.reserve(101);
    for (int rep = 0; rep < 101; ++rep) {
      const Timer rtt;
      (void)client.solve(warm);
      rtt_samples.push_back(rtt.seconds() * 1e9);
    }
    std::vector<double> sorted = rtt_samples;
    std::sort(sorted.begin(), sorted.end());
    const double rtt_ns = sorted[sorted.size() / 2];
    warm_rtt_ns = rtt_ns;
    std::printf("  warm round-trip latency: p50=%.0f us p99=%.0f us "
                "(solve cached; pure wire + dispatch)\n",
                rtt_ns / 1000.0, sorted[(sorted.size() * 99) / 100] / 1000.0);
    json.record("warm_roundtrip_ns", warm.graph.n(), rtt_ns);
    json.record_latency_samples("warm_roundtrip_latency", warm.graph.n(), rtt_samples);
    json.record_rate("loopback_rate_at_90pct", kRequests, loopback_rps);

    // Trace-context overhead: the same warm cache-hit round-trip through
    // a tracing client — which stamps a trace id on the wire, records
    // client spans, and makes the server echo its queue/service timings —
    // vs the plain client above. Measurement is PAIRED like S1d: both
    // lanes are warmed, then alternate request-by-request with the order
    // flipped every other pair, and the comparison is medians over all
    // per-request samples (whole-pass wall clock is far too noisy at
    // ~100us RTTs).
    {
      ClientOptions trace_options;
      trace_options.trace = true;
      LabelingClient traced(trace_options);
      traced.connect("127.0.0.1", server.port());
      for (int i = 0; i < 8; ++i) {
        (void)client.solve(warm);
        (void)traced.solve(warm);
      }
      constexpr int kReps = 8;
      constexpr int kPairsPerRep = 40;
      std::vector<double> off_ns;
      std::vector<double> on_ns;
      off_ns.reserve(kReps * kPairsPerRep);
      on_ns.reserve(kReps * kPairsPerRep);
      const auto timed = [&warm](LabelingClient& lane, std::vector<double>& sink) {
        const Timer per_request;
        (void)lane.solve(warm);
        sink.push_back(per_request.seconds() * 1e9);
      };
      for (int rep = 0; rep < kReps; ++rep) {
        for (int i = 0; i < kPairsPerRep; ++i) {
          const bool off_first = ((rep + i) & 1) == 0;
          timed(off_first ? client : traced, off_first ? off_ns : on_ns);
          timed(off_first ? traced : client, off_first ? on_ns : off_ns);
        }
      }
      const auto median_of = [](std::vector<double>& samples) {
        std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
        return samples[samples.size() / 2];
      };
      const double rps_off = 1e9 / median_of(off_ns);
      const double rps_on = 1e9 / median_of(on_ns);
      trace_retained = rps_on / rps_off;
      std::printf("  trace-context warm RTT: off %.1f req/s, on %.1f req/s — retained %.1f%% "
                  "(acceptance: >= 97%%, %zu client traces kept)\n",
                  rps_off, rps_on, trace_retained * 100.0, traced.traces().size());
      json.record_ratio("trace_context_throughput_retained", kReps * kPairsPerRep,
                        trace_retained);
      traced.shutdown();
    }

    client.shutdown();
    server.stop();
  }

  const double ratio = loopback_rps / direct_rps;
  json.record_ratio("loopback_vs_direct_throughput_at_90pct", kRequests, ratio);
  std::printf("loopback/direct throughput: %.2fx (acceptance: >= 0.5x)\n", ratio);

  // Disarmed fault-site overhead: every request crosses a handful of
  // injection sites (client write/read, server read/write, engine race,
  // store append/fsync — call it 8), each one relaxed atomic load when
  // nothing is armed. Price those crossings against the measured warm RTT;
  // they must stay invisible (<= 2%).
  double fault_check_ns = 0;
  {
    constexpr int kChecks = 4'000'000;
    volatile bool sink = false;
    const Timer timer;
    for (int i = 0; i < kChecks; ++i) {
      sink = fault::should_fail(FaultSite::StoreAppend) || sink;
    }
    fault_check_ns = timer.seconds() * 1e9 / kChecks;
    (void)sink;
  }
  constexpr double kSitesPerRequest = 8.0;
  const double fault_overhead = warm_rtt_ns > 0 ? kSitesPerRequest * fault_check_ns / warm_rtt_ns
                                                : 0.0;
  json.record("fault_check_disarmed_ns", 1, fault_check_ns);
  json.record_ratio("faults_disarmed_overhead_fraction", kRequests, fault_overhead);
  std::printf("disarmed fault check: %.2f ns/site, ~%.4f%% of warm RTT "
              "(acceptance: <= 2%%)\n",
              fault_check_ns, fault_overhead * 100.0);

  std::printf("wrote %s\n", json.write().c_str());
  if (ratio < 0.5) {
    std::printf("ACCEPTANCE FAILED: socket front-end costs more than half the throughput\n");
    return 1;
  }
  if (fault_overhead > 0.02) {
    std::printf("ACCEPTANCE FAILED: disarmed fault sites cost more than 2%% of warm RTT\n");
    return 1;
  }
  if (trace_retained < 0.97) {
    std::printf("ACCEPTANCE FAILED: trace context costs more than 3%% of warm throughput\n");
    return 1;
  }
  return 0;
}
