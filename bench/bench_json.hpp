#pragma once

/// Machine-readable benchmark output. Each experiment binary collects its
/// headline measurements into a BenchJson and writes BENCH_<name>.json next
/// to its working directory, so CI (and any perf-trajectory tooling) can
/// diff runs without scraping ASCII tables. The schema is deliberately
/// flat:
///
///   {
///     "bench": "e9_reduction_parallel",
///     "results": [
///       {"name": "reduce_diam3", "n": 800, "median_ns": 1.05e7},
///       {"name": "diam2_apsp_speedup_vs_reference", "n": 512, "ratio": 6.1},
///       {"name": "warm_rtt", "n": 256, "p50_ns": 8.1e4, "p90_ns": 1.2e5,
///        "p99_ns": 3.4e5}
///     ]
///   }
///
/// `median_ns` entries are wall time per operation (median over the reps
/// the bench chose); `ratio` entries are dimensionless comparisons
/// (speedups, hit rates); `p50_ns`/`p90_ns`/`p99_ns` entries are a
/// latency distribution over individual operations (tail behaviour, where
/// a median hides regressions); `rate_per_s` entries are sustained
/// throughput (operations per second — bigger is better, like ratio);
/// `work` entries are raw engine-work totals from the profiling layer
/// (DP cells, search nodes — workload bookkeeping, not a perf verdict:
/// the differ notes and skips them instead of comparing).

#include <algorithm>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace lptsp::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  /// One timed case: name, problem size, median wall nanoseconds.
  void record(const std::string& name, long long n, double median_ns) {
    entries_.push_back({name, n, median_ns, Kind::Median, 0.0, 0.0, 0.0, 0.0, 0.0});
  }

  /// One dimensionless comparison (speedup, hit rate, retained fraction).
  void record_ratio(const std::string& name, long long n, double ratio) {
    entries_.push_back({name, n, 0.0, Kind::Ratio, ratio, 0.0, 0.0, 0.0, 0.0});
  }

  /// One latency distribution: per-operation percentiles in nanoseconds.
  void record_latency(const std::string& name, long long n, double p50_ns, double p90_ns,
                      double p99_ns) {
    entries_.push_back({name, n, 0.0, Kind::Latency, 0.0, p50_ns, p90_ns, p99_ns, 0.0});
  }

  /// One sustained throughput measurement in operations per second.
  void record_rate(const std::string& name, long long n, double rate_per_s) {
    entries_.push_back({name, n, 0.0, Kind::Rate, 0.0, 0.0, 0.0, 0.0, rate_per_s});
  }

  /// One raw engine-work total (profiling layer): context for the timed
  /// records, deliberately not a diffable perf number.
  void record_work(const std::string& name, long long n, double work) {
    entries_.push_back({name, n, 0.0, Kind::Work, 0.0, 0.0, 0.0, 0.0, work});
  }

  /// record_latency from raw per-operation samples (sorted in place).
  void record_latency_samples(const std::string& name, long long n,
                              std::vector<double>& samples_ns) {
    if (samples_ns.empty()) return;
    std::sort(samples_ns.begin(), samples_ns.end());
    const auto at = [&samples_ns](double q) {
      const std::size_t last = samples_ns.size() - 1;
      const auto rank = static_cast<std::size_t>(q * static_cast<double>(last) + 0.5);
      return samples_ns[std::min(rank, last)];
    };
    record_latency(name, n, at(0.50), at(0.90), at(0.99));
  }

  /// Writes BENCH_<bench>.json in the working directory; returns the path.
  std::string write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      out << "    {\"name\": \"" << entry.name << "\", \"n\": " << entry.n;
      switch (entry.kind) {
        case Kind::Median:
          out << ", \"median_ns\": " << entry.median_ns;
          break;
        case Kind::Ratio:
          out << ", \"ratio\": " << entry.ratio;
          break;
        case Kind::Latency:
          out << ", \"p50_ns\": " << entry.p50_ns << ", \"p90_ns\": " << entry.p90_ns
              << ", \"p99_ns\": " << entry.p99_ns;
          break;
        case Kind::Rate:
          out << ", \"rate_per_s\": " << entry.rate_per_s;
          break;
        case Kind::Work:
          out << ", \"work\": " << entry.rate_per_s;  // reuses the slot
          break;
      }
      out << '}' << (i + 1 < entries_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    return path;
  }

 private:
  enum class Kind { Median, Ratio, Latency, Rate, Work };

  struct Entry {
    std::string name;
    long long n;
    double median_ns;
    Kind kind;
    double ratio;
    double p50_ns;
    double p90_ns;
    double p99_ns;
    double rate_per_s;
  };

  std::string bench_;
  std::vector<Entry> entries_;
};

/// Median wall-nanoseconds over `reps` invocations of fn.
template <typename F>
double median_ns(int reps, F&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const Timer timer;
    fn();
    samples.push_back(timer.seconds() * 1e9);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace lptsp::bench
