#pragma once

/// Machine-readable benchmark output. Each experiment binary collects its
/// headline measurements into a BenchJson and writes BENCH_<name>.json next
/// to its working directory, so CI (and any perf-trajectory tooling) can
/// diff runs without scraping ASCII tables. The schema is deliberately
/// flat:
///
///   {
///     "bench": "e9_reduction_parallel",
///     "results": [
///       {"name": "reduce_diam3", "n": 800, "median_ns": 1.05e7},
///       {"name": "diam2_apsp_speedup_vs_reference", "n": 512, "ratio": 6.1}
///     ]
///   }
///
/// `median_ns` entries are wall time per operation (median over the reps
/// the bench chose); `ratio` entries are dimensionless comparisons
/// (speedups, hit rates).

#include <algorithm>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace lptsp::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  /// One timed case: name, problem size, median wall nanoseconds.
  void record(const std::string& name, long long n, double median_ns) {
    entries_.push_back({name, n, median_ns, false, 0.0});
  }

  /// One dimensionless comparison (speedup, ratio, rate).
  void record_ratio(const std::string& name, long long n, double ratio) {
    entries_.push_back({name, n, 0.0, true, ratio});
  }

  /// Writes BENCH_<bench>.json in the working directory; returns the path.
  std::string write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      out << "    {\"name\": \"" << entry.name << "\", \"n\": " << entry.n;
      if (entry.is_ratio) {
        out << ", \"ratio\": " << entry.ratio;
      } else {
        out << ", \"median_ns\": " << entry.median_ns;
      }
      out << '}' << (i + 1 < entries_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    return path;
  }

 private:
  struct Entry {
    std::string name;
    long long n;
    double median_ns;
    bool is_ratio;
    double ratio;
  };

  std::string bench_;
  std::vector<Entry> entries_;
};

/// Median wall-nanoseconds over `reps` invocations of fn.
template <typename F>
double median_ns(int reps, F&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const Timer timer;
    fn();
    samples.push_back(timer.seconds() * 1e9);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace lptsp::bench
