/// E2 — Corollary 1: the O(2^n n^2) exact algorithm.
///
/// Measures Held–Karp wall time on reduced L(2,1) instances for growing n.
/// The "x prev" column is the runtime ratio against n-2; the theory
/// predicts about 2^2 * ((n/(n-2))^2 ≈ 4.3, confirming the 2^n n^2 shape.
/// The "t / (2^n n^2) [ns]" column should be roughly constant.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/reduction.hpp"
#include "tsp/held_karp.hpp"

using namespace lptsp;

int main() {
  std::printf("E2: Held-Karp scaling on reduced instances (Corollary 1)\n");
  Table table({"n", "span", "time[s]", "x prev", "t/(2^n n^2) [ns]"});

  double previous = 0;
  for (int n = 10; n <= 20; n += 2) {
    const Graph graph = lptsp::bench::workload_graph(n, 2, static_cast<std::uint64_t>(n));
    const auto reduced = reduce_to_path_tsp(graph, PVec::L21());

    const Timer timer;
    const PathSolution solution = held_karp_path(reduced.instance);
    const double seconds = timer.seconds();

    const double work = std::pow(2.0, n) * n * n;
    table.add_row({std::to_string(n), std::to_string(solution.cost), format_double(seconds, 4),
                   previous > 0 ? format_double(seconds / previous, 2) : "-",
                   format_double(seconds / work * 1e9, 3)});
    previous = seconds;
  }

  table.print("E2 — exact O(2^n n^2) algorithm (expect 'x prev' ~ 4.3, flat last column)");
  return 0;
}
