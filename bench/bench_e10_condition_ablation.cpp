/// E10 — why Theorem 2 needs pmax <= 2*pmin (metric-condition ablation).
///
/// For p violating the condition, the reduced instance is still defined
/// but Claim 1 fails: the naive Path-TSP value can strictly UNDERCUT the
/// true lambda_p (the prefix labeling stops being the per-order optimum's
/// twin). The table counts, over random in-scope graphs, how often the
/// naive reduction under-reports and by how much, next to condition-
/// satisfying controls where the gap must be identically zero.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "tsp/held_karp.hpp"

using namespace lptsp;

int main() {
  std::printf("E10: metric-condition ablation (Theorem 2's pmax <= 2*pmin)\n");
  Table table({"p", "condition", "samples", "under-reports", "max gap", "mean gap"});

  struct Case {
    PVec p;
    bool satisfies;
  };
  const std::vector<Case> cases{
      {PVec::L21(), true},   {PVec({2, 2}), true},  {PVec::Lpq(3, 2), true},
      {PVec({3, 1}), false}, {PVec({4, 1}), false}, {PVec({5, 2}), false},
      {PVec({6, 2, 1}), false},
  };

  for (const auto& test_case : cases) {
    const int samples = 60;
    int under = 0;
    Weight max_gap = 0;
    double gap_sum = 0;
    Rng rng(static_cast<std::uint64_t>(test_case.p.pmax() * 131 + test_case.p.pmin()));
    for (int trial = 0; trial < samples; ++trial) {
      const Graph graph = random_with_diameter_at_most(7, test_case.p.k(), 0.3, rng);
      const auto reduced = reduce_to_path_tsp_unchecked(graph, test_case.p);
      const Weight tsp_value = held_karp_path(reduced.instance).cost;
      const Weight true_lambda = min_span_over_all_orders(graph, test_case.p);
      const Weight gap = true_lambda - tsp_value;
      if (gap > 0) ++under;
      max_gap = std::max(max_gap, gap);
      gap_sum += static_cast<double>(gap);
    }
    table.add_row({lptsp::bench::pvec_name(test_case.p), test_case.satisfies ? "yes" : "NO",
                   std::to_string(samples), std::to_string(under), std::to_string(max_gap),
                   format_double(gap_sum / samples, 3)});
  }

  table.print("E10 — ablation (condition=yes rows must have zero gap; NO rows under-report)");
  return 0;
}
