/// S1 — batch labeling service throughput vs. cache-hit ratio.
///
/// The serving claim behind the service subsystem: on workloads where most
/// requests are isomorphic relabelings of recently seen instances (the
/// frequency-assignment pattern: one interference graph, many queries),
/// the sharded solve cache + canonical keying amortize the reduction and
/// engine work, multiplying requests/sec. Both columns process the SAME
/// request stream through the same solve_one pipeline, serially, so the
/// ratio isolates caching (batch parallelism is reported separately).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "graph/operations.hpp"
#include "service/batch_solver.hpp"
#include "util/fault.hpp"

using namespace lptsp;

namespace {

std::vector<SolveRequest> make_workload(int count, double repeat_ratio, int base_pool,
                                        std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  std::vector<Graph> bases;
  bases.reserve(static_cast<std::size_t>(base_pool));
  for (int b = 0; b < base_pool; ++b) {
    bases.push_back(random_with_diameter_at_most(60, 2, 0.15, rng));
  }
  std::vector<SolveRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SolveRequest request;
    if (rng.bernoulli(repeat_ratio)) {
      // A repeated instance arrives relabeled: same interference graph,
      // different vertex ids — exactly what the canonical key absorbs.
      const Graph& base = bases[rng.uniform_index(bases.size())];
      request.graph = relabel(base, rng.permutation(base.n()));
    } else {
      request.graph = random_with_diameter_at_most(60, 2, 0.15, rng);
    }
    request.p = PVec::L21();
    request.deadline = std::chrono::milliseconds{40};
    request.id = static_cast<std::uint64_t>(i);
    requests.push_back(std::move(request));
  }
  return requests;
}

struct RunStats {
  double seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t engine_solves = 0;
  std::vector<double> request_ns;  ///< per-request wall time, arrival order
};

RunStats run_serial(BatchSolver& solver, const std::vector<SolveRequest>& requests) {
  RunStats stats;
  stats.request_ns.reserve(requests.size());
  const Timer timer;
  for (const SolveRequest& request : requests) {
    const Timer per_request;
    const SolveResponse response = solver.solve_one(request);
    stats.request_ns.push_back(per_request.seconds() * 1e9);
    if (!response.ok()) {
      std::printf("UNEXPECTED failure: %s\n", response.message.c_str());
    }
  }
  stats.seconds = timer.seconds();
  stats.requests_per_sec = static_cast<double>(requests.size()) / stats.seconds;
  stats.engine_solves = solver.engine_solves();
  return stats;
}

BatchSolver::Options service_options(bool use_cache) {
  BatchSolver::Options options;
  options.use_cache = use_cache;
  options.request_workers = 4;
  options.engine_workers = 4;
  return options;
}

}  // namespace

int main() {
  std::printf("S1: batch labeling service throughput (n=60, diameter<=2, L(2,1))\n");
  lptsp::bench::BenchJson json("s1_service_throughput");

  Table table({"repeat%", "requests", "solves(nocache)", "solves(cache)", "req/s(nocache)",
               "req/s(cache)", "speedup"});
  constexpr int kRequests = 150;
  constexpr int kBasePool = 5;
  double speedup_at_90 = 0;
  for (const double ratio : {0.0, 0.5, 0.9}) {
    const std::vector<SolveRequest> requests =
        make_workload(kRequests, ratio, kBasePool, static_cast<std::uint64_t>(ratio * 100) + 3);

    BatchSolver uncached(service_options(false));
    const RunStats cold = run_serial(uncached, requests);

    BatchSolver cached(service_options(true));
    const RunStats warm = run_serial(cached, requests);

    const double speedup = warm.requests_per_sec / cold.requests_per_sec;
    if (ratio == 0.9) speedup_at_90 = speedup;
    table.add_row({format_double(ratio * 100, 0), std::to_string(kRequests),
                   std::to_string(cold.engine_solves), std::to_string(warm.engine_solves),
                   format_double(cold.requests_per_sec, 1), format_double(warm.requests_per_sec, 1),
                   format_ratio(speedup)});
    const long long pct = static_cast<long long>(ratio * 100);
    json.record_ratio("cache_speedup_at_repeat_pct", pct, speedup);
    json.record("req_ns_nocache_at_repeat_pct", pct, 1e9 / cold.requests_per_sec);
    json.record("req_ns_cache_at_repeat_pct", pct, 1e9 / warm.requests_per_sec);
    // Tail latency alongside the mean: the cache bimodalizes the
    // distribution (hits ~us, misses ~ms), which req/s alone hides.
    std::vector<double> warm_ns = warm.request_ns;
    json.record_latency_samples("req_latency_cache_at_repeat_pct", pct, warm_ns);
  }
  table.print("S1a — serial request stream, cache off vs on (same pipeline)");
  // The hot-path overhaul (bit-parallel APSP, fused reduction fill,
  // unchecked engine access) made the UNCACHED lane several times faster,
  // so the cache's relative payoff shrank; >= 3x at 90% repeats is the
  // recalibrated bar on the faster base.
  std::printf("speedup at 90%% repeats: %.1fx (acceptance: >= 3x)\n\n", speedup_at_90);

  // Batch mode on top: dedupe + request-pool parallelism over the same
  // 90%-repeat stream.
  {
    const std::vector<SolveRequest> requests = make_workload(kRequests, 0.9, kBasePool, 93);
    BatchSolver solver(service_options(true));
    const Timer timer;
    const std::vector<SolveResponse> responses = solver.solve_batch(requests);
    const double seconds = timer.seconds();
    int ok = 0;
    int cache_hits = 0;
    int coalesced = 0;
    for (const SolveResponse& response : responses) {
      if (response.ok()) ++ok;
      if (response.source == ResponseSource::ResultCache) ++cache_hits;
      if (response.source == ResponseSource::Coalesced) ++coalesced;
    }
    Table batch({"requests", "ok", "engine solves", "cache hits", "coalesced", "time[s]", "req/s"});
    batch.add_row({std::to_string(kRequests), std::to_string(ok),
                   std::to_string(solver.engine_solves()), std::to_string(cache_hits),
                   std::to_string(coalesced), format_double(seconds, 3),
                   format_double(kRequests / seconds, 1)});
    batch.print("S1b — solve_batch (dedupe + parallel) on the 90%-repeat stream");
    json.record("batch_req_ns_at_90pct", kRequests, seconds * 1e9 / kRequests);
  }

  // Restart scenario on top: fill the durable store, tear the service
  // down, reopen from disk, and replay the SAME stream. The claim the
  // store subsystem exists for: a restarted service keeps (or beats — the
  // first occurrence of each repeated base is now a disk hit too) its
  // warm hit ratio instead of starting cold.
  {
    const std::string store_path = "bench_s1_store.tmp";
    std::remove(store_path.c_str());
    const std::vector<SolveRequest> requests = make_workload(kRequests, 0.9, kBasePool, 77);
    BatchSolver::Options options = service_options(true);
    options.store_path = store_path;

    double pre_ratio = 0;
    {
      BatchSolver solver(options);
      run_serial(solver, requests);
      const CacheStats stats = solver.cache().stats();
      pre_ratio = static_cast<double>(stats.result_hits) /
                  static_cast<double>(stats.result_hits + stats.result_misses);
    }

    BatchSolver reopened(options);
    const SolveCache::WarmStats warm = reopened.warm_stats();
    run_serial(reopened, requests);
    const CacheStats stats = reopened.cache().stats();
    const double post_ratio = static_cast<double>(stats.result_hits) /
                              static_cast<double>(stats.result_hits + stats.result_misses);

    Table restart({"run", "hit-ratio", "loaded", "rejected", "load[ms]", "engine solves"});
    restart.add_row({"pre-restart", format_double(pre_ratio * 100, 1), "-", "-", "-", "-"});
    restart.add_row({"post-restart", format_double(post_ratio * 100, 1),
                     std::to_string(warm.loaded), std::to_string(warm.rejected),
                     format_double(warm.seconds * 1e3, 2),
                     std::to_string(reopened.engine_solves())});
    restart.print("S1c — durable store restart on the 90%-repeat stream");
    const bool pass = post_ratio >= pre_ratio - 0.05;
    std::printf("warm hit-ratio after restart: %.1f%% vs %.1f%% pre-restart "
                "(acceptance: within 5 points) %s\n\n",
                post_ratio * 100, pre_ratio * 100, pass ? "PASS" : "FAIL");
    json.record_ratio("warm_hit_ratio_after_restart_pct90", kRequests, post_ratio);
    json.record("store_warm_load_ns", static_cast<long long>(warm.loaded),
                warm.seconds * 1e9);
    std::remove(store_path.c_str());
  }
  // Observability overhead: the warm cache-hit path with tracing + stage
  // timing on (default) vs off. Hits are where per-request cost is at its
  // smallest and the RELATIVE cost of the steady_clock reads + span
  // bookkeeping is at its largest — the worst case for the "metrics are
  // effectively free" claim. Counters are recorded in both lanes (they
  // are always on); metrics=false removes only the clock reads and trace
  // allocation. Measurement is PAIRED: each solver is warmed once
  // (engine races land outside the measurement), then the two lanes
  // alternate request-by-request — with the order flipped every other
  // pair — so scheduler preemption and frequency drift hit both lanes
  // alike, and the comparison is medians over all per-request samples.
  // Whole-pass wall-clock best-of-N is hopeless here: a single noisy
  // 20ms pass swings the ratio by 10+ points.
  {
    const std::vector<SolveRequest> requests = make_workload(kRequests, 0.9, kBasePool, 55);
    const auto make_lane = [](bool metrics_on) {
      BatchSolver::Options options = service_options(true);
      options.metrics = metrics_on;
      return options;
    };
    BatchSolver solver_off(make_lane(false));
    BatchSolver solver_on(make_lane(true));
    run_serial(solver_off, requests);  // warm: every canonical key cached
    run_serial(solver_on, requests);
    constexpr int kReps = 8;
    std::vector<double> off_ns;
    std::vector<double> on_ns;
    off_ns.reserve(requests.size() * kReps);
    on_ns.reserve(requests.size() * kReps);
    const auto timed_hit = [](BatchSolver& solver, const SolveRequest& request,
                              std::vector<double>& sink) {
      const Timer per_request;
      (void)solver.solve_one(request);
      sink.push_back(per_request.seconds() * 1e9);
    };
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const bool off_first = ((static_cast<std::size_t>(rep) + i) & 1) == 0;
        timed_hit(off_first ? solver_off : solver_on, requests[i], off_first ? off_ns : on_ns);
        timed_hit(off_first ? solver_on : solver_off, requests[i], off_first ? on_ns : off_ns);
      }
    }
    const auto median_ns = [](std::vector<double>& samples) {
      std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
      return samples[samples.size() / 2];
    };
    const double rps_off = 1e9 / median_ns(off_ns);
    const double rps_on = 1e9 / median_ns(on_ns);
    const double retained = rps_on / rps_off;

    Table overhead({"lane", "req/s", "retained"});
    overhead.add_row({"metrics off", format_double(rps_off, 1), "1.00"});
    overhead.add_row({"metrics on", format_double(rps_on, 1), format_ratio(retained)});
    overhead.print("S1d — tracing/stage-timing overhead on the 90%-repeat stream");
    const bool pass = retained >= 0.97;
    std::printf("throughput retained with metrics on: %.1f%% (acceptance: >= 97%%) %s\n\n",
                retained * 100, pass ? "PASS" : "FAIL");
    json.record_ratio("metrics_on_throughput_retained", kRequests, retained);
  }

  // Profiling overhead, same paired-median protocol as S1d: the warm
  // cache-hit path with work-attribution profiling (key table + SLO
  // tracking) on vs off. Requests carry deadlines, so every warm hit
  // takes the profiled branch (cache hits under a deadline count as
  // full-slack SLO hits) — the honest worst case for the key-table
  // mutex and the SLO ring.
  {
    const std::vector<SolveRequest> requests = make_workload(kRequests, 0.9, kBasePool, 41);
    const auto make_lane = [](bool profile_on) {
      BatchSolver::Options options = service_options(true);
      options.profile = profile_on;
      return options;
    };
    BatchSolver solver_off(make_lane(false));
    BatchSolver solver_on(make_lane(true));
    run_serial(solver_off, requests);  // warm: every canonical key cached
    run_serial(solver_on, requests);
    constexpr int kReps = 8;
    std::vector<double> off_ns;
    std::vector<double> on_ns;
    off_ns.reserve(requests.size() * kReps);
    on_ns.reserve(requests.size() * kReps);
    const auto timed_hit = [](BatchSolver& solver, const SolveRequest& request,
                              std::vector<double>& sink) {
      const Timer per_request;
      (void)solver.solve_one(request);
      sink.push_back(per_request.seconds() * 1e9);
    };
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const bool off_first = ((static_cast<std::size_t>(rep) + i) & 1) == 0;
        timed_hit(off_first ? solver_off : solver_on, requests[i], off_first ? off_ns : on_ns);
        timed_hit(off_first ? solver_on : solver_off, requests[i], off_first ? on_ns : off_ns);
      }
    }
    const auto median_ns = [](std::vector<double>& samples) {
      std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
      return samples[samples.size() / 2];
    };
    const double rps_off = 1e9 / median_ns(off_ns);
    const double rps_on = 1e9 / median_ns(on_ns);
    const double retained = rps_on / rps_off;

    Table overhead({"lane", "req/s", "retained"});
    overhead.add_row({"profile off", format_double(rps_off, 1), "1.00"});
    overhead.add_row({"profile on", format_double(rps_on, 1), format_ratio(retained)});
    overhead.print("S1e — work-attribution profiling overhead on the 90%-repeat stream");
    const bool pass = retained >= 0.97;
    std::printf("throughput retained with profiling on: %.1f%% (acceptance: >= 97%%) %s\n\n",
                retained * 100, pass ? "PASS" : "FAIL");
    json.record_ratio("profile_on_throughput_retained", kRequests, retained);
    // Raw work context for the record above (note-skipped by the perf
    // differ): how much engine work the profiled lane actually counted.
    const obs::MetricsSnapshot snapshot = solver_on.metrics_registry().snapshot();
    json.record_work("engine_work_hk_cells", kRequests,
                     static_cast<double>(snapshot.counter_or("engine_work_hk_cells")));
    json.record_work("engine_work_lk_moves", kRequests,
                     static_cast<double>(snapshot.counter_or("engine_work_lk_moves")));
  }

  // Work-priced vs count-based admission under overload. A paced mixed
  // stream: 25% heavy requests (n=64, fresh graphs, 60ms deadline) and
  // 75% light requests (relabelings of prewarmed bases: cache hits,
  // microseconds each, 8ms deadline). Real n=64 races finish in a couple
  // of ms on this pipeline, so heaviness is injected the way the chaos
  // suite does it: an armed engine.stall burns 40ms of wall time on every
  // race (cache hits never race, so lights are untouched) — a
  // deterministic stand-in for pathological instances. Count-based
  // admission sees 12 queue slots and rejects lights and heavies alike
  // once the heavies have filled them; work-priced admission prices a
  // heavy at its predicted race cost and a light at its observed (tiny)
  // bucket latency, so the same overload rejects heavies first and keeps
  // accepting — and quickly serving — the cheap traffic the count gate
  // starves.
  {
    constexpr int kStream = 300;
    constexpr int kLightBases = 8;
    constexpr auto kHeavyDeadline = std::chrono::milliseconds{60};
    constexpr auto kLightDeadline = std::chrono::milliseconds{8};

    struct Arrival {
      SolveRequest request;
      bool heavy = false;
    };
    const auto make_stream = [&](std::uint64_t seed) {
      Rng rng(seed);
      std::vector<Graph> bases;
      for (int b = 0; b < kLightBases; ++b) {
        // n=24 sits above exact_max_n, so prewarm races are deadline-bounded
        // BranchBound/LK runs, not a multi-second Held-Karp.
        bases.push_back(random_with_diameter_at_most(24, 2, 0.25, rng));
      }
      std::vector<Arrival> stream;
      stream.reserve(kStream);
      for (int i = 0; i < kStream; ++i) {
        Arrival arrival;
        arrival.heavy = i % 4 == 3;
        if (arrival.heavy) {
          arrival.request.graph = random_with_diameter_at_most(64, 2, 0.15, rng);
          arrival.request.deadline = kHeavyDeadline;
        } else {
          const Graph& base = bases[rng.uniform_index(bases.size())];
          arrival.request.graph = relabel(base, rng.permutation(base.n()));
          arrival.request.deadline = kLightDeadline;
        }
        arrival.request.p = PVec::L21();
        arrival.request.id = static_cast<std::uint64_t>(i);
        stream.push_back(std::move(arrival));
      }
      return std::make_pair(std::move(bases), std::move(stream));
    };

    struct LaneResult {
      double light_accept = 0;  ///< accepted lights / total lights
      double light_p99_ms = 0;  ///< among accepted lights, submit-to-callback
      std::uint64_t work_priced_rejects = 0;
    };
    const auto run_lane = [&](std::uint64_t budget_work_ns) {
      BatchSolver::Options options;
      options.use_cache = true;
      options.request_workers = 2;
      options.engine_workers = 2;
      if (budget_work_ns > 0) {
        options.max_pending_work_ns = budget_work_ns;
      } else {
        options.max_pending_requests = 12;
      }
      BatchSolver solver(options);
      auto [bases, stream] = make_stream(617);
      // Prewarm: the light bases enter the cache AND the tuner's bucket
      // latency history, so the work lane prices lights from evidence.
      for (const Graph& base : bases) {
        SolveRequest warm;
        warm.graph = base;
        warm.p = PVec::L21();
        warm.deadline = kLightDeadline;
        (void)solver.solve_one(warm);
      }
      // Arm AFTER the prewarm: only the streamed heavies' races stall.
      fault::arm(FaultSite::EngineStall, 1.0, 29, /*max_fires=*/0, /*param=*/40);

      std::mutex mutex;
      std::vector<double> light_ms;
      int lights = 0;
      int lights_ok = 0;
      std::atomic<int> done{0};
      for (Arrival& arrival : stream) {
        const bool heavy = arrival.heavy;
        if (!heavy) ++lights;
        const auto submitted = std::chrono::steady_clock::now();
        solver.submit_async(
            std::move(arrival.request),
            [&, heavy, submitted](SolveResponse response) {
              if (!heavy && response.ok()) {
                const double elapsed_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - submitted)
                        .count();
                const std::lock_guard lock(mutex);
                ++lights_ok;
                light_ms.push_back(elapsed_ms);
              }
              done.fetch_add(1);
            });
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
      }
      while (done.load() < kStream) {
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
      }
      fault::disarm_all();

      LaneResult result;
      result.light_accept =
          lights == 0 ? 0 : static_cast<double>(lights_ok) / static_cast<double>(lights);
      if (!light_ms.empty()) {
        std::sort(light_ms.begin(), light_ms.end());
        result.light_p99_ms = light_ms[light_ms.size() * 99 / 100];
      }
      result.work_priced_rejects = solver.rejected_work_priced();
      return result;
    };

    const LaneResult count_lane = run_lane(0);
    const LaneResult work_lane = run_lane(std::uint64_t{150} * 1'000'000);  // 150ms budget

    Table admission({"lane", "light accept%", "light p99[ms]", "work rejects"});
    admission.add_row({"count (12 slots)", format_double(count_lane.light_accept * 100, 1),
                       format_double(count_lane.light_p99_ms, 2), "-"});
    admission.add_row({"work (150ms)", format_double(work_lane.light_accept * 100, 1),
                       format_double(work_lane.light_p99_ms, 2),
                       std::to_string(work_lane.work_priced_rejects)});
    admission.print("S1f — admission under overload: count-based vs work-priced");
    const bool pass = work_lane.light_accept >= count_lane.light_accept &&
                      (count_lane.light_p99_ms == 0 ||
                       work_lane.light_p99_ms <= count_lane.light_p99_ms);
    std::printf("light acceptance %.1f%% -> %.1f%%, light p99 %.2fms -> %.2fms "
                "(acceptance: work-priced no worse on both) %s\n\n",
                count_lane.light_accept * 100, work_lane.light_accept * 100,
                count_lane.light_p99_ms, work_lane.light_p99_ms, pass ? "PASS" : "FAIL");
    json.record_ratio("work_priced_light_accept", kStream, work_lane.light_accept);
    json.record_ratio("count_based_light_accept", kStream, count_lane.light_accept);
    json.record("work_priced_light_p99_ns", kStream, work_lane.light_p99_ms * 1e6);
    json.record("count_based_light_p99_ns", kStream, count_lane.light_p99_ms * 1e6);
  }

  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
