/// diameter2_paths — the Corollary-2 pipeline on a concrete graph, with
/// the paper's Figure-2 picture printed explicitly: the optimal vertex
/// order splits at its heavy steps (B_pi) into paths of the cheap graph
/// (A_pi runs), and the span obeys
///   lambda_{p,q} = (n-1)*min(p,q) + (max(p,q)-min(p,q)) * (s* - 1).
///
/// Run: ./diameter2_paths [--n=12] [--p=2] [--q=1] [--seed=3]

#include <cstdio>

#include "core/partition_paths.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace lptsp;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int n = args.get_int("n", 12);
  const int p = args.get_int("p", 2);
  const int q = args.get_int("q", 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  // Dense diameter-2 graph with a non-trivial partition (see E4/E5 notes).
  const Graph graph = complement(erdos_renyi(n, 2.0 / n, rng));
  if (!is_connected(graph) || diameter(graph) > 2) {
    std::printf("resampled workload was out of scope; rerun with another --seed\n");
    return 1;
  }
  std::printf("G: n=%d m=%d diameter=%d, L(%d,%d)\n\n", graph.n(), graph.m(), diameter(graph),
              p, q);

  const Diameter2Result result = lpq_span_diameter2(graph, p, q);
  std::printf("Corollary 2: lambda = (n-1)*%d + %d*(s*-1) with s* = %d  =>  span %lld\n",
              std::min(p, q), std::max(p, q) - std::min(p, q), result.partition_size,
              static_cast<long long>(result.span));
  std::printf("partition computed on: %s\n\n", result.used_complement ? "complement of G" : "G");

  // Figure-2 style printout: the witness paths of the cheap graph.
  const Graph cheap = result.used_complement ? complement(graph) : graph;
  const PathPartition partition = path_partition_exact(cheap);
  std::printf("cheap-graph path partition (Fig. 2's P_1 ... P_s):\n");
  for (std::size_t i = 0; i < partition.paths.size(); ++i) {
    std::printf("  P%zu:", i + 1);
    for (const int v : partition.paths[i]) std::printf(" %d", v);
    std::printf("\n");
  }

  // Cross-check against the TSP pipeline.
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const SolveResult tsp = solve_labeling(graph, PVec::Lpq(p, q), options);
  std::printf("\nTSP pipeline (Theorem 2 + Held-Karp): span %lld — %s\n",
              static_cast<long long>(tsp.span),
              tsp.span == result.span ? "matches Corollary 2" : "MISMATCH (bug!)");
  return 0;
}
