/// hardness_gadgets — a walking tour of the paper's two W[1]-hardness
/// constructions (Theorems 1 and 3), showing the gadgets on concrete
/// inputs and verifying the claimed equivalences with the library's exact
/// solvers.
///
/// Run: ./hardness_gadgets

#include <cstdio>

#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "ham/gadgets.hpp"
#include "ham/hamiltonian.hpp"

using namespace lptsp;

namespace {

void demo_theorem1(const Graph& graph, const char* name) {
  const HcToHpGadget gadget = hc_to_hp_gadget(graph, 0);
  const bool cycle = has_hamiltonian_cycle(graph);
  const bool path = has_hamiltonian_path(gadget.graph);
  std::printf("  %-18s HC(G)=%-3s  ->  gadget (n=%d: +twin v'=%d, +pendants w=%d w'=%d)  HP=%-3s  %s\n",
              name, cycle ? "yes" : "no", gadget.graph.n(), gadget.twin, gadget.pendant,
              gadget.pendant2, path ? "yes" : "no", cycle == path ? "[agrees]" : "[BUG]");
}

void demo_theorem3(const Graph& graph, const char* name) {
  const int n = graph.n();
  const Graph gadget = griggs_yeh_gadget(graph);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const Weight span = solve_labeling(gadget, PVec::L21(), options).span;
  const bool has_path = has_hamiltonian_path(graph);
  const bool threshold = span == n + 1;
  std::printf("  %-18s HP(G)=%-3s  ->  gadget diam=%d, lambda_{2,1}=%lld (n+1=%d)  %s\n", name,
              has_path ? "yes" : "no", diameter(gadget), static_cast<long long>(span), n + 1,
              threshold == has_path ? "[agrees]" : "[BUG]");
}

}  // namespace

int main() {
  std::printf("Theorem 1 — HAMILTONIAN CYCLE -> HAMILTONIAN PATH gadget\n");
  std::printf("(add a false twin of a pivot plus one pendant on each copy)\n\n");
  demo_theorem1(cycle_graph(6), "C6");
  demo_theorem1(complete_graph(5), "K5");
  demo_theorem1(path_graph(6), "P6");
  demo_theorem1(petersen_graph(), "Petersen");
  demo_theorem1(complete_bipartite(3, 3), "K3,3");
  demo_theorem1(complete_bipartite(3, 4), "K3,4");

  std::printf("\nTheorem 3 — Griggs-Yeh gadget: complement(G) + universal vertex\n");
  std::printf("(lambda_{2,1} = n+1 iff G has a Hamiltonian path; >= n+2 otherwise)\n\n");
  demo_theorem3(path_graph(7), "P7");
  demo_theorem3(cycle_graph(7), "C7");
  demo_theorem3(star_graph(6), "K1,5");
  demo_theorem3(petersen_graph(), "Petersen");
  demo_theorem3(complete_bipartite(2, 5), "K2,5");

  std::printf("\nBoth constructions preserve clique-width up to an additive constant,\n");
  std::printf("which is how the paper transfers W[1]-hardness to L(2,1)-LABELING on\n");
  std::printf("diameter-2 graphs (see DESIGN.md and Section IV of the paper).\n");
  return 0;
}
