/// Quickstart: solve L(2,1)-LABELING on the paper's Figure-1 graph via the
/// Theorem-2 reduction, exactly as a downstream user would.
///
///   1. build a graph;
///   2. pick the constraint vector p (here the classic L(2,1,1), since the
///      Figure-1 graph has diameter 3);
///   3. call solve_labeling with an engine;
///   4. read the verified labels.
///
/// Run: ./quickstart

#include <cstdio>

#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

using namespace lptsp;

int main() {
  // The 5-vertex example from the paper's Figure 1: a triangle {a,b,c}
  // with a pendant path c-d-e. Its diameter is 3, so p needs dimension 3.
  const Graph graph = fig1_graph();
  const PVec p({2, 1, 1});

  std::printf("Graph: n=%d m=%d diameter=%d\n", graph.n(), graph.m(), diameter(graph));
  std::printf("Constraint vector p = %s (pmax <= 2*pmin: %s)\n\n", p.to_string().c_str(),
              p.satisfies_reduction_condition() ? "yes" : "no");

  // Exact solve through the reduction (Corollary 1's Held-Karp engine).
  SolveOptions exact;
  exact.engine = Engine::HeldKarp;
  const SolveResult result = solve_labeling(graph, p, exact);

  std::printf("Optimal span lambda_p = %lld (solved in %.4fs, optimal=%s)\n",
              static_cast<long long>(result.span), result.seconds,
              result.optimal ? "yes" : "no");
  const char* names = "abcde";
  std::printf("Labels: ");
  for (int v = 0; v < graph.n(); ++v) {
    std::printf("%c=%lld ", names[v], static_cast<long long>(result.labeling.labels[v]));
  }
  std::printf("\nHamiltonian path behind the labels: ");
  for (const int v : result.order) std::printf("%c ", names[v]);
  std::printf("\n\n");

  // The same instance through a heuristic engine, as one would for large
  // graphs where 2^n is hopeless.
  SolveOptions heuristic;
  heuristic.engine = Engine::ChainedLK;
  const SolveResult lk = solve_labeling(graph, p, heuristic);
  std::printf("Chained-LK engine found span %lld (gap to optimum: %lld)\n",
              static_cast<long long>(lk.span), static_cast<long long>(lk.span - result.span));
  return 0;
}
