/// labeling_explorer — a small CLI around the whole library, in the spirit
/// of the Concorde/LKH command-line tools the paper points to.
///
/// Usage:
///   ./labeling_explorer --graph=<file>            # edge-list file, or
///   ./labeling_explorer --gen=diam2 --n=30        # generated workload
///   options:
///     --p=2,1            constraint vector (comma separated)
///     --engine=chained-lk   one of: brute-force held-karp branch-bound
///                           christofides double-mst nearest-neighbor
///                           nn+2opt greedy-edge lk-style chained-lk
///                           annealing
///     --seed=1           randomized engines / generators
///     --tsplib=<file>    also export the reduced instance in TSPLIB format
///     --gen=<family>     diam2 | diam3 | geometric | cograph | split

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/solvers.hpp"
#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace lptsp;

namespace {

PVec parse_pvec(const std::string& text) {
  std::vector<int> entries;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) entries.push_back(std::stoi(token));
  return PVec(entries);
}

Engine parse_engine(const std::string& name) {
  const std::vector<Engine> engines{
      Engine::BruteForce,      Engine::HeldKarp,           Engine::Christofides,
      Engine::DoubleMst,       Engine::NearestNeighbor,    Engine::NearestNeighbor2Opt,
      Engine::GreedyEdge,      Engine::LinKernighanStyle,  Engine::ChainedLK,
      Engine::SimulatedAnnealing, Engine::BranchBound};
  for (const Engine engine : engines) {
    if (engine_name(engine) == name) return engine;
  }
  throw precondition_error("unknown engine: " + name);
}

Graph make_graph(const CliArgs& args) {
  if (args.has("graph")) return read_edge_list_file(args.get("graph", ""));
  const std::string family = args.get("gen", "diam2");
  const int n = args.get_int("n", 20);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  if (family == "diam2") return random_with_diameter_at_most(n, 2, 0.2, rng);
  if (family == "diam3") return random_with_diameter_at_most(n, 3, 0.1, rng);
  if (family == "geometric") return random_geometric_small_diameter(n, 6.0, 2, rng);
  if (family == "cograph") return random_cograph(n, rng);
  if (family == "split") return random_split_graph(n, 0.4, 0.3, rng);
  throw precondition_error("unknown generator family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    const Graph graph = make_graph(args);
    const PVec p = parse_pvec(args.get("p", "2,1"));

    std::printf("graph: n=%d m=%d connected=%s diameter=%d\n", graph.n(), graph.m(),
                is_connected(graph) ? "yes" : "no",
                is_connected(graph) ? diameter(graph) : -1);
    std::printf("p = %s, k = %d, condition pmax<=2pmin: %s\n", p.to_string().c_str(), p.k(),
                p.satisfies_reduction_condition() ? "yes" : "no");

    if (args.has("tsplib")) {
      const auto reduced = reduce_to_path_tsp(graph, p);
      std::ofstream out(args.get("tsplib", "reduced.tsp"));
      reduced.instance.write_tsplib(out, "lptsp_reduced");
      std::printf("reduced instance exported to %s\n", args.get("tsplib", "reduced.tsp").c_str());
    }

    SolveOptions options;
    options.engine = parse_engine(args.get("engine", "chained-lk"));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const SolveResult result = solve_labeling(graph, p, options);

    std::printf("\nengine: %s\nspan:   %lld%s\ntime:   %.4fs\n",
                engine_name(options.engine).c_str(), static_cast<long long>(result.span),
                result.optimal ? " (certified optimal)" : "", result.seconds);
    std::printf("labels:");
    for (int v = 0; v < graph.n(); ++v) {
      std::printf(" %lld", static_cast<long long>(result.labeling.labels[v]));
    }
    std::printf("\n");

    for (const std::string& key : args.unused_keys()) {
      std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
