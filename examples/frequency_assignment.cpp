/// Frequency assignment — the application that motivated L(2,1)-labeling
/// (Hale 1980, Roberts 1991, and the paper's introduction).
///
/// A radio network is modeled as a geometric graph: transmitters within
/// interference range are adjacent ("very close" — frequencies must differ
/// by >= 2), and pairs at hop distance 2 are "close" (frequencies must
/// differ). We assign frequencies by solving L(2,1) through the TSP
/// reduction with several engines and compare against the classic
/// first-fit heuristic from the frequency-assignment literature.
///
/// Run: ./frequency_assignment [--n=40] [--seed=7]

#include <cstdio>

#include "core/greedy_labeling.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "tsp/lower_bounds.hpp"
#include "core/reduction.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "util/table.hpp"

using namespace lptsp;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int n = args.get_int("n", 40);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  Rng rng(seed);
  // Transmitters on the unit square; the diameter cap models a backbone
  // link that keeps the network within 2 hops (the paper's target class).
  const Graph network = random_geometric_small_diameter(n, 6.0, 2, rng);
  std::printf("Radio network: %d transmitters, %d interference pairs, diameter %d\n\n",
              network.n(), network.m(), diameter(network));

  const PVec p = PVec::L21();
  const Weight lower = path_lower_bound(reduce_to_path_tsp(network, p).instance);

  Table table({"method", "max frequency (span)", "vs lower bound", "time[s]"});

  // Classic first-fit baseline (no TSP).
  {
    const Timer timer;
    const Labeling greedy = greedy_first_fit(network, p, GreedyOrder::DegreeDescending);
    table.add_row({"first-fit (classic)", std::to_string(greedy.span()),
                   format_ratio(static_cast<double>(greedy.span()) / static_cast<double>(lower)),
                   format_double(timer.seconds(), 4)});
  }

  // TSP engines through the reduction.
  for (const Engine engine : {Engine::NearestNeighbor2Opt, Engine::LinKernighanStyle,
                              Engine::ChainedLK, Engine::Christofides}) {
    SolveOptions options;
    options.engine = engine;
    options.seed = seed;
    const Timer timer;
    const SolveResult result = solve_labeling(network, p, options);
    table.add_row({engine_name(engine), std::to_string(result.span),
                   format_ratio(static_cast<double>(result.span) / static_cast<double>(lower)),
                   format_double(timer.seconds(), 4)});
  }

  table.print("frequency assignment on " + std::to_string(n) + " transmitters (L(2,1))");

  // Show a concrete assignment from the best engine.
  SolveOptions best;
  best.engine = Engine::ChainedLK;
  best.seed = seed;
  const SolveResult assignment = solve_labeling(network, p, best);
  std::printf("\nSample assignment (transmitter -> frequency), first 10 shown:\n");
  for (int v = 0; v < std::min(10, network.n()); ++v) {
    std::printf("  tx%-3d -> f%lld\n", v, static_cast<long long>(assignment.labeling.labels[v]));
  }
  std::printf("Assignment verified against all interference constraints: %s\n",
              is_valid_labeling(network, p, assignment.labeling) ? "OK" : "VIOLATION");
  return 0;
}
