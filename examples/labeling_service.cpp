/// Batch labeling service demo: the frequency-assignment workload the
/// paper motivates, served through the batch solver instead of one-shot
/// solve_labeling calls.
///
/// One interference graph (radio transmitters within hearing distance) is
/// queried under several constraint vectors p, and the same topology keeps
/// arriving relabeled as clients renumber their transmitters. The service
/// canonicalizes each request, dedupes isomorphic repeats, races exact vs
/// heuristic engines under a deadline, and serves repeats from the solve
/// cache.
///
/// Run: ./labeling_service

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "service/batch_solver.hpp"
#include "util/rng.hpp"

using namespace lptsp;

int main() {
  Rng rng(2026);
  const Graph network = random_geometric_small_diameter(40, 10.0, 2, rng);
  std::printf("Interference graph: n=%d m=%d (diameter <= 2)\n\n", network.n(), network.m());

  BatchSolver::Options options;
  options.portfolio.deadline = std::chrono::milliseconds{100};
  BatchSolver solver(options);

  // A batch mixing: the same network under three p-vectors, plus the
  // L(2,1) query repeated 5x under client-side renumberings.
  std::vector<SolveRequest> requests;
  for (const PVec& p : {PVec::L21(), PVec({2, 2}), PVec({1, 1})}) {
    SolveRequest request;
    request.graph = network;
    request.p = p;
    request.id = requests.size();
    requests.push_back(std::move(request));
  }
  for (int repeat = 0; repeat < 5; ++repeat) {
    SolveRequest request;
    request.graph = relabel(network, rng.permutation(network.n()));
    request.p = PVec::L21();
    request.id = requests.size();
    requests.push_back(std::move(request));
  }

  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  std::printf("%-4s %-8s %-6s %-8s %-12s %-10s %s\n", "id", "p", "span", "optimal", "engine",
              "source", "reduction-cached");
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const SolveResponse& r = responses[i];
    if (!r.ok()) {
      std::printf("%-4llu rejected: %s\n", static_cast<unsigned long long>(r.id),
                  r.message.c_str());
      continue;
    }
    std::printf("%-4llu %-8s %-6lld %-8s %-12s %-10s %s\n",
                static_cast<unsigned long long>(r.id),
                requests[i].p.to_string().c_str(), static_cast<long long>(r.span),
                r.optimal ? "yes" : "no", engine_name(r.engine).c_str(),
                response_source_name(r.source).c_str(), r.reduction_cached ? "yes" : "no");
  }

  // The same repeated query arriving later (streaming path): pure cache.
  SolveRequest late;
  late.graph = relabel(network, rng.permutation(network.n()));
  late.id = 99;
  const SolveResponse served = solver.submit(std::move(late)).get();
  std::printf("\nlate request 99: span=%lld source=%s\n", static_cast<long long>(served.span),
              response_source_name(served.source).c_str());

  const CacheStats stats = solver.cache().stats();
  std::printf("\ncache: result %llu hits / %llu misses, reduction %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.result_hits),
              static_cast<unsigned long long>(stats.result_misses),
              static_cast<unsigned long long>(stats.reduction_hits),
              static_cast<unsigned long long>(stats.reduction_misses));
  std::printf("engine solves: %llu for %zu requests\n",
              static_cast<unsigned long long>(solver.engine_solves()), requests.size() + 1);
  std::printf("learned preference for n=%d: %s\n", network.n(),
              engine_name(solver.portfolio().preferred_engine(network.n())).c_str());
  return 0;
}
