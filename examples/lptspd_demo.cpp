/// lptspd demo: the batch labeling service behind its socket front-end,
/// exercised end-to-end inside one process.
///
/// A LabelingServer is started on an ephemeral loopback port with a
/// deliberately small per-connection in-flight budget, and a
/// LabelingClient talks to it over real TCP: handshake, a pipelined burst
/// of frequency-assignment requests (the same interference graph arriving
/// relabeled, which the canonical solve cache absorbs), one request per
/// constraint vector, an invalid request answered with a typed status,
/// and an over-limit burst answered with typed RejectedOverload
/// backpressure responses — all without the server thread ever blocking
/// on a solve.
///
/// Run: ./lptspd_demo

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"

using namespace lptsp;

int main() {
  Rng rng(2026);
  const Graph network = random_geometric_small_diameter(40, 10.0, 2, rng);
  std::printf("Interference graph: n=%d m=%d (diameter <= 2)\n\n", network.n(), network.m());

  BatchSolver::Options solver_options;
  solver_options.portfolio.deadline = std::chrono::milliseconds{100};
  BatchSolver solver(solver_options);

  LabelingServer::Options server_options;
  server_options.max_inflight_per_connection = 4;
  LabelingServer server(solver, server_options);
  server.start();
  std::printf("lptspd listening on 127.0.0.1:%u\n", server.port());

  LabelingClient client;
  client.connect("127.0.0.1", server.port());
  std::printf("client connected, protocol v%u handshake ok\n\n", kWireVersion);

  // --- Pipelined relabeled repeats: submit all, then drain out-of-order.
  std::printf("Pipelined L(2,1) burst (same topology, renumbered by each client):\n");
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> burst_ids;
  for (int repeat = 0; repeat < 4; ++repeat) {
    SolveRequest request;
    request.graph = relabel(network, rng.permutation(network.n()));
    request.p = PVec::L21();
    request.id = next_id++;
    burst_ids.push_back(request.id);
    client.submit(request);
  }
  for (const std::uint64_t id : burst_ids) {
    const SolveResponse response = client.wait(id);
    std::printf("  id=%llu %-8s span=%lld source=%s engine=%s\n",
                static_cast<unsigned long long>(response.id), status_name(response.status).c_str(),
                static_cast<long long>(response.span),
                response_source_name(response.source).c_str(),
                engine_name(response.engine).c_str());
  }

  // --- One request per constraint vector.
  std::printf("\nOther constraint vectors over the same wire connection:\n");
  for (const PVec& p : {PVec({2, 2}), PVec({1, 1}), PVec({3, 1})}) {
    SolveRequest request;
    request.graph = network;
    request.p = p;
    request.id = next_id++;
    const SolveResponse response = client.solve(request);
    std::printf("  p=%-8s %-26s span=%lld\n", p.to_string().c_str(),
                (response.ok() ? status_name(response.status)
                               : status_name(response.status) + ": " + response.message)
                    .c_str(),
                static_cast<long long>(response.span));
  }

  // --- Invalid request: typed status, connection stays usable.
  {
    SolveRequest request;
    request.graph = Graph(6);  // edgeless: disconnected
    request.p = PVec::L21();
    request.id = next_id++;
    const SolveResponse response = client.solve(request);
    std::printf("\nDisconnected graph is answered, not dropped: %s (%s)\n",
                status_name(response.status).c_str(), response.message.c_str());
  }

  // --- Admission control: a burst beyond the per-connection in-flight
  // budget comes back as typed RejectedOverload responses immediately.
  std::printf("\nBackpressure burst (server allows 4 in flight per connection):\n");
  std::vector<std::uint64_t> flood_ids;
  for (int i = 0; i < 12; ++i) {
    SolveRequest request;
    request.graph = relabel(network, rng.permutation(network.n()));
    request.p = PVec({2, 1});
    request.id = next_id++;
    flood_ids.push_back(request.id);
    client.submit(request);
  }
  int served = 0;
  int rejected = 0;
  for (const std::uint64_t id : flood_ids) {
    const SolveResponse response = client.wait(id);
    if (response.status == SolveStatus::RejectedOverload) {
      ++rejected;
    } else {
      ++served;
    }
  }
  std::printf("  served=%d rejected-overload=%d (rejections are immediate, typed, harmless)\n",
              served, rejected);

  client.shutdown();
  server.stop();

  const LabelingServer::Counters counters = server.counters();
  std::printf("\nServer counters: accepted=%llu frames=%llu submitted=%llu responses=%llu "
              "rejected(inflight)=%llu protocol-errors=%llu\n",
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.frames_received),
              static_cast<unsigned long long>(counters.requests_submitted),
              static_cast<unsigned long long>(counters.responses_sent),
              static_cast<unsigned long long>(counters.rejected_inflight),
              static_cast<unsigned long long>(counters.protocol_errors));
  std::printf("Solver: engine_solves=%llu cache_size=%zu pending=%zu\n",
              static_cast<unsigned long long>(solver.engine_solves()), solver.cache().size(),
              solver.pending_requests());
  return 0;
}
