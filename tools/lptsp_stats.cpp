/// lptsp_stats — scrape a running lptspd's metrics snapshot.
///
/// Connects over the same wire protocol the solve clients use, optionally
/// drives a small solve workload first (so a freshly started daemon has
/// nonzero counters to show), then sends a StatsRequest and prints the
/// server-rendered payload.
///
///   lptsp_stats [--host=127.0.0.1] [--port=4780]
///               [--json | --prom | --traces | --journal | --profile]
///               [--since=SEQ]                     (--journal: events after SEQ)
///               [--drive=N] [--seed=S]            (send N requests first)
///               [--client-traces=PATH]            (dump the driver's trace ring)
///               [--watch[=SECONDS]] [--watch-count=N]
///               [--timeout-ms=5000]               (connect + scrape budget)
///
/// Driven requests carry trace context (v4 servers adopt the client's
/// trace id, so the server's --traces ring and the client ring written by
/// --client-traces hold one joined trace per request). --journal scrapes
/// the structured event journal (v4+); --since=SEQ fetches only events
/// with seq > SEQ, so a poller can resume from its last cursor instead of
/// re-reading the ring. --profile scrapes the work-attribution profile
/// (per-engine work counters and rates, top-K hot canonical keys, deadline
/// SLO summary, and the "tuner" block — per-bucket decayed win scores,
/// trim state, effort percent, and predicted request cost) as JSON (v4+). --watch turns the tool into a live
/// rate view: it scrapes the Prometheus exposition every SECONDS (default
/// 2), diffs consecutive snapshots with SnapshotDelta, and redraws a
/// top-style screen of per-second rates and interval percentiles;
/// --watch-count=N exits 0 after N redraws (0 = until killed).
///
/// Exit codes: 0 scrape succeeded, 1 transport/protocol failure, 2 bad
/// usage. The scrape requires a v2 server (v4 for --journal/--profile); older
/// servers answer the stats frame with an Error, reported here as a
/// refusal. A dead, absent, or wedged daemon produces a one-line
/// diagnostic and exit 1 within --timeout-ms — never a hang (0 disables
/// the timeout).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "obs/delta.hpp"
#include "obs/metrics.hpp"
#include "service/request.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace lptsp;

/// Small L(2,1) instances mirroring the serving benchmark's repeat-heavy
/// pattern: a few base graphs, most requests isomorphic relabelings.
std::vector<SolveRequest> make_drive_workload(int count, std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  std::vector<Graph> bases;
  for (int b = 0; b < 3; ++b) {
    bases.push_back(random_with_diameter_at_most(24, 2, 0.2, rng));
  }
  std::vector<SolveRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SolveRequest request;
    if (rng.bernoulli(0.7)) {
      const Graph& base = bases[rng.uniform_index(bases.size())];
      request.graph = relabel(base, rng.permutation(base.n()));
    } else {
      request.graph = random_with_diameter_at_most(24, 2, 0.2, rng);
    }
    request.p = PVec::L21();
    request.deadline = std::chrono::milliseconds{200};
    request.id = static_cast<std::uint64_t>(i + 1);
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Write `payload` to `path` ("-" = stdout). Plain write is fine here:
/// the file is produced once at exit, not concurrently scraped.
bool write_text_file(const std::string& path, const std::string& payload) {
  if (path == "-") {
    std::fputs(payload.c_str(), stdout);
    if (!payload.empty() && payload.back() != '\n') std::fputc('\n', stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
  return (std::fclose(file) == 0) && wrote;
}

/// The --watch loop: scrape the Prometheus exposition every `interval`
/// seconds, diff consecutive snapshots, redraw. Returns the exit code.
int run_watch(LabelingClient& client, double interval_s, int max_redraws) {
  std::optional<obs::MetricsSnapshot> previous;
  int redraws = 0;
  while (true) {
    const std::string exposition = client.stats(StatsFormat::Prometheus);
    std::optional<obs::MetricsSnapshot> current = obs::parse_prometheus(exposition);
    if (!current) {
      std::fprintf(stderr, "lptsp_stats: --watch could not parse the Prometheus scrape\n");
      return 1;
    }
    if (previous) {
      const obs::SnapshotDelta delta = obs::SnapshotDelta::between(*previous, *current);
      // Home the cursor and clear below (top-style redraw) rather than
      // clearing the whole screen, so the view never visibly flickers.
      std::fputs("\x1b[H\x1b[J", stdout);
      std::printf("lptsp_stats --watch: %.3gs interval\n\n%s", interval_s,
                  delta.to_text().c_str());
      std::fflush(stdout);
      if (max_redraws > 0 && ++redraws >= max_redraws) return 0;
    }
    previous = std::move(current);
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}

}  // namespace

int main(int argc, char** argv) {
  lptsp::CliArgs args(argc, argv);
  const std::string host = args.get("host", "127.0.0.1");
  const int port = args.get_int("port", 4780);
  const int drive = args.get_int("drive", 0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int timeout_ms = args.get_int("timeout-ms", 5000);
  const std::string client_traces = args.get("client-traces", "");
  const bool watch = args.has("watch");
  const double watch_interval = args.get_double("watch", 2.0);
  const int watch_count = args.get_int("watch-count", 0);

  StatsFormat format = StatsFormat::Text;
  int format_flags = 0;
  if (args.has("json")) {
    format = StatsFormat::Json;
    ++format_flags;
  }
  if (args.has("prom")) {
    format = StatsFormat::Prometheus;
    ++format_flags;
  }
  if (args.has("traces")) {
    format = StatsFormat::Traces;
    ++format_flags;
  }
  if (args.has("journal")) {
    format = StatsFormat::Journal;
    ++format_flags;
  }
  if (args.has("profile")) {
    format = StatsFormat::Profile;
    ++format_flags;
  }
  if (format_flags > 1) {
    std::fprintf(stderr,
                 "lptsp_stats: pick at most one of --json / --prom / --traces / --journal / "
                 "--profile\n");
    return 2;
  }
  const int since_raw = args.get_int("since", 0);
  if (since_raw != 0 && format != StatsFormat::Journal) {
    std::fprintf(stderr, "lptsp_stats: --since only applies to --journal\n");
    return 2;
  }
  if (since_raw < 0) {
    std::fprintf(stderr, "lptsp_stats: --since must be >= 0\n");
    return 2;
  }
  const auto since = static_cast<std::uint64_t>(since_raw);
  if (watch && format_flags > 0) {
    std::fprintf(stderr, "lptsp_stats: --watch scrapes Prometheus; drop the format flag\n");
    return 2;
  }
  if (watch && !(watch_interval > 0.0)) {
    std::fprintf(stderr, "lptsp_stats: --watch interval must be positive\n");
    return 2;
  }
  const std::vector<std::string> unused = args.unused_keys();
  if (!unused.empty()) {
    std::fprintf(stderr, "lptsp_stats: unknown flag --%s\n", unused.front().c_str());
    std::fprintf(stderr,
                 "usage: lptsp_stats [--host=H] [--port=P] "
                 "[--json|--prom|--traces|--journal|--profile] [--since=SEQ] "
                 "[--drive=N] [--seed=S] [--client-traces=PATH] [--watch[=S]] [--watch-count=N] "
                 "[--timeout-ms=T]\n");
    return 2;
  }

  try {
    ClientOptions client_options;
    client_options.connect_timeout = std::chrono::milliseconds{timeout_ms};
    client_options.request_timeout = std::chrono::milliseconds{timeout_ms};
    // Driven requests carry trace context so a v4 server records the same
    // trace ids this client's ring holds — one joined trace per request.
    client_options.trace = drive > 0;
    client_options.trace_capacity = drive > 0 ? static_cast<std::size_t>(drive) : 64;
    lptsp::LabelingClient client(client_options);
    client.connect(host, static_cast<std::uint16_t>(port));

    if (drive > 0) {
      const std::vector<SolveRequest> workload = make_drive_workload(drive, seed);
      int ok = 0;
      for (const SolveRequest& request : workload) {
        if (client.solve_retry(request).ok()) ++ok;
      }
      std::fprintf(stderr, "lptsp_stats: drove %d requests (%d ok, wire v%u) against %s:%d\n",
                   drive, ok, client.negotiated_version(), host.c_str(), port);
      if (!client_traces.empty() &&
          !write_text_file(client_traces, client.traces().dump_json())) {
        std::fprintf(stderr, "lptsp_stats: cannot write --client-traces %s\n",
                     client_traces.c_str());
        return 1;
      }
    }

    if (watch) return run_watch(client, watch_interval, watch_count);

    const std::string payload = client.stats(format, since);
    std::fputs(payload.c_str(), stdout);
    if (!payload.empty() && payload.back() != '\n') std::fputc('\n', stdout);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lptsp_stats: %s\n", error.what());
    return 1;
  }
}
