/// lptsp_stats — scrape a running lptspd's metrics snapshot.
///
/// Connects over the same wire protocol the solve clients use, optionally
/// drives a small solve workload first (so a freshly started daemon has
/// nonzero counters to show), then sends a StatsRequest and prints the
/// server-rendered payload.
///
///   lptsp_stats [--host=127.0.0.1] [--port=4780]
///               [--json | --prom | --traces]      (default: aligned text)
///               [--drive=N] [--seed=S]            (send N requests first)
///               [--timeout-ms=5000]               (connect + scrape budget)
///
/// Exit codes: 0 scrape succeeded, 1 transport/protocol failure, 2 bad
/// usage. The scrape requires a v2 server; v1 servers answer the stats
/// frame with an Error, reported here as a refusal. A dead, absent, or
/// wedged daemon produces a one-line diagnostic and exit 1 within
/// --timeout-ms — never a hang (0 disables the timeout).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "service/request.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace lptsp;

/// Small L(2,1) instances mirroring the serving benchmark's repeat-heavy
/// pattern: a few base graphs, most requests isomorphic relabelings.
std::vector<SolveRequest> make_drive_workload(int count, std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  std::vector<Graph> bases;
  for (int b = 0; b < 3; ++b) {
    bases.push_back(random_with_diameter_at_most(24, 2, 0.2, rng));
  }
  std::vector<SolveRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SolveRequest request;
    if (rng.bernoulli(0.7)) {
      const Graph& base = bases[rng.uniform_index(bases.size())];
      request.graph = relabel(base, rng.permutation(base.n()));
    } else {
      request.graph = random_with_diameter_at_most(24, 2, 0.2, rng);
    }
    request.p = PVec::L21();
    request.deadline = std::chrono::milliseconds{200};
    request.id = static_cast<std::uint64_t>(i + 1);
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  lptsp::CliArgs args(argc, argv);
  const std::string host = args.get("host", "127.0.0.1");
  const int port = args.get_int("port", 4780);
  const int drive = args.get_int("drive", 0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int timeout_ms = args.get_int("timeout-ms", 5000);

  StatsFormat format = StatsFormat::Text;
  int format_flags = 0;
  if (args.has("json")) {
    format = StatsFormat::Json;
    ++format_flags;
  }
  if (args.has("prom")) {
    format = StatsFormat::Prometheus;
    ++format_flags;
  }
  if (args.has("traces")) {
    format = StatsFormat::Traces;
    ++format_flags;
  }
  if (format_flags > 1) {
    std::fprintf(stderr, "lptsp_stats: pick at most one of --json / --prom / --traces\n");
    return 2;
  }
  const std::vector<std::string> unused = args.unused_keys();
  if (!unused.empty()) {
    std::fprintf(stderr, "lptsp_stats: unknown flag --%s\n", unused.front().c_str());
    std::fprintf(stderr,
                 "usage: lptsp_stats [--host=H] [--port=P] [--json|--prom|--traces] "
                 "[--drive=N] [--seed=S] [--timeout-ms=T]\n");
    return 2;
  }

  try {
    ClientOptions client_options;
    client_options.connect_timeout = std::chrono::milliseconds{timeout_ms};
    client_options.request_timeout = std::chrono::milliseconds{timeout_ms};
    lptsp::LabelingClient client(client_options);
    client.connect(host, static_cast<std::uint16_t>(port));

    if (drive > 0) {
      const std::vector<SolveRequest> workload = make_drive_workload(drive, seed);
      int ok = 0;
      for (const SolveRequest& request : workload) {
        if (client.solve_retry(request).ok()) ++ok;
      }
      std::fprintf(stderr, "lptsp_stats: drove %d requests (%d ok) against %s:%d\n", drive, ok,
                   host.c_str(), port);
    }

    const std::string payload = client.stats(format);
    std::fputs(payload.c_str(), stdout);
    if (!payload.empty() && payload.back() != '\n') std::fputc('\n', stdout);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lptsp_stats: %s\n", error.what());
    return 1;
  }
}
