/// lptspd — the L(p)-labeling service daemon.
///
/// Binds the batch labeling service (canonical solve cache, engine
/// portfolio, admission control) to a TCP port speaking the lptspd binary
/// wire protocol (src/net/wire.hpp). Clients are LabelingClient or
/// anything that writes the documented frames.
///
/// Usage:
///   lptspd [--bind=127.0.0.1] [--port=4780]
///          [--deadline-ms=250] [--cache-capacity=4096] [--no-cache]
///          [--cache-file=PATH | --state-dir=DIR] [--cache-sync]
///          [--request-workers=0] [--engine-workers=0]
///          [--max-pending=256] [--max-connections=64]
///          [--max-inflight=64] [--seed=1] [--stats-every=10]
///          [--stats-json=PATH] [--journal-json=PATH]
///          [--journal-cap=N] [--profile-json=PATH]
///          [--trace-keep=64] [--trace-slow-ms=0]
///          [--store-degraded-after=3] [--store-probe-ms=1000]
///          [--brownout-heuristic-pending=N] [--brownout-reject-pending=N]
///          [--brownout-retry-after-ms=250]
///          [--no-learn] [--learn-reprobe=16] [--learn-decay-every=64]
///          [--learn-effort-every=32] [--admission-work-budget=MS]
///
/// Worker counts of 0 mean hardware concurrency. --max-pending is the
/// service-wide admission bound (RejectedOverload beyond it); 0 disables
/// it. --cache-capacity bounds EACH of the two cache namespaces (solve
/// results and reductions) separately, so peak residency is up to twice
/// the flag's value. --stats-every=N prints one key=value metrics line
/// every N seconds (0 = quiet). SIGINT/SIGTERM shut down cleanly.
///
/// Observability: every metric is scrapeable live over the wire
/// (lptsp_stats, or any v2 client sending a StatsRequest frame).
/// --stats-json=PATH additionally writes the full JSON snapshot to PATH
/// atomically (temp file + rename) on every stats tick and at shutdown,
/// for file-based collectors. --trace-keep bounds the in-memory ring of
/// recent request traces; --trace-slow-ms keeps only requests slower than
/// the threshold (0 keeps every request, newest win once full).
/// The structured event journal (brownout rung changes, store
/// degrade/heal, wire faults, fault-injection fires) is dumped as JSON —
/// atomically, like the snapshot — to --journal-json=PATH (default:
/// <stats-json>.journal when --stats-json is set) on SIGQUIT and on
/// clean shutdown, so a postmortem always has the incident timeline.
/// --journal-cap=N resizes the journal ring (default 256 events); the
/// sequence numbering is unaffected, so lptsp_stats --since cursors keep
/// working across a resize. --profile-json=PATH dumps the work-attribution
/// profile (per-engine work counters, top-K hot keys, deadline SLO
/// summary — the same JSON lptsp_stats --profile scrapes) atomically on
/// SIGQUIT and on clean shutdown.
///
/// Persistence: --cache-file points at the durable store (created if
/// absent); --state-dir is the directory flavor (uses DIR/lptspd.store,
/// creating DIR). A restarted daemon reloads, re-verifies, and serves its
/// previously solved results without re-running an engine, and resumes the
/// portfolio's engine-choice learning where it stopped. --cache-sync adds
/// an fsync per persisted result (default: OS page-cache durability).
///
/// Degradation ladder: --store-degraded-after=K flips the durable store
/// into read-only degraded mode after K consecutive write failures (0
/// disables; serving continues from memory, the store_degraded gauge goes
/// to 1, and a reopen/heal is probed every --store-probe-ms). The
/// brownout rungs watch the pending-request gauge:
/// --brownout-heuristic-pending forces heuristic-only solving past its
/// threshold and --brownout-reject-pending rejects new requests with
/// RejectedOverload + a --brownout-retry-after-ms hint; both release with
/// hysteresis at half their threshold. When --max-pending is set, the
/// rungs default to 1/2 and 3/4 of it (pass 0 to disable a rung).
/// Fault injection for drills: set LPTSP_FAULTS=site:prob:seed[:param],...
/// (sites: store.append store.fsync store.compact_rename net.read_short
/// net.write_short net.disconnect engine.stall).
///
/// Learning loop: the tuner (on by default) pre-trims the exact engine
/// per size bucket from decayed win scores but re-probes it every
/// --learn-reprobe-th skipped race (so a heuristic-heavy persisted win
/// table can bias but never freeze it), decays scores every
/// --learn-decay-every races, and re-tunes per-bucket engine effort every
/// --learn-effort-every deadline-bounded races. --no-learn reverts to the
/// static portfolio rules. --admission-work-budget=MS admits requests
/// against predicted pending engine work (rejecting when the backlog's
/// predicted cost exceeds MS milliseconds) instead of only counting them;
/// the retry-after hint stretches with the predicted drain time either
/// way. See README "Learning loop".

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "kernels/kernels.hpp"
#include "net/server.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "store/backend.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"

using namespace lptsp;

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump_journal{false};

void handle_signal(int) { g_stop.store(true); }

/// SIGQUIT asks for an on-demand journal dump without stopping the
/// daemon — the crash-safe half of the postmortem story: the handler
/// only flips a flag, the 200ms main loop does the file IO.
void handle_dump_signal(int) { g_dump_journal.store(true); }

/// Write `payload` to `path` via temp-file + rename so a collector
/// reading the path never sees a torn snapshot.
bool write_snapshot_file(const std::string& path, const std::string& payload) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
  const bool flushed = std::fclose(file) == 0;
  if (!wrote || !flushed) {
    std::remove(temp.c_str());
    return false;
  }
  return std::rename(temp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  BatchSolver::Options solver_options;
  solver_options.portfolio.deadline =
      std::chrono::milliseconds{args.get_int("deadline-ms", 250)};
  solver_options.cache.capacity = static_cast<std::size_t>(args.get_int("cache-capacity", 4096));
  solver_options.use_cache = !args.has("no-cache");
  solver_options.request_workers = static_cast<unsigned>(args.get_int("request-workers", 0));
  solver_options.engine_workers = static_cast<unsigned>(args.get_int("engine-workers", 0));
  solver_options.max_pending_requests = static_cast<std::size_t>(args.get_int("max-pending", 256));
  solver_options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  solver_options.trace_capacity = static_cast<std::size_t>(args.get_int("trace-keep", 64));
  solver_options.trace_threshold = std::chrono::milliseconds{args.get_int("trace-slow-ms", 0)};
  solver_options.tuner.enabled = !args.has("no-learn");
  solver_options.portfolio.learn = solver_options.tuner.enabled;
  solver_options.tuner.reprobe_every =
      static_cast<std::uint32_t>(args.get_int("learn-reprobe", 16));
  solver_options.tuner.decay_every =
      static_cast<std::uint32_t>(args.get_int("learn-decay-every", 64));
  solver_options.tuner.effort_update_every =
      static_cast<std::uint32_t>(args.get_int("learn-effort-every", 32));
  solver_options.max_pending_work_ns =
      static_cast<std::uint64_t>(args.get_int("admission-work-budget", 0)) * 1'000'000ULL;

  std::string store_path = args.get("cache-file", "");
  const std::string state_dir = args.get("state-dir", "");
  solver_options.store_sync_every_put = args.has("cache-sync");
  if (store_path.empty() && !state_dir.empty()) {
    if (::mkdir(state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "lptspd: cannot create --state-dir %s: %s\n", state_dir.c_str(),
                   std::strerror(errno));
      return 1;
    }
    store_path = state_dir + "/lptspd.store";
  }
  solver_options.store_path = store_path;
  solver_options.store_degraded_after_failures = args.get_int("store-degraded-after", 3);
  solver_options.store_reopen_probe_interval =
      std::chrono::milliseconds{args.get_int("store-probe-ms", 1000)};

  LabelingServer::Options server_options;
  server_options.bind_address = args.get("bind", "127.0.0.1");
  server_options.port = static_cast<std::uint16_t>(args.get_int("port", 4780));
  server_options.max_connections = args.get_int("max-connections", 64);
  server_options.max_inflight_per_connection =
      static_cast<std::size_t>(args.get_int("max-inflight", 64));
  // Brownout defaults derive from the admission bound: shed the exact
  // engines at half the pending cap, refuse outright at three quarters —
  // the hard RejectedOverload at --max-pending stays the last resort.
  const std::size_t max_pending = solver_options.max_pending_requests;
  server_options.brownout_heuristic_pending = static_cast<std::size_t>(
      args.get_int("brownout-heuristic-pending", static_cast<int>(max_pending / 2)));
  server_options.brownout_reject_pending = static_cast<std::size_t>(
      args.get_int("brownout-reject-pending", static_cast<int>(max_pending * 3 / 4)));
  server_options.brownout_retry_after_ms =
      static_cast<std::uint32_t>(args.get_int("brownout-retry-after-ms", 250));

  const int stats_every = args.get_int("stats-every", 10);
  const std::string stats_json = args.get("stats-json", "");
  std::string journal_json = args.get("journal-json", "");
  if (journal_json.empty() && !stats_json.empty()) journal_json = stats_json + ".journal";
  const std::string profile_json = args.get("profile-json", "");
  const int journal_cap = args.get_int("journal-cap", -1);
  if (journal_cap >= 0) {
    // Resize before any traffic so no early event is dropped by accident;
    // seq numbering is unaffected, --since cursors survive the resize.
    obs::journal().set_capacity(static_cast<std::size_t>(journal_cap));
  }

  const std::vector<std::string> unknown = args.unused_keys();
  if (!unknown.empty()) {
    for (const std::string& key : unknown) {
      std::fprintf(stderr, "lptspd: unknown flag --%s\n", key.c_str());
    }
    return 2;
  }

  std::unique_ptr<BatchSolver> solver_holder;
  try {
    solver_holder = std::make_unique<BatchSolver>(solver_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lptspd: %s\n", e.what());
    return 1;
  }
  BatchSolver& solver = *solver_holder;
  if (!store_path.empty()) {
    const SolveCache::WarmStats warm = solver.warm_stats();
    std::printf("lptspd: durable store %s — %llu results loaded, %llu rejected in %.3fs\n",
                store_path.c_str(), static_cast<unsigned long long>(warm.loaded),
                static_cast<unsigned long long>(warm.rejected), warm.seconds);
  }
  LabelingServer server(solver, server_options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lptspd: %s\n", e.what());
    return 1;
  }
  std::printf("lptspd listening on %s:%u (deadline=%lldms cache=%s workers=%u/%u "
              "max-pending=%zu isa=%s/detected=%s)\n",
              server_options.bind_address.c_str(), server.port(),
              static_cast<long long>(solver_options.portfolio.deadline.count()),
              solver_options.use_cache ? "on" : "off", solver_options.request_workers,
              solver_options.engine_workers, solver_options.max_pending_requests,
              isa_tier_name(kernels::active_isa_tier()),
              isa_tier_name(kernels::detected_isa_tier()));
  std::printf("lptspd: brownout heuristic/reject at %zu/%zu pending, retry-after=%ums; "
              "store degraded after %d failures; journal-cap=%zu; faults armed: %s\n",
              server_options.brownout_heuristic_pending,
              server_options.brownout_reject_pending, server_options.brownout_retry_after_ms,
              solver_options.store_degraded_after_failures, obs::journal().capacity(),
              fault::describe().c_str());
  if (solver_options.tuner.enabled) {
    std::printf("lptspd: learning on (reprobe every %u skips, decay every %u races, "
                "effort window %u); admission work budget %llums%s\n",
                solver_options.tuner.reprobe_every, solver_options.tuner.decay_every,
                solver_options.tuner.effort_update_every,
                static_cast<unsigned long long>(solver_options.max_pending_work_ns / 1'000'000),
                solver_options.max_pending_work_ns == 0 ? " (gauge only, count gate active)" : "");
  } else {
    std::printf("lptspd: learning off (--no-learn): static skip rule, fixed effort, "
                "count-based admission\n");
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGQUIT, handle_dump_signal);

  auto last_stats = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{200});
    if (g_dump_journal.exchange(false)) {
      if (!journal_json.empty()) {
        if (write_snapshot_file(journal_json, obs::journal().dump_json())) {
          std::printf("lptspd: journal dumped to %s (%llu events emitted)\n", journal_json.c_str(),
                      static_cast<unsigned long long>(obs::journal().emitted()));
          std::fflush(stdout);
        } else {
          std::fprintf(stderr, "lptspd: cannot write --journal-json %s: %s\n", journal_json.c_str(),
                       std::strerror(errno));
        }
      }
      if (!profile_json.empty()) {
        if (write_snapshot_file(profile_json, solver.profile_json())) {
          std::printf("lptspd: profile dumped to %s\n", profile_json.c_str());
          std::fflush(stdout);
        } else {
          std::fprintf(stderr, "lptspd: cannot write --profile-json %s: %s\n", profile_json.c_str(),
                       std::strerror(errno));
        }
      }
    }
    if (stats_every > 0 &&
        std::chrono::steady_clock::now() - last_stats >= std::chrono::seconds{stats_every}) {
      last_stats = std::chrono::steady_clock::now();
      // One registry snapshot feeds both consumers: the human-readable
      // stats line and the machine-readable JSON file.
      const obs::MetricsSnapshot snapshot = solver.metrics_registry().snapshot();
      std::printf("[lptspd] isa=%s %s\n", isa_tier_name(kernels::active_isa_tier()),
                  snapshot.to_logline().c_str());
      std::fflush(stdout);
      if (!stats_json.empty() && !write_snapshot_file(stats_json, snapshot.to_json())) {
        std::fprintf(stderr, "lptspd: cannot write --stats-json %s: %s\n", stats_json.c_str(),
                     std::strerror(errno));
      }
      // Piggyback a win-table checkpoint on the stats tick so a crash
      // loses at most one interval of engine-choice learning.
      solver.checkpoint_win_table();
    }
  }

  std::printf("lptspd: shutting down\n");
  server.stop();
  // Final snapshot + checkpoint after the server stops, so the file and
  // win table reflect every request that was served.
  if (!stats_json.empty()) {
    write_snapshot_file(stats_json, solver.metrics_registry().snapshot().to_json());
  }
  if (!journal_json.empty()) {
    write_snapshot_file(journal_json, obs::journal().dump_json());
  }
  if (!profile_json.empty()) {
    write_snapshot_file(profile_json, solver.profile_json());
  }
  solver.checkpoint_win_table();
  return 0;
}
