/// lptsp_cpu — print the CPU feature detection result and the kernel
/// dispatch decision. CI prints this into the job summary so every run
/// records which tier its tests and benches actually exercised; operators
/// use it to sanity-check LPTSP_FORCE_ISA before pointing it at a daemon.
///
/// Output (one key=value per line):
///   hw=<widest tier this CPU can run>
///   built=<widest tier compiled into this binary and runnable here>
///   forced=<LPTSP_FORCE_ISA if set and valid, else ->
///   active=<tier the dispatch table resolved to>
///
/// Exits 0 always; the output is informational.

#include <cstdio>

#include "kernels/kernels.hpp"
#include "util/cpu.hpp"

int main() {
  using namespace lptsp;
  const std::optional<IsaTier> forced = forced_isa_tier_from_env();
  std::printf("hw=%s\n", isa_tier_name(hw_isa_tier()));
  std::printf("built=%s\n", isa_tier_name(kernels::detected_isa_tier()));
  std::printf("forced=%s\n", forced.has_value() ? isa_tier_name(*forced) : "-");
  std::printf("active=%s\n", isa_tier_name(kernels::active_isa_tier()));
  return 0;
}
