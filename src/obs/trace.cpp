#include "obs/trace.hpp"

#include <utility>

namespace lptsp::obs {

void TraceRing::keep(Trace&& trace) {
  if (config_.capacity == 0) return;
  if (!trace.sampled && trace.total_ns < config_.threshold_ns) return;
  const std::lock_guard lock(mutex_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > config_.capacity) ring_.pop_front();
}

std::size_t TraceRing::size() const {
  const std::lock_guard lock(mutex_);
  return ring_.size();
}

std::vector<Trace> TraceRing::snapshot() const {
  const std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

namespace {

void append_span_json(std::string& out, const Span& span) {
  out += "{\"stage\":\"";
  out += stage_name(span.stage);
  out += "\"";
  if (span.detail != nullptr) {
    out += ",\"detail\":\"";
    out += span.detail;
    out += "\"";
  }
  out += ",\"start_ns\":" + std::to_string(span.start_ns);
  out += ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (span.winner) out += ",\"winner\":true";
  if (span.nested) out += ",\"nested\":true";
  out.push_back('}');
}

}  // namespace

std::string TraceRing::dump_json() const {
  const std::lock_guard lock(mutex_);
  std::string out = "[";
  bool first_trace = true;
  for (const Trace& trace : ring_) {
    if (!first_trace) out.push_back(',');
    first_trace = false;
    out += "{\"id\":" + std::to_string(trace.request_id);
    if (trace.trace_id != 0) out += ",\"trace_id\":" + std::to_string(trace.trace_id);
    if (trace.sampled) out += ",\"sampled\":true";
    out += ",\"total_ns\":" + std::to_string(trace.total_ns);
    out += ",\"result\":\"";
    out += trace.result;
    out += "\",\"spans\":[";
    bool first_span = true;
    for (const Span& span : trace.spans) {
      if (!first_span) out.push_back(',');
      first_span = false;
      append_span_json(out, span);
    }
    out += "]}";
  }
  out.push_back(']');
  return out;
}

}  // namespace lptsp::obs
