#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

/// Rate view over two MetricsSnapshots of the same registry.
///
/// Counters and histograms are cumulative since process start; a single
/// snapshot answers "how much ever", never "how fast now". SnapshotDelta
/// subtracts an earlier snapshot from a later one and divides by the
/// monotonic interval the snapshots themselves carry (timestamp_ns), so
/// the rates are exact regardless of scrape jitter. Histogram deltas
/// subtract per-bucket counts, which yields true interval percentiles —
/// not the since-boot blend a cumulative histogram reports.
namespace lptsp::obs {

struct SnapshotDelta {
  struct CounterRate {
    std::string name;
    std::uint64_t delta = 0;     ///< newer - older (0 when the counter reset)
    double per_second = 0.0;
  };
  struct GaugeLevel {
    std::string name;
    std::int64_t value = 0;      ///< newer snapshot's level
    std::int64_t delta = 0;      ///< newer - older
  };
  struct HistogramDelta {
    std::string name;
    HistogramSnapshot hist;      ///< per-bucket difference over the interval
    double per_second = 0.0;     ///< interval sample rate
  };

  double interval_seconds = 0.0;
  std::uint64_t uptime_ns = 0;   ///< newer snapshot's uptime
  std::vector<CounterRate> counters;
  std::vector<GaugeLevel> gauges;
  std::vector<HistogramDelta> histograms;

  /// Difference newer - older. Metrics present in only one snapshot are
  /// skipped (a registry that changed shape mid-watch); a counter that
  /// went backwards (process restart) deltas to 0 rather than wrapping.
  /// Requires newer.timestamp_ns >= older.timestamp_ns; an equal-time
  /// pair yields zero rates (interval clamped to a minimum tick).
  static SnapshotDelta between(const MetricsSnapshot& older, const MetricsSnapshot& newer);

  /// Aligned table view for the --watch live display: per-second rates
  /// for counters, levels for gauges, interval percentiles for
  /// histograms.
  [[nodiscard]] std::string to_text() const;
};

/// Parse a Prometheus text exposition produced by
/// MetricsSnapshot::to_prometheus() back into a MetricsSnapshot.
/// Recognizes the "lptsp_" prefix, the snapshot_timestamp/uptime anchor
/// gauges, and histogram _bucket/_sum/_count/_max series (bucket `le`
/// values map back to log2 bucket indices via bucket_ceiling). Returns
/// nullopt when the text carries no lptsp metrics at all; unknown lines
/// are ignored, so the parser tolerates future additions.
std::optional<MetricsSnapshot> parse_prometheus(const std::string& text);

}  // namespace lptsp::obs
