#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace lptsp::obs {

std::uint64_t process_start_ns() noexcept {
  // Function-local static: captured exactly once, at the first call
  // (the first MetricRegistry construction), thread-safe per C++11.
  static const std::uint64_t start = steady_now_ns();
  return start;
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] += other.counts[static_cast<std::size_t>(b)];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the smallest rank r (1-based) with r >= q * count.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = counts[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const std::uint64_t lo = LatencyHistogram::bucket_floor(b);
      const std::uint64_t hi = LatencyHistogram::bucket_ceiling(b);
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
      auto estimate =
          static_cast<std::uint64_t>(static_cast<double>(lo) +
                                     within * static_cast<double>(hi - lo));
      // The observed max is exact; an interpolated estimate past it would
      // report a latency nothing ever reached.
      return std::min(estimate, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

/// Metric names are [a-z0-9_] by convention, but escape defensively: a
/// malformed name must break a dashboard, not the JSON document.
void append_json_string(std::string& out, const std::string& value) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t value) { out += std::to_string(value); }

void append_histogram_json(std::string& out, const HistogramSnapshot& hist) {
  out += "{\"count\":";
  append_u64(out, hist.count);
  out += ",\"sum_ns\":";
  append_u64(out, hist.sum);
  out += ",\"max_ns\":";
  append_u64(out, hist.max);
  out += ",\"p50_ns\":";
  append_u64(out, hist.quantile(0.50));
  out += ",\"p90_ns\":";
  append_u64(out, hist.quantile(0.90));
  out += ",\"p99_ns\":";
  append_u64(out, hist.quantile(0.99));
  out.push_back('}');
}

int highest_occupied_bucket(const HistogramSnapshot& hist) {
  for (int b = HistogramSnapshot::kBuckets - 1; b >= 0; --b) {
    if (hist.counts[static_cast<std::size_t>(b)] != 0) return b;
  }
  return -1;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_or(const std::string& name, std::uint64_t fallback) const {
  for (const CounterValue& entry : counters) {
    if (entry.name == name) return entry.value;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name) const {
  for (const HistogramValue& entry : histograms) {
    if (entry.name == name) return &entry.hist;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"timestamp_ns\":";
  append_u64(out, timestamp_ns);
  out += ",\"uptime_ns\":";
  append_u64(out, uptime_ns);
  out += ",\"counters\":{";
  bool first = true;
  for (const CounterValue& entry : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, entry.name);
    out.push_back(':');
    append_u64(out, entry.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeValue& entry : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, entry.name);
    out.push_back(':');
    out += std::to_string(entry.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramValue& entry : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, entry.name);
    out.push_back(':');
    append_histogram_json(out, entry.hist);
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names
/// are lower_snake by convention, but a malformed one (say a fault-site
/// name with a '.') must degrade to '_', not emit an exposition no
/// scraper will parse.
std::string prometheus_name(const std::string& name) {
  std::string sanitized = name;
  for (char& c : sanitized) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!sanitized.empty() && sanitized.front() >= '0' && sanitized.front() <= '9') {
    sanitized.insert(sanitized.begin(), '_');
  }
  return sanitized;
}

void append_prometheus_header(std::string& out, const std::string& name, const char* kind) {
  out += "# HELP " + name + " lptsp " + kind + " metric.\n";
  out += "# TYPE " + name + " ";
  out += kind;
  out.push_back('\n');
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  // Snapshot-time anchors first: lptsp_stats --watch deltas successive
  // scrapes against lptsp_snapshot_timestamp_ns (same monotonic clock as
  // every histogram sample), and uptime makes one-off scrapes rateable
  // against process start.
  append_prometheus_header(out, "lptsp_snapshot_timestamp_ns", "gauge");
  out += "lptsp_snapshot_timestamp_ns " + std::to_string(timestamp_ns) + "\n";
  append_prometheus_header(out, "lptsp_uptime_ns", "gauge");
  out += "lptsp_uptime_ns " + std::to_string(uptime_ns) + "\n";
  for (const CounterValue& entry : counters) {
    const std::string name = "lptsp_" + prometheus_name(entry.name);
    append_prometheus_header(out, name, "counter");
    out += name + " " + std::to_string(entry.value) + "\n";
  }
  for (const GaugeValue& entry : gauges) {
    const std::string name = "lptsp_" + prometheus_name(entry.name);
    append_prometheus_header(out, name, "gauge");
    out += name + " " + std::to_string(entry.value) + "\n";
  }
  for (const HistogramValue& entry : histograms) {
    const std::string name = "lptsp_" + prometheus_name(entry.name);
    append_prometheus_header(out, name, "histogram");
    std::uint64_t cumulative = 0;
    const int top = highest_occupied_bucket(entry.hist);
    for (int b = 0; b <= top; ++b) {
      cumulative += entry.hist.counts[static_cast<std::size_t>(b)];
      out += name + "_bucket{le=\"" +
             std::to_string(LatencyHistogram::bucket_ceiling(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(entry.hist.count) + "\n";
    out += name + "_sum " + std::to_string(entry.hist.sum) + "\n";
    out += name + "_count " + std::to_string(entry.hist.count) + "\n";
    // Non-standard but delta-critical: the exact observed max lets a
    // SnapshotDelta built from two expositions cap its interpolated
    // quantiles the same way the in-process snapshot does.
    out += name + "_max " + std::to_string(entry.hist.max) + "\n";
  }
  return out;
}

namespace {

void append_padded(std::string& out, const std::string& text, std::size_t width) {
  out += text;
  for (std::size_t i = text.size(); i < width; ++i) out.push_back(' ');
}

std::string right_aligned(std::uint64_t value, std::size_t width) {
  std::string text = std::to_string(value);
  return text.size() >= width ? text : std::string(width - text.size(), ' ') + text;
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::size_t name_width = 8;
  for (const CounterValue& entry : counters) name_width = std::max(name_width, entry.name.size());
  for (const GaugeValue& entry : gauges) name_width = std::max(name_width, entry.name.size());
  for (const HistogramValue& entry : histograms) {
    name_width = std::max(name_width, entry.name.size());
  }
  name_width += 2;

  std::string out;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterValue& entry : counters) {
      out += "  ";
      append_padded(out, entry.name, name_width);
      out += std::to_string(entry.value) + "\n";
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeValue& entry : gauges) {
      out += "  ";
      append_padded(out, entry.name, name_width);
      out += std::to_string(entry.value) + "\n";
    }
  }
  if (!histograms.empty()) {
    out += "histograms (ns):\n  ";
    append_padded(out, "", name_width);
    out += "     count          p50          p90          p99          max\n";
    for (const HistogramValue& entry : histograms) {
      out += "  ";
      append_padded(out, entry.name, name_width);
      out += right_aligned(entry.hist.count, 10);
      out += right_aligned(entry.hist.quantile(0.50), 13);
      out += right_aligned(entry.hist.quantile(0.90), 13);
      out += right_aligned(entry.hist.quantile(0.99), 13);
      out += right_aligned(entry.hist.max, 13);
      out.push_back('\n');
    }
  }
  return out;
}

std::string MetricsSnapshot::to_logline() const {
  std::string out;
  const auto append_kv = [&out](const std::string& key, const std::string& value) {
    if (!out.empty()) out.push_back(' ');
    out += key + "=" + value;
  };
  for (const CounterValue& entry : counters) append_kv(entry.name, std::to_string(entry.value));
  for (const GaugeValue& entry : gauges) append_kv(entry.name, std::to_string(entry.value));
  for (const HistogramValue& entry : histograms) {
    append_kv(entry.name + "_p50", std::to_string(entry.hist.quantile(0.50)));
    append_kv(entry.name + "_p99", std::to_string(entry.hist.quantile(0.99)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

void MetricRegistry::require_fresh_name(const std::string& name) const {
  for (const CounterEntry& entry : counters_) {
    LPTSP_REQUIRE(entry.name != name, "metric name already registered: " + name);
  }
  for (const GaugeEntry& entry : gauges_) {
    LPTSP_REQUIRE(entry.name != name, "metric name already registered: " + name);
  }
  for (const HistogramEntry& entry : histograms_) {
    LPTSP_REQUIRE(entry.name != name, "metric name already registered: " + name);
  }
}

void MetricRegistry::register_counter(std::string name, const Counter* counter,
                                      const void* owner) {
  LPTSP_REQUIRE(counter != nullptr, "cannot register a null counter");
  const std::lock_guard lock(mutex_);
  require_fresh_name(name);
  counters_.push_back({std::move(name), counter, owner});
}

void MetricRegistry::register_gauge(std::string name, std::function<std::int64_t()> read,
                                    const void* owner) {
  LPTSP_REQUIRE(read != nullptr, "cannot register a null gauge reader");
  const std::lock_guard lock(mutex_);
  require_fresh_name(name);
  gauges_.push_back({std::move(name), std::move(read), owner});
}

void MetricRegistry::register_histogram(std::string name, const LatencyHistogram* histogram,
                                        const void* owner) {
  LPTSP_REQUIRE(histogram != nullptr, "cannot register a null histogram");
  const std::lock_guard lock(mutex_);
  require_fresh_name(name);
  histograms_.push_back({std::move(name), histogram, owner});
}

void MetricRegistry::deregister(const void* owner) {
  const std::lock_guard lock(mutex_);
  const auto drop = [owner](auto& entries) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [owner](const auto& entry) { return entry.owner == owner; }),
                  entries.end());
  };
  drop(counters_);
  drop(gauges_);
  drop(histograms_);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.timestamp_ns = steady_now_ns();
  snap.uptime_ns = snap.timestamp_ns - process_start_ns();
  const std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const CounterEntry& entry : counters_) {
    snap.counters.push_back({entry.name, entry.counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const GaugeEntry& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.read()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const HistogramEntry& entry : histograms_) {
    snap.histograms.push_back({entry.name, entry.histogram->snapshot()});
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::size_t MetricRegistry::size() const {
  const std::lock_guard lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace lptsp::obs
