#include "obs/profile.hpp"

#include <algorithm>
#include <bit>

#include "obs/journal.hpp"

namespace lptsp::obs {

std::string format_fixed2(double value) {
  // Largest value whose hundredths fit a uint64 with headroom; every
  // double at or below it converts exactly defined. NaN (the only value
  // failing both comparisons) falls through to 0.
  constexpr double kMax = 1e15;
  std::uint64_t hundredths = 0;
  if (value >= kMax) {
    hundredths = static_cast<std::uint64_t>(kMax) * 100;  // +inf clamps here too
  } else if (value > 0) {
    hundredths = static_cast<std::uint64_t>(value * 100.0 + 0.5);
  }
  std::string out = std::to_string(hundredths / 100);
  out.push_back('.');
  const std::uint64_t frac = hundredths % 100;
  out.push_back(static_cast<char>('0' + frac / 10));
  out.push_back(static_cast<char>('0' + frac % 10));
  return out;
}

namespace {

/// Average events per second over an uptime; 0 when no time has passed.
std::string rate_per_s(std::uint64_t total, std::uint64_t uptime_ns) {
  if (uptime_ns == 0) return "0.00";
  return format_fixed2(static_cast<double>(total) * 1e9 / static_cast<double>(uptime_ns));
}

std::string hex_u64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const auto nibble = static_cast<std::size_t>((value >> shift) & 0xF);
    if (!started && nibble == 0 && shift != 0) continue;
    started = true;
    out.push_back(kDigits[nibble]);
  }
  return out;
}

void append_hist_quantiles(std::string& out, const LatencyHistogram& hist) {
  const HistogramSnapshot snap = hist.snapshot();
  out += "{\"count\":" + std::to_string(snap.count);
  out += ",\"p50\":" + std::to_string(snap.quantile(0.50));
  out += ",\"p99\":" + std::to_string(snap.quantile(0.99));
  out += ",\"max\":" + std::to_string(snap.max);
  out.push_back('}');
}

}  // namespace

void WorkCounters::add(const EngineWork& work) noexcept {
  if (work.bb_nodes != 0) bb_nodes_.add(work.bb_nodes);
  if (work.bb_pruned != 0) bb_pruned_.add(work.bb_pruned);
  if (work.lk_kicks != 0) lk_kicks_.add(work.lk_kicks);
  if (work.lk_accepted != 0) lk_accepted_.add(work.lk_accepted);
  if (work.lk_wakes != 0) lk_wakes_.add(work.lk_wakes);
  if (work.lk_moves != 0) lk_moves_.add(work.lk_moves);
  if (work.hk_layers != 0) hk_layers_.add(work.hk_layers);
  if (work.hk_cells != 0) hk_cells_.add(work.hk_cells);
}

void WorkCounters::register_into(MetricRegistry& registry, const void* owner) const {
  registry.register_counter("engine_work_bb_nodes", &bb_nodes_, owner);
  registry.register_counter("engine_work_bb_pruned", &bb_pruned_, owner);
  registry.register_counter("engine_work_lk_kicks", &lk_kicks_, owner);
  registry.register_counter("engine_work_lk_accepted", &lk_accepted_, owner);
  registry.register_counter("engine_work_lk_wakes", &lk_wakes_, owner);
  registry.register_counter("engine_work_lk_moves", &lk_moves_, owner);
  registry.register_counter("engine_work_hk_layers", &hk_layers_, owner);
  registry.register_counter("engine_work_hk_cells", &hk_cells_, owner);
}

EngineWork WorkCounters::totals() const noexcept {
  EngineWork work;
  work.bb_nodes = bb_nodes_.value();
  work.bb_pruned = bb_pruned_.value();
  work.lk_kicks = lk_kicks_.value();
  work.lk_accepted = lk_accepted_.value();
  work.lk_wakes = lk_wakes_.value();
  work.lk_moves = lk_moves_.value();
  work.hk_layers = hk_layers_.value();
  work.hk_cells = hk_cells_.value();
  return work;
}

std::string WorkCounters::to_json(std::uint64_t uptime_ns) const {
  const EngineWork w = totals();
  std::string out = "{\"held_karp\":{";
  out += "\"layers\":" + std::to_string(w.hk_layers);
  out += ",\"cells\":" + std::to_string(w.hk_cells);
  out += ",\"cells_per_s\":" + rate_per_s(w.hk_cells, uptime_ns);
  out += "},\"branch_bound\":{";
  out += "\"nodes\":" + std::to_string(w.bb_nodes);
  out += ",\"pruned\":" + std::to_string(w.bb_pruned);
  out += ",\"nodes_per_s\":" + rate_per_s(w.bb_nodes, uptime_ns);
  out += "},\"chained_lk\":{";
  out += "\"kicks\":" + std::to_string(w.lk_kicks);
  out += ",\"accepted\":" + std::to_string(w.lk_accepted);
  out += ",\"wakes\":" + std::to_string(w.lk_wakes);
  out += ",\"moves\":" + std::to_string(w.lk_moves);
  out += ",\"kicks_per_s\":" + rate_per_s(w.lk_kicks, uptime_ns);
  out += "}}";
  return out;
}

KeyProfileTable::KeyProfileTable(const Config& config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.per_shard == 0) config_.per_shard = 1;
  shards_ = std::vector<Shard>(config_.shards);
}

void KeyProfileTable::record(std::uint64_t key_hash, int n, std::uint64_t engine_ns,
                             const char* engine, bool had_deadline, bool deadline_hit) {
  Shard& shard = shards_[key_hash % config_.shards];
  const std::lock_guard lock(shard.mutex);

  Entry* slot = nullptr;
  for (Entry& entry : shard.entries) {
    if (entry.key_hash == key_hash && entry.n == n) {
      slot = &entry;
      break;
    }
  }
  if (slot == nullptr) {
    if (shard.entries.size() < config_.per_shard) {
      slot = &shard.entries.emplace_back();
    } else {
      // Space-saving eviction: displace the coldest entry and inherit its
      // totals, so a genuinely hot key cannot be rotated out by a stream
      // of one-shot keys (the inherited totals bound the overestimate).
      slot = &shard.entries.front();
      for (Entry& entry : shard.entries) {
        if (entry.engine_ns < slot->engine_ns) slot = &entry;
      }
      evictions_.add();
      slot->solves = 0;
      slot->last_engine_ns = 0;
      slot->deadline_hits = 0;
      slot->deadline_misses = 0;
    }
    slot->key_hash = key_hash;
    slot->n = n;
    slot->size_bucket = static_cast<int>(std::bit_width(static_cast<unsigned>(n)));
  }

  slot->solves += 1;
  slot->engine_ns += engine_ns;
  slot->last_engine_ns = engine_ns;
  slot->last_engine = engine;
  if (had_deadline) {
    if (deadline_hit) {
      slot->deadline_hits += 1;
    } else {
      slot->deadline_misses += 1;
    }
  }
}

std::size_t KeyProfileTable::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

std::vector<KeyProfileTable::Entry> KeyProfileTable::top(std::size_t k) const {
  std::vector<Entry> all;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    all.insert(all.end(), shard.entries.begin(), shard.entries.end());
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.engine_ns != b.engine_ns) return a.engine_ns > b.engine_ns;
    return a.key_hash < b.key_hash;  // total order: stable JSON across calls
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::uint64_t KeyProfileTable::bucket_mean_ns(int size_bucket) const {
  std::uint64_t total_ns = 0;
  std::uint64_t solves = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    for (const Entry& entry : shard.entries) {
      if (entry.size_bucket != size_bucket) continue;
      total_ns += entry.engine_ns;
      solves += entry.solves;
    }
  }
  return solves == 0 ? 0 : total_ns / solves;
}

std::string KeyProfileTable::to_json(std::size_t k) const {
  const std::vector<Entry> entries = top(k);
  std::string out = "[";
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"key\":\"" + hex_u64(entry.key_hash) + "\"";
    out += ",\"n\":" + std::to_string(entry.n);
    out += ",\"size_bucket\":" + std::to_string(entry.size_bucket);
    out += ",\"solves\":" + std::to_string(entry.solves);
    out += ",\"engine_ns\":" + std::to_string(entry.engine_ns);
    out += ",\"last_engine_ns\":" + std::to_string(entry.last_engine_ns);
    out += ",\"last_engine\":\"";
    out += entry.last_engine != nullptr ? entry.last_engine : "none";
    out += "\"";
    out += ",\"deadline_hits\":" + std::to_string(entry.deadline_hits);
    out += ",\"deadline_misses\":" + std::to_string(entry.deadline_misses);
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

SloTracker::SloTracker(const Config& config) : config_(config) {
  if (config_.window == 0) config_.window = 1;
  ring_.assign(config_.window, 0);
}

void SloTracker::record(std::uint64_t elapsed_ns, std::int64_t budget_ms) {
  const std::uint64_t budget_ns = static_cast<std::uint64_t>(budget_ms) * 1'000'000ULL;
  const bool hit = elapsed_ns <= budget_ns;
  if (hit) {
    hits_.add();
    slack_ns_.record(budget_ns - elapsed_ns);
  } else {
    misses_.add();
    overrun_ns_.record(elapsed_ns - budget_ns);
  }
  roll(hit);
}

void SloTracker::record_cache_hit(std::int64_t budget_ms) {
  hits_.add();
  slack_ns_.record(static_cast<std::uint64_t>(budget_ms) * 1'000'000ULL);
  roll(true);
}

void SloTracker::roll(bool hit) {
  bool emit_breach = false;
  bool emit_recover = false;
  std::int64_t pct = 100;
  {
    const std::lock_guard lock(mutex_);
    if (ring_filled_ == ring_.size()) {
      ring_hits_ -= ring_[ring_next_];
    } else {
      ring_filled_ += 1;
    }
    ring_[ring_next_] = hit ? 1 : 0;
    ring_hits_ += ring_[ring_next_];
    ring_next_ = (ring_next_ + 1) % ring_.size();

    pct = static_cast<std::int64_t>(ring_hits_ * 100 / ring_filled_);
    if (ring_filled_ >= config_.min_samples) {
      const bool below = pct < config_.breach_percent;
      if (below && !breached_) {
        breached_ = true;
        emit_breach = true;
      } else if (!below && breached_) {
        breached_ = false;
        emit_recover = true;
      }
    }
  }
  // Journal emission outside our mutex: the journal has its own lock and
  // crossings are incidents, not per-request work.
  if (emit_breach) {
    journal().emit(EventType::SloBreach, EventLevel::Warn, "deadline-hit-ratio", 0, 0, pct,
                   config_.breach_percent);
  } else if (emit_recover) {
    journal().emit(EventType::SloRecovered, EventLevel::Info, "deadline-hit-ratio", 0, 0, pct,
                   config_.breach_percent);
  }
}

std::int64_t SloTracker::rolling_hit_percent() const {
  const std::lock_guard lock(mutex_);
  if (ring_filled_ == 0) return 100;
  return static_cast<std::int64_t>(ring_hits_ * 100 / ring_filled_);
}

void SloTracker::register_into(MetricRegistry& registry, const void* owner) {
  registry.register_counter("deadline_hits", &hits_, owner);
  registry.register_counter("deadline_misses", &misses_, owner);
  registry.register_histogram("deadline_slack_ns", &slack_ns_, owner);
  registry.register_histogram("deadline_overrun_ns", &overrun_ns_, owner);
  registry.register_gauge("deadline_hit_ratio_percent",
                          [this] { return rolling_hit_percent(); }, owner);
}

std::string SloTracker::to_json() const {
  const std::uint64_t hits = hits_.value();
  const std::uint64_t misses = misses_.value();
  const std::uint64_t total = hits + misses;
  std::string out = "{\"deadline_hits\":" + std::to_string(hits);
  out += ",\"deadline_misses\":" + std::to_string(misses);
  out += ",\"hit_ratio\":";
  out += total == 0 ? "1.00"
                    : format_fixed2(static_cast<double>(hits) / static_cast<double>(total));
  out += ",\"rolling_hit_percent\":" + std::to_string(rolling_hit_percent());
  {
    const std::lock_guard lock(mutex_);
    out += ",\"window\":" + std::to_string(ring_.size());
    out += ",\"breached\":";
    out += breached_ ? "true" : "false";
  }
  out += ",\"slack_ns\":";
  append_hist_quantiles(out, slack_ns_);
  out += ",\"overrun_ns\":";
  append_hist_quantiles(out, overrun_ns_);
  out.push_back('}');
  return out;
}

}  // namespace lptsp::obs
