#include "obs/delta.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

namespace lptsp::obs {

namespace {

/// Clamped unsigned difference: a counter that went backwards (process
/// restart between scrapes) reads as "no progress", not a huge wrap.
std::uint64_t monotone_delta(std::uint64_t older, std::uint64_t newer) {
  return newer >= older ? newer - older : 0;
}

template <typename Entry>
const Entry* find_by_name(const std::vector<Entry>& entries, const std::string& name) {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace

SnapshotDelta SnapshotDelta::between(const MetricsSnapshot& older, const MetricsSnapshot& newer) {
  SnapshotDelta delta;
  const std::uint64_t interval_ns = monotone_delta(older.timestamp_ns, newer.timestamp_ns);
  // An equal-time pair (or an unstamped legacy snapshot) must divide by
  // something: one nanosecond turns every rate into "delta per ~0s",
  // which the caller sees as the raw delta blown up — visible, not NaN.
  delta.interval_seconds = static_cast<double>(std::max<std::uint64_t>(interval_ns, 1)) / 1e9;
  delta.uptime_ns = newer.uptime_ns;

  delta.counters.reserve(newer.counters.size());
  for (const MetricsSnapshot::CounterValue& entry : newer.counters) {
    const auto* before = find_by_name(older.counters, entry.name);
    if (before == nullptr) continue;  // registry changed shape mid-watch
    CounterRate rate;
    rate.name = entry.name;
    rate.delta = monotone_delta(before->value, entry.value);
    rate.per_second = static_cast<double>(rate.delta) / delta.interval_seconds;
    delta.counters.push_back(std::move(rate));
  }

  delta.gauges.reserve(newer.gauges.size());
  for (const MetricsSnapshot::GaugeValue& entry : newer.gauges) {
    const auto* before = find_by_name(older.gauges, entry.name);
    if (before == nullptr) continue;
    delta.gauges.push_back({entry.name, entry.value, entry.value - before->value});
  }

  delta.histograms.reserve(newer.histograms.size());
  for (const MetricsSnapshot::HistogramValue& entry : newer.histograms) {
    const auto* before = find_by_name(older.histograms, entry.name);
    if (before == nullptr) continue;
    HistogramDelta hist_delta;
    hist_delta.name = entry.name;
    HistogramSnapshot& diff = hist_delta.hist;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      const auto index = static_cast<std::size_t>(b);
      diff.counts[index] = monotone_delta(before->hist.counts[index], entry.hist.counts[index]);
      diff.count += diff.counts[index];
    }
    diff.sum = monotone_delta(before->hist.sum, entry.hist.sum);
    // The interval's true max is not recoverable from cumulative
    // snapshots; the lifetime max is the tightest safe cap for the
    // interpolated interval quantiles.
    diff.max = entry.hist.max;
    hist_delta.per_second = static_cast<double>(diff.count) / delta.interval_seconds;
    delta.histograms.push_back(std::move(hist_delta));
  }
  return delta;
}

namespace {

void append_padded(std::string& out, const std::string& text, std::size_t width) {
  out += text;
  for (std::size_t i = text.size(); i < width; ++i) out.push_back(' ');
}

std::string fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string right_aligned(std::string text, std::size_t width) {
  return text.size() >= width ? text : std::string(width - text.size(), ' ') + std::move(text);
}

}  // namespace

std::string SnapshotDelta::to_text() const {
  std::size_t name_width = 8;
  for (const CounterRate& entry : counters) name_width = std::max(name_width, entry.name.size());
  for (const GaugeLevel& entry : gauges) name_width = std::max(name_width, entry.name.size());
  for (const HistogramDelta& entry : histograms) {
    name_width = std::max(name_width, entry.name.size());
  }
  name_width += 2;

  std::string out = "interval " + fixed(interval_seconds, 2) + "s, uptime " +
                    fixed(static_cast<double>(uptime_ns) / 1e9, 1) + "s\n";
  if (!counters.empty()) {
    out += "counters (rate):\n";
    for (const CounterRate& entry : counters) {
      out += "  ";
      append_padded(out, entry.name, name_width);
      out += right_aligned(fixed(entry.per_second, 1) + "/s", 14);
      out += right_aligned("+" + std::to_string(entry.delta), 12);
      out.push_back('\n');
    }
  }
  if (!gauges.empty()) {
    out += "gauges (level):\n";
    for (const GaugeLevel& entry : gauges) {
      out += "  ";
      append_padded(out, entry.name, name_width);
      out += right_aligned(std::to_string(entry.value), 14);
      const std::string sign = entry.delta >= 0 ? "+" : "";
      out += right_aligned(sign + std::to_string(entry.delta), 12);
      out.push_back('\n');
    }
  }
  if (!histograms.empty()) {
    out += "histograms (interval, ns):\n  ";
    append_padded(out, "", name_width);
    out += "     rate/s          p50          p90          p99\n";
    for (const HistogramDelta& entry : histograms) {
      out += "  ";
      append_padded(out, entry.name, name_width);
      out += right_aligned(fixed(entry.per_second, 1), 11);
      out += right_aligned(std::to_string(entry.hist.quantile(0.50)), 13);
      out += right_aligned(std::to_string(entry.hist.quantile(0.90)), 13);
      out += right_aligned(std::to_string(entry.hist.quantile(0.99)), 13);
      out.push_back('\n');
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus exposition -> MetricsSnapshot
// ---------------------------------------------------------------------------

namespace {

constexpr const char kPrefix[] = "lptsp_";
constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;

/// Map a `le` ceiling back to its log2 bucket index: bucket_ceiling(b)
/// is 0 for b = 0 and 2^b - 1 otherwise, so le + 1 is a power of two
/// whose bit_width is b + 1. Returns -1 for a ceiling no bucket owns.
int bucket_of_ceiling(std::uint64_t le) {
  if (le == 0) return 0;
  if (!std::has_single_bit(le + 1)) return -1;
  const int b = std::bit_width(le + 1) - 1;
  return b < HistogramSnapshot::kBuckets ? b : -1;
}

struct ParsedLine {
  std::string name;             ///< metric name, "lptsp_" stripped
  std::string le;               ///< le label value, empty when unlabeled
  std::uint64_t value = 0;
  bool ok = false;
};

ParsedLine parse_sample_line(const std::string& line) {
  ParsedLine parsed;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) return parsed;
  std::size_t pos = kPrefixLen;
  const std::size_t name_start = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '{') ++pos;
  parsed.name = line.substr(name_start, pos - name_start);
  if (pos < line.size() && line[pos] == '{') {
    const std::size_t close = line.find('}', pos);
    if (close == std::string::npos) return parsed;
    const std::string labels = line.substr(pos + 1, close - pos - 1);
    constexpr const char kLe[] = "le=\"";
    const std::size_t le_pos = labels.find(kLe);
    if (le_pos != std::string::npos) {
      const std::size_t value_start = le_pos + sizeof(kLe) - 1;
      const std::size_t value_end = labels.find('"', value_start);
      if (value_end == std::string::npos) return parsed;
      parsed.le = labels.substr(value_start, value_end - value_start);
    }
    pos = close + 1;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return parsed;
  // Histogram sums can exceed what strtod round-trips exactly, but every
  // value to_prometheus() emits is a decimal integer; parse as such.
  char* end = nullptr;
  parsed.value = std::strtoull(line.c_str() + pos, &end, 10);
  parsed.ok = end != nullptr && end != line.c_str() + pos;
  return parsed;
}

}  // namespace

std::optional<MetricsSnapshot> parse_prometheus(const std::string& text) {
  MetricsSnapshot snap;
  // name -> kind from the # TYPE lines; histogram series are keyed by
  // their base name (the _bucket/_sum/_count/_max suffixes are data).
  std::vector<std::pair<std::string, char>> kinds;  // 'c', 'g', 'h'
  bool saw_any = false;

  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    const std::size_t line_end = std::min(text.find('\n', line_start), text.size());
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      constexpr const char kType[] = "# TYPE lptsp_";
      if (line.compare(0, sizeof(kType) - 1, kType) == 0) {
        const std::size_t name_start = sizeof(kType) - 1;
        const std::size_t name_end = line.find(' ', name_start);
        if (name_end != std::string::npos) {
          const std::string name = line.substr(name_start, name_end - name_start);
          const std::string kind = line.substr(name_end + 1);
          if (kind == "counter") kinds.emplace_back(name, 'c');
          else if (kind == "gauge") kinds.emplace_back(name, 'g');
          else if (kind == "histogram") kinds.emplace_back(name, 'h');
        }
      }
      continue;
    }

    const ParsedLine parsed = parse_sample_line(line);
    if (!parsed.ok) continue;
    saw_any = true;

    if (parsed.name == "snapshot_timestamp_ns") {
      snap.timestamp_ns = parsed.value;
      continue;
    }
    if (parsed.name == "uptime_ns") {
      snap.uptime_ns = parsed.value;
      continue;
    }

    // Histogram series? Match the longest declared histogram base name.
    const MetricsSnapshot::HistogramValue* existing = nullptr;
    std::string base;
    std::string suffix;
    for (const auto& [declared, kind] : kinds) {
      if (kind != 'h') continue;
      if (parsed.name.size() > declared.size() &&
          parsed.name.compare(0, declared.size(), declared) == 0 &&
          parsed.name[declared.size()] == '_') {
        base = declared;
        suffix = parsed.name.substr(declared.size() + 1);
        break;
      }
    }
    if (!base.empty()) {
      MetricsSnapshot::HistogramValue* hist = nullptr;
      for (MetricsSnapshot::HistogramValue& entry : snap.histograms) {
        if (entry.name == base) {
          hist = &entry;
          break;
        }
      }
      if (hist == nullptr) {
        snap.histograms.push_back({base, {}});
        hist = &snap.histograms.back();
      }
      if (suffix == "bucket") {
        if (parsed.le == "+Inf") {
          hist->hist.count = parsed.value;
        } else {
          const int b = bucket_of_ceiling(std::strtoull(parsed.le.c_str(), nullptr, 10));
          // Cumulative-to-bucket conversion happens after the loop; stash
          // the cumulative value for now.
          if (b >= 0) hist->hist.counts[static_cast<std::size_t>(b)] = parsed.value;
        }
      } else if (suffix == "sum") {
        hist->hist.sum = parsed.value;
      } else if (suffix == "max") {
        hist->hist.max = parsed.value;
      }
      // "count" duplicates the +Inf bucket; nothing extra to record.
      continue;
    }

    char kind = 0;
    for (const auto& [declared, declared_kind] : kinds) {
      if (declared == parsed.name) {
        kind = declared_kind;
        break;
      }
    }
    if (kind == 'c') {
      snap.counters.push_back({parsed.name, parsed.value});
    } else if (kind == 'g') {
      snap.gauges.push_back({parsed.name, static_cast<std::int64_t>(parsed.value)});
    }
  }

  if (!saw_any) return std::nullopt;

  // The exposition's buckets are cumulative; the snapshot's are not.
  for (MetricsSnapshot::HistogramValue& entry : snap.histograms) {
    std::uint64_t previous = 0;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      const auto index = static_cast<std::size_t>(b);
      const std::uint64_t cumulative = entry.hist.counts[index];
      if (cumulative == 0) continue;  // unemitted buckets stay zero
      entry.hist.counts[index] = cumulative - previous;
      previous = cumulative;
    }
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace lptsp::obs
