#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

/// Per-request stage tracing for the batch labeling service.
///
/// A Trace is a flat list of spans over one request's lifetime:
/// queue-wait -> canonicalize -> cache-lookup -> reduction -> engine-race
/// (plus one nested span per racing engine, tagged with the winner) ->
/// verify -> store write-through. Spans are produced by RAII SpanScope
/// over steady_clock; the solver retains traces slower than a configured
/// threshold in a bounded ring, dumpable as JSON for slow-request
/// forensics. Span names are static strings (stage enum + engine names),
/// so building a span never allocates; the spans vector itself is
/// reserved once per request.
namespace lptsp::obs {

/// Pipeline stage a span measures. Names feed both the trace JSON and the
/// per-stage registry histograms.
enum class Stage : std::uint8_t {
  QueueWait,      ///< submit() admission -> worker picks the task up
  Canonicalize,   ///< WL refinement canonical form
  CacheLookup,    ///< result-cache probe
  Reduction,      ///< reduction-cache probe + all-pairs BFS on a miss
  EngineRace,     ///< portfolio race (or pinned-engine run)
  EngineAttempt,  ///< one engine inside the race (nested under EngineRace)
  Verify,         ///< labeling reconstruction + validity check
  StoreWrite,     ///< cache insert + durable write-through
  CoalescedWait,  ///< joined an identical in-flight solve
  // Client-side stages (LabelingClient): one joined trace spans both
  // processes when the wire carries the trace context (protocol v4+).
  ClientConnect,      ///< TCP connect + Hello/HelloAck handshake
  ClientSerialize,    ///< request encode into the wire frame
  ClientSend,         ///< write_all of the encoded frame
  ServerTurnaround,   ///< send complete -> response frame decoded
  ClientDeserialize,  ///< response frame decode
  // Server-reported stages, synthesized on the client from the timings
  // the v4 Response echoes back (nested under ServerTurnaround).
  ServerQueue,    ///< server-side queue wait (echoed)
  ServerService,  ///< server-side service time (echoed)
};

/// Compile-checked stage names (no default + -Werror=switch: an unnamed
/// new enumerator fails the build, not the trace dump).
constexpr const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::QueueWait: return "queue-wait";
    case Stage::Canonicalize: return "canonicalize";
    case Stage::CacheLookup: return "cache-lookup";
    case Stage::Reduction: return "reduction";
    case Stage::EngineRace: return "engine-race";
    case Stage::EngineAttempt: return "engine";
    case Stage::Verify: return "verify";
    case Stage::StoreWrite: return "store-write";
    case Stage::CoalescedWait: return "coalesced-wait";
    case Stage::ClientConnect: return "client-connect";
    case Stage::ClientSerialize: return "client-serialize";
    case Stage::ClientSend: return "client-send";
    case Stage::ServerTurnaround: return "server-turnaround";
    case Stage::ClientDeserialize: return "client-deserialize";
    case Stage::ServerQueue: return "server-queue";
    case Stage::ServerService: return "server-service";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

/// One timed interval. `start_ns` is relative to the trace origin.
struct Span {
  Stage stage = Stage::Canonicalize;
  const char* detail = nullptr;  ///< engine name on EngineAttempt spans
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  bool winner = false;  ///< EngineAttempt: this engine won the race
  /// Nested spans (per-engine attempts) run concurrently inside their
  /// EngineRace parent; "stage spans sum to ~wall time" only holds over
  /// non-nested spans.
  bool nested = false;
};

/// Monotonic nanoseconds (steady_clock since its epoch).
[[nodiscard]] inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// One request's spans. Plain data; the solver fills request_id/origin up
/// front and total/result when the response is built.
struct Trace {
  std::uint64_t request_id = 0;
  /// Cross-process trace id (0 = none). Carried on wire v4 Requests so
  /// the client-side and server-side rings can be joined on one id.
  std::uint64_t trace_id = 0;
  /// Sampled traces bypass the ring's slow threshold: a client that set
  /// the sampled bit asked for this trace to be retained end to end.
  bool sampled = false;
  std::uint64_t origin_ns = 0;  ///< steady_now_ns() at request start
  std::uint64_t total_ns = 0;
  const char* result = "";  ///< response source, or the failure status
  std::vector<Span> spans;
};

/// RAII span: measures construction -> destruction (or finish()) and
/// appends to the trace. A null trace disables the scope entirely —
/// including the clock reads, which is what makes the metrics-off
/// configuration genuinely free.
class SpanScope {
 public:
  SpanScope(Trace* trace, Stage stage, const char* detail = nullptr) noexcept
      : trace_(trace), stage_(stage), detail_(detail),
        start_ns_(trace != nullptr ? steady_now_ns() : 0) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() { finish(); }

  /// Close the span early (idempotent).
  void finish() {
    if (trace_ == nullptr) return;
    const std::uint64_t end = steady_now_ns();
    trace_->spans.push_back(
        {stage_, detail_, start_ns_ - trace_->origin_ns, end - start_ns_, false, false});
    trace_ = nullptr;
  }

 private:
  Trace* trace_;
  Stage stage_;
  const char* detail_;
  std::uint64_t start_ns_;
};

/// Bounded ring of the most recent traces at least `threshold_ns` slow.
/// keep() runs once per request *after* the response is built (off the
/// latency-critical path) and under a mutex — contention is bounded by
/// how many traces actually clear the threshold.
class TraceRing {
 public:
  struct Config {
    std::size_t capacity = 64;       ///< retained traces (0 disables retention)
    std::uint64_t threshold_ns = 0;  ///< keep traces with total_ns >= this
  };

  TraceRing() : TraceRing(Config{}) {}
  explicit TraceRing(const Config& config) : config_(config) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Retain `trace` if it clears the threshold (sampled traces always
  /// clear it), evicting the oldest retained trace past capacity.
  void keep(Trace&& trace);

  [[nodiscard]] std::size_t size() const;

  /// Copies of the retained traces, oldest first.
  [[nodiscard]] std::vector<Trace> snapshot() const;

  /// JSON array of the retained traces, oldest first:
  /// [{"id":..,"total_ns":..,"result":"..","spans":[{"stage":"..",
  ///   "detail":"..","start_ns":..,"duration_ns":..,"winner":..,
  ///   "nested":..},...]},...]
  [[nodiscard]] std::string dump_json() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  mutable std::mutex mutex_;
  std::deque<Trace> ring_;
};

}  // namespace lptsp::obs
