#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

/// Observability core for the serving layer: named counters, gauges, and
/// log2-bucket latency histograms behind one registry, snapshotted into a
/// plain struct that serializes to JSON and Prometheus text exposition.
///
/// Design rules, in order:
///   - the record path is header-only, lock-free, and allocation-free:
///     Counter/Gauge are single relaxed atomics, LatencyHistogram::record
///     is a handful of relaxed atomic adds — safe from any thread,
///     including engine workers mid-race;
///   - the registry never owns metric storage. Components keep their
///     metrics as ordinary members (so they work with no registry at all)
///     and register `name -> pointer` entries tagged with an owner token;
///     deregister(owner) makes shorter-lived publishers (the socket
///     server) safe against snapshots outliving them;
///   - snapshot() is the only locking operation, and it only reads.
namespace lptsp::obs {

/// Monotonic event counter (wraps one relaxed atomic).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depths, residency).
class Gauge {
 public:
  void set(std::int64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a LatencyHistogram: plain integers, mergeable
/// (element-wise add) and able to estimate quantiles from its buckets.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  std::array<std::uint64_t, kBuckets> counts{};  ///< counts[b] = samples in bucket b
  std::uint64_t count = 0;                       ///< total samples
  std::uint64_t sum = 0;                         ///< sum of all recorded values
  std::uint64_t max = 0;                         ///< largest recorded value (exact)

  /// Element-wise accumulate `other` into this snapshot. Associative and
  /// commutative, so shard-local histograms can be combined in any order.
  void merge(const HistogramSnapshot& other) noexcept;

  /// Estimated value at quantile q in [0, 1] (nearest-rank bucket walk
  /// with linear interpolation inside the landing bucket). Exact to
  /// within one log2 bucket; the observed max caps the estimate, so the
  /// top quantile never reports a value nothing ever reached. 0 when
  /// empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log2 histogram for nanosecond latencies. Bucket b holds
/// values v with bit_width(v) == b, i.e. [2^(b-1), 2^b); bucket 0 holds
/// exactly 0, the last bucket absorbs everything >= 2^62. record() is
/// lock-free and allocation-free; snapshot() reads racily (relaxed), which
/// can momentarily miscount by in-flight records — fine for monitoring,
/// and quiescent reads (every test) are exact.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  static constexpr int bucket_of(std::uint64_t value) noexcept {
    const int width = std::bit_width(value);  // 0 for value == 0
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket b (0 for bucket 0).
  static constexpr std::uint64_t bucket_floor(int b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Inclusive upper bound of bucket b.
  static constexpr std::uint64_t bucket_ceiling(int b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t value) noexcept {
    counts_[static_cast<std::size_t>(bucket_of(value))].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot snap;
    for (int b = 0; b < kBuckets; ++b) {
      snap.counts[static_cast<std::size_t>(b)] =
          counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
      snap.count += snap.counts[static_cast<std::size_t>(b)];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Everything the registry knew at one instant, as plain data. Sorted by
/// name within each kind, so serializations are deterministic.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
  };

  /// steady_now_ns() at snapshot() time. Two snapshots of the same
  /// registry delta into per-second rates (SnapshotDelta) because the
  /// timestamp shares the histograms' monotonic clock.
  std::uint64_t timestamp_ns = 0;
  /// Nanoseconds since this process first touched the metrics layer.
  std::uint64_t uptime_ns = 0;

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by name; `fallback` when absent.
  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const;
  /// Histogram by name; nullptr when absent.
  [[nodiscard]] const HistogramSnapshot* histogram(const std::string& name) const;

  /// Flat JSON object: {"timestamp_ns":..,"uptime_ns":..,"counters":
  /// {...},"gauges":{...},"histograms":{"name":{"count":..,"sum_ns":..,
  /// "max_ns":..,"p50_ns":..,...}}}.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition (# HELP/# TYPE lines, counters, gauges,
  /// and cumulative-le histogram buckets up to the highest occupied one
  /// plus _sum/_count/_max), names prefixed "lptsp_" with characters
  /// outside [a-zA-Z0-9_:] rewritten to '_'.
  [[nodiscard]] std::string to_prometheus() const;
  /// Human-readable aligned table (the lptsp_stats default view).
  [[nodiscard]] std::string to_text() const;
  /// Single "key=value ..." line for periodic daemon logging: every
  /// counter and gauge, plus p50/p99 of every histogram.
  [[nodiscard]] std::string to_logline() const;
};

/// Monotonic nanosecond timestamp of the first call in this process —
/// the anchor for every snapshot's uptime_ns. MetricRegistry's
/// constructor touches it, so the clock starts when the first registry
/// is built (process startup for every real deployment).
[[nodiscard]] std::uint64_t process_start_ns() noexcept;

/// Name -> metric-pointer directory. Registration is rare (component
/// construction) and mutex-guarded; the hot path never touches the
/// registry at all — components record into their own members and the
/// registry only reads them at snapshot() time. Owners must deregister
/// before their metrics' storage dies (or simply outlive the registry, as
/// everything BatchSolver owns does).
class MetricRegistry {
 public:
  MetricRegistry() { (void)process_start_ns(); }
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Each register_* throws precondition_error on a duplicate name (any
  /// kind): silently shadowing a metric would corrupt dashboards.
  void register_counter(std::string name, const Counter* counter, const void* owner = nullptr);
  void register_gauge(std::string name, std::function<std::int64_t()> read,
                      const void* owner = nullptr);
  void register_histogram(std::string name, const LatencyHistogram* histogram,
                          const void* owner = nullptr);

  /// Remove every metric registered with `owner` (no-op for unknown ones).
  void deregister(const void* owner);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Registered metric count (tests).
  [[nodiscard]] std::size_t size() const;

 private:
  void require_fresh_name(const std::string& name) const;  // caller holds mutex_

  struct CounterEntry {
    std::string name;
    const Counter* counter;
    const void* owner;
  };
  struct GaugeEntry {
    std::string name;
    std::function<std::int64_t()> read;
    const void* owner;
  };
  struct HistogramEntry {
    std::string name;
    const LatencyHistogram* histogram;
    const void* owner;
  };

  mutable std::mutex mutex_;
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistogramEntry> histograms_;
};

}  // namespace lptsp::obs
