#include "obs/journal.hpp"

#include "obs/trace.hpp"

namespace lptsp::obs {

void Journal::emit(EventType type, EventLevel level, const char* detail, std::uint64_t trace_id,
                   std::uint64_t peer, std::int64_t arg0, std::int64_t arg1) {
  JournalEvent event;
  event.t_ns = steady_now_ns();
  event.type = type;
  event.level = level;
  event.trace_id = trace_id;
  event.peer = peer;
  event.arg0 = arg0;
  event.arg1 = arg1;
  event.detail = detail;

  const std::lock_guard lock(mutex_);
  event.seq = next_seq_++;
  if (capacity_ == 0) return;  // seq still advances: emitted() stays truthful
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<JournalEvent> Journal::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<JournalEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Journal::emitted() const {
  const std::lock_guard lock(mutex_);
  return next_seq_ - 1;
}

std::size_t Journal::size() const {
  const std::lock_guard lock(mutex_);
  return ring_.size();
}

std::size_t Journal::capacity() const {
  const std::lock_guard lock(mutex_);
  return capacity_;
}

void Journal::set_capacity(std::size_t capacity) {
  const std::lock_guard lock(mutex_);
  // Rebuild oldest-first inline (snapshot() would re-take mutex_), then
  // keep the newest events that fit the new ring.
  std::vector<JournalEvent> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  const std::size_t keep = ordered.size() < capacity ? ordered.size() : capacity;
  ring_.assign(ordered.end() - static_cast<std::ptrdiff_t>(keep), ordered.end());
  head_ = 0;
  capacity_ = capacity;
}

void Journal::clear() {
  const std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
}

std::string Journal::dump_json(std::uint64_t since_seq) const {
  const std::vector<JournalEvent> events = snapshot();
  std::string out = "[";
  bool first = true;
  for (const JournalEvent& event : events) {
    if (event.seq <= since_seq) continue;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"seq\":" + std::to_string(event.seq);
    out += ",\"t_ns\":" + std::to_string(event.t_ns);
    out += ",\"type\":\"";
    out += journal_event_name(event.type);
    out += "\",\"level\":\"";
    out += journal_level_name(event.level);
    out += "\"";
    if (event.trace_id != 0) out += ",\"trace_id\":" + std::to_string(event.trace_id);
    if (event.peer != 0) out += ",\"peer\":" + std::to_string(event.peer);
    if (event.arg0 != 0) out += ",\"arg0\":" + std::to_string(event.arg0);
    if (event.arg1 != 0) out += ",\"arg1\":" + std::to_string(event.arg1);
    if (event.detail != nullptr) {
      out += ",\"detail\":\"";
      out += event.detail;  // static strings: enum/site names, never user text
      out += "\"";
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

Journal& journal() {
  static Journal instance;
  return instance;
}

}  // namespace lptsp::obs
