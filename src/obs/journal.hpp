#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// Crash-safe structured event journal: the *story* of an incident.
///
/// Metrics say how much and how slow; the journal says what happened,
/// in order — brownout rung changes, store degrade/heal flips, wire
/// faults attributed to a peer connection, armed fault sites firing.
/// Events are fixed-size plain data (static-string details, no
/// allocation per event beyond the ring slot), appended under one
/// mutex; emission points are incidents, not per-request work, so the
/// lock is cold in steady state. The ring is bounded and process-global
/// (obs::journal()), rendered as JSON over the wire (StatsFormat::
/// Journal) and dumped atomically by lptspd on SIGQUIT and clean
/// shutdown.
namespace lptsp::obs {

/// What kind of thing happened. Extend freely: journal_event_name is
/// compile-checked (defaultless switch + -Werror=switch).
enum class EventType : std::uint8_t {
  BrownoutRung,    ///< admission ladder moved; arg0 = old rung, arg1 = new
  StoreDegraded,   ///< durable store flipped read-only; arg0 = consecutive failures
  StoreHealed,     ///< probe compaction restored writes
  WireFault,       ///< protocol error sent to a peer; peer = connection id
  FaultFired,      ///< an armed fault site fired; detail = site name
  OverloadReject,  ///< request rejected at the brownout reject rung
  SloBreach,       ///< rolling deadline-hit ratio fell below target; arg0 = pct, arg1 = target
  SloRecovered,    ///< rolling deadline-hit ratio back at/above target
  TunerEffort,     ///< per-bucket effort changed; peer = bucket, arg0 = old %, arg1 = new %
  TunerPretrim,    ///< exact pre-trim flipped; peer = bucket, arg0/arg1 = old/new (1 = trimmed)
};

constexpr const char* journal_event_name(EventType type) noexcept {
  switch (type) {
    case EventType::BrownoutRung: return "brownout-rung";
    case EventType::StoreDegraded: return "store-degraded";
    case EventType::StoreHealed: return "store-healed";
    case EventType::WireFault: return "wire-fault";
    case EventType::FaultFired: return "fault-fired";
    case EventType::OverloadReject: return "overload-reject";
    case EventType::SloBreach: return "slo-breach";
    case EventType::SloRecovered: return "slo-recovered";
    case EventType::TunerEffort: return "tuner-effort";
    case EventType::TunerPretrim: return "tuner-pretrim";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

enum class EventLevel : std::uint8_t {
  Info,  ///< expected lifecycle (heal, rung release)
  Warn,  ///< degraded but serving (rung engage, fault fired)
  Error, ///< work refused or lost (overload reject, wire fault, store degrade)
};

constexpr const char* journal_level_name(EventLevel level) noexcept {
  switch (level) {
    case EventLevel::Info: return "info";
    case EventLevel::Warn: return "warn";
    case EventLevel::Error: return "error";
  }
  return "unknown";
}

/// One journal entry. `detail` must be a static string (enum names,
/// fault-site names) — the journal never owns heap text.
struct JournalEvent {
  std::uint64_t seq = 0;       ///< monotone per-journal sequence
  std::uint64_t t_ns = 0;      ///< steady_now_ns() at emission
  EventType type = EventType::BrownoutRung;
  EventLevel level = EventLevel::Info;
  std::uint64_t trace_id = 0;  ///< correlating request trace id (0 = none)
  std::uint64_t peer = 0;      ///< connection id (0 = none)
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  const char* detail = nullptr;
};

/// Bounded MPMC event ring. Appends are mutex-guarded but events are
/// incidents (rung flips, faults), not requests — in steady state the
/// mutex is untouched.
class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit Journal(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void emit(EventType type, EventLevel level, const char* detail = nullptr,
            std::uint64_t trace_id = 0, std::uint64_t peer = 0, std::int64_t arg0 = 0,
            std::int64_t arg1 = 0);

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<JournalEvent> snapshot() const;

  /// Total events ever emitted (retained or evicted).
  [[nodiscard]] std::uint64_t emitted() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;

  /// Resize the ring in place, keeping the newest events that still fit.
  /// Sequence numbering is untouched (emitted() stays truthful), so an
  /// incremental reader's --since cursor survives a resize.
  void set_capacity(std::size_t capacity);

  /// JSON array, oldest first, of retained events with seq > since_seq
  /// (0 = everything). The seq field is the incremental-scrape cursor:
  /// pass the largest seq you have seen to fetch only newer events.
  [[nodiscard]] std::string dump_json(std::uint64_t since_seq = 0) const;

  /// Drop every retained event (tests).
  void clear();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  std::vector<JournalEvent> ring_;  ///< circular once full
  std::size_t head_ = 0;            ///< oldest element when ring_ is full
};

/// The process-global journal every emission point writes to. One
/// journal per process matches one daemon per process; tests that need
/// isolation clear() it.
[[nodiscard]] Journal& journal();

}  // namespace lptsp::obs
