#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

/// Work-attribution profiling: what the engines DID, not just how long
/// they took. Three pieces, all feeding the learning-loop roadmap item
/// (engine pre-trim, effort tuning, admission pricing by expected work):
///
///   - EngineWork / WorkCounters: per-attempt work counts (B&B nodes,
///     LK kicks, HK DP cells, candidate-list wakes) threaded out of the
///     engines and aggregated into the MetricRegistry next to the
///     engine_ns_* histograms. The counts are deterministic functions of
///     the instance and seed — identical across ISA dispatch tiers even
///     when nanoseconds differ — which is what makes them comparable
///     across machines.
///   - KeyProfileTable: a bounded, sharded top-K accumulator keyed by the
///     canonical graph hash, so a live daemon can answer "which graphs
///     are eating my CPU" under Zipf-repeat traffic.
///   - SloTracker: per-request deadline hit/miss counters, slack/overrun
///     histograms, and a rolling hit-ratio gauge that journals SLO
///     threshold crossings.
///
/// Everything here follows the metrics core's rules: record paths are
/// cheap (relaxed atomics, or one shard mutex on the per-solve — never
/// per-cache-hit — attribution path), storage is owned by components and
/// only *registered* into the registry, and names are a contract
/// (documented in README "Profiling & SLO").
namespace lptsp::obs {

/// Fixed-point "%.2f" without locale-sensitive formatting: the profile
/// JSON is a machine contract, so the decimal point must be a '.'
/// regardless of the process locale. Total on every double: NaN and
/// negatives render "0.00", +inf and values beyond the printable range
/// clamp to the maximum (casting a non-finite or huge double to an
/// integer is undefined behavior, and rates computed over a tiny uptime
/// right after start can be exactly that).
[[nodiscard]] std::string format_fixed2(double value);

/// Work one engine run performed, in engine-native units. Plain data so
/// the tsp/ engines can report counts without depending on this header:
/// each Run struct carries raw integers and the portfolio assembles them.
struct EngineWork {
  std::uint64_t bb_nodes = 0;     ///< B&B search nodes expanded
  std::uint64_t bb_pruned = 0;    ///< B&B subtrees cut by the MST bound
  std::uint64_t lk_kicks = 0;     ///< chained-LK double-bridge kicks applied
  std::uint64_t lk_accepted = 0;  ///< kicks whose re-optimized tour improved
  std::uint64_t lk_wakes = 0;     ///< candidate-list don't-look queue wakes
  std::uint64_t lk_moves = 0;     ///< applied 2-opt/Or-opt improving moves
  std::uint64_t hk_layers = 0;    ///< HK DP popcount layers completed
  std::uint64_t hk_cells = 0;     ///< HK DP cells written across those layers

  void merge(const EngineWork& other) noexcept {
    bb_nodes += other.bb_nodes;
    bb_pruned += other.bb_pruned;
    lk_kicks += other.lk_kicks;
    lk_accepted += other.lk_accepted;
    lk_wakes += other.lk_wakes;
    lk_moves += other.lk_moves;
    hk_layers += other.hk_layers;
    hk_cells += other.hk_cells;
  }

  [[nodiscard]] bool any() const noexcept {
    return (bb_nodes | bb_pruned | lk_kicks | lk_accepted | lk_wakes | lk_moves | hk_layers |
            hk_cells) != 0;
  }
};

/// Registry-facing aggregate of EngineWork: one Counter per field, with
/// stable registered names (engine_work_*) that are part of the metrics
/// contract. add() is a handful of relaxed atomic adds, called once per
/// engine attempt — never on the cache-hit path.
class WorkCounters {
 public:
  void add(const EngineWork& work) noexcept;

  /// Register every counter as engine_work_<field> under `owner`.
  void register_into(MetricRegistry& registry, const void* owner) const;

  /// Point-in-time copy (monotone-racy like every counter read).
  [[nodiscard]] EngineWork totals() const noexcept;

  /// JSON object grouping totals per engine with average per-second rates
  /// over `uptime_ns`:
  /// {"held_karp":{"layers":..,"cells":..,"cells_per_s":..},
  ///  "branch_bound":{"nodes":..,"pruned":..,"nodes_per_s":..},
  ///  "chained_lk":{"kicks":..,"accepted":..,"wakes":..,"moves":..,
  ///                "kicks_per_s":..}}
  [[nodiscard]] std::string to_json(std::uint64_t uptime_ns) const;

 private:
  Counter bb_nodes_;
  Counter bb_pruned_;
  Counter lk_kicks_;
  Counter lk_accepted_;
  Counter lk_wakes_;
  Counter lk_moves_;
  Counter hk_layers_;
  Counter hk_cells_;
};

/// Bounded, sharded top-K accumulator of per-canonical-key solve cost.
/// record() takes one shard mutex (shard = key hash), finds or inserts
/// the key's entry, and accumulates. When a shard is full the entry with
/// the least attributed engine time is evicted space-saving style: the
/// newcomer inherits the victim's totals, so a genuinely hot key can
/// never be displaced by a stream of one-shot keys, at the price of the
/// reported totals being an overestimate for keys that ever evicted
/// (bounded by the victim's totals at eviction time — the classic
/// space-saving error bound). Keys are the canonical form's
/// order-insensitive hash; collisions merge attribution, which for a
/// CPU-attribution profile is an acceptable (and astronomically rare)
/// blur, never a correctness hazard.
class KeyProfileTable {
 public:
  struct Entry {
    std::uint64_t key_hash = 0;       ///< CanonicalForm::hash
    int n = 0;                        ///< vertex count of the canonical graph
    int size_bucket = 0;              ///< bit_width(n), the portfolio's bucketing
    std::uint64_t solves = 0;         ///< engine races attributed to this key
    std::uint64_t engine_ns = 0;      ///< total race wall time attributed
    std::uint64_t last_engine_ns = 0; ///< most recent single race wall time
    const char* last_engine = nullptr;  ///< static engine name, never owned text
    std::uint64_t deadline_hits = 0;
    std::uint64_t deadline_misses = 0;
  };

  struct Config {
    std::size_t shards = 8;     ///< lock striping; also hash distribution
    std::size_t per_shard = 16; ///< max tracked keys per shard
  };

  // Two constructors instead of `const Config& = {}`: gcc < 13 rejects a
  // braced default argument of a nested aggregate with member initializers
  // (bug 88165).
  KeyProfileTable() : KeyProfileTable(Config{}) {}
  explicit KeyProfileTable(const Config& config);

  KeyProfileTable(const KeyProfileTable&) = delete;
  KeyProfileTable& operator=(const KeyProfileTable&) = delete;

  /// Attribute one engine race to `key_hash`. `engine` must be a static
  /// string (engine_name_cstr). `had_deadline` false means the race ran
  /// unbounded and contributes no deadline outcome.
  void record(std::uint64_t key_hash, int n, std::uint64_t engine_ns, const char* engine,
              bool had_deadline, bool deadline_hit);

  /// Keys currently tracked (<= shards * per_shard).
  [[nodiscard]] std::size_t size() const;

  /// The top `k` entries by attributed engine_ns, hottest first.
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const;

  /// Mean attributed race cost per solve across the tracked keys in
  /// `size_bucket` (bit_width(n)), 0 when no tracked key has that bucket.
  /// This is the admission predictor's hot-key signal: under Zipf-repeat
  /// traffic the tracked keys ARE the traffic, so their mean is a better
  /// per-request cost estimate than a global average.
  [[nodiscard]] std::uint64_t bucket_mean_ns(int size_bucket) const;

  /// Evictions performed so far (how approximate the totals are).
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_.value(); }

  /// The eviction counter itself, for registry registration.
  [[nodiscard]] const Counter& evictions_counter() const noexcept { return evictions_; }

  /// JSON array of top(k), hottest first:
  /// [{"key":"<hex hash>","n":..,"size_bucket":..,"solves":..,
  ///   "engine_ns":..,"last_engine_ns":..,"last_engine":"..",
  ///   "deadline_hits":..,"deadline_misses":..},...]
  [[nodiscard]] std::string to_json(std::size_t k) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;  ///< unordered; scanned linearly (small)
  };

  Config config_;
  std::vector<Shard> shards_;
  Counter evictions_;
};

/// Deadline SLO tracking: monotone hit/miss counters, slack and overrun
/// histograms (how much margin hits had, how badly misses blew through),
/// and a rolling hit ratio over the last `window` deadline-bounded
/// requests. When the rolling ratio crosses below `breach_percent` the
/// tracker journals an SloBreach event (and SloRecovered on the way back
/// up), so the incident timeline says when the service started missing
/// its deadlines, not just how many it missed overall.
class SloTracker {
 public:
  struct Config {
    std::size_t window = 512;    ///< rolling-ratio sample window
    int breach_percent = 90;     ///< journal a breach below this rolling %
    std::size_t min_samples = 32;  ///< no breach verdicts before this many
  };

  SloTracker() : SloTracker(Config{}) {}  // see KeyProfileTable on gcc 88165
  explicit SloTracker(const Config& config);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// One deadline-bounded request: `elapsed_ns` against `budget_ms` (> 0).
  void record(std::uint64_t elapsed_ns, std::int64_t budget_ms);

  /// A request served from cache under a deadline: counted as a hit with
  /// the full budget as slack (the pipeline spent no engine time on it).
  void record_cache_hit(std::int64_t budget_ms);

  /// Rolling hit ratio in percent over the window (100 when empty).
  [[nodiscard]] std::int64_t rolling_hit_percent() const;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.value(); }

  /// Register deadline_hits/deadline_misses counters, the
  /// deadline_slack_ns/deadline_overrun_ns histograms, and the
  /// deadline_hit_ratio_percent gauge under `owner`.
  void register_into(MetricRegistry& registry, const void* owner);

  /// JSON object:
  /// {"deadline_hits":..,"deadline_misses":..,"hit_ratio":..,
  ///  "rolling_hit_percent":..,"window":..,"breached":..,
  ///  "slack_ns":{"p50":..,"p99":..},"overrun_ns":{"p50":..,"p99":..}}
  [[nodiscard]] std::string to_json() const;

 private:
  /// Append one outcome to the ring and emit breach/recover journal
  /// events on threshold crossings.
  void roll(bool hit);

  Config config_;
  Counter hits_;
  Counter misses_;
  LatencyHistogram slack_ns_;    ///< budget - elapsed, for hits
  LatencyHistogram overrun_ns_;  ///< elapsed - budget, for misses
  mutable std::mutex mutex_;
  std::vector<std::uint8_t> ring_;  ///< 1 = hit; circular once full
  std::size_t ring_next_ = 0;
  std::size_t ring_filled_ = 0;
  std::size_t ring_hits_ = 0;
  bool breached_ = false;
};

}  // namespace lptsp::obs
