#include "tsp/mst.hpp"

#include <limits>

#include "util/check.hpp"

namespace lptsp {

std::vector<std::vector<int>> SpanningTree::adjacency() const {
  std::vector<std::vector<int>> adj(parent.size());
  for (std::size_t v = 1; v < parent.size(); ++v) {
    const int p = parent[v];
    adj[v].push_back(p);
    adj[static_cast<std::size_t>(p)].push_back(static_cast<int>(v));
  }
  return adj;
}

std::vector<int> SpanningTree::odd_degree_vertices() const {
  const auto adj = adjacency();
  std::vector<int> odd;
  for (std::size_t v = 0; v < adj.size(); ++v) {
    if (adj[v].size() % 2 == 1) odd.push_back(static_cast<int>(v));
  }
  return odd;
}

SpanningTree prim_mst(const MetricInstance& instance) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "MST needs at least one vertex");
  SpanningTree tree;
  tree.parent.assign(static_cast<std::size_t>(n), -1);
  if (n == 1) return tree;

  constexpr Weight kInf = std::numeric_limits<Weight>::max();
  std::vector<Weight> best(static_cast<std::size_t>(n), kInf);
  std::vector<int> from(static_cast<std::size_t>(n), -1);
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  best[0] = 0;
  for (int round = 0; round < n; ++round) {
    int pick = -1;
    for (int v = 0; v < n; ++v) {
      if (!in_tree[static_cast<std::size_t>(v)] &&
          (pick == -1 || best[static_cast<std::size_t>(v)] < best[static_cast<std::size_t>(pick)])) {
        pick = v;
      }
    }
    in_tree[static_cast<std::size_t>(pick)] = true;
    if (from[static_cast<std::size_t>(pick)] != -1) {
      tree.parent[static_cast<std::size_t>(pick)] = from[static_cast<std::size_t>(pick)];
      tree.total_weight += best[static_cast<std::size_t>(pick)];
    }
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      const Weight w = instance.weight(pick, v);
      if (w < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = w;
        from[static_cast<std::size_t>(v)] = pick;
      }
    }
  }
  return tree;
}

}  // namespace lptsp
