#include "tsp/instance.hpp"

#include <algorithm>
#include <ostream>
#include <set>

#include "util/check.hpp"

namespace lptsp {

MetricInstance::MetricInstance(int n) : n_(n) {
  LPTSP_REQUIRE(n >= 0, "instance size must be non-negative");
  w_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
}

MetricInstance MetricInstance::from_matrix(int n, const std::vector<Weight>& flat) {
  LPTSP_REQUIRE(flat.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                "matrix size mismatch");
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Weight w = flat[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      if (i == j) {
        LPTSP_REQUIRE(w == 0, "diagonal must be zero");
      } else {
        LPTSP_REQUIRE(w >= 0, "weights must be non-negative");
        LPTSP_REQUIRE(w == flat[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)],
                      "matrix must be symmetric");
        instance.w_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] = w;
      }
    }
  }
  return instance;
}

Weight MetricInstance::weight(int i, int j) const {
  LPTSP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "vertex out of range");
  return w_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)];
}

void MetricInstance::set_weight(int i, int j, Weight w) {
  LPTSP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "vertex out of range");
  LPTSP_REQUIRE(i != j, "diagonal weights are fixed at zero");
  LPTSP_REQUIRE(w >= 0, "weights must be non-negative");
  w_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)] = w;
  w_[static_cast<std::size_t>(j) * n_ + static_cast<std::size_t>(i)] = w;
}

Weight MetricInstance::min_weight() const {
  LPTSP_REQUIRE(n_ >= 2, "min_weight needs at least 2 vertices");
  Weight best = weight_unchecked(0, 1);
  for (int i = 0; i < n_; ++i) {
    const Weight* wrow = row(i);
    for (int j = i + 1; j < n_; ++j) best = std::min(best, wrow[j]);
  }
  return best;
}

Weight MetricInstance::max_weight() const {
  LPTSP_REQUIRE(n_ >= 2, "max_weight needs at least 2 vertices");
  Weight best = weight_unchecked(0, 1);
  for (int i = 0; i < n_; ++i) {
    const Weight* wrow = row(i);
    for (int j = i + 1; j < n_; ++j) best = std::max(best, wrow[j]);
  }
  return best;
}

std::vector<Weight> MetricInstance::distinct_weights() const {
  std::set<Weight> values;
  for (int i = 0; i < n_; ++i) {
    const Weight* wrow = row(i);
    for (int j = i + 1; j < n_; ++j) values.insert(wrow[j]);
  }
  return {values.begin(), values.end()};
}

bool MetricInstance::is_metric() const {
  for (int i = 0; i < n_; ++i) {
    const Weight* wi = row(i);
    for (int j = 0; j < n_; ++j) {
      if (j == i) continue;
      const Weight* wj = row(j);
      const Weight wij = wi[j];
      for (int k = 0; k < n_; ++k) {
        if (k == i || k == j) continue;
        if (wi[k] > wij + wj[k]) return false;
      }
    }
  }
  return true;
}

MetricInstance MetricInstance::with_zero_depot() const {
  MetricInstance result(n_ + 1);
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) result.set_weight(i, j, weight(i, j));
  }
  // Depot row stays zero: result.weight(n_, v) == 0 for every v.
  return result;
}

void MetricInstance::write_tsplib(std::ostream& out, const std::string& name) const {
  out << "NAME: " << name << "\n"
      << "TYPE: TSP\n"
      << "COMMENT: reduced L(p)-labeling instance (lptsp)\n"
      << "DIMENSION: " << n_ << "\n"
      << "EDGE_WEIGHT_TYPE: EXPLICIT\n"
      << "EDGE_WEIGHT_FORMAT: FULL_MATRIX\n"
      << "EDGE_WEIGHT_SECTION\n";
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) out << weight(i, j) << (j + 1 == n_ ? '\n' : ' ');
  }
  out << "EOF\n";
}

}  // namespace lptsp
