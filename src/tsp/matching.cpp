#include "tsp/matching.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <set>

#include "util/check.hpp"

namespace lptsp {

namespace {

/// State for one augmenting-path search of the blossom algorithm.
struct BlossomSearch {
  const Graph& graph;
  std::vector<int>& match;
  std::vector<int> parent;
  std::vector<int> base;
  std::vector<bool> used;
  std::vector<bool> in_blossom;

  explicit BlossomSearch(const Graph& g, std::vector<int>& m)
      : graph(g),
        match(m),
        parent(static_cast<std::size_t>(g.n()), -1),
        base(static_cast<std::size_t>(g.n())),
        used(static_cast<std::size_t>(g.n()), false),
        in_blossom(static_cast<std::size_t>(g.n()), false) {}

  /// Lowest common ancestor of a and b in the alternating forest, walking
  /// through blossom bases.
  int lca(int a, int b) {
    std::vector<bool> visited(static_cast<std::size_t>(graph.n()), false);
    int cursor = a;
    while (true) {
      cursor = base[static_cast<std::size_t>(cursor)];
      visited[static_cast<std::size_t>(cursor)] = true;
      if (match[static_cast<std::size_t>(cursor)] == -1) break;
      cursor = parent[static_cast<std::size_t>(match[static_cast<std::size_t>(cursor)])];
    }
    cursor = b;
    while (true) {
      cursor = base[static_cast<std::size_t>(cursor)];
      if (visited[static_cast<std::size_t>(cursor)]) return cursor;
      cursor = parent[static_cast<std::size_t>(match[static_cast<std::size_t>(cursor)])];
    }
  }

  void mark_path(int v, int blossom_base, int child) {
    while (base[static_cast<std::size_t>(v)] != blossom_base) {
      in_blossom[static_cast<std::size_t>(base[static_cast<std::size_t>(v)])] = true;
      in_blossom[static_cast<std::size_t>(
          base[static_cast<std::size_t>(match[static_cast<std::size_t>(v)])])] = true;
      parent[static_cast<std::size_t>(v)] = child;
      child = match[static_cast<std::size_t>(v)];
      v = parent[static_cast<std::size_t>(match[static_cast<std::size_t>(v)])];
    }
  }

  /// BFS for an augmenting path from root; augments and returns true on
  /// success.
  bool find_and_augment(int root) {
    std::fill(parent.begin(), parent.end(), -1);
    std::fill(used.begin(), used.end(), false);
    for (int v = 0; v < graph.n(); ++v) base[static_cast<std::size_t>(v)] = v;

    used[static_cast<std::size_t>(root)] = true;
    std::vector<int> queue{root};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int v = queue[head];
      for (const int u : graph.neighbors(v)) {
        if (base[static_cast<std::size_t>(v)] == base[static_cast<std::size_t>(u)] ||
            match[static_cast<std::size_t>(v)] == u) {
          continue;
        }
        if (u == root ||
            (match[static_cast<std::size_t>(u)] != -1 &&
             parent[static_cast<std::size_t>(match[static_cast<std::size_t>(u)])] != -1)) {
          // Odd cycle found: contract the blossom.
          const int blossom_base = lca(v, u);
          std::fill(in_blossom.begin(), in_blossom.end(), false);
          mark_path(v, blossom_base, u);
          mark_path(u, blossom_base, v);
          for (int i = 0; i < graph.n(); ++i) {
            if (in_blossom[static_cast<std::size_t>(base[static_cast<std::size_t>(i)])]) {
              base[static_cast<std::size_t>(i)] = blossom_base;
              if (!used[static_cast<std::size_t>(i)]) {
                used[static_cast<std::size_t>(i)] = true;
                queue.push_back(i);
              }
            }
          }
        } else if (parent[static_cast<std::size_t>(u)] == -1) {
          parent[static_cast<std::size_t>(u)] = v;
          if (match[static_cast<std::size_t>(u)] == -1) {
            // Augment along the alternating path ending at u.
            int end = u;
            while (end != -1) {
              const int prev = parent[static_cast<std::size_t>(end)];
              const int next = match[static_cast<std::size_t>(prev)];
              match[static_cast<std::size_t>(end)] = prev;
              match[static_cast<std::size_t>(prev)] = end;
              end = next;
            }
            return true;
          }
          used[static_cast<std::size_t>(match[static_cast<std::size_t>(u)])] = true;
          queue.push_back(match[static_cast<std::size_t>(u)]);
        }
      }
    }
    return false;
  }
};

}  // namespace

std::vector<int> max_cardinality_matching(const Graph& graph) {
  std::vector<int> match(static_cast<std::size_t>(graph.n()), -1);
  // Greedy warm start halves the number of augmenting searches.
  for (int v = 0; v < graph.n(); ++v) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    for (const int u : graph.neighbors(v)) {
      if (match[static_cast<std::size_t>(u)] == -1) {
        match[static_cast<std::size_t>(v)] = u;
        match[static_cast<std::size_t>(u)] = v;
        break;
      }
    }
  }
  for (int v = 0; v < graph.n(); ++v) {
    if (match[static_cast<std::size_t>(v)] == -1) {
      BlossomSearch search(graph, match);
      search.find_and_augment(v);
    }
  }
  return match;
}

MatchingResult min_weight_perfect_matching_dp(const MetricInstance& instance,
                                              const std::vector<int>& vertices) {
  const int k = static_cast<int>(vertices.size());
  LPTSP_REQUIRE(k % 2 == 0, "perfect matching needs an even vertex count");
  LPTSP_REQUIRE(k <= 22, "matching DP capped at 22 vertices");
  MatchingResult result;
  result.certified_optimal = true;
  if (k == 0) return result;

  // Pull formulation: dp[M] pairs the lowest set bit of M with every other
  // member, so each even-popcount mask is resolved once and reconstruction
  // can re-derive the argmin directly.
  constexpr Weight kInf = std::numeric_limits<Weight>::max() / 4;
  const std::uint32_t full = (1u << k) - 1;
  std::vector<Weight> dp(static_cast<std::size_t>(full) + 1, kInf);
  dp[0] = 0;
  const auto pair_weight = [&](int i, int j) {
    return instance.weight(vertices[static_cast<std::size_t>(i)],
                           vertices[static_cast<std::size_t>(j)]);
  };
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) % 2 != 0) continue;
    const int i = std::countr_zero(mask);
    Weight best = kInf;
    for (std::uint32_t rest = mask ^ (1u << i); rest != 0; rest &= rest - 1) {
      const int j = std::countr_zero(rest);
      const Weight base = dp[mask ^ (1u << i) ^ (1u << j)];
      if (base < kInf) best = std::min(best, base + pair_weight(i, j));
    }
    dp[mask] = best;
  }
  LPTSP_ENSURE(dp[full] < kInf, "matching DP failed on a complete instance");
  result.weight = dp[full];

  std::uint32_t mask = full;
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    for (std::uint32_t rest = mask ^ (1u << i); rest != 0; rest &= rest - 1) {
      const int j = std::countr_zero(rest);
      const Weight base = dp[mask ^ (1u << i) ^ (1u << j)];
      if (base < kInf && base + pair_weight(i, j) == dp[mask]) {
        result.pairs.emplace_back(vertices[static_cast<std::size_t>(i)],
                                  vertices[static_cast<std::size_t>(j)]);
        mask ^= (1u << i) | (1u << j);
        break;
      }
    }
  }
  return result;
}

MatchingResult min_weight_perfect_matching_two_valued(const MetricInstance& instance,
                                                      const std::vector<int>& vertices) {
  const int k = static_cast<int>(vertices.size());
  LPTSP_REQUIRE(k % 2 == 0, "perfect matching needs an even vertex count");
  MatchingResult result;
  result.certified_optimal = true;
  if (k == 0) return result;

  std::set<Weight> values;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      values.insert(instance.weight(vertices[static_cast<std::size_t>(i)],
                                    vertices[static_cast<std::size_t>(j)]));
    }
  }
  LPTSP_REQUIRE(values.size() <= 2, "two-valued matching requires at most 2 distinct weights");
  const Weight cheap = *values.begin();
  const Weight heavy = *values.rbegin();

  // Maximum matching restricted to cheap edges; heavy edges pair the rest.
  Graph cheap_graph(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (instance.weight(vertices[static_cast<std::size_t>(i)],
                          vertices[static_cast<std::size_t>(j)]) == cheap) {
        cheap_graph.add_edge(i, j);
      }
    }
  }
  const auto match = max_cardinality_matching(cheap_graph);
  std::vector<int> leftover;
  for (int i = 0; i < k; ++i) {
    if (match[static_cast<std::size_t>(i)] == -1) {
      leftover.push_back(i);
    } else if (match[static_cast<std::size_t>(i)] > i) {
      result.pairs.emplace_back(vertices[static_cast<std::size_t>(i)],
                                vertices[static_cast<std::size_t>(match[static_cast<std::size_t>(i)])]);
      result.weight += cheap;
    }
  }
  for (std::size_t i = 0; i + 1 < leftover.size(); i += 2) {
    result.pairs.emplace_back(vertices[static_cast<std::size_t>(leftover[i])],
                              vertices[static_cast<std::size_t>(leftover[i + 1])]);
    result.weight += heavy;
  }
  return result;
}

MatchingResult greedy_perfect_matching(const MetricInstance& instance,
                                       const std::vector<int>& vertices) {
  const int k = static_cast<int>(vertices.size());
  LPTSP_REQUIRE(k % 2 == 0, "perfect matching needs an even vertex count");
  MatchingResult result;
  result.certified_optimal = (k <= 2);
  if (k == 0) return result;

  struct Edge {
    Weight w;
    int i, j;
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(k) * (k - 1) / 2);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      edges.push_back({instance.weight(vertices[static_cast<std::size_t>(i)],
                                       vertices[static_cast<std::size_t>(j)]),
                       i, j});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });
  std::vector<int> partner(static_cast<std::size_t>(k), -1);
  for (const auto& edge : edges) {
    if (partner[static_cast<std::size_t>(edge.i)] == -1 &&
        partner[static_cast<std::size_t>(edge.j)] == -1) {
      partner[static_cast<std::size_t>(edge.i)] = edge.j;
      partner[static_cast<std::size_t>(edge.j)] = edge.i;
    }
  }

  // 2-exchange refinement: for pairs (a,b) and (c,d), try the two
  // alternative pairings until a fixpoint (bounded passes for safety).
  const auto w = [&](int a, int b) {
    return instance.weight(vertices[static_cast<std::size_t>(a)],
                           vertices[static_cast<std::size_t>(b)]);
  };
  std::vector<std::pair<int, int>> local_pairs;
  for (int i = 0; i < k; ++i) {
    if (partner[static_cast<std::size_t>(i)] > i) local_pairs.emplace_back(i, partner[static_cast<std::size_t>(i)]);
  }
  for (int pass = 0; pass < 50; ++pass) {
    bool improved = false;
    for (std::size_t x = 0; x < local_pairs.size(); ++x) {
      for (std::size_t y = x + 1; y < local_pairs.size(); ++y) {
        auto& [a, b] = local_pairs[x];
        auto& [c, d] = local_pairs[y];
        const Weight current = w(a, b) + w(c, d);
        if (w(a, c) + w(b, d) < current) {
          std::swap(b, c);
          improved = true;
        } else if (w(a, d) + w(b, c) < current) {
          std::swap(b, d);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  for (const auto& [i, j] : local_pairs) {
    result.pairs.emplace_back(vertices[static_cast<std::size_t>(i)],
                              vertices[static_cast<std::size_t>(j)]);
    result.weight += w(i, j);
  }
  return result;
}

MatchingResult min_weight_perfect_matching(const MetricInstance& instance,
                                           const std::vector<int>& vertices) {
  const int k = static_cast<int>(vertices.size());
  LPTSP_REQUIRE(k % 2 == 0, "perfect matching needs an even vertex count");
  if (k == 0) return {.pairs = {}, .weight = 0, .certified_optimal = true};

  std::set<Weight> values;
  for (int i = 0; i < k && values.size() <= 2; ++i) {
    for (int j = i + 1; j < k && values.size() <= 2; ++j) {
      values.insert(instance.weight(vertices[static_cast<std::size_t>(i)],
                                    vertices[static_cast<std::size_t>(j)]));
    }
  }
  if (values.size() <= 2) return min_weight_perfect_matching_two_valued(instance, vertices);
  if (k <= 20) return min_weight_perfect_matching_dp(instance, vertices);
  return greedy_perfect_matching(instance, vertices);
}

}  // namespace lptsp
