#include "tsp/candidates.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

CandidateLists::CandidateLists(const MetricInstance& instance, int k) : n_(instance.n()) {
  LPTSP_REQUIRE(k >= 1, "candidate list length must be positive");
  k_ = std::min(k, n_ - 1);
  if (k_ <= 0) {
    k_ = 0;
    return;
  }
  flat_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_));
  std::vector<int> others;
  others.reserve(static_cast<std::size_t>(n_) - 1);
  for (int v = 0; v < n_; ++v) {
    others.clear();
    for (int u = 0; u < n_; ++u) {
      if (u != v) others.push_back(u);
    }
    const Weight* wrow = instance.row(v);
    const auto cheaper = [wrow](int a, int b) {
      return wrow[a] != wrow[b] ? wrow[a] < wrow[b] : a < b;
    };
    std::partial_sort(others.begin(), others.begin() + k_, others.end(), cheaper);
    std::copy(others.begin(), others.begin() + k_,
              flat_.begin() + static_cast<std::size_t>(v) * static_cast<std::size_t>(k_));
  }
}

}  // namespace lptsp
