#include "tsp/candidates.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"
#include "util/check.hpp"

namespace lptsp {

CandidateLists::CandidateLists(const MetricInstance& instance, int k, bool tie_aware)
    : n_(instance.n()) {
  LPTSP_REQUIRE(k >= 1, "candidate list length must be positive");
  k_ = std::min(k, n_ - 1);
  offsets_.assign(static_cast<std::size_t>(std::max(n_, 0)) + 1, 0);
  if (k_ <= 0) {
    k_ = 0;
    complete_ = true;  // n <= 1: the empty list trivially covers everyone
    return;
  }
  flat_.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_));
  complete_ = true;
  // The cheapest-tier census below is a dense min + count-equal scan of
  // each weight row; both primitives come from the ISA dispatch table
  // (scalar / AVX2 / AVX-512), split around the diagonal so the zero
  // self-weight never wins the min.
  const kernels::KernelTable& kt = kernels::kernels();
  std::vector<int> others;
  others.reserve(static_cast<std::size_t>(n_) - 1);
  for (int v = 0; v < n_; ++v) {
    others.clear();
    for (int u = 0; u < n_; ++u) {
      if (u != v) others.push_back(u);
    }
    const Weight* wrow = instance.row(v);

    int limit = k_;
    if (tie_aware && limit < n_ - 1) {
      // Cheapest-tier census: if more than k partners sit at the minimum
      // weight, keep the whole tier (capped) — cutting inside a tier is
      // an arbitrary vertex-id decision, not a quality one.
      const Weight cheapest = std::min(kt.weight_range_min(wrow, v),
                                       kt.weight_range_min(wrow + v + 1, n_ - v - 1));
      const int tier = kt.weight_range_count_eq(wrow, v, cheapest) +
                       kt.weight_range_count_eq(wrow + v + 1, n_ - v - 1, cheapest);
      limit = std::min(std::max(k_, std::min(tier, kTieCap)), n_ - 1);
    }

    const auto cheaper = [wrow](int a, int b) {
      return wrow[a] != wrow[b] ? wrow[a] < wrow[b] : a < b;
    };
    std::partial_sort(others.begin(), others.begin() + limit, others.end(), cheaper);
    flat_.insert(flat_.end(), others.begin(), others.begin() + limit);
    offsets_[static_cast<std::size_t>(v) + 1] = static_cast<std::int64_t>(flat_.size());
    if (limit < n_ - 1) complete_ = false;
  }
}

}  // namespace lptsp
