#include "tsp/candidates.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

CandidateLists::CandidateLists(const MetricInstance& instance, int k, bool tie_aware)
    : n_(instance.n()) {
  LPTSP_REQUIRE(k >= 1, "candidate list length must be positive");
  k_ = std::min(k, n_ - 1);
  offsets_.assign(static_cast<std::size_t>(std::max(n_, 0)) + 1, 0);
  if (k_ <= 0) {
    k_ = 0;
    complete_ = true;  // n <= 1: the empty list trivially covers everyone
    return;
  }
  flat_.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_));
  complete_ = true;
  std::vector<int> others;
  others.reserve(static_cast<std::size_t>(n_) - 1);
  for (int v = 0; v < n_; ++v) {
    others.clear();
    for (int u = 0; u < n_; ++u) {
      if (u != v) others.push_back(u);
    }
    const Weight* wrow = instance.row(v);

    int limit = k_;
    if (tie_aware && limit < n_ - 1) {
      // Cheapest-tier census: if more than k partners sit at the minimum
      // weight, keep the whole tier (capped) — cutting inside a tier is
      // an arbitrary vertex-id decision, not a quality one.
      Weight cheapest = wrow[others.front()];
      for (const int u : others) cheapest = std::min(cheapest, wrow[u]);
      int tier = 0;
      for (const int u : others) tier += wrow[u] == cheapest ? 1 : 0;
      limit = std::min(std::max(k_, std::min(tier, kTieCap)), n_ - 1);
    }

    const auto cheaper = [wrow](int a, int b) {
      return wrow[a] != wrow[b] ? wrow[a] < wrow[b] : a < b;
    };
    std::partial_sort(others.begin(), others.begin() + limit, others.end(), cheaper);
    flat_.insert(flat_.end(), others.begin(), others.begin() + limit);
    offsets_[static_cast<std::size_t>(v) + 1] = static_cast<std::int64_t>(flat_.size());
    if (limit < n_ - 1) complete_ = false;
  }
}

}  // namespace lptsp
