#pragma once

#include "tsp/instance.hpp"

namespace lptsp {

/// MST weight — a valid lower bound for Path TSP (every Hamiltonian path
/// is a spanning tree).
Weight mst_lower_bound(const MetricInstance& instance);

/// (n-1) * min off-diagonal weight.
Weight trivial_lower_bound(const MetricInstance& instance);

/// max(MST bound, trivial bound) — the certificate used by heuristic
/// benchmarks when exact optima are out of reach.
Weight path_lower_bound(const MetricInstance& instance);

/// Held–Karp Lagrangian ascent for Path TSP: maximize
///   L(pi) = MST(w + pi_u + pi_v) - 2 * sum(pi)   over pi >= 0.
/// Every Hamiltonian path P satisfies w_pi(P) <= w(P) + 2*sum(pi) (vertex
/// degrees are at most 2) and contains a spanning tree, so L(pi) <= OPT
/// for every feasible pi; subgradient steps penalize vertices the MST
/// touches more than twice. Always >= the plain MST bound (pi = 0 is the
/// starting point and the best iterate is kept). Returned as floor(L),
/// which stays valid because OPT is integral.
Weight held_karp_ascent_lower_bound(const MetricInstance& instance, int iterations = 60);

}  // namespace lptsp
