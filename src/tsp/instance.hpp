#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lptsp {

/// Edge weight type used throughout the TSP layer. Labeling spans are sums
/// of at most n-1 weights, each bounded by 2*pmin, so 64 bits never
/// overflows for any realistic input.
using Weight = std::int64_t;

/// Symmetric complete edge-weighted graph — the object H of the paper's
/// Theorem 2 and the input to every TSP algorithm in this library.
///
/// Weights are stored as a flat upper-triangular-mirrored n*n matrix;
/// w(i,i) = 0 by construction and cannot be changed.
class MetricInstance {
 public:
  /// Complete graph on n >= 0 vertices with all weights zero.
  explicit MetricInstance(int n = 0);

  /// Build from a flat row-major n*n matrix; must be symmetric with a zero
  /// diagonal and non-negative entries.
  static MetricInstance from_matrix(int n, const std::vector<Weight>& flat);

  [[nodiscard]] int n() const noexcept { return n_; }

  [[nodiscard]] Weight weight(int i, int j) const;
  void set_weight(int i, int j, Weight w);

  // Unchecked hot-path accessors. The checked weight()/set_weight() remain
  // the public API for untrusted indices; these inline variants are for
  // inner loops that have already validated their ranges (TSP engines,
  // the reduction fill) and compile down to a single load/store under
  // NDEBUG. Debug builds keep the range asserts.

  [[nodiscard]] Weight weight_unchecked(int i, int j) const noexcept {
    assert(i >= 0 && i < n_ && j >= 0 && j < n_);
    return w_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
  }

  /// Row i of the weight matrix (n contiguous entries; symmetric, so
  /// row(i)[j] == weight(i, j) == weight(j, i)). Engines hoist the row
  /// pointer of a fixed endpoint out of their inner loops.
  [[nodiscard]] const Weight* row(int i) const noexcept {
    assert(i >= 0 && i < n_);
    return w_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
  }

  /// Write both triangles without range/positivity checks. The caller owns
  /// the invariants (i != j, w >= 0); bulk fills like the Theorem-2
  /// reduction use this to keep the O(n^2) pass store-bound.
  void set_weight_unchecked(int i, int j, Weight w) noexcept {
    assert(i >= 0 && i < n_ && j >= 0 && j < n_ && i != j && w >= 0);
    w_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
       static_cast<std::size_t>(j)] = w;
    w_[static_cast<std::size_t>(j) * static_cast<std::size_t>(n_) +
       static_cast<std::size_t>(i)] = w;
  }

  /// Smallest / largest off-diagonal weight (requires n >= 2).
  [[nodiscard]] Weight min_weight() const;
  [[nodiscard]] Weight max_weight() const;

  /// Sorted distinct off-diagonal weights.
  [[nodiscard]] std::vector<Weight> distinct_weights() const;

  /// O(n^3) triangle-inequality check: w(i,k) <= w(i,j) + w(j,k) for all
  /// triples. The paper's reduction guarantees this when pmax <= 2*pmin.
  [[nodiscard]] bool is_metric() const;

  /// Copy with one extra vertex (index n) at weight 0 to every other —
  /// the classic Path-TSP -> TSP transformation. The result is generally
  /// NOT metric; only algorithms that do not rely on the triangle
  /// inequality (local search, Held-Karp) may use it.
  [[nodiscard]] MetricInstance with_zero_depot() const;

  /// Write in TSPLIB EXPLICIT / FULL_MATRIX format so external engines the
  /// paper mentions (Concorde, LKH) can consume reduced instances directly.
  void write_tsplib(std::ostream& out, const std::string& name) const;

 private:
  int n_ = 0;
  std::vector<Weight> w_;
};

}  // namespace lptsp
