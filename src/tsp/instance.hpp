#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lptsp {

/// Edge weight type used throughout the TSP layer. Labeling spans are sums
/// of at most n-1 weights, each bounded by 2*pmin, so 64 bits never
/// overflows for any realistic input.
using Weight = std::int64_t;

/// Symmetric complete edge-weighted graph — the object H of the paper's
/// Theorem 2 and the input to every TSP algorithm in this library.
///
/// Weights are stored as a flat upper-triangular-mirrored n*n matrix;
/// w(i,i) = 0 by construction and cannot be changed.
class MetricInstance {
 public:
  /// Complete graph on n >= 0 vertices with all weights zero.
  explicit MetricInstance(int n = 0);

  /// Build from a flat row-major n*n matrix; must be symmetric with a zero
  /// diagonal and non-negative entries.
  static MetricInstance from_matrix(int n, const std::vector<Weight>& flat);

  [[nodiscard]] int n() const noexcept { return n_; }

  [[nodiscard]] Weight weight(int i, int j) const;
  void set_weight(int i, int j, Weight w);

  /// Smallest / largest off-diagonal weight (requires n >= 2).
  [[nodiscard]] Weight min_weight() const;
  [[nodiscard]] Weight max_weight() const;

  /// Sorted distinct off-diagonal weights.
  [[nodiscard]] std::vector<Weight> distinct_weights() const;

  /// O(n^3) triangle-inequality check: w(i,k) <= w(i,j) + w(j,k) for all
  /// triples. The paper's reduction guarantees this when pmax <= 2*pmin.
  [[nodiscard]] bool is_metric() const;

  /// Copy with one extra vertex (index n) at weight 0 to every other —
  /// the classic Path-TSP -> TSP transformation. The result is generally
  /// NOT metric; only algorithms that do not rely on the triangle
  /// inequality (local search, Held-Karp) may use it.
  [[nodiscard]] MetricInstance with_zero_depot() const;

  /// Write in TSPLIB EXPLICIT / FULL_MATRIX format so external engines the
  /// paper mentions (Concorde, LKH) can consume reduced instances directly.
  void write_tsplib(std::ostream& out, const std::string& name) const;

 private:
  int n_ = 0;
  std::vector<Weight> w_;
};

}  // namespace lptsp
