#include "tsp/branch_bound.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {

namespace {

/// MST weight over `members` (Prim, O(k^2)).
Weight subset_mst(const MetricInstance& instance, const std::vector<int>& members) {
  if (members.size() <= 1) return 0;
  constexpr Weight kInf = std::numeric_limits<Weight>::max();
  std::vector<Weight> best(members.size(), kInf);
  std::vector<bool> done(members.size(), false);
  best[0] = 0;
  Weight total = 0;
  for (std::size_t round = 0; round < members.size(); ++round) {
    std::size_t pick = members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!done[i] && (pick == members.size() || best[i] < best[pick])) pick = i;
    }
    done[pick] = true;
    total += best[pick];
    const Weight* wrow = instance.row(members[pick]);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!done[i]) best[i] = std::min(best[i], wrow[members[i]]);
    }
  }
  return total;
}

struct Search {
  const MetricInstance& instance;
  const long long node_limit;
  const std::atomic<bool>* cancel;
  long long nodes = 0;
  long long pruned = 0;
  bool cancelled = false;
  Weight incumbent_cost;
  Order incumbent;
  Order partial;
  std::vector<bool> used;

  Search(const MetricInstance& inst, const BranchBoundOptions& options, PathSolution warm_start)
      : instance(inst),
        node_limit(options.node_limit),
        cancel(options.cancel),
        incumbent_cost(warm_start.cost),
        incumbent(std::move(warm_start.order)),
        used(static_cast<std::size_t>(inst.n()), false) {
    partial.reserve(static_cast<std::size_t>(inst.n()));
  }

  /// Lower bound for completing the partial path: MST over the remaining
  /// vertices plus the cheapest edge out of the current endpoint.
  Weight completion_bound() const {
    std::vector<int> remaining;
    for (int v = 0; v < instance.n(); ++v) {
      if (!used[static_cast<std::size_t>(v)]) remaining.push_back(v);
    }
    if (remaining.empty()) return 0;
    Weight link = 0;
    if (!partial.empty()) {
      link = std::numeric_limits<Weight>::max();
      const Weight* wrow = instance.row(partial.back());
      for (const int v : remaining) link = std::min(link, wrow[v]);
    }
    return link + subset_mst(instance, remaining);
  }

  void dfs(Weight cost) {
    if (cancelled) return;
    ++nodes;
    LPTSP_REQUIRE(node_limit == 0 || nodes <= node_limit,
                  "branch-and-bound node limit exceeded — use Held-Karp or a heuristic engine");
    // Poll the cancel flag sparsely: an atomic load per node would be
    // measurable on the millions-of-nodes searches this engine exists for.
    if (cancel != nullptr && (nodes & 1023) == 0 &&
        cancel->load(std::memory_order_relaxed)) {
      cancelled = true;
      return;
    }
    if (static_cast<int>(partial.size()) == instance.n()) {
      if (cost < incumbent_cost) {
        incumbent_cost = cost;
        incumbent = partial;
      }
      return;
    }
    if (cost + completion_bound() >= incumbent_cost) {
      ++pruned;
      return;
    }

    // Branch on nearest candidates first: good incumbents early tighten
    // every later bound.
    std::vector<std::pair<Weight, int>> candidates;
    const Weight* tail_row = partial.empty() ? nullptr : instance.row(partial.back());
    for (int v = 0; v < instance.n(); ++v) {
      if (used[static_cast<std::size_t>(v)]) continue;
      const Weight step = tail_row == nullptr ? 0 : tail_row[v];
      candidates.emplace_back(step, v);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [step, v] : candidates) {
      if (cancelled) return;
      partial.push_back(v);
      used[static_cast<std::size_t>(v)] = true;
      dfs(cost + step);
      used[static_cast<std::size_t>(v)] = false;
      partial.pop_back();
    }
  }
};

}  // namespace

BranchBoundRun branch_bound_path_run(const MetricInstance& instance,
                                     const BranchBoundOptions& options) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  if (n == 1) return {{{0}, 0}, true, 0, 0};

  // Warm start: NN + VND gives a strong incumbent so pruning bites from
  // the first branch.
  Rng rng(0x5bd1e995);
  PathSolution warm = nearest_neighbor_path(instance, 0);
  vnd(instance, warm.order);
  warm.cost = path_length(instance, warm.order);

  Search search(instance, options, std::move(warm));
  search.dfs(0);
  LPTSP_ENSURE(is_valid_order(search.incumbent, n), "branch and bound lost its incumbent");
  return {{search.incumbent, search.incumbent_cost}, !search.cancelled, search.nodes,
          search.pruned};
}

PathSolution branch_bound_path(const MetricInstance& instance, const BranchBoundOptions& options) {
  return branch_bound_path_run(instance, options).solution;
}

}  // namespace lptsp
