#pragma once

#include "tsp/path.hpp"

namespace lptsp {

/// Options for the branch-and-bound exact Path-TSP solver.
struct BranchBoundOptions {
  /// Abort with precondition_error after this many search nodes (0 = no
  /// limit). A limit makes worst-case behaviour explicit instead of
  /// silently hanging: callers choose between HK (memory-bound) and B&B
  /// (time-bound).
  long long node_limit = 50'000'000;
};

/// Exact Path TSP by depth-first branch and bound.
///
/// Complements Held-Karp (Corollary 1): HK is O(2^n n^2) time AND memory,
/// which caps n near 22; B&B needs only O(n) memory and solves much larger
/// reduced instances when the metric is benign (the pmax <= 2*pmin band
/// keeps the MST bound tight), at the price of exponential worst-case
/// time. Pruning: partial length + MST of the remaining vertices plus the
/// cheapest link from the current endpoint into the remainder must stay
/// below the incumbent (the MST part is a valid completion lower bound
/// because any completion is a spanning connected subgraph of the rest).
PathSolution branch_bound_path(const MetricInstance& instance,
                               const BranchBoundOptions& options = {});

}  // namespace lptsp
