#pragma once

#include <atomic>

#include "tsp/path.hpp"

namespace lptsp {

/// Options for the branch-and-bound exact Path-TSP solver.
struct BranchBoundOptions {
  /// Abort with precondition_error after this many search nodes (0 = no
  /// limit). A limit makes worst-case behaviour explicit instead of
  /// silently hanging: callers choose between HK (memory-bound) and B&B
  /// (time-bound).
  long long node_limit = 50'000'000;
  /// Cooperative cancellation for deadline-racing callers (the engine
  /// portfolio): when non-null and set, the search stops at the next
  /// check and returns the incumbent found so far. A cancelled run's
  /// result is feasible but NOT certified optimal — see BranchBoundRun /
  /// branch_bound_path_run for the completed flag.
  const std::atomic<bool>* cancel = nullptr;
};

/// Exact Path TSP by depth-first branch and bound.
///
/// Complements Held-Karp (Corollary 1): HK is O(2^n n^2) time AND memory,
/// which caps n near 22; B&B needs only O(n) memory and solves much larger
/// reduced instances when the metric is benign (the pmax <= 2*pmin band
/// keeps the MST bound tight), at the price of exponential worst-case
/// time. Pruning: partial length + MST of the remaining vertices plus the
/// cheapest link from the current endpoint into the remainder must stay
/// below the incumbent (the MST part is a valid completion lower bound
/// because any completion is a spanning connected subgraph of the rest).
PathSolution branch_bound_path(const MetricInstance& instance,
                               const BranchBoundOptions& options = {});

/// branch_bound_path plus metadata racing callers need: whether the search
/// ran to completion (result certified optimal) or was cancelled early
/// (result is the best incumbent, still a feasible path).
struct BranchBoundRun {
  PathSolution solution;
  bool completed = true;       ///< false when options.cancel fired first
  long long nodes = 0;         ///< search nodes expanded
  long long pruned = 0;        ///< subtrees cut by the completion bound
};

BranchBoundRun branch_bound_path_run(const MetricInstance& instance,
                                     const BranchBoundOptions& options = {});

}  // namespace lptsp
