#pragma once

#include "tsp/path.hpp"

namespace lptsp {

/// Exact Path TSP by permutation enumeration. Reversal symmetry is used to
/// halve the search. Intended as the ground-truth oracle in tests; the
/// size cap keeps runtimes sane (10! / 2 ≈ 1.8M paths).
///
/// Requires 1 <= n <= 11.
PathSolution brute_force_path(const MetricInstance& instance);

}  // namespace lptsp
