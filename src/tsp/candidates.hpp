#pragma once

#include <vector>

#include "tsp/instance.hpp"

namespace lptsp {

/// Per-vertex k-nearest-neighbor candidate lists.
///
/// Local search on a complete graph does not need to look at all n-1
/// potential new edges per vertex: an improving 2-opt move always creates
/// at least one edge that is cheaper than an edge it removes, so scanning
/// each vertex's few cheapest partners finds it. The lists are computed
/// once per instance (O(n^2 + n k log k)) and shared read-only by every
/// local-search run on that instance — ChainedLK builds one set and reuses
/// it across all restarts and kicks.
class CandidateLists {
 public:
  /// Default list length. Small enough that a wake-up scan is ~constant
  /// work, large enough that the {pmin, 2pmin} metrics of reduced labeling
  /// instances keep plenty of cheap-tier partners per vertex.
  static constexpr int kDefaultK = 10;

  CandidateLists() = default;

  /// Build lists of length min(k, n-1), each sorted by ascending
  /// weight(v, .) (ties by vertex id, so construction is deterministic).
  explicit CandidateLists(const MetricInstance& instance, int k = kDefaultK);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }

  /// True when every vertex lists all n-1 others: candidate search is then
  /// exhaustive and its 2-opt fixpoints are full 2-opt local optima.
  [[nodiscard]] bool complete() const noexcept { return k_ >= n_ - 1; }

  /// The k nearest partners of v, ascending by weight.
  [[nodiscard]] const int* of(int v) const noexcept {
    return flat_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(k_);
  }

 private:
  int n_ = 0;
  int k_ = 0;
  std::vector<int> flat_;
};

}  // namespace lptsp
