#pragma once

#include <cstdint>
#include <vector>

#include "tsp/instance.hpp"

namespace lptsp {

/// Per-vertex nearest-neighbor candidate lists.
///
/// Local search on a complete graph does not need to look at all n-1
/// potential new edges per vertex: an improving 2-opt move always creates
/// at least one edge that is cheaper than an edge it removes, so scanning
/// each vertex's few cheapest partners finds it. The lists are computed
/// once per instance (O(n^2 + n k log k)) and shared read-only by every
/// local-search run on that instance — ChainedLK builds one set and reuses
/// it across all restarts and kicks.
///
/// Lists are tie-aware by default: a vertex keeps at least min(k, n-1)
/// partners, but when its cheapest weight tier alone holds more than k
/// partners it keeps that whole tier (capped at kTieCap). On the
/// two-valued {pmin, 2*pmin} metrics of reduced labeling instances a
/// fixed k would truncate the cheap tier at an arbitrary vertex-id
/// boundary, hiding improving moves whose new edge is exactly as cheap as
/// the ones the list does show; with ties kept, the candidate optimum on
/// those instances tracks the full-matrix optimum much more closely
/// (bench_a2 asserts the ablation).
class CandidateLists {
 public:
  /// Default base list length. Small enough that a wake-up scan is
  /// ~constant work; the tie expansion handles the cheap-tier-heavy
  /// metrics that would otherwise want a larger k.
  static constexpr int kDefaultK = 10;

  /// Upper bound on a tie-expanded list. Bounds the per-vertex scan cost
  /// on metrics whose cheap tier is huge (e.g. near-complete cheap
  /// graphs), where candidate search degenerates toward full 2-opt anyway.
  static constexpr int kTieCap = 48;

  CandidateLists() = default;

  /// Build lists sorted by ascending weight(v, .), ties by vertex id (so
  /// construction is deterministic). `tie_aware` = false reproduces the
  /// fixed-length min(k, n-1) lists (the bench_a2 ablation baseline).
  explicit CandidateLists(const MetricInstance& instance, int k = kDefaultK,
                          bool tie_aware = true);

  [[nodiscard]] int n() const noexcept { return n_; }

  /// The base k (minimum list length before the n-1 clamp).
  [[nodiscard]] int k() const noexcept { return k_; }

  /// True when every vertex lists all n-1 others: candidate search is then
  /// exhaustive and its 2-opt fixpoints are full 2-opt local optima.
  [[nodiscard]] bool complete() const noexcept { return complete_; }

  /// The partners of v, ascending by weight.
  [[nodiscard]] const int* of(int v) const noexcept {
    return flat_.data() + offsets_[static_cast<std::size_t>(v)];
  }

  /// Number of partners listed for v (>= min(k, n-1); > only via ties).
  [[nodiscard]] int count(int v) const noexcept {
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

 private:
  int n_ = 0;
  int k_ = 0;
  bool complete_ = false;
  std::vector<std::int64_t> offsets_;  ///< n+1 prefix offsets into flat_
  std::vector<int> flat_;
};

}  // namespace lptsp
