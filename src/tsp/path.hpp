#pragma once

#include <vector>

#include "tsp/instance.hpp"

namespace lptsp {

/// A visiting order of all n vertices: interpreted as an open Hamiltonian
/// path (path_length) or a closed tour (tour_length) depending on context.
using Order = std::vector<int>;

/// A solved Hamiltonian path: the order plus its total weight.
struct PathSolution {
  Order order;
  Weight cost = 0;
};

/// True if `order` is a permutation of {0, ..., n-1}.
bool is_valid_order(const Order& order, int n);

/// Sum of consecutive-pair weights (open path, n-1 edges).
Weight path_length(const MetricInstance& instance, const Order& order);

/// Sum of consecutive-pair weights plus the closing edge (n edges).
Weight tour_length(const MetricInstance& instance, const Order& order);

/// Convert a closed tour on instance.with_zero_depot() back to an open
/// path on the original instance: rotate so `depot` leads, then drop it.
Order path_from_depot_tour(const Order& tour, int depot);

/// Canonical form for comparisons: a path and its reverse are the same
/// solution, so orient with the smaller endpoint first.
Order canonical_path(Order order);

}  // namespace lptsp
