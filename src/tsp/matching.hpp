#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "tsp/instance.hpp"

namespace lptsp {

/// Maximum-cardinality matching on a general (non-bipartite) graph via the
/// blossom algorithm, O(V^3). Returns match[v] = partner or -1.
std::vector<int> max_cardinality_matching(const Graph& graph);

/// Result of a perfect-matching computation on a vertex subset.
struct MatchingResult {
  std::vector<std::pair<int, int>> pairs;  // instance vertex ids
  Weight weight = 0;
  /// True when the algorithm guarantees minimality (two-valued reduction
  /// or exact DP); false for the greedy + swap fallback.
  bool certified_optimal = false;
};

/// Exact min-weight perfect matching on `vertices` by bitmask DP,
/// O(2^k * k). Requires an even k <= 22.
MatchingResult min_weight_perfect_matching_dp(const MetricInstance& instance,
                                              const std::vector<int>& vertices);

/// Exact min-weight perfect matching when the weights among `vertices`
/// take at most two distinct values {a < b}. On a complete graph, a
/// perfect matching with h heavy edges exists iff the cheap subgraph has a
/// matching of (k/2 - h) edges, so the optimum is r*a + (k/2 - r)*b where
/// r is the maximum-cardinality matching of the cheap subgraph. This is
/// exactly the situation of reduced diameter-2 instances (weights {p, q}).
MatchingResult min_weight_perfect_matching_two_valued(const MetricInstance& instance,
                                                      const std::vector<int>& vertices);

/// Greedy (sorted-edge) perfect matching followed by 2-exchange
/// improvement passes. Fast, uncertified; used when k is too large for the
/// exact methods and the weights are not two-valued.
MatchingResult greedy_perfect_matching(const MetricInstance& instance,
                                       const std::vector<int>& vertices);

/// Dispatcher: picks the strongest applicable engine (two-valued exact ->
/// DP exact -> greedy). Requires an even vertex count.
MatchingResult min_weight_perfect_matching(const MetricInstance& instance,
                                           const std::vector<int>& vertices);

}  // namespace lptsp
