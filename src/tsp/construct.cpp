#include "tsp/construct.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace lptsp {

PathSolution nearest_neighbor_path(const MetricInstance& instance, int start) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  LPTSP_REQUIRE(start >= 0 && start < n, "start vertex out of range");
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(start);
  visited[static_cast<std::size_t>(start)] = true;
  Weight cost = 0;
  for (int step = 1; step < n; ++step) {
    const int tail = order.back();
    const Weight* wrow = instance.row(tail);
    int pick = -1;
    Weight best = std::numeric_limits<Weight>::max();
    for (int v = 0; v < n; ++v) {
      if (visited[static_cast<std::size_t>(v)]) continue;
      const Weight w = wrow[v];
      if (w < best) {
        best = w;
        pick = v;
      }
    }
    order.push_back(pick);
    visited[static_cast<std::size_t>(pick)] = true;
    cost += best;
  }
  return {order, cost};
}

PathSolution best_nearest_neighbor_path(const MetricInstance& instance, int samples, Rng& rng) {
  const int n = instance.n();
  LPTSP_REQUIRE(samples >= 1, "need at least one start sample");
  std::vector<int> starts = rng.permutation(n);
  starts.resize(static_cast<std::size_t>(std::min(samples, n)));
  PathSolution best = nearest_neighbor_path(instance, starts.front());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    PathSolution candidate = nearest_neighbor_path(instance, starts[i]);
    if (candidate.cost < best.cost) best = std::move(candidate);
  }
  return best;
}

PathSolution greedy_edge_path(const MetricInstance& instance) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  if (n == 1) return {{0}, 0};

  struct Edge {
    Weight w;
    int u, v;
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int u = 0; u < n; ++u) {
    const Weight* wrow = instance.row(u);
    for (int v = u + 1; v < n; ++v) edges.push_back({wrow[v], u, v});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.w < b.w; });

  // Union-find over path fragments; degree caps keep every fragment a path.
  std::vector<int> root(static_cast<std::size_t>(n));
  std::iota(root.begin(), root.end(), 0);
  const auto find = [&](int v) {
    while (root[static_cast<std::size_t>(v)] != v) {
      root[static_cast<std::size_t>(v)] = root[static_cast<std::size_t>(root[static_cast<std::size_t>(v)])];
      v = root[static_cast<std::size_t>(v)];
    }
    return v;
  };
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n));
  int chosen = 0;
  for (const auto& edge : edges) {
    if (chosen == n - 1) break;
    if (degree[static_cast<std::size_t>(edge.u)] >= 2 || degree[static_cast<std::size_t>(edge.v)] >= 2) continue;
    const int ru = find(edge.u);
    const int rv = find(edge.v);
    if (ru == rv) continue;
    root[static_cast<std::size_t>(ru)] = rv;
    ++degree[static_cast<std::size_t>(edge.u)];
    ++degree[static_cast<std::size_t>(edge.v)];
    adjacency[static_cast<std::size_t>(edge.u)].push_back(edge.v);
    adjacency[static_cast<std::size_t>(edge.v)].push_back(edge.u);
    ++chosen;
  }
  LPTSP_ENSURE(chosen == n - 1, "greedy edge failed to build a spanning path");

  int endpoint = 0;
  while (degree[static_cast<std::size_t>(endpoint)] == 2) ++endpoint;
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  int prev = -1;
  int cursor = endpoint;
  while (static_cast<int>(order.size()) < n) {
    order.push_back(cursor);
    int next = -1;
    for (const int candidate : adjacency[static_cast<std::size_t>(cursor)]) {
      if (candidate != prev) {
        next = candidate;
        break;
      }
    }
    prev = cursor;
    if (next == -1) break;
    cursor = next;
  }
  LPTSP_ENSURE(is_valid_order(order, n), "greedy edge produced a broken path");
  return {order, path_length(instance, order)};
}

PathSolution cheapest_insertion_path(const MetricInstance& instance) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  if (n == 1) return {{0}, 0};

  int seed_u = 0;
  int seed_v = 1;
  Weight seed_w = instance.weight_unchecked(0, 1);
  for (int u = 0; u < n; ++u) {
    const Weight* wrow = instance.row(u);
    for (int v = u + 1; v < n; ++v) {
      if (wrow[v] < seed_w) {
        seed_u = u;
        seed_v = v;
        seed_w = wrow[v];
      }
    }
  }
  Order order{seed_u, seed_v};
  std::vector<bool> placed(static_cast<std::size_t>(n), false);
  placed[static_cast<std::size_t>(seed_u)] = placed[static_cast<std::size_t>(seed_v)] = true;

  while (static_cast<int>(order.size()) < n) {
    int best_vertex = -1;
    std::size_t best_position = 0;  // insert before this index; order.size() = append
    Weight best_delta = std::numeric_limits<Weight>::max();
    for (int v = 0; v < n; ++v) {
      if (placed[static_cast<std::size_t>(v)]) continue;
      const Weight* vrow = instance.row(v);
      // Prepend / append.
      const Weight front_delta = vrow[order.front()];
      if (front_delta < best_delta) {
        best_delta = front_delta;
        best_vertex = v;
        best_position = 0;
      }
      const Weight back_delta = vrow[order.back()];
      if (back_delta < best_delta) {
        best_delta = back_delta;
        best_vertex = v;
        best_position = order.size();
      }
      // Between consecutive path vertices.
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        const Weight delta = vrow[order[i]] + vrow[order[i + 1]] -
                             instance.weight_unchecked(order[i], order[i + 1]);
        if (delta < best_delta) {
          best_delta = delta;
          best_vertex = v;
          best_position = i + 1;
        }
      }
    }
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(best_position), best_vertex);
    placed[static_cast<std::size_t>(best_vertex)] = true;
  }
  return {order, path_length(instance, order)};
}

}  // namespace lptsp
