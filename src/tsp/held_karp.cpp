#include "tsp/held_karp.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;

/// All subsets of {0..n-1} with the given popcount, ascending (Gosper).
std::vector<std::uint32_t> subsets_of_size(int n, int popcount) {
  std::vector<std::uint32_t> subsets;
  if (popcount == 0 || popcount > n) return subsets;
  std::uint32_t mask = (1u << popcount) - 1;
  const std::uint32_t limit = 1u << n;
  while (mask < limit) {
    subsets.push_back(mask);
    const std::uint32_t low = mask & (~mask + 1);
    const std::uint32_t ripple = mask + low;
    mask = ripple | (((mask ^ ripple) >> 2) / low);
  }
  return subsets;
}

}  // namespace

PathSolution held_karp_path(const MetricInstance& instance, const HeldKarpOptions& options) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must have at least one vertex");
  LPTSP_REQUIRE(n <= options.max_n && options.max_n <= 24,
                "Held-Karp size cap exceeded (memory is 2^n * n * 4 bytes)");
  LPTSP_REQUIRE(options.fixed_start == -1 || (options.fixed_start >= 0 && options.fixed_start < n),
                "fixed_start out of range");
  if (n >= 2) {
    // The DP stores 32-bit costs; make sure no path can overflow them.
    const Weight worst = static_cast<Weight>(n - 1) * instance.max_weight();
    LPTSP_REQUIRE(worst < kInf, "weights too large for the 32-bit Held-Karp table");
  }

  if (n == 1) return {{0}, 0};

  const std::uint32_t full = (1u << n) - 1;
  std::vector<std::int32_t> dp(static_cast<std::size_t>(full + 1) * static_cast<std::size_t>(n),
                               kInf);
  const auto cell = [n](std::uint32_t set, int end) {
    return static_cast<std::size_t>(set) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(end);
  };

  // Layer 1: singleton paths.
  for (int v = 0; v < n; ++v) {
    if (options.fixed_start == -1 || options.fixed_start == v) {
      dp[cell(1u << v, v)] = 0;
    }
  }

  // Pull-style recurrence: dp[S][i] depends only on the popcount-1 layer,
  // so every subset within one layer is independent — the parallel grain.
  const auto process_subset = [&](std::uint32_t set) {
    for (std::uint32_t ends = set; ends != 0; ends &= ends - 1) {
      const int i = std::countr_zero(ends);
      const std::uint32_t rest = set ^ (1u << i);
      std::int32_t best = kInf;
      for (std::uint32_t sources = rest; sources != 0; sources &= sources - 1) {
        const int j = std::countr_zero(sources);
        const std::int32_t base = dp[cell(rest, j)];
        if (base >= kInf) continue;
        const std::int32_t candidate =
            base + static_cast<std::int32_t>(instance.weight(j, i));
        if (candidate < best) best = candidate;
      }
      dp[cell(set, i)] = best;
    }
  };

  if (options.threads == 1) {
    // Serial: ascending masks already respect the layer order.
    for (std::uint32_t set = 1; set <= full; ++set) {
      if (std::popcount(set) >= 2) process_subset(set);
    }
  } else {
    for (int layer = 2; layer <= n; ++layer) {
      const auto subsets = subsets_of_size(n, layer);
      parallel_for(
          subsets.size(), [&](std::size_t idx) { process_subset(subsets[idx]); },
          options.threads);
    }
  }

  int best_end = 0;
  for (int v = 1; v < n; ++v) {
    if (dp[cell(full, v)] < dp[cell(full, best_end)]) best_end = v;
  }
  LPTSP_ENSURE(dp[cell(full, best_end)] < kInf, "Held-Karp found no complete path");

  // Reconstruct backwards by re-deriving each argmin; this avoids a parent
  // table of the same footprint as dp itself.
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  std::uint32_t set = full;
  int end = best_end;
  order.push_back(end);
  while (std::popcount(set) > 1) {
    const std::uint32_t rest = set ^ (1u << end);
    int chosen = -1;
    for (std::uint32_t sources = rest; sources != 0; sources &= sources - 1) {
      const int j = std::countr_zero(sources);
      if (dp[cell(rest, j)] >= kInf) continue;
      if (dp[cell(rest, j)] + static_cast<std::int32_t>(instance.weight(j, end)) ==
          dp[cell(set, end)]) {
        chosen = j;
        break;
      }
    }
    LPTSP_ENSURE(chosen != -1, "Held-Karp reconstruction failed");
    set = rest;
    end = chosen;
    order.push_back(end);
  }
  std::reverse(order.begin(), order.end());

  return {order, dp[cell(full, best_end)]};
}

}  // namespace lptsp
