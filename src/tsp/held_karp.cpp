#include "tsp/held_karp.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "kernels/kernels.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

namespace {

constexpr std::int32_t kInf32 = std::numeric_limits<std::int32_t>::max() / 2;

/// The ISA-dispatched layer min-reduction for this table width.
template <typename Cost>
auto hk_min_kernel(const kernels::KernelTable& kt) {
  if constexpr (sizeof(Cost) == sizeof(std::int16_t)) {
    return kt.hk_min_i16;
  } else {
    return kt.hk_min_i32;
  }
}

/// Serial cancel-poll stride: cheap enough to be unmeasurable, fine enough
/// that a 250 ms portfolio deadline stops the DP within a few ms.
constexpr std::uint32_t kCancelStride = 1u << 14;

/// All subsets of {0..n-1} with the given popcount, ascending (Gosper).
std::vector<std::uint32_t> subsets_of_size(int n, int popcount) {
  std::vector<std::uint32_t> subsets;
  if (popcount == 0 || popcount > n) return subsets;
  std::uint32_t mask = (1u << popcount) - 1;
  const std::uint32_t limit = 1u << n;
  while (mask < limit) {
    subsets.push_back(mask);
    const std::uint32_t low = mask & (~mask + 1);
    const std::uint32_t ripple = mask + low;
    mask = ripple | (((mask ^ ripple) >> 2) / low);
  }
  return subsets;
}

/// The DP body, generic over the table's cost type. The table dominates the
/// runtime — the kernel is memory-bound — so when every possible path cost
/// fits in 16 bits (always true for reduced labeling instances, whose
/// weights are at most 2*pmin) the int16 table halves the traffic and
/// doubles the SIMD width of the inner reduction.
template <typename Cost>
HeldKarpRun held_karp_dp(const MetricInstance& instance, const HeldKarpOptions& options) {
  const int n = instance.n();
  constexpr Cost kInf = std::numeric_limits<Cost>::max() / 2;

  const auto cancelled = [&options] {
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  };
  // An already-cancelled run must not pay for the table: at the cap the DP
  // allocates and fills hundreds of MB before the first layer boundary.
  if (cancelled()) return {{{}, -1}, false};

  // Flat narrow copy of the weights: one load per (subset, end, source)
  // triple, inlined and cache-resident.
  std::vector<Cost> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Weight* wrow = instance.row(i);
    for (int j = 0; j < n; ++j) {
      w[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] =
          static_cast<Cost>(wrow[j]);
    }
  }

  const std::uint32_t full = (1u << n) - 1;
  std::vector<Cost> dp(static_cast<std::size_t>(full + 1) * static_cast<std::size_t>(n), kInf);
  const auto cell = [n](std::uint32_t set, int end) {
    return static_cast<std::size_t>(set) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(end);
  };

  // Layer 1: singleton paths.
  std::uint64_t cells = 0;
  for (int v = 0; v < n; ++v) {
    if (options.fixed_start == -1 || options.fixed_start == v) {
      dp[cell(1u << v, v)] = 0;
      ++cells;
    }
  }
  std::uint64_t layers_done = 1;

  // Pull-style recurrence: dp[S][i] depends only on the popcount-1 layer,
  // so every subset within one layer is independent — the parallel grain.
  // The source minimization runs dense over all j instead of iterating the
  // bits of `rest`: dp[rest][j] is kInf for every j outside rest (including
  // i itself), and kInf + any weight still fits in the cost type, so the
  // masked terms lose the min automatically. That branch-free add+min
  // reduction is the ISA-dispatched kernel (scalar / AVX2 / AVX-512); it
  // returns exactly kInf when every source is masked (possible under
  // fixed_start), since a kInf source plus a non-negative weight can never
  // win the min against the kInf identity.
  const auto hk_min = hk_min_kernel<Cost>(kernels::kernels());
  const auto process_subset = [&](std::uint32_t set) {
    for (std::uint32_t ends = set; ends != 0; ends &= ends - 1) {
      const int i = std::countr_zero(ends);
      const std::uint32_t rest = set ^ (1u << i);
      const Cost* wrow = w.data() + static_cast<std::size_t>(i) * n;
      const Cost* dp_rest = dp.data() + cell(rest, 0);
      dp[cell(set, i)] = hk_min(dp_rest, wrow, n);
    }
  };

  // Both schedules walk the layers in popcount order so the cancel flag can
  // be polled at every layer boundary.
  bool stopped = false;
  if (options.threads == 1) {
    std::uint32_t since_poll = 0;
    for (int layer = 2; layer <= n && !stopped; ++layer) {
      if (cancelled()) {
        stopped = true;
        break;
      }
      // Inline Gosper iteration: the serial path never materializes the
      // subset list.
      std::uint32_t mask = (1u << layer) - 1;
      while (mask <= full) {
        process_subset(mask);
        cells += static_cast<std::uint64_t>(layer);  // one write per end in the subset
        if (++since_poll >= kCancelStride) {
          since_poll = 0;
          if (cancelled()) {
            stopped = true;
            break;
          }
        }
        const std::uint32_t low = mask & (~mask + 1);
        const std::uint32_t ripple = mask + low;
        mask = ripple | (((mask ^ ripple) >> 2) / low);
      }
      if (!stopped) ++layers_done;
    }
  } else {
    for (int layer = 2; layer <= n; ++layer) {
      if (cancelled()) {
        stopped = true;
        break;
      }
      const auto subsets = subsets_of_size(n, layer);
      parallel_for(
          subsets.size(), [&](std::size_t idx) { process_subset(subsets[idx]); },
          options.threads);
      cells += static_cast<std::uint64_t>(subsets.size()) * static_cast<std::uint64_t>(layer);
      ++layers_done;
    }
  }
  if (stopped) return {{{}, -1}, false, layers_done, cells};

  int best_end = 0;
  for (int v = 1; v < n; ++v) {
    if (dp[cell(full, v)] < dp[cell(full, best_end)]) best_end = v;
  }
  LPTSP_ENSURE(dp[cell(full, best_end)] < kInf, "Held-Karp found no complete path");

  // Reconstruct backwards by re-deriving each argmin; this avoids a parent
  // table of the same footprint as dp itself.
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  std::uint32_t set = full;
  int end = best_end;
  order.push_back(end);
  while (std::popcount(set) > 1) {
    const std::uint32_t rest = set ^ (1u << end);
    const Cost* wrow = w.data() + static_cast<std::size_t>(end) * n;
    int chosen = -1;
    for (std::uint32_t sources = rest; sources != 0; sources &= sources - 1) {
      const int j = std::countr_zero(sources);
      if (dp[cell(rest, j)] >= kInf) continue;
      if (static_cast<Cost>(dp[cell(rest, j)] + wrow[j]) == dp[cell(set, end)]) {
        chosen = j;
        break;
      }
    }
    LPTSP_ENSURE(chosen != -1, "Held-Karp reconstruction failed");
    set = rest;
    end = chosen;
    order.push_back(end);
  }
  std::reverse(order.begin(), order.end());

  return {{order, static_cast<Weight>(dp[cell(full, best_end)])}, true, layers_done, cells};
}

}  // namespace

HeldKarpRun held_karp_path_run(const MetricInstance& instance, const HeldKarpOptions& options) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must have at least one vertex");
  LPTSP_REQUIRE(n <= options.max_n && options.max_n <= 24,
                "Held-Karp size cap exceeded (memory is 2^n * n * 2-4 bytes)");
  LPTSP_REQUIRE(options.fixed_start == -1 || (options.fixed_start >= 0 && options.fixed_start < n),
                "fixed_start out of range");
  if (n == 1) return {{{0}, 0}, true, 1, 1};

  // The DP stores narrow costs; make sure no path can overflow them, and
  // drop to the 16-bit table whenever it can hold every possible path.
  const Weight worst = static_cast<Weight>(n - 1) * instance.max_weight();
  LPTSP_REQUIRE(worst < kInf32, "weights too large for the 32-bit Held-Karp table");
  if (worst < std::numeric_limits<std::int16_t>::max() / 2) {
    return held_karp_dp<std::int16_t>(instance, options);
  }
  return held_karp_dp<std::int32_t>(instance, options);
}

PathSolution held_karp_path(const MetricInstance& instance, const HeldKarpOptions& options) {
  HeldKarpRun run = held_karp_path_run(instance, options);
  LPTSP_REQUIRE(run.completed, "Held-Karp was cancelled before completing");
  return std::move(run.solution);
}

}  // namespace lptsp
