#include "tsp/local_search.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

namespace {

/// Weight of the path edge entering position i from i-1, 0 at the ends.
Weight edge_before(const MetricInstance& instance, const Order& order, std::size_t i) {
  return i == 0 ? 0 : instance.weight_unchecked(order[i - 1], order[i]);
}

Weight edge_after(const MetricInstance& instance, const Order& order, std::size_t i) {
  return i + 1 >= order.size() ? 0 : instance.weight_unchecked(order[i], order[i + 1]);
}

std::ptrdiff_t diff(std::size_t i) { return static_cast<std::ptrdiff_t>(i); }

}  // namespace

bool two_opt_pass(const MetricInstance& instance, Order& order) {
  LPTSP_REQUIRE(is_valid_order(order, instance.n()), "order must be a permutation of vertices");
  const std::size_t n = order.size();
  if (n < 3) return false;
  bool improved = false;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;  // full reversal is a no-op
      // Reversing order[i..j] swaps the boundary edges (i-1,i),(j,j+1)
      // for (i-1,j),(i,j+1); interior edges only flip direction.
      const Weight removed = edge_before(instance, order, i) + edge_after(instance, order, j);
      const Weight added =
          (i == 0 ? 0 : instance.weight_unchecked(order[i - 1], order[j])) +
          (j + 1 >= n ? 0 : instance.weight_unchecked(order[i], order[j + 1]));
      if (added < removed) {
        std::reverse(order.begin() + diff(i), order.begin() + diff(j) + 1);
        improved = true;
      }
    }
  }
  return improved;
}

void two_opt(const MetricInstance& instance, Order& order) {
  while (two_opt_pass(instance, order)) {
  }
}

bool or_opt_pass(const MetricInstance& instance, Order& order, int max_segment) {
  LPTSP_REQUIRE(max_segment >= 1, "segment length must be positive");
  LPTSP_REQUIRE(is_valid_order(order, instance.n()), "order must be a permutation of vertices");
  const std::size_t n = order.size();
  if (n < 3) return false;
  bool improved = false;
  for (std::size_t seg_len = 1; seg_len <= static_cast<std::size_t>(max_segment); ++seg_len) {
    if (seg_len >= n) break;
    for (std::size_t s = 0; s + seg_len <= n; ++s) {
      const std::size_t e = s + seg_len - 1;  // inclusive segment end
      // Cost saved by splicing the segment out.
      const Weight bridge =
          (s > 0 && e + 1 < n) ? instance.weight_unchecked(order[s - 1], order[e + 1]) : 0;
      const Weight removal_gain =
          edge_before(instance, order, s) + edge_after(instance, order, e) - bridge;
      if (removal_gain <= 0) continue;

      // Find the best re-insertion point in the path without the segment.
      // The segment-free path ("rest") is never materialized: rest[t] is
      // order[t] before the cut and order[t + seg_len] after it, so the
      // scan reads order directly and the pass allocates nothing.
      const std::size_t rest_size = n - seg_len;
      const auto rest_at = [&](std::size_t t) {
        return t < s ? order[t] : order[t + seg_len];
      };
      const int seg_front = order[s];
      const int seg_back = order[e];

      Weight best_cost = 0;  // improvement threshold: beat removal_gain
      std::size_t best_position = 0;
      bool best_reversed = false;
      bool found = false;
      auto consider = [&](std::size_t position, Weight cost, bool reversed) {
        if (cost < removal_gain && (!found || cost < best_cost)) {
          best_cost = cost;
          best_position = position;
          best_reversed = reversed;
          found = true;
        }
      };
      // Insert before rest[0] or after rest[rest_size - 1].
      consider(0, instance.weight_unchecked(seg_back, rest_at(0)), false);
      consider(0, instance.weight_unchecked(seg_front, rest_at(0)), true);
      consider(rest_size, instance.weight_unchecked(rest_at(rest_size - 1), seg_front), false);
      consider(rest_size, instance.weight_unchecked(rest_at(rest_size - 1), seg_back), true);
      for (std::size_t t = 0; t + 1 < rest_size; ++t) {
        const int a = rest_at(t);
        const int b = rest_at(t + 1);
        const Weight base = instance.weight_unchecked(a, b);
        consider(t + 1,
                 instance.weight_unchecked(a, seg_front) +
                     instance.weight_unchecked(seg_back, b) - base,
                 false);
        consider(t + 1,
                 instance.weight_unchecked(a, seg_back) +
                     instance.weight_unchecked(seg_front, b) - base,
                 true);
      }
      if (!found) continue;
      // best_position == s re-creates the original location: forward is a
      // no-op, and so is a "reversed" single vertex (this mirrors the old
      // rest == order rejection without building either vector).
      if (best_position == s && (!best_reversed || seg_len == 1)) continue;
      // Splice in place: rotate the segment next to its target slot, then
      // orient it. rest position p maps to order index p (before the cut)
      // or p + seg_len (after it); either way the segment lands starting
      // at index best_position.
      const std::size_t seg_begin = best_position;
      if (best_position < s) {
        std::rotate(order.begin() + diff(best_position), order.begin() + diff(s),
                    order.begin() + diff(e) + 1);
      } else {
        std::rotate(order.begin() + diff(s), order.begin() + diff(e) + 1,
                    order.begin() + diff(best_position + seg_len));
      }
      if (best_reversed) {
        std::reverse(order.begin() + diff(seg_begin), order.begin() + diff(seg_begin + seg_len));
      }
      improved = true;
    }
  }
  return improved;
}

void or_opt(const MetricInstance& instance, Order& order, int max_segment) {
  while (or_opt_pass(instance, order, max_segment)) {
  }
}

void vnd(const MetricInstance& instance, Order& order, int max_segment) {
  while (true) {
    two_opt(instance, order);
    if (!or_opt_pass(instance, order, max_segment)) break;
  }
}

// ---------------------------------------------------------------------------
// PathOptimizer
// ---------------------------------------------------------------------------

PathOptimizer::PathOptimizer(const MetricInstance& instance, int k)
    : instance_(instance), owned_(instance, k), cand_(&owned_) {
  const std::size_t n = static_cast<std::size_t>(instance.n());
  pos_.assign(n, 0);
  queued_.assign(n, 0);
  queue_.reserve(n);
}

PathOptimizer::PathOptimizer(const MetricInstance& instance, const CandidateLists& candidates)
    : instance_(instance), cand_(&candidates) {
  LPTSP_REQUIRE(candidates.n() == instance.n(),
                "candidate lists were built for a different instance size");
  const std::size_t n = static_cast<std::size_t>(instance.n());
  pos_.assign(n, 0);
  queued_.assign(n, 0);
  queue_.reserve(n);
}

void PathOptimizer::wake(int v) {
  if (!queued_[static_cast<std::size_t>(v)]) {
    queued_[static_cast<std::size_t>(v)] = 1;
    queue_.push_back(v);
    ++stats_.wakes;
  }
}

void PathOptimizer::optimize(Order& order) {
  LPTSP_REQUIRE(is_valid_order(order, instance_.n()), "order must be a permutation of vertices");
  for (int v = 0; v < instance_.n(); ++v) wake(v);
  run(order);
}

void PathOptimizer::optimize(Order& order, const std::vector<int>& wake_vertices) {
  LPTSP_REQUIRE(is_valid_order(order, instance_.n()), "order must be a permutation of vertices");
  for (const int v : wake_vertices) {
    LPTSP_REQUIRE(v >= 0 && v < instance_.n(), "wake vertex out of range");
    wake(v);
  }
  run(order);
}

void PathOptimizer::run(Order& order) {
  for (std::size_t i = 0; i < order.size(); ++i) pos_[static_cast<std::size_t>(order[i])] =
      static_cast<int>(i);
  while (!queue_.empty()) {
    const int x = queue_.back();
    queue_.pop_back();
    queued_[static_cast<std::size_t>(x)] = 0;
    // Re-anchor at x until no move anchored there improves; every applied
    // move re-wakes the vertices whose incident edges it changed.
    while (improve_vertex(order, x)) {
    }
  }
}

bool PathOptimizer::improve_vertex(Order& order, int x) {
  return try_two_opt(order, x) || try_or_opt(order, x);
}

void PathOptimizer::apply_reversal(Order& order, std::size_t first, std::size_t last) {
  ++stats_.moves;
  std::reverse(order.begin() + diff(first), order.begin() + diff(last) + 1);
  for (std::size_t t = first; t <= last; ++t) {
    pos_[static_cast<std::size_t>(order[t])] = static_cast<int>(t);
  }
}

bool PathOptimizer::try_two_opt(Order& order, int x) {
  const std::size_t n = order.size();
  if (n < 3 || cand_->k() == 0) return false;
  const Weight* wx = instance_.row(x);
  const int* cands = cand_->of(x);
  const int k = cand_->count(x);

  // Successor form: both removed edges leave their position rightwards
  // ((o[i], o[i+1]) and (o[j], o[j+1])); reversing [i+1..j] replaces them
  // with (o[i], o[j]) and (o[i+1], o[j+1]). Any improving 2-opt move has a
  // new edge (x, c) cheaper than the edge it removes at x in one of the
  // two forms, so the ascending candidate scan can stop at the first
  // candidate at least as expensive as the removed edge.
  {
    const std::size_t px = static_cast<std::size_t>(pos_[static_cast<std::size_t>(x)]);
    if (px + 1 < n) {
      const Weight d1 = wx[order[px + 1]];
      for (int idx = 0; idx < k; ++idx) {
        const int c = cands[idx];
        const Weight wxc = wx[c];
        if (wxc >= d1) break;
        const std::size_t pc = static_cast<std::size_t>(pos_[static_cast<std::size_t>(c)]);
        const std::size_t i = std::min(px, pc);
        const std::size_t j = std::max(px, pc);
        if (j == i + 1) continue;  // single-element reversal, not a move
        const Weight removed =
            instance_.weight_unchecked(order[i], order[i + 1]) +
            (j + 1 < n ? instance_.weight_unchecked(order[j], order[j + 1]) : 0);
        const Weight added =
            wxc + (j + 1 < n ? instance_.weight_unchecked(order[i + 1], order[j + 1]) : 0);
        if (added < removed) {
          wake(order[i]);
          wake(order[i + 1]);
          wake(order[j]);
          if (j + 1 < n) wake(order[j + 1]);
          apply_reversal(order, i + 1, j);
          return true;
        }
      }
    }
  }
  // Predecessor form: removed edges (o[i-1], o[i]) and (o[j-1], o[j]);
  // reversing [i..j-1] replaces them with (o[i-1], o[j-1]) and (o[i], o[j]).
  {
    const std::size_t px = static_cast<std::size_t>(pos_[static_cast<std::size_t>(x)]);
    if (px > 0) {
      const Weight d1 = wx[order[px - 1]];
      for (int idx = 0; idx < k; ++idx) {
        const int c = cands[idx];
        const Weight wxc = wx[c];
        if (wxc >= d1) break;
        const std::size_t pc = static_cast<std::size_t>(pos_[static_cast<std::size_t>(c)]);
        const std::size_t i = std::min(px, pc);
        const std::size_t j = std::max(px, pc);
        if (j == i + 1) continue;
        const Weight removed =
            (i > 0 ? instance_.weight_unchecked(order[i - 1], order[i]) : 0) +
            instance_.weight_unchecked(order[j - 1], order[j]);
        const Weight added =
            wxc + (i > 0 ? instance_.weight_unchecked(order[i - 1], order[j - 1]) : 0);
        if (added < removed) {
          if (i > 0) wake(order[i - 1]);
          wake(order[i]);
          wake(order[j - 1]);
          wake(order[j]);
          apply_reversal(order, i, j - 1);
          return true;
        }
      }
    }
  }
  return false;
}

void PathOptimizer::apply_segment_move(Order& order, std::size_t s, std::size_t e, std::size_t pc,
                                       bool after, bool reversed) {
  ++stats_.moves;
  const std::size_t len = e - s + 1;
  std::size_t seg_begin;
  std::size_t lo;
  std::size_t hi;
  if (after) {
    if (pc < s) {
      seg_begin = pc + 1;
      std::rotate(order.begin() + diff(pc + 1), order.begin() + diff(s),
                  order.begin() + diff(e) + 1);
      lo = pc + 1;
      hi = e;
    } else {  // pc > e
      seg_begin = pc + 1 - len;
      std::rotate(order.begin() + diff(s), order.begin() + diff(e) + 1,
                  order.begin() + diff(pc) + 1);
      lo = s;
      hi = pc;
    }
  } else {
    if (pc < s) {
      seg_begin = pc;
      std::rotate(order.begin() + diff(pc), order.begin() + diff(s), order.begin() + diff(e) + 1);
      lo = pc;
      hi = e;
    } else {  // pc > e
      seg_begin = pc - len;
      std::rotate(order.begin() + diff(s), order.begin() + diff(e) + 1, order.begin() + diff(pc));
      lo = s;
      hi = pc - 1;
    }
  }
  if (reversed) {
    std::reverse(order.begin() + diff(seg_begin), order.begin() + diff(seg_begin + len));
  }
  for (std::size_t t = lo; t <= hi; ++t) {
    pos_[static_cast<std::size_t>(order[t])] = static_cast<int>(t);
  }
}

bool PathOptimizer::try_or_opt(Order& order, int x) {
  const std::size_t n = order.size();
  if (n < 3 || cand_->k() == 0) return false;
  const Weight* wx = instance_.row(x);
  const int* cands = cand_->of(x);
  const int k = cand_->count(x);
  for (int len = 1; len <= max_segment_; ++len) {
    if (static_cast<std::size_t>(len) >= n) break;
    // Segments with x at the front, and (for len > 1) with x at the back.
    for (int variant = 0; variant < (len == 1 ? 1 : 2); ++variant) {
      const std::size_t px = static_cast<std::size_t>(pos_[static_cast<std::size_t>(x)]);
      std::size_t s;
      std::size_t e;
      if (variant == 0) {
        s = px;
        e = px + static_cast<std::size_t>(len) - 1;
        if (e >= n) continue;
      } else {
        if (px + 1 < static_cast<std::size_t>(len)) continue;
        s = px - static_cast<std::size_t>(len) + 1;
        e = px;
      }
      const int seg_front = order[s];
      const int seg_back = order[e];
      const Weight gain =
          (s > 0 ? instance_.weight_unchecked(order[s - 1], order[s]) : 0) +
          (e + 1 < n ? instance_.weight_unchecked(order[e], order[e + 1]) : 0) -
          ((s > 0 && e + 1 < n) ? instance_.weight_unchecked(order[s - 1], order[e + 1]) : 0);
      if (gain <= 0) continue;
      const int old_prev = s > 0 ? order[s - 1] : -1;
      const int old_next = e + 1 < n ? order[e + 1] : -1;

      for (int idx = 0; idx < k; ++idx) {
        const int c = cands[idx];
        const std::size_t pc = static_cast<std::size_t>(pos_[static_cast<std::size_t>(c)]);
        if (pc >= s && pc <= e) continue;  // candidate inside the segment
        const Weight wxc = wx[c];

        // Slot A: insert right after c, x adjacent to c (x leads). The far
        // end connects to c's post-removal successor d. When the slot is
        // the segment's original location the delta works out to the pure
        // in-place reversal (or exactly 0 for the no-op), so no special
        // cases are needed — the strict < filter handles both.
        {
          const std::size_t d_idx = pc + 1 == s ? e + 1 : pc + 1;
          const int d = d_idx < n ? order[d_idx] : -1;
          const int far = variant == 0 ? seg_back : seg_front;
          const Weight delta = wxc + (d >= 0 ? instance_.weight_unchecked(far, d) : 0) -
                               (d >= 0 ? instance_.weight_unchecked(c, d) : 0) - gain;
          if (delta < 0) {
            wake(x);
            wake(c);
            wake(far);
            if (d >= 0) wake(d);
            if (old_prev >= 0) wake(old_prev);
            if (old_next >= 0) wake(old_next);
            apply_segment_move(order, s, e, pc, /*after=*/true, /*reversed=*/variant != 0);
            return true;
          }
        }
        // Slot B: insert right before c, x adjacent to c (x trails). The
        // far end connects to c's post-removal predecessor b.
        {
          const bool has_b = pc == e + 1 ? s > 0 : pc > 0;
          const int b = has_b ? (pc == e + 1 ? order[s - 1] : order[pc - 1]) : -1;
          const int far = variant == 0 ? seg_back : seg_front;
          const Weight delta = wxc + (b >= 0 ? instance_.weight_unchecked(b, far) : 0) -
                               (b >= 0 ? instance_.weight_unchecked(b, c) : 0) - gain;
          if (delta < 0) {
            wake(x);
            wake(c);
            wake(far);
            if (b >= 0) wake(b);
            if (old_prev >= 0) wake(old_prev);
            if (old_next >= 0) wake(old_next);
            apply_segment_move(order, s, e, pc, /*after=*/false, /*reversed=*/variant == 0);
            return true;
          }
        }
      }
    }
  }
  return false;
}

}  // namespace lptsp
