#include "tsp/local_search.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

namespace {

/// Weight of the path edge entering position i from i-1, 0 at the ends.
Weight edge_before(const MetricInstance& instance, const Order& order, std::size_t i) {
  return i == 0 ? 0 : instance.weight(order[i - 1], order[i]);
}

Weight edge_after(const MetricInstance& instance, const Order& order, std::size_t i) {
  return i + 1 >= order.size() ? 0 : instance.weight(order[i], order[i + 1]);
}

}  // namespace

bool two_opt_pass(const MetricInstance& instance, Order& order) {
  const std::size_t n = order.size();
  if (n < 3) return false;
  bool improved = false;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;  // full reversal is a no-op
      // Reversing order[i..j] swaps the boundary edges (i-1,i),(j,j+1)
      // for (i-1,j),(i,j+1); interior edges only flip direction.
      const Weight removed = edge_before(instance, order, i) + edge_after(instance, order, j);
      const Weight added =
          (i == 0 ? 0 : instance.weight(order[i - 1], order[j])) +
          (j + 1 >= n ? 0 : instance.weight(order[i], order[j + 1]));
      if (added < removed) {
        std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                     order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        improved = true;
      }
    }
  }
  return improved;
}

void two_opt(const MetricInstance& instance, Order& order) {
  while (two_opt_pass(instance, order)) {
  }
}

bool or_opt_pass(const MetricInstance& instance, Order& order, int max_segment) {
  LPTSP_REQUIRE(max_segment >= 1, "segment length must be positive");
  const std::size_t n = order.size();
  if (n < 3) return false;
  bool improved = false;
  for (std::size_t seg_len = 1; seg_len <= static_cast<std::size_t>(max_segment); ++seg_len) {
    if (seg_len >= n) break;
    for (std::size_t s = 0; s + seg_len <= n; ++s) {
      const std::size_t e = s + seg_len - 1;  // inclusive segment end
      // Cost saved by splicing the segment out.
      const Weight bridge =
          (s > 0 && e + 1 < n) ? instance.weight(order[s - 1], order[e + 1]) : 0;
      const Weight removal_gain =
          edge_before(instance, order, s) + edge_after(instance, order, e) - bridge;
      if (removal_gain <= 0) continue;

      // Find the best re-insertion point in the path without the segment.
      Order rest;
      rest.reserve(n - seg_len);
      rest.insert(rest.end(), order.begin(), order.begin() + static_cast<std::ptrdiff_t>(s));
      rest.insert(rest.end(), order.begin() + static_cast<std::ptrdiff_t>(e) + 1, order.end());
      const int seg_front = order[s];
      const int seg_back = order[e];

      Weight best_cost = 0;  // improvement threshold: beat removal_gain
      std::size_t best_position = 0;
      bool best_reversed = false;
      bool found = false;
      auto consider = [&](std::size_t position, Weight cost, bool reversed) {
        if (cost < removal_gain && (!found || cost < best_cost)) {
          best_cost = cost;
          best_position = position;
          best_reversed = reversed;
          found = true;
        }
      };
      // Insert before rest[0] or after rest.back().
      consider(0, instance.weight(seg_back, rest.front()), false);
      consider(0, instance.weight(seg_front, rest.front()), true);
      consider(rest.size(), instance.weight(rest.back(), seg_front), false);
      consider(rest.size(), instance.weight(rest.back(), seg_back), true);
      for (std::size_t t = 0; t + 1 < rest.size(); ++t) {
        const Weight base = instance.weight(rest[t], rest[t + 1]);
        consider(t + 1,
                 instance.weight(rest[t], seg_front) + instance.weight(seg_back, rest[t + 1]) -
                     base,
                 false);
        consider(t + 1,
                 instance.weight(rest[t], seg_back) + instance.weight(seg_front, rest[t + 1]) -
                     base,
                 true);
      }
      if (!found) continue;
      // Skip moves that only re-create the original position.
      Order segment(order.begin() + static_cast<std::ptrdiff_t>(s),
                    order.begin() + static_cast<std::ptrdiff_t>(e) + 1);
      if (best_reversed) std::reverse(segment.begin(), segment.end());
      rest.insert(rest.begin() + static_cast<std::ptrdiff_t>(best_position), segment.begin(),
                  segment.end());
      if (rest == order) continue;
      order = std::move(rest);
      improved = true;
    }
  }
  return improved;
}

void or_opt(const MetricInstance& instance, Order& order, int max_segment) {
  while (or_opt_pass(instance, order, max_segment)) {
  }
}

void vnd(const MetricInstance& instance, Order& order, int max_segment) {
  while (true) {
    two_opt(instance, order);
    if (!or_opt_pass(instance, order, max_segment)) break;
  }
}

}  // namespace lptsp
