#include "tsp/chained_lk.hpp"

#include <mutex>

#include "tsp/candidates.hpp"
#include "tsp/construct.hpp"
#include "tsp/lin_kernighan.hpp"
#include "tsp/local_search.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

Order double_bridge_kick(const Order& order, Rng& rng, std::vector<int>* changed) {
  const std::size_t n = order.size();
  if (n < 4) {
    if (changed != nullptr) changed->clear();
    return order;
  }
  // Choose 1 <= a < b < c < n so all four segments are non-empty.
  std::size_t a = 1 + rng.uniform_index(n - 3);
  std::size_t b = a + 1 + rng.uniform_index(n - a - 2);
  std::size_t c = b + 1 + rng.uniform_index(n - b - 1);
  Order kicked;
  kicked.reserve(n);
  kicked.insert(kicked.end(), order.begin(), order.begin() + static_cast<std::ptrdiff_t>(a));
  kicked.insert(kicked.end(), order.begin() + static_cast<std::ptrdiff_t>(b),
                order.begin() + static_cast<std::ptrdiff_t>(c));
  kicked.insert(kicked.end(), order.begin() + static_cast<std::ptrdiff_t>(a),
                order.begin() + static_cast<std::ptrdiff_t>(b));
  kicked.insert(kicked.end(), order.begin() + static_cast<std::ptrdiff_t>(c), order.end());
  if (changed != nullptr) {
    // New segment boundaries in kicked coordinates: A|C at a, C|B at
    // a + (c - b), B|D at c. Each boundary contributes the two vertices of
    // the spliced edge.
    changed->clear();
    // All three boundaries satisfy 1 <= at <= n-1 by the segment draws.
    const std::size_t boundaries[3] = {a, a + (c - b), c};
    for (const std::size_t at : boundaries) {
      changed->push_back(kicked[at - 1]);
      changed->push_back(kicked[at]);
    }
  }
  return kicked;
}

ChainedLkRun chained_lk_path_run(const MetricInstance& instance, const ChainedLkOptions& options) {
  LPTSP_REQUIRE(instance.n() >= 1, "instance must be non-empty");
  LPTSP_REQUIRE(options.restarts >= 1, "need at least one restart");
  LPTSP_REQUIRE(options.kicks >= 0, "kick count must be non-negative");
  if (instance.n() <= 3) {
    Rng rng(options.seed);
    return {lin_kernighan_style_path(instance, rng), true};
  }

  // One candidate set per run, shared read-only across every restart and
  // every kick; each restart owns its optimizer (position array, don't-look
  // queue) so restarts stay independent and parallel-safe.
  const CandidateLists candidates(instance);

  PathSolution global_best;
  global_best.cost = -1;
  std::mutex best_mutex;
  std::atomic<bool> truncated{false};
  // Work totals across restarts, accumulated under best_mutex (once per
  // restart, not per kick — the merge is as cold as the best-merge).
  std::uint64_t total_kicks = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_wakes = 0;
  std::uint64_t total_moves = 0;

  const auto cancelled = [&options] {
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  };

  const auto run_restart = [&](std::size_t restart) {
    // Restart 0 always runs to completion so a cancelled call still yields
    // a feasible solution; later restarts are pure improvement and skip
    // their (expensive) initial optimization once the flag is up.
    if (restart > 0 && cancelled()) {
      truncated.store(true, std::memory_order_relaxed);
      return;
    }
    Rng rng(options.seed + 0x9e3779b97f4a7c15ULL * (restart + 1));
    PathOptimizer optimizer(instance, candidates);
    PathSolution best = nearest_neighbor_path(instance, rng.uniform_int(0, instance.n() - 1));
    optimizer.optimize(best.order);
    best.cost = path_length(instance, best.order);
    std::vector<int> wake;
    int kick = 0;
    std::uint64_t accepted = 0;
    for (; kick < options.kicks; ++kick) {
      if (cancelled()) break;
      Order perturbed = double_bridge_kick(best.order, rng, &wake);
      // The kick changed exactly three edges, so waking their endpoints is
      // enough — the optimizer re-examines further vertices only when an
      // applied move reaches them.
      optimizer.optimize(perturbed, wake);
      const Weight cost = path_length(instance, perturbed);
      if (cost < best.cost) {
        best.order = std::move(perturbed);
        best.cost = cost;
        ++accepted;
      }
    }
    if (kick < options.kicks) truncated.store(true, std::memory_order_relaxed);
    const std::lock_guard lock(best_mutex);
    total_kicks += static_cast<std::uint64_t>(kick);
    total_accepted += accepted;
    total_wakes += optimizer.stats().wakes;
    total_moves += optimizer.stats().moves;
    if (global_best.cost < 0 || best.cost < global_best.cost) global_best = std::move(best);
  };

  parallel_for(static_cast<std::size_t>(options.restarts), run_restart, options.threads);
  LPTSP_ENSURE(global_best.cost >= 0, "chained LK produced no solution");
  return {std::move(global_best), !truncated.load(std::memory_order_relaxed), total_kicks,
          total_accepted, total_wakes, total_moves};
}

PathSolution chained_lk_path(const MetricInstance& instance, const ChainedLkOptions& options) {
  return chained_lk_path_run(instance, options).solution;
}

}  // namespace lptsp
