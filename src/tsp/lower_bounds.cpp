#include "tsp/lower_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tsp/mst.hpp"
#include "util/check.hpp"

namespace lptsp {

Weight mst_lower_bound(const MetricInstance& instance) {
  return prim_mst(instance).total_weight;
}

Weight trivial_lower_bound(const MetricInstance& instance) {
  if (instance.n() < 2) return 0;
  return static_cast<Weight>(instance.n() - 1) * instance.min_weight();
}

Weight path_lower_bound(const MetricInstance& instance) {
  return std::max(mst_lower_bound(instance), trivial_lower_bound(instance));
}

Weight held_karp_ascent_lower_bound(const MetricInstance& instance, int iterations) {
  const int n = instance.n();
  LPTSP_REQUIRE(iterations >= 1, "need at least one ascent iteration");
  if (n < 2) return 0;

  std::vector<double> pi(static_cast<std::size_t>(n), 0.0);
  std::vector<double> best_key(static_cast<std::size_t>(n));
  std::vector<int> from(static_cast<std::size_t>(n));
  std::vector<int> degree(static_cast<std::size_t>(n));
  std::vector<bool> in_tree(static_cast<std::size_t>(n));

  double best_bound = 0.0;
  // Harmonic step decay: geometric cooling freezes the multipliers long
  // before convergence on flat {pmin, 2pmin} metrics, while t0/(1+k/8)
  // keeps making progress yet still converges.
  const double initial_step = static_cast<double>(instance.max_weight()) / 4.0 + 0.5;
  for (int round = 0; round < iterations; ++round) {
    const double step = initial_step / (1.0 + static_cast<double>(round) / 8.0);
    // Prim MST under w(u,v) + pi_u + pi_v.
    std::fill(best_key.begin(), best_key.end(), std::numeric_limits<double>::infinity());
    std::fill(from.begin(), from.end(), -1);
    std::fill(degree.begin(), degree.end(), 0);
    std::fill(in_tree.begin(), in_tree.end(), false);
    best_key[0] = 0.0;
    double tree_weight = 0.0;
    for (int picked = 0; picked < n; ++picked) {
      int v = -1;
      for (int u = 0; u < n; ++u) {
        if (!in_tree[static_cast<std::size_t>(u)] &&
            (v == -1 || best_key[static_cast<std::size_t>(u)] < best_key[static_cast<std::size_t>(v)])) {
          v = u;
        }
      }
      in_tree[static_cast<std::size_t>(v)] = true;
      tree_weight += best_key[static_cast<std::size_t>(v)];
      if (from[static_cast<std::size_t>(v)] != -1) {
        ++degree[static_cast<std::size_t>(v)];
        ++degree[static_cast<std::size_t>(from[static_cast<std::size_t>(v)])];
      }
      const Weight* wrow = instance.row(v);
      for (int u = 0; u < n; ++u) {
        if (in_tree[static_cast<std::size_t>(u)]) continue;
        const double modified = static_cast<double>(wrow[u]) +
                                pi[static_cast<std::size_t>(v)] + pi[static_cast<std::size_t>(u)];
        if (modified < best_key[static_cast<std::size_t>(u)]) {
          best_key[static_cast<std::size_t>(u)] = modified;
          from[static_cast<std::size_t>(u)] = v;
        }
      }
    }
    double pi_sum = 0.0;
    for (const double value : pi) pi_sum += value;
    best_bound = std::max(best_bound, tree_weight - 2.0 * pi_sum);

    // Subgradient: penalize over-visited vertices, relax the rest; keep
    // the multipliers non-negative (the relaxed constraint is deg <= 2).
    for (int v = 0; v < n; ++v) {
      pi[static_cast<std::size_t>(v)] = std::max(
          0.0, pi[static_cast<std::size_t>(v)] +
                   step * static_cast<double>(degree[static_cast<std::size_t>(v)] - 2));
    }
  }
  // floor() keeps validity: OPT is an integer >= the real-valued bound.
  return std::max(path_lower_bound(instance), static_cast<Weight>(std::floor(best_bound)));
}

}  // namespace lptsp
