#pragma once

#include "tsp/path.hpp"

namespace lptsp {

/// Outcome of the Christofides–Hoogeveen approximation.
struct ChristofidesResult {
  PathSolution solution;
  /// True when the matching step was certifiably optimal (two-valued
  /// reduction or exact DP), i.e. the classic analysis applies.
  bool matching_certified = false;
};

/// Christofides adapted to Path TSP with free endpoints (Hoogeveen's
/// variant): MST + min-weight perfect matching on the odd-degree vertices,
/// then the better of
///   (a) Eulerian circuit -> Hamiltonian cycle -> drop the heaviest edge;
///   (b) drop the heaviest matching edge first, leaving exactly two odd
///       vertices -> Eulerian path -> shortcut.
/// Under the paper's pmax <= 2*pmin metrics the realized ratio is
/// <= 1.5 * (1 + 2/(n-1)) against the optimal path; the benches measure
/// it directly against exact optima. Requires a metric instance.
ChristofidesResult christofides_path(const MetricInstance& instance);

/// Double-MST 2-approximation for Path TSP: DFS preorder of the minimum
/// spanning tree. (The MST itself lower-bounds the optimal path, so the
/// preorder walk costs at most 2*MST - the walk back.)
PathSolution double_mst_path(const MetricInstance& instance);

}  // namespace lptsp
