#include "tsp/path.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

bool is_valid_order(const Order& order, int n) {
  if (static_cast<int>(order.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const int v : order) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

Weight path_length(const MetricInstance& instance, const Order& order) {
  LPTSP_REQUIRE(is_valid_order(order, instance.n()), "order must be a permutation of vertices");
  // The permutation check above validates every index, so the summation
  // itself can use the unchecked accessor.
  Weight total = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    total += instance.weight_unchecked(order[i], order[i + 1]);
  }
  return total;
}

Weight tour_length(const MetricInstance& instance, const Order& order) {
  LPTSP_REQUIRE(is_valid_order(order, instance.n()), "order must be a permutation of vertices");
  if (order.size() < 2) return 0;
  return path_length(instance, order) + instance.weight(order.back(), order.front());
}

Order path_from_depot_tour(const Order& tour, int depot) {
  const auto it = std::find(tour.begin(), tour.end(), depot);
  LPTSP_REQUIRE(it != tour.end(), "depot not present in tour");
  Order path;
  path.reserve(tour.size() - 1);
  for (auto cursor = it + 1; cursor != tour.end(); ++cursor) path.push_back(*cursor);
  for (auto cursor = tour.begin(); cursor != it; ++cursor) path.push_back(*cursor);
  return path;
}

Order canonical_path(Order order) {
  if (!order.empty() && order.front() > order.back()) {
    std::reverse(order.begin(), order.end());
  }
  return order;
}

}  // namespace lptsp
