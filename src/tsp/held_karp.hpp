#pragma once

#include <atomic>
#include <cstdint>

#include "tsp/path.hpp"

namespace lptsp {

/// Options for the Held–Karp dynamic program.
struct HeldKarpOptions {
  /// Worker threads for the subset layers (0 = shared pool, 1 = serial).
  unsigned threads = 1;
  /// Fix the path's first vertex (-1 = free). Free endpoints solve the
  /// paper's Path TSP; a fixed start is exposed for tests and for callers
  /// embedding the DP in other algorithms.
  int fixed_start = -1;
  /// Hard cap on n; the DP allocates 2^n * n * 2 or 4 bytes (16-bit table
  /// when every path cost fits, 32-bit otherwise), so 24 (~0.8-1.6 GiB)
  /// is an absolute ceiling and the default stays laptop-friendly.
  int max_n = 22;
  /// Cooperative cancellation for deadline-racing callers: polled at every
  /// popcount-layer boundary (and periodically inside large layers on the
  /// serial path). A cancelled run returns no solution (cost -1,
  /// completed = false) — the DP has no usable partial answer — but it
  /// returns promptly, which is what lets Held–Karp join portfolio races
  /// whose deadline it might miss.
  const std::atomic<bool>* cancel = nullptr;
};

/// held_karp_path plus the metadata racing callers need: whether the DP ran
/// to completion or the cancel flag stopped it early. Mirrors
/// BranchBoundRun / ChainedLkRun. When completed is false the solution is
/// empty with cost -1.
struct HeldKarpRun {
  PathSolution solution;
  bool completed = true;
  // DP work performed before finishing (or being cancelled). Cells are
  // exact writes — popcount(S) per processed subset — so a completed run's
  // counts depend only on n, never on the dispatched ISA tier or thread
  // count.
  std::uint64_t layers = 0;  ///< popcount layers completed (incl. singletons)
  std::uint64_t cells = 0;   ///< dp cells written
};

/// Exact Path TSP via the Held–Karp O(2^n n^2) dynamic program
/// (Corollary 1 of the paper). dp[S][j] = cheapest path visiting exactly
/// the vertex set S and ending at j; layers are processed in popcount
/// order, which makes the recurrence race-free and parallelizable.
///
/// Requires 1 <= n <= options.max_n.
HeldKarpRun held_karp_path_run(const MetricInstance& instance, const HeldKarpOptions& options = {});

/// The throwing front-end: requires the run to complete (i.e. pass no
/// cancel flag, or one that never fires).
PathSolution held_karp_path(const MetricInstance& instance, const HeldKarpOptions& options = {});

}  // namespace lptsp
