#pragma once

#include "tsp/path.hpp"

namespace lptsp {

/// Options for the Held–Karp dynamic program.
struct HeldKarpOptions {
  /// Worker threads for the subset layers (0 = shared pool, 1 = serial).
  unsigned threads = 1;
  /// Fix the path's first vertex (-1 = free). Free endpoints solve the
  /// paper's Path TSP; a fixed start is exposed for tests and for callers
  /// embedding the DP in other algorithms.
  int fixed_start = -1;
  /// Hard cap on n; the DP allocates 2^n * n * 4 bytes, so 24 (~1.6 GiB)
  /// is an absolute ceiling and the default stays laptop-friendly.
  int max_n = 22;
};

/// Exact Path TSP via the Held–Karp O(2^n n^2) dynamic program
/// (Corollary 1 of the paper). dp[S][j] = cheapest path visiting exactly
/// the vertex set S and ending at j; layers are processed in popcount
/// order, which makes the recurrence race-free and parallelizable.
///
/// Requires 1 <= n <= options.max_n.
PathSolution held_karp_path(const MetricInstance& instance, const HeldKarpOptions& options = {});

}  // namespace lptsp
