#pragma once

#include "tsp/path.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// Lin–Kernighan-style variable-depth engine for open paths.
///
/// This is the library's stand-in for the external LK implementations the
/// paper proposes as engines (LKH, Concorde's linkern). It chains 2-opt
/// and Or-opt neighborhoods to a joint local optimum (variable-
/// neighborhood descent) starting from a nearest-neighbor construction.
/// See DESIGN.md "Substitutions" for the fidelity discussion.
PathSolution lin_kernighan_style_path(const MetricInstance& instance, Rng& rng);

/// Same, but starting from a caller-provided order.
PathSolution lin_kernighan_style_path_from(const MetricInstance& instance, Order start);

}  // namespace lptsp
