#include "tsp/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>

#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// Weight of the path edge (order[i], order[i+1]), 0 outside the path.
Weight edge_at(const MetricInstance& instance, const Order& order, std::ptrdiff_t i) {
  if (i < 0 || i + 1 >= static_cast<std::ptrdiff_t>(order.size())) return 0;
  return instance.weight(order[static_cast<std::size_t>(i)],
                         order[static_cast<std::size_t>(i) + 1]);
}

/// Delta of reversing order[i..j] (2-opt move on an open path).
Weight reversal_delta(const MetricInstance& instance, const Order& order, std::size_t i,
                      std::size_t j) {
  const std::ptrdiff_t si = static_cast<std::ptrdiff_t>(i);
  const std::ptrdiff_t sj = static_cast<std::ptrdiff_t>(j);
  const Weight removed = edge_at(instance, order, si - 1) + edge_at(instance, order, sj);
  const Weight added =
      (i == 0 ? 0 : instance.weight(order[i - 1], order[j])) +
      (j + 1 >= order.size() ? 0 : instance.weight(order[i], order[j + 1]));
  return added - removed;
}

}  // namespace

PathSolution simulated_annealing_path(const MetricInstance& instance,
                                      const AnnealOptions& options) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  LPTSP_REQUIRE(options.cooling > 0 && options.cooling < 1, "cooling must be in (0,1)");
  if (n <= 3) {
    Rng rng(options.seed);
    PathSolution trivial = nearest_neighbor_path(instance, 0);
    vnd(instance, trivial.order);
    trivial.cost = path_length(instance, trivial.order);
    return trivial;
  }

  Rng rng(options.seed);
  Order current = nearest_neighbor_path(instance, rng.uniform_int(0, n - 1)).order;
  Weight current_cost = path_length(instance, current);
  Order best = current;
  Weight best_cost = current_cost;

  // Temperature in absolute weight units, scaled by the mean edge weight
  // so the same options work for any pmin.
  const double mean_weight =
      static_cast<double>(instance.min_weight() + instance.max_weight()) / 2.0;
  double temperature = options.initial_temperature * mean_weight;
  const double floor_temperature = options.final_temperature * mean_weight;
  const int moves = options.moves_per_temperature > 0 ? options.moves_per_temperature : 8 * n;

  while (temperature > floor_temperature) {
    for (int move = 0; move < moves; ++move) {
      std::size_t i = rng.uniform_index(static_cast<std::size_t>(n));
      std::size_t j = rng.uniform_index(static_cast<std::size_t>(n));
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      if (i == 0 && j + 1 == static_cast<std::size_t>(n)) continue;  // no-op reversal
      const Weight delta = reversal_delta(instance, current, i, j);
      if (delta <= 0 ||
          rng.uniform01() < std::exp(-static_cast<double>(delta) / temperature)) {
        std::reverse(current.begin() + static_cast<std::ptrdiff_t>(i),
                     current.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        current_cost += delta;
        if (current_cost < best_cost) {
          best_cost = current_cost;
          best = current;
        }
      }
    }
    temperature *= options.cooling;
  }

  vnd(instance, best);
  return {best, path_length(instance, best)};
}

}  // namespace lptsp
