#include "tsp/brute_force.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace lptsp {

PathSolution brute_force_path(const MetricInstance& instance) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1 && n <= 11, "brute force is capped at 11 vertices");
  Order order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  PathSolution best{order, path_length(instance, order)};
  do {
    // A path equals its reverse; skip half the permutations.
    if (order.front() > order.back()) continue;
    const Weight cost = path_length(instance, order);
    if (cost < best.cost) best = {order, cost};
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace lptsp
