#pragma once

#include "tsp/path.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// Options for the simulated-annealing engine.
struct AnnealOptions {
  double initial_temperature = 2.0;  ///< in units of mean edge weight
  double cooling = 0.995;            ///< geometric cooling factor per batch
  int moves_per_temperature = 0;     ///< 0 = 8 * n
  double final_temperature = 1e-3;   ///< stop threshold (same units)
  std::uint64_t seed = 1;
};

/// Classic simulated annealing over 2-opt/Or-opt moves on an open path —
/// included as the third member of the practical engine portfolio the
/// paper gestures at (construction, local search, metaheuristic). Always
/// finishes with a VND polish so the result is at least a local optimum.
PathSolution simulated_annealing_path(const MetricInstance& instance,
                                      const AnnealOptions& options = {});

}  // namespace lptsp
