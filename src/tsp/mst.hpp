#pragma once

#include <vector>

#include "tsp/instance.hpp"

namespace lptsp {

/// A spanning tree of a complete instance, as a parent array rooted at 0.
struct SpanningTree {
  std::vector<int> parent;  // parent[0] == -1
  Weight total_weight = 0;

  /// Adjacency lists of the tree (n entries).
  [[nodiscard]] std::vector<std::vector<int>> adjacency() const;

  /// Vertices with odd degree in the tree (always an even count).
  [[nodiscard]] std::vector<int> odd_degree_vertices() const;
};

/// Minimum spanning tree via Prim in O(n^2) — the right complexity class
/// for complete instances. Requires n >= 1.
SpanningTree prim_mst(const MetricInstance& instance);

}  // namespace lptsp
