#pragma once

#include "tsp/path.hpp"

namespace lptsp {

/// One full 2-opt pass over an open path (segment reversal; endpoints are
/// handled as free, so prefix/suffix reversals cost one edge swap).
/// Returns true if any improving move was applied.
bool two_opt_pass(const MetricInstance& instance, Order& order);

/// 2-opt to a local optimum.
void two_opt(const MetricInstance& instance, Order& order);

/// One Or-opt pass: relocate segments of length 1..max_segment to a better
/// position, in either orientation. Returns true if improved.
bool or_opt_pass(const MetricInstance& instance, Order& order, int max_segment = 3);

/// Or-opt to a local optimum.
void or_opt(const MetricInstance& instance, Order& order, int max_segment = 3);

/// Variable-neighborhood descent: alternate 2-opt and Or-opt until the
/// path is locally optimal for both. This is the inner optimizer of the
/// library's Lin–Kernighan-style engine.
void vnd(const MetricInstance& instance, Order& order, int max_segment = 3);

}  // namespace lptsp
