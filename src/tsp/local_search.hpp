#pragma once

#include <cstdint>
#include <vector>

#include "tsp/candidates.hpp"
#include "tsp/path.hpp"

namespace lptsp {

/// One full 2-opt pass over an open path (segment reversal; endpoints are
/// handled as free, so prefix/suffix reversals cost one edge swap).
/// Returns true if any improving move was applied.
bool two_opt_pass(const MetricInstance& instance, Order& order);

/// 2-opt to a local optimum.
void two_opt(const MetricInstance& instance, Order& order);

/// One Or-opt pass: relocate segments of length 1..max_segment to a better
/// position, in either orientation. Returns true if improved.
bool or_opt_pass(const MetricInstance& instance, Order& order, int max_segment = 3);

/// Or-opt to a local optimum.
void or_opt(const MetricInstance& instance, Order& order, int max_segment = 3);

/// Variable-neighborhood descent: alternate 2-opt and Or-opt until the
/// path is locally optimal for both. This is the full-neighborhood
/// (O(n^2)-per-pass) reference optimizer, kept for the ablation benches;
/// hot paths use PathOptimizer below.
void vnd(const MetricInstance& instance, Order& order, int max_segment = 3);

/// Candidate-list local search for open paths: 2-opt + Or-opt moves
/// enumerated from per-vertex k-nearest candidate lists, driven by a
/// don't-look queue (only vertices whose neighborhood changed are
/// re-examined), with all scratch buffers owned by the optimizer and
/// reused across passes and kicks.
///
/// An improving 2-opt move always creates an edge (x, c) cheaper than an
/// edge it removes at x, so scanning each awake vertex's candidate prefix
/// (sorted ascending, early exit) finds every improving move the lists can
/// express. With complete lists (k >= n-1) a fixpoint is a full 2-opt local
/// optimum; with short lists it is a candidate-local optimum — the classic
/// speed/quality dial of LK-family engines. Applied moves only ever
/// decrease the (integer) path cost, so optimization terminates and never
/// returns a costlier path than its seed.
class PathOptimizer {
 public:
  /// Work the optimizer performed since construction (or reset_stats()):
  /// don't-look queue wakes and applied improving moves. Both are
  /// deterministic functions of the instance and seed order, so they are
  /// ISA-invariant — the profiling layer counts on that.
  struct Stats {
    std::uint64_t wakes = 0;  ///< vertices enqueued for re-examination
    std::uint64_t moves = 0;  ///< applied 2-opt reversals + Or-opt relocations
  };

  /// Builds private candidate lists of length k.
  explicit PathOptimizer(const MetricInstance& instance, int k = CandidateLists::kDefaultK);

  /// Shares prebuilt lists (must outlive the optimizer). ChainedLK builds
  /// one CandidateLists and hands it to every restart's optimizer.
  PathOptimizer(const MetricInstance& instance, const CandidateLists& candidates);

  PathOptimizer(const PathOptimizer&) = delete;
  PathOptimizer& operator=(const PathOptimizer&) = delete;

  /// Optimize to a candidate-local optimum, examining every vertex.
  void optimize(Order& order);

  /// Re-optimize after a localized perturbation: only `wake` vertices (and
  /// transitively, vertices whose incident path edges later change) are
  /// examined. This is what makes a ChainedLK kick cycle near-O(1) instead
  /// of a full O(n k) rescan.
  void optimize(Order& order, const std::vector<int>& wake);

  [[nodiscard]] const CandidateLists& candidates() const noexcept { return *cand_; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  void run(Order& order);
  bool improve_vertex(Order& order, int x);
  bool try_two_opt(Order& order, int x);
  bool try_or_opt(Order& order, int x);
  void apply_reversal(Order& order, std::size_t first, std::size_t last);
  void apply_segment_move(Order& order, std::size_t s, std::size_t e, std::size_t pc,
                          bool after, bool reversed);
  void wake(int v);

  const MetricInstance& instance_;
  CandidateLists owned_;
  const CandidateLists* cand_;
  int max_segment_ = 3;
  std::vector<int> pos_;             // pos_[vertex] = index in order
  std::vector<std::uint8_t> queued_;
  std::vector<int> queue_;
  Stats stats_;
};

}  // namespace lptsp
