#pragma once

#include <atomic>
#include <cstdint>

#include "tsp/path.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// Options for the chained Lin–Kernighan-style engine.
struct ChainedLkOptions {
  int restarts = 3;       ///< independent multi-starts (parallelizable)
  int kicks = 40;         ///< double-bridge perturbations per restart
  std::uint64_t seed = 1; ///< master seed; restarts derive child streams
  unsigned threads = 1;   ///< 0 = shared pool, 1 = serial
  /// Cooperative cancellation for deadline-racing callers: when non-null
  /// and set, each restart stops kicking and the best tour found so far is
  /// returned. The first local optimization of each restart always runs,
  /// so a cancelled call still yields a feasible solution.
  const std::atomic<bool>* cancel = nullptr;
};

/// Chained LK in the sense of Applegate–Cook–Rohe: local-optimize, then
/// repeatedly apply a double-bridge kick and re-optimize, keeping
/// improvements; the whole chain is multi-started. This is the strongest
/// heuristic engine in the library and the practical counterpart of the
/// paper's "use Concorde/LKH as engines" pitch.
PathSolution chained_lk_path(const MetricInstance& instance, const ChainedLkOptions& options = {});

/// chained_lk_path plus the metadata racing callers need: whether every
/// restart ran its full kick schedule (completed) or the cancel flag cut
/// at least one short. Mirrors BranchBoundRun.
struct ChainedLkRun {
  PathSolution solution;
  bool completed = true;
  // Work performed across every restart, summed. Deterministic for a
  // fixed (instance, options) pair as long as the run completes: restarts
  // use independent seeded streams, so thread interleaving cannot change
  // what each one does.
  std::uint64_t kicks = 0;     ///< double-bridge kicks applied
  std::uint64_t accepted = 0;  ///< kicks whose re-optimized path improved
  std::uint64_t wakes = 0;     ///< candidate-list don't-look queue wakes
  std::uint64_t moves = 0;     ///< applied 2-opt/Or-opt improving moves
};

ChainedLkRun chained_lk_path_run(const MetricInstance& instance,
                                 const ChainedLkOptions& options = {});

/// A double-bridge 4-opt kick for open paths: cut into four non-empty
/// segments A B C D and rearrange to A C B D. When `changed` is non-null
/// it receives the six vertices incident to the three spliced edges — the
/// wake set a candidate-list optimizer needs to repair the kick locally
/// instead of rescanning the whole path.
Order double_bridge_kick(const Order& order, Rng& rng, std::vector<int>* changed = nullptr);

}  // namespace lptsp
