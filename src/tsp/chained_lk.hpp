#pragma once

#include "tsp/path.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// Options for the chained Lin–Kernighan-style engine.
struct ChainedLkOptions {
  int restarts = 3;       ///< independent multi-starts (parallelizable)
  int kicks = 40;         ///< double-bridge perturbations per restart
  std::uint64_t seed = 1; ///< master seed; restarts derive child streams
  unsigned threads = 1;   ///< 0 = shared pool, 1 = serial
};

/// Chained LK in the sense of Applegate–Cook–Rohe: local-optimize, then
/// repeatedly apply a double-bridge kick and re-optimize, keeping
/// improvements; the whole chain is multi-started. This is the strongest
/// heuristic engine in the library and the practical counterpart of the
/// paper's "use Concorde/LKH as engines" pitch.
PathSolution chained_lk_path(const MetricInstance& instance, const ChainedLkOptions& options = {});

/// A double-bridge 4-opt kick for open paths: cut into four non-empty
/// segments A B C D and rearrange to A C B D.
Order double_bridge_kick(const Order& order, Rng& rng);

}  // namespace lptsp
