#pragma once

#include "tsp/path.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// Nearest-neighbor path from a fixed start vertex, O(n^2).
PathSolution nearest_neighbor_path(const MetricInstance& instance, int start);

/// Nearest-neighbor from up to `samples` random distinct starts; returns
/// the best path found.
PathSolution best_nearest_neighbor_path(const MetricInstance& instance, int samples, Rng& rng);

/// Greedy-edge construction: sort all pairs by weight and add an edge
/// whenever both endpoints still have degree < 2 and no cycle forms; the
/// n-1 chosen edges form a Hamiltonian path. O(n^2 log n).
PathSolution greedy_edge_path(const MetricInstance& instance);

/// Cheapest-insertion: grow a path from the lightest pair, repeatedly
/// inserting the vertex whose best insertion position (including both
/// ends) is cheapest. O(n^2) with incremental best-position tracking.
PathSolution cheapest_insertion_path(const MetricInstance& instance);

}  // namespace lptsp
