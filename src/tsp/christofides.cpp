#include "tsp/christofides.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "tsp/matching.hpp"
#include "tsp/mst.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// Multigraph on instance vertices; parallel edges are expected (an MST
/// edge can coincide with a matching edge).
struct Multigraph {
  explicit Multigraph(int n) : adjacency(static_cast<std::size_t>(n)) {}

  void add_edge(int u, int v) {
    const int id = static_cast<int>(edge_used.size());
    adjacency[static_cast<std::size_t>(u)].emplace_back(v, id);
    adjacency[static_cast<std::size_t>(v)].emplace_back(u, id);
    edge_used.push_back(false);
  }

  std::vector<std::vector<std::pair<int, int>>> adjacency;  // (to, edge id)
  std::vector<bool> edge_used;
};

/// Hierholzer's algorithm. Returns the Eulerian walk starting at `start`
/// (a circuit when all degrees are even, a path when exactly two are odd
/// and `start` is one of them).
std::vector<int> eulerian_walk(Multigraph& graph, int start) {
  std::vector<std::size_t> next_edge(graph.adjacency.size(), 0);
  std::vector<int> stack{start};
  std::vector<int> walk;
  while (!stack.empty()) {
    const int v = stack.back();
    auto& cursor = next_edge[static_cast<std::size_t>(v)];
    const auto& neighbors = graph.adjacency[static_cast<std::size_t>(v)];
    while (cursor < neighbors.size() && graph.edge_used[static_cast<std::size_t>(neighbors[cursor].second)]) {
      ++cursor;
    }
    if (cursor == neighbors.size()) {
      walk.push_back(v);
      stack.pop_back();
    } else {
      graph.edge_used[static_cast<std::size_t>(neighbors[cursor].second)] = true;
      stack.push_back(neighbors[cursor].first);
    }
  }
  std::reverse(walk.begin(), walk.end());
  return walk;
}

/// Shortcut an Eulerian walk to a simple vertex order (first occurrences).
Order shortcut(const std::vector<int>& walk, int n) {
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  for (const int v : walk) {
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = true;
      order.push_back(v);
    }
  }
  return order;
}

/// Rotate a Hamiltonian-cycle order so that its heaviest edge becomes the
/// (dropped) wrap-around edge, yielding the cheapest path from the cycle.
Order drop_heaviest_cycle_edge(const MetricInstance& instance, const Order& cycle) {
  const std::size_t n = cycle.size();
  std::size_t heaviest = 0;  // edge (cycle[i], cycle[(i+1) % n])
  Weight heaviest_weight = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const Weight w = instance.weight(cycle[i], cycle[(i + 1) % n]);
    if (w > heaviest_weight) {
      heaviest_weight = w;
      heaviest = i;
    }
  }
  Order path;
  path.reserve(n);
  for (std::size_t step = 1; step <= n; ++step) path.push_back(cycle[(heaviest + step) % n]);
  return path;
}

}  // namespace

ChristofidesResult christofides_path(const MetricInstance& instance) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  if (n == 1) return {{{0}, 0}, true};
  if (n == 2) return {{{0, 1}, instance.weight(0, 1)}, true};

  const SpanningTree tree = prim_mst(instance);
  const std::vector<int> odd = tree.odd_degree_vertices();
  LPTSP_ENSURE(odd.size() % 2 == 0, "odd-degree vertex count must be even");
  const MatchingResult matching = min_weight_perfect_matching(instance, odd);

  const auto build_base = [&] {
    Multigraph graph(n);
    for (int v = 1; v < n; ++v) graph.add_edge(v, tree.parent[static_cast<std::size_t>(v)]);
    return graph;
  };

  // Variant (a): full matching -> Eulerian circuit -> cycle -> drop edge.
  Multigraph circuit_graph = build_base();
  for (const auto& [u, v] : matching.pairs) circuit_graph.add_edge(u, v);
  const Order cycle = shortcut(eulerian_walk(circuit_graph, 0), n);
  LPTSP_ENSURE(is_valid_order(cycle, n), "Eulerian shortcut missed vertices");
  Order best_order = drop_heaviest_cycle_edge(instance, cycle);
  Weight best_cost = path_length(instance, best_order);

  // Variant (b): drop the heaviest matching edge, leaving two odd
  // vertices -> Eulerian path -> shortcut.
  if (!matching.pairs.empty()) {
    std::size_t heaviest = 0;
    for (std::size_t i = 1; i < matching.pairs.size(); ++i) {
      if (instance.weight(matching.pairs[i].first, matching.pairs[i].second) >
          instance.weight(matching.pairs[heaviest].first, matching.pairs[heaviest].second)) {
        heaviest = i;
      }
    }
    Multigraph path_graph = build_base();
    for (std::size_t i = 0; i < matching.pairs.size(); ++i) {
      if (i != heaviest) path_graph.add_edge(matching.pairs[i].first, matching.pairs[i].second);
    }
    const Order path =
        shortcut(eulerian_walk(path_graph, matching.pairs[heaviest].first), n);
    LPTSP_ENSURE(is_valid_order(path, n), "Eulerian path shortcut missed vertices");
    const Weight cost = path_length(instance, path);
    if (cost < best_cost) {
      best_order = path;
      best_cost = cost;
    }
  }

  return {{std::move(best_order), best_cost}, matching.certified_optimal};
}

PathSolution double_mst_path(const MetricInstance& instance) {
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "instance must be non-empty");
  const SpanningTree tree = prim_mst(instance);
  const auto adjacency = tree.adjacency();
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(v)]) continue;
    seen[static_cast<std::size_t>(v)] = true;
    order.push_back(v);
    // Push children in reverse so the walk follows adjacency order.
    for (auto it = adjacency[static_cast<std::size_t>(v)].rbegin();
         it != adjacency[static_cast<std::size_t>(v)].rend(); ++it) {
      if (!seen[static_cast<std::size_t>(*it)]) stack.push_back(*it);
    }
  }
  LPTSP_ENSURE(is_valid_order(order, n), "MST preorder missed vertices");
  return {order, path_length(instance, order)};
}

}  // namespace lptsp
