#include "tsp/lin_kernighan.hpp"

#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "util/check.hpp"

namespace lptsp {

PathSolution lin_kernighan_style_path(const MetricInstance& instance, Rng& rng) {
  LPTSP_REQUIRE(instance.n() >= 1, "instance must be non-empty");
  PathSolution start = nearest_neighbor_path(instance, rng.uniform_int(0, instance.n() - 1));
  return lin_kernighan_style_path_from(instance, std::move(start.order));
}

PathSolution lin_kernighan_style_path_from(const MetricInstance& instance, Order start) {
  LPTSP_REQUIRE(is_valid_order(start, instance.n()), "start must be a permutation");
  // Candidate-list descent (2-opt + Or-opt over k-nearest lists with
  // don't-look bits) — the same inner optimizer ChainedLK drives, built
  // fresh here since one-shot callers have no lists to share.
  PathOptimizer optimizer(instance);
  optimizer.optimize(start);
  const Weight cost = path_length(instance, start);
  return {std::move(start), cost};
}

}  // namespace lptsp
