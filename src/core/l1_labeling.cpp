#include "core/l1_labeling.hpp"

#include <numeric>

#include "graph/operations.hpp"
#include "params/neighborhood_diversity.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

L1Result from_coloring(const Coloring& coloring, bool optimal, int kernel_size) {
  L1Result result;
  result.labeling.labels.assign(coloring.colors.size(), 0);
  for (std::size_t v = 0; v < coloring.colors.size(); ++v) {
    result.labeling.labels[v] = coloring.colors[v];
  }
  result.span = coloring.count - 1;
  result.optimal = optimal;
  result.kernel_size = kernel_size;
  return result;
}

}  // namespace

L1Result l1_labeling_exact(const Graph& graph, int k) {
  LPTSP_REQUIRE(k >= 1, "k must be positive");
  const Graph power_graph = power(graph, k);
  const Coloring coloring = exact_coloring(power_graph);
  return from_coloring(coloring, true, power_graph.n());
}

L1Result l1_labeling_greedy(const Graph& graph, int k) {
  LPTSP_REQUIRE(k >= 1, "k must be positive");
  const Graph power_graph = power(graph, k);
  const Coloring coloring = dsatur_coloring(power_graph);
  return from_coloring(coloring, false, power_graph.n());
}

L1Result l1_labeling_nd_kernel(const Graph& graph, int k) {
  LPTSP_REQUIRE(k >= 1, "k must be positive");
  const Graph power_graph = power(graph, k);
  const NdPartition partition = neighborhood_diversity_partition(power_graph);

  // Kernel: one representative per independent (false twin) class; all
  // members of a clique (true twin) class must keep distinct colors, so
  // they stay. Contracting false twins preserves the chromatic number:
  // they are non-adjacent with identical neighborhoods, so any proper
  // coloring can recolor the whole class with the representative's color.
  std::vector<int> kernel_vertices;
  for (std::size_t c = 0; c < partition.classes.size(); ++c) {
    if (partition.is_clique_class[c]) {
      kernel_vertices.insert(kernel_vertices.end(), partition.classes[c].begin(),
                             partition.classes[c].end());
    } else {
      kernel_vertices.push_back(partition.classes[c].front());
    }
  }
  const Graph kernel = induced_subgraph(power_graph, kernel_vertices);
  const Coloring kernel_coloring = exact_coloring(kernel);

  // Expand: members of a contracted class copy their representative.
  std::vector<int> color_of(static_cast<std::size_t>(graph.n()), -1);
  for (std::size_t i = 0; i < kernel_vertices.size(); ++i) {
    color_of[static_cast<std::size_t>(kernel_vertices[i])] =
        kernel_coloring.colors[i];
  }
  for (std::size_t c = 0; c < partition.classes.size(); ++c) {
    if (partition.is_clique_class[c]) continue;
    const int rep_color = color_of[static_cast<std::size_t>(partition.classes[c].front())];
    for (const int v : partition.classes[c]) color_of[static_cast<std::size_t>(v)] = rep_color;
  }
  Coloring full{std::move(color_of), kernel_coloring.count};
  LPTSP_ENSURE(is_proper_coloring(power_graph, full),
               "nd-kernel expansion produced an improper coloring");
  return from_coloring(full, true, kernel.n());
}

}  // namespace lptsp
