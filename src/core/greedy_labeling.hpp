#pragma once

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// Vertex orderings for the first-fit heuristic.
enum class GreedyOrder {
  Index,             ///< 0, 1, ..., n-1
  DegreeDescending,  ///< classic largest-first
  Bfs,               ///< BFS from a maximum-degree vertex
  Random,            ///< uniformly random (requires rng)
};

/// Classic first-fit distance-labeling heuristic (the pre-TSP baseline
/// used across the frequency-assignment literature): process vertices in
/// the chosen order, giving each the smallest non-negative label whose
/// gaps to all already-labeled vertices within distance k are feasible.
/// Works for any p and any diameter; never fails, but gives no
/// approximation guarantee.
Labeling greedy_first_fit(const Graph& graph, const PVec& p,
                          GreedyOrder order = GreedyOrder::DegreeDescending,
                          Rng* rng = nullptr);

/// Core routine with an explicit order and precomputed distances.
Labeling greedy_first_fit_with_order(const DistanceMatrix& dist, const PVec& p,
                                     const std::vector<int>& order);

}  // namespace lptsp
