#include "core/reduction.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

namespace {

/// The O(n^2) matrix fill with no precondition scans — callers have
/// already validated connectivity and diameter. p is expanded into a
/// distance-indexed lookup table once, then each source row is one linear
/// pass over the distance row writing both weight triangles directly:
/// no per-entry bounds checks, no p.at() calls, store-bound throughput.
MetricInstance fill_instance(const DistanceMatrix& dist, const PVec& p, unsigned threads) {
  const int n = dist.n();
  MetricInstance instance(n);
  std::vector<Weight> lut(static_cast<std::size_t>(p.k()) + 1, 0);
  for (int d = 1; d <= p.k(); ++d) lut[static_cast<std::size_t>(d)] = p.at(d);
  // Each ordered pair (u, v) with u < v is written only by iteration u, so
  // parallelizing over sources is race-free.
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t u) {
        const int* drow = dist.row(static_cast<int>(u));
        for (int v = static_cast<int>(u) + 1; v < n; ++v) {
          instance.set_weight_unchecked(static_cast<int>(u), v,
                                        lut[static_cast<std::size_t>(drow[v])]);
        }
      },
      threads);
  return instance;
}

ReducedInstance build(const Graph& graph, const PVec& p, unsigned threads) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  DistanceMatrix dist = all_pairs_distances(graph, threads);
  LPTSP_REQUIRE(dist.all_finite(), "Theorem 2 requires a connected graph");
  const int diam = dist.max_finite();
  LPTSP_REQUIRE(diam <= p.k(), "Theorem 2 requires diam(G) <= k; got diameter " +
                                   std::to_string(diam) + " with k = " + std::to_string(p.k()));
  MetricInstance instance = fill_instance(dist, p, threads);
  return {std::move(instance), std::move(dist)};
}

}  // namespace

MetricInstance instance_from_distances(const DistanceMatrix& dist, const PVec& p,
                                       unsigned threads) {
  LPTSP_REQUIRE(dist.all_finite(), "instance_from_distances requires all pairs reachable");
  LPTSP_REQUIRE(dist.max_finite() <= p.k(),
                "instance_from_distances requires max distance <= k");
  return fill_instance(dist, p, threads);
}

ReducedInstance reduce_to_path_tsp(const Graph& graph, const PVec& p, unsigned threads) {
  LPTSP_REQUIRE(p.satisfies_reduction_condition(),
                "Theorem 2 requires pmax <= 2*pmin; p = " + p.to_string() +
                    " violates it (use reduce_to_path_tsp_unchecked for the ablation)");
  ReducedInstance reduced = build(graph, p, threads);
  // With pmax <= 2*pmin every weight lies in [pmin, 2*pmin], so H is
  // metric by construction; this invariant is what Corollary 1 relies on.
  LPTSP_ENSURE(graph.n() < 2 || reduced.instance.max_weight() <= 2 * reduced.instance.min_weight(),
               "reduced instance violates the bounded-weight invariant");
  return reduced;
}

ReducedInstance reduce_to_path_tsp_unchecked(const Graph& graph, const PVec& p,
                                             unsigned threads) {
  return build(graph, p, threads);
}

}  // namespace lptsp
