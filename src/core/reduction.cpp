#include "core/reduction.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"

namespace lptsp {

namespace {

/// The O(n^2) matrix fill with no precondition scans — callers have
/// already validated connectivity and diameter.
MetricInstance fill_instance(const DistanceMatrix& dist, const PVec& p) {
  MetricInstance instance(dist.n());
  for (int u = 0; u < dist.n(); ++u) {
    for (int v = u + 1; v < dist.n(); ++v) {
      instance.set_weight(u, v, p.at(dist.at(u, v)));
    }
  }
  return instance;
}

ReducedInstance build(const Graph& graph, const PVec& p, unsigned threads) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  DistanceMatrix dist = all_pairs_distances(graph, threads);
  LPTSP_REQUIRE(dist.all_finite(), "Theorem 2 requires a connected graph");
  const int diam = dist.max_finite();
  LPTSP_REQUIRE(diam <= p.k(), "Theorem 2 requires diam(G) <= k; got diameter " +
                                   std::to_string(diam) + " with k = " + std::to_string(p.k()));
  MetricInstance instance = fill_instance(dist, p);
  return {std::move(instance), std::move(dist)};
}

}  // namespace

MetricInstance instance_from_distances(const DistanceMatrix& dist, const PVec& p) {
  LPTSP_REQUIRE(dist.all_finite(), "instance_from_distances requires all pairs reachable");
  LPTSP_REQUIRE(dist.max_finite() <= p.k(),
                "instance_from_distances requires max distance <= k");
  return fill_instance(dist, p);
}

ReducedInstance reduce_to_path_tsp(const Graph& graph, const PVec& p, unsigned threads) {
  LPTSP_REQUIRE(p.satisfies_reduction_condition(),
                "Theorem 2 requires pmax <= 2*pmin; p = " + p.to_string() +
                    " violates it (use reduce_to_path_tsp_unchecked for the ablation)");
  ReducedInstance reduced = build(graph, p, threads);
  // With pmax <= 2*pmin every weight lies in [pmin, 2*pmin], so H is
  // metric by construction; this invariant is what Corollary 1 relies on.
  LPTSP_ENSURE(graph.n() < 2 || reduced.instance.max_weight() <= 2 * reduced.instance.min_weight(),
               "reduced instance violates the bounded-weight invariant");
  return reduced;
}

ReducedInstance reduce_to_path_tsp_unchecked(const Graph& graph, const PVec& p,
                                             unsigned threads) {
  return build(graph, p, threads);
}

}  // namespace lptsp
