#pragma once

#include "core/coloring.hpp"
#include "core/labeling.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// Result of an L(1,...,1)-labeling computation (= coloring of G^k with
/// span chi - 1).
struct L1Result {
  Labeling labeling;
  Weight span = 0;
  bool optimal = false;
  int kernel_size = 0;  ///< vertices actually colored after twin contraction
};

/// Exact L(1)-labeling: chromatic number of the k-th power graph
/// (Theorem 4's object). Exponential worst case (branch and bound).
L1Result l1_labeling_exact(const Graph& graph, int k);

/// DSATUR upper bound on the same object (any size).
L1Result l1_labeling_greedy(const Graph& graph, int k);

/// The FPT route of Theorem 4: contract false-twin classes of G^k (their
/// vertices share identical neighborhoods and may share one color), solve
/// the kernel exactly, and expand. The kernel size is bounded by
/// n - (false twins saved); for graphs of small modular-width the twin
/// partition of G^k is coarse (nd(G^k) <= nd(G^2) <= mw(G) for k >= 2),
/// which is precisely Proposition 2.
L1Result l1_labeling_nd_kernel(const Graph& graph, int k);

}  // namespace lptsp
