#pragma once

#include <vector>

#include "core/labeling.hpp"
#include "graph/graph.hpp"
#include "tsp/instance.hpp"

namespace lptsp {

/// A vertex-disjoint path cover, as explicit paths.
struct PathPartition {
  std::vector<std::vector<int>> paths;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(paths.size()); }
};

/// True iff `partition` is a set of vertex-disjoint paths of `graph`
/// covering every vertex exactly once.
bool is_valid_path_partition(const Graph& graph, const PathPartition& partition);

/// Optimal PARTITION INTO PATHS with a witness, via the 0/1-weight
/// Held–Karp route (n <= 22): the optimal Hamiltonian order splits into
/// maximal runs of graph edges — exactly the paper's Figure-2 picture.
PathPartition path_partition_exact(const Graph& graph);

/// Greedy witness version (any n): grow paths from both endpoints.
PathPartition path_partition_greedy(const Graph& graph);

/// Available solvers for the Corollary-2 pipeline.
enum class PartitionSolver {
  Exact,     ///< Held–Karp 0/1 DP (n <= 22)
  Greedy,    ///< linear-time heuristic (upper bound on the span)
  CographDP, ///< exact cotree fold; requires the cheap graph to be a cograph
};

/// Result of the Corollary-2 computation for L(p,q) on diameter <= 2.
struct Diameter2Result {
  Weight span = 0;          ///< lambda_{p,q}(G) (exact solvers) or an upper bound
  int partition_size = 0;   ///< s = number of paths used
  bool used_complement = false;  ///< true when p > q (partition runs on the complement)
  Labeling labeling;        ///< witness labeling (empty for CographDP)
};

/// Corollary 2: lambda_{p,q}(G) = (n-1)*min(p,q) + (max(p,q)-min(p,q))*(s*-1)
/// where s* is the minimum path partition of G (p <= q) or of the
/// complement (p > q). Requires a connected graph with diam(G) <= 2 and
/// max(p,q) <= 2*min(p,q) (the Theorem-2 condition Claim 1 relies on).
Diameter2Result lpq_span_diameter2(const Graph& graph, int p, int q,
                                   PartitionSolver solver = PartitionSolver::Exact);

}  // namespace lptsp
