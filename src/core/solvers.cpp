#include "core/solvers.hpp"

#include <utility>

#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/branch_bound.hpp"
#include "tsp/christofides.hpp"
#include "tsp/construct.hpp"
#include "tsp/lin_kernighan.hpp"
#include "tsp/local_search.hpp"
#include "tsp/simulated_annealing.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace lptsp {

std::string engine_name(Engine engine) {
  switch (engine) {
    case Engine::BruteForce: return "brute-force";
    case Engine::HeldKarp: return "held-karp";
    case Engine::Christofides: return "christofides";
    case Engine::DoubleMst: return "double-mst";
    case Engine::NearestNeighbor: return "nearest-neighbor";
    case Engine::NearestNeighbor2Opt: return "nn+2opt";
    case Engine::GreedyEdge: return "greedy-edge";
    case Engine::LinKernighanStyle: return "lk-style";
    case Engine::ChainedLK: return "chained-lk";
    case Engine::SimulatedAnnealing: return "annealing";
    case Engine::BranchBound: return "branch-bound";
  }
  return "unknown";
}

namespace {

PathSolution run_engine(const MetricInstance& instance, const SolveOptions& options,
                        bool& optimal) {
  Rng rng(options.seed);
  switch (options.engine) {
    case Engine::BruteForce:
      optimal = true;
      return brute_force_path(instance);
    case Engine::HeldKarp: {
      optimal = true;
      HeldKarpOptions hk = options.held_karp;
      if (hk.threads == 1 && options.threads != 1) hk.threads = options.threads;
      return held_karp_path(instance, hk);
    }
    case Engine::Christofides:
      return christofides_path(instance).solution;
    case Engine::DoubleMst:
      return double_mst_path(instance);
    case Engine::NearestNeighbor:
      return best_nearest_neighbor_path(instance, options.nn_starts, rng);
    case Engine::NearestNeighbor2Opt: {
      PathSolution solution = best_nearest_neighbor_path(instance, options.nn_starts, rng);
      two_opt(instance, solution.order);
      solution.cost = path_length(instance, solution.order);
      return solution;
    }
    case Engine::GreedyEdge:
      return greedy_edge_path(instance);
    case Engine::LinKernighanStyle:
      return lin_kernighan_style_path(instance, rng);
    case Engine::ChainedLK: {
      ChainedLkOptions lk = options.chained_lk;
      lk.seed = options.seed;
      if (lk.threads == 1 && options.threads != 1) lk.threads = options.threads;
      return chained_lk_path(instance, lk);
    }
    case Engine::SimulatedAnnealing: {
      AnnealOptions anneal;
      anneal.seed = options.seed;
      return simulated_annealing_path(instance, anneal);
    }
    case Engine::BranchBound: {
      optimal = true;
      BranchBoundOptions bb;
      bb.node_limit = options.bb_node_limit;
      return branch_bound_path(instance, bb);
    }
  }
  LPTSP_ENSURE(false, "unhandled engine");
  return {};
}

}  // namespace

SolveResult solve_labeling(const Graph& graph, const PVec& p, const SolveOptions& options) {
  const Timer timer;
  const ReducedInstance reduced = reduce_to_path_tsp(graph, p, options.threads);

  SolveResult result;
  if (graph.n() == 1) {
    result.labeling.labels = {0};
    result.order = {0};
    result.optimal = true;
    result.seconds = timer.seconds();
    return result;
  }

  bool optimal = false;
  PathSolution solution = run_engine(reduced.instance, options, optimal);
  result.order = std::move(solution.order);
  result.span = solution.cost;
  result.optimal = optimal;
  result.labeling = labeling_from_order(reduced.instance, result.order);
  LPTSP_ENSURE(result.labeling.span() == result.span,
               "Claim 1 prefix labeling must have span equal to the path length");
  LPTSP_ENSURE(is_valid_labeling(graph, reduced.dist, p, result.labeling),
               "pipeline produced an invalid labeling — reduction bug");
  result.seconds = timer.seconds();
  return result;
}

}  // namespace lptsp
