#include "core/solvers.hpp"

#include <utility>

#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/branch_bound.hpp"
#include "tsp/christofides.hpp"
#include "tsp/construct.hpp"
#include "tsp/lin_kernighan.hpp"
#include "tsp/local_search.hpp"
#include "tsp/simulated_annealing.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace lptsp {

std::string engine_name(Engine engine) { return engine_name_cstr(engine); }

namespace {

PathSolution run_engine(const MetricInstance& instance, const SolveOptions& options,
                        bool& optimal) {
  Rng rng(options.seed);
  switch (options.engine) {
    case Engine::BruteForce:
      optimal = true;
      return brute_force_path(instance);
    case Engine::HeldKarp: {
      optimal = true;
      HeldKarpOptions hk = options.held_karp;
      if (hk.threads == 1 && options.threads != 1) hk.threads = options.threads;
      return held_karp_path(instance, hk);
    }
    case Engine::Christofides:
      return christofides_path(instance).solution;
    case Engine::DoubleMst:
      return double_mst_path(instance);
    case Engine::NearestNeighbor:
      return best_nearest_neighbor_path(instance, options.nn_starts, rng);
    case Engine::NearestNeighbor2Opt: {
      PathSolution solution = best_nearest_neighbor_path(instance, options.nn_starts, rng);
      two_opt(instance, solution.order);
      solution.cost = path_length(instance, solution.order);
      return solution;
    }
    case Engine::GreedyEdge:
      return greedy_edge_path(instance);
    case Engine::LinKernighanStyle:
      return lin_kernighan_style_path(instance, rng);
    case Engine::ChainedLK: {
      ChainedLkOptions lk = options.chained_lk;
      lk.seed = options.seed;
      if (lk.threads == 1 && options.threads != 1) lk.threads = options.threads;
      return chained_lk_path(instance, lk);
    }
    case Engine::SimulatedAnnealing: {
      AnnealOptions anneal;
      anneal.seed = options.seed;
      return simulated_annealing_path(instance, anneal);
    }
    case Engine::BranchBound: {
      optimal = true;
      BranchBoundOptions bb;
      bb.node_limit = options.bb_node_limit;
      return branch_bound_path(instance, bb);
    }
  }
  LPTSP_ENSURE(false, "unhandled engine");
  return {};
}

}  // namespace

SolveResult solve_labeling_injected(const Graph& graph, const PVec& p,
                                    const MetricInstance& instance, const DistanceMatrix& dist,
                                    const SolveOptions& options) {
  const Timer timer;
  SolveResult result;
  if (graph.n() == 1) {
    result.labeling.labels = {0};
    result.order = {0};
    result.optimal = true;
    result.seconds = timer.seconds();
    return result;
  }

  bool optimal = false;
  PathSolution solution = run_engine(instance, options, optimal);
  result.order = std::move(solution.order);
  result.span = solution.cost;
  result.optimal = optimal;
  result.labeling = labeling_from_order(instance, result.order);
  LPTSP_ENSURE(result.labeling.span() == result.span,
               "Claim 1 prefix labeling must have span equal to the path length");
  LPTSP_ENSURE(is_valid_labeling(graph, dist, p, result.labeling),
               "pipeline produced an invalid labeling — reduction bug");
  result.seconds = timer.seconds();
  return result;
}

SolveResult solve_labeling_reduced(const Graph& graph, const PVec& p,
                                   const ReducedInstance& reduced, const SolveOptions& options) {
  return solve_labeling_injected(graph, p, reduced.instance, reduced.dist, options);
}

SolveResult solve_labeling(const Graph& graph, const PVec& p, const SolveOptions& options) {
  const Timer timer;
  const ReducedInstance reduced = reduce_to_path_tsp(graph, p, options.threads);
  SolveResult result = solve_labeling_reduced(graph, p, reduced, options);
  result.seconds = timer.seconds();
  return result;
}

std::string status_name(SolveStatus status) { return status_name_cstr(status); }

std::string status_message(SolveStatus status, int diameter, const PVec& p) {
  switch (status) {
    case SolveStatus::EmptyGraph:
      return "graph must be non-empty";
    case SolveStatus::Disconnected:
      return "Theorem 2 requires a connected graph";
    case SolveStatus::DiameterExceedsK:
      return "Theorem 2 requires diam(G) <= k; got diameter " + std::to_string(diameter) +
             " with k = " + std::to_string(p.k());
    case SolveStatus::MetricConditionViolated:
      return "Theorem 2 requires pmax <= 2*pmin; p = " + p.to_string();
    case SolveStatus::EngineFailure:
      return "engine failed";
    case SolveStatus::RejectedOverload:
      return "service overloaded: request admission limit reached, retry later";
    case SolveStatus::TimedOut:
      return "request deadline elapsed before a reply arrived";
    case SolveStatus::TransportDisconnected:
      return "connection to the server was lost before a reply arrived";
    case SolveStatus::Ok:
      break;
  }
  return "";
}

SolveStatus classify_labeling_request(const Graph& graph, const PVec& p,
                                      const DistanceMatrix& dist) {
  if (graph.n() == 0) return SolveStatus::EmptyGraph;
  if (!dist.all_finite()) return SolveStatus::Disconnected;
  if (dist.max_finite() > p.k()) return SolveStatus::DiameterExceedsK;
  if (!p.satisfies_reduction_condition()) return SolveStatus::MetricConditionViolated;
  return SolveStatus::Ok;
}

SolveOutcome try_solve_labeling(const Graph& graph, const PVec& p, const SolveOptions& options) {
  SolveOutcome outcome;
  if (graph.n() == 0) {
    outcome.status = SolveStatus::EmptyGraph;
    outcome.message = status_message(outcome.status, 0, p);
    return outcome;
  }
  DistanceMatrix dist = all_pairs_distances(graph, options.threads);
  outcome.status = classify_labeling_request(graph, p, dist);
  if (outcome.status != SolveStatus::Ok) {
    outcome.message = status_message(outcome.status, dist.max_finite(), p);
    return outcome;
  }
  ReducedInstance reduced{instance_from_distances(dist, p, options.threads), std::move(dist)};
  try {
    outcome.result = solve_labeling_reduced(graph, p, reduced, options);
  } catch (const precondition_error& e) {
    // Engine resource caps (Held-Karp max_n, BranchBound node limit) are
    // caller-tunable limits, not library bugs: report them as data.
    outcome.status = SolveStatus::EngineFailure;
    outcome.message = e.what();
  }
  return outcome;
}

}  // namespace lptsp
