#pragma once

#include "graph/graph.hpp"
#include "params/cotree.hpp"

namespace lptsp {

/// Minimum path cover of a cograph by a linear cotree fold — the
/// modular-decomposition route behind the paper's Corollary 2 (PARTITION
/// INTO PATHS is FPT in modular-width; cographs are the mw <= 2 class).
///
/// Recurrence on (pc, n) per cotree node:
///   leaf:            pc = 1
///   union (parallel): pc = sum of children
///   join (series):    pc(A + B) = max(1, pc_A - n_B, pc_B - n_A)
/// The join formula is exact: r merged paths alternate A/B segments, so
/// r >= pc_A - n_B and r >= pc_B - n_A; conversely splitting the larger
/// side into min(pc, n_other)+r segments and interleaving achieves it.
int cotree_min_path_cover(const Cotree& tree);

/// Convenience wrapper: builds the cotree first. Throws precondition_error
/// if the graph is not a cograph.
int cograph_min_path_cover(const Graph& graph);

/// Hamiltonicity of a cograph: path cover number equals 1.
bool cograph_has_hamiltonian_path(const Graph& graph);

}  // namespace lptsp
