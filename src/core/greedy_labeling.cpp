#include "core/greedy_labeling.hpp"

#include <algorithm>
#include <numeric>

#include "graph/properties.hpp"
#include "util/check.hpp"

namespace lptsp {

Labeling greedy_first_fit_with_order(const DistanceMatrix& dist, const PVec& p,
                                     const std::vector<int>& order) {
  const int n = dist.n();
  LPTSP_REQUIRE(static_cast<int>(order.size()) == n, "order size mismatch");
  Labeling labeling;
  labeling.labels.assign(static_cast<std::size_t>(n), 0);
  std::vector<bool> assigned(static_cast<std::size_t>(n), false);

  std::vector<std::pair<Weight, Weight>> forbidden;  // [lo, hi] closed intervals
  for (const int v : order) {
    forbidden.clear();
    for (int u = 0; u < n; ++u) {
      if (!assigned[static_cast<std::size_t>(u)]) continue;
      const int d = dist.at(u, v);
      if (d == kUnreachable || d == 0 || d > p.k()) continue;
      const Weight gap = p.at(d);
      if (gap == 0) continue;
      forbidden.emplace_back(labeling.labels[static_cast<std::size_t>(u)] - gap + 1,
                             labeling.labels[static_cast<std::size_t>(u)] + gap - 1);
    }
    std::sort(forbidden.begin(), forbidden.end());
    Weight candidate = 0;
    for (const auto& [lo, hi] : forbidden) {
      if (candidate < lo) break;  // candidate sits in a gap before this interval
      candidate = std::max(candidate, hi + 1);
    }
    labeling.labels[static_cast<std::size_t>(v)] = candidate;
    assigned[static_cast<std::size_t>(v)] = true;
  }
  return labeling;
}

Labeling greedy_first_fit(const Graph& graph, const PVec& p, GreedyOrder order, Rng* rng) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1, "graph must be non-empty");
  const DistanceMatrix dist = all_pairs_distances(graph);

  std::vector<int> vertex_order(static_cast<std::size_t>(n));
  std::iota(vertex_order.begin(), vertex_order.end(), 0);
  switch (order) {
    case GreedyOrder::Index:
      break;
    case GreedyOrder::DegreeDescending:
      std::stable_sort(vertex_order.begin(), vertex_order.end(),
                       [&](int a, int b) { return graph.degree(a) > graph.degree(b); });
      break;
    case GreedyOrder::Bfs: {
      int start = 0;
      for (int v = 1; v < n; ++v) {
        if (graph.degree(v) > graph.degree(start)) start = v;
      }
      const auto from_start = bfs_distances(graph, start);
      std::stable_sort(vertex_order.begin(), vertex_order.end(), [&](int a, int b) {
        return from_start[static_cast<std::size_t>(a)] < from_start[static_cast<std::size_t>(b)];
      });
      break;
    }
    case GreedyOrder::Random:
      LPTSP_REQUIRE(rng != nullptr, "random order requires an Rng");
      rng->shuffle(vertex_order);
      break;
  }
  return greedy_first_fit_with_order(dist, p, vertex_order);
}

}  // namespace lptsp
