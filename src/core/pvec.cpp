#include "core/pvec.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

PVec::PVec(std::vector<int> entries) : entries_(std::move(entries)) {
  LPTSP_REQUIRE(!entries_.empty(), "p must have dimension k >= 1");
  for (const int value : entries_) {
    LPTSP_REQUIRE(value >= 0, "p entries must be non-negative");
  }
  pmin_ = *std::min_element(entries_.begin(), entries_.end());
  pmax_ = *std::max_element(entries_.begin(), entries_.end());
}

PVec PVec::ones(int k) {
  LPTSP_REQUIRE(k >= 1, "dimension must be positive");
  return PVec(std::vector<int>(static_cast<std::size_t>(k), 1));
}

int PVec::at(int d) const {
  LPTSP_REQUIRE(d >= 1 && d <= k(), "distance index out of range [1, k]");
  return entries_[static_cast<std::size_t>(d - 1)];
}

PVec PVec::scaled(int factor) const {
  LPTSP_REQUIRE(factor >= 0, "scale factor must be non-negative");
  std::vector<int> scaled_entries = entries_;
  for (int& value : scaled_entries) value *= factor;
  return PVec(std::move(scaled_entries));
}

std::string PVec::to_string() const {
  std::string text = "(";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) text += ",";
    text += std::to_string(entries_[i]);
  }
  text += ")";
  return text;
}

}  // namespace lptsp
