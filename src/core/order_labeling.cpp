#include "core/order_labeling.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace lptsp {

Labeling labeling_from_order(const MetricInstance& reduced, const Order& order) {
  LPTSP_REQUIRE(is_valid_order(order, reduced.n()), "order must be a permutation");
  Labeling labeling;
  labeling.labels.assign(static_cast<std::size_t>(reduced.n()), 0);
  Weight prefix = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    prefix += reduced.weight(order[i - 1], order[i]);
    labeling.labels[static_cast<std::size_t>(order[i])] = prefix;
  }
  return labeling;
}

Labeling minimal_labeling_for_order(const DistanceMatrix& dist, const PVec& p,
                                    const Order& order) {
  const int n = dist.n();
  LPTSP_REQUIRE(is_valid_order(order, n), "order must be a permutation");
  Labeling labeling;
  labeling.labels.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    Weight lower = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const int d = dist.at(order[j], order[i]);
      if (d == kUnreachable || d == 0 || d > p.k()) continue;
      lower = std::max(lower, labeling.labels[static_cast<std::size_t>(order[j])] +
                                  static_cast<Weight>(p.at(d)));
    }
    labeling.labels[static_cast<std::size_t>(order[i])] = lower;
  }
  return labeling;
}

Weight min_span_over_all_orders(const Graph& graph, const PVec& p) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1 && n <= 9, "order enumeration is capped at 9 vertices");
  const DistanceMatrix dist = all_pairs_distances(graph);
  Order order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Weight best = -1;
  do {
    const Labeling labeling = minimal_labeling_for_order(dist, p, order);
    const Weight span = labeling.span();
    if (best < 0 || span < best) best = span;
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace lptsp
