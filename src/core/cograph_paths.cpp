#include "core/cograph_paths.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

namespace {

struct CoverInfo {
  int paths = 1;
  int vertices = 1;
};

CoverInfo fold(const Cotree& tree, int node_id) {
  const Cotree::Node& node = tree.node(node_id);
  if (node.is_leaf) return {1, 1};
  CoverInfo accumulated{0, 0};
  bool first = true;
  for (const int child : node.children) {
    const CoverInfo info = fold(tree, child);
    if (first) {
      accumulated = info;
      first = false;
      continue;
    }
    if (node.is_series) {
      // Join: interleave path segments of the two sides.
      accumulated.paths = std::max({1, accumulated.paths - info.vertices,
                                    info.paths - accumulated.vertices});
    } else {
      // Disjoint union: covers are independent.
      accumulated.paths += info.paths;
    }
    accumulated.vertices += info.vertices;
  }
  return accumulated;
}

}  // namespace

int cotree_min_path_cover(const Cotree& tree) {
  LPTSP_REQUIRE(tree.root >= 0, "cotree must be built");
  return fold(tree, tree.root).paths;
}

int cograph_min_path_cover(const Graph& graph) {
  const auto tree = build_cotree(graph);
  LPTSP_REQUIRE(tree.has_value(), "graph is not a cograph");
  return cotree_min_path_cover(*tree);
}

bool cograph_has_hamiltonian_path(const Graph& graph) {
  return cograph_min_path_cover(graph) == 1;
}

}  // namespace lptsp
