#pragma once

#include <string>
#include <vector>

namespace lptsp {

/// The distance-constraint vector p = (p_1, ..., p_k) of an L(p)-labeling:
/// vertices at graph distance d <= k must receive labels that differ by at
/// least p_d. Entries are non-negative; k >= 1.
class PVec {
 public:
  explicit PVec(std::vector<int> entries);

  /// The classic L(2,1) setting (frequency assignment).
  static PVec L21() { return PVec({2, 1}); }

  /// General two-level L(p,q).
  static PVec Lpq(int p, int q) { return PVec({p, q}); }

  /// All-ones vector of dimension k (L(1)-labeling = coloring of G^k).
  static PVec ones(int k);

  [[nodiscard]] int k() const noexcept { return static_cast<int>(entries_.size()); }

  /// p_d for 1 <= d <= k.
  [[nodiscard]] int at(int d) const;

  [[nodiscard]] int pmin() const noexcept { return pmin_; }
  [[nodiscard]] int pmax() const noexcept { return pmax_; }

  /// The paper's Theorem-2 requirement pmax <= 2 * pmin, which makes the
  /// reduced complete graph metric.
  [[nodiscard]] bool satisfies_reduction_condition() const noexcept {
    return pmax_ <= 2 * pmin_;
  }

  [[nodiscard]] const std::vector<int>& entries() const noexcept { return entries_; }

  /// Scalar multiple c*p (the paper uses lambda_{c p} = c * lambda_p).
  [[nodiscard]] PVec scaled(int factor) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const PVec& other) const = default;

 private:
  std::vector<int> entries_;
  int pmin_ = 0;
  int pmax_ = 0;
};

}  // namespace lptsp
