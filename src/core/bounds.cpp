#include "core/bounds.hpp"

#include <algorithm>

#include "core/greedy_labeling.hpp"
#include "core/reduction.hpp"
#include "graph/properties.hpp"
#include "tsp/lower_bounds.hpp"
#include "util/check.hpp"

namespace lptsp {

Weight span_lower_bound_small_diameter(const Graph& graph, const PVec& p) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  LPTSP_REQUIRE(is_connected(graph), "bound requires a connected graph");
  LPTSP_REQUIRE(graph.n() == 1 || diameter(graph) <= p.k(), "bound requires diam(G) <= k");
  return static_cast<Weight>(graph.n() - 1) * p.pmin();
}

Weight span_lower_bound_degree(const Graph& graph, const PVec& p) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  const int delta = max_degree(graph);
  if (delta == 0) return 0;
  const Weight p1 = p.at(1);
  if (p.k() == 1 || delta == 1) return p1;
  // The Delta neighbours of a max-degree vertex are pairwise within
  // distance 2 and all adjacent to it; whether the centre label falls
  // inside or outside their range, the weaker of the two cases is
  // (Delta-2)*p2 + p1 + min(p1, p2). For L(2,1) this is the classic
  // Delta + 1 bound.
  const Weight p2 = p.at(2);
  return static_cast<Weight>(delta - 2) * p2 + p1 + std::min(p1, p2);
}

Weight span_lower_bound(const Graph& graph, const PVec& p) {
  Weight bound = span_lower_bound_degree(graph, p);
  if (graph.n() >= 2 && is_connected(graph) && diameter(graph) <= p.k()) {
    bound = std::max(bound, span_lower_bound_small_diameter(graph, p));
    if (p.satisfies_reduction_condition()) {
      bound = std::max(bound, mst_lower_bound(reduce_to_path_tsp(graph, p).instance));
    }
  }
  return bound;
}

Weight span_upper_bound_greedy(const Graph& graph, const PVec& p) {
  return greedy_first_fit(graph, p).span();
}

}  // namespace lptsp
