#pragma once

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// Corollary 3: scale an L(1,...,1)-labeling (a coloring of G^k) by pmax.
/// The result is a valid L(p)-labeling with span pmax * lambda_1 <=
/// pmax * lambda_p, i.e. a pmax-approximation — on ANY graph (no diameter
/// or weight condition needed). `exact_l1` picks the exact vs DSATUR
/// coloring for the underlying L(1) step; the bound only holds with the
/// exact one.
struct PmaxApproxResult {
  Labeling labeling;
  Weight span = 0;
  Weight l1_span = 0;   ///< lambda_1 (or its upper bound)
  bool bound_certified = false;  ///< true when the L(1) step was exact
};
PmaxApproxResult pmax_approx_labeling(const Graph& graph, const PVec& p, bool exact_l1 = true);

}  // namespace lptsp
