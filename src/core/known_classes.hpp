#pragma once

#include "tsp/instance.hpp"

namespace lptsp {

/// Closed-form lambda_{2,1} values for the polynomially solvable classes
/// the paper's introduction lists (paths, cycles, wheels; Griggs–Yeh 1992)
/// plus the standard complete / complete-bipartite / star formulas. These
/// are cross-checked against the exact solvers in tests and serve as
/// instant ground truth in benchmarks.

/// lambda_{2,1}(P_n): 0, 2, 3, 4 for n = 1, 2, 3..4, >= 5.
Weight l21_span_path(int n);

/// lambda_{2,1}(C_n) = 4 for every n >= 3.
Weight l21_span_cycle(int n);

/// lambda_{2,1}(W_n) (wheel on n vertices: hub + rim C_{n-1}) = n for
/// n >= 7 (rim size >= 6); small wheels are handled case by case.
Weight l21_span_wheel(int n);

/// lambda_{2,1}(K_n) = 2(n-1).
Weight l21_span_complete(int n);

/// lambda_{2,1}(K_{1,m}) = m + 1 for m >= 1.
Weight l21_span_star(int leaves);

/// lambda_{2,1}(K_{a,b}) = a + b (Griggs–Yeh).
Weight l21_span_complete_bipartite(int a, int b);

}  // namespace lptsp
