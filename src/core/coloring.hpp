#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// A proper coloring: colors[v] in [0, count).
struct Coloring {
  std::vector<int> colors;
  int count = 0;
};

/// True iff adjacent vertices always have different colors.
bool is_proper_coloring(const Graph& graph, const Coloring& coloring);

/// First-fit coloring along the given vertex order.
Coloring greedy_coloring(const Graph& graph, const std::vector<int>& order);

/// DSATUR heuristic (Brélaz): repeatedly color the vertex with maximum
/// saturation degree. Good upper bound, not exact.
Coloring dsatur_coloring(const Graph& graph);

/// Exact chromatic number via branch-and-bound: DSATUR branching order,
/// greedy-clique lower bound, DSATUR upper bound. Exponential worst case;
/// fine for the n <= ~40 kernels used in this repo.
Coloring exact_coloring(const Graph& graph);

/// A maximal clique found greedily (largest-degree seed). Its size lower-
/// bounds the chromatic number.
std::vector<int> greedy_clique(const Graph& graph);

}  // namespace lptsp
