#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pvec.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "tsp/instance.hpp"

namespace lptsp {

/// An assignment of non-negative integer labels to vertices.
struct Labeling {
  std::vector<Weight> labels;

  /// The span max_v l(v) (the quantity L(p)-LABELING minimizes).
  [[nodiscard]] Weight span() const;
};

/// A violated constraint, for diagnostics.
struct LabelingViolation {
  int u = -1;
  int v = -1;
  int distance = 0;
  int required = 0;
  Weight actual_gap = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Check the L(p) condition: |l(u) - l(v)| >= p_d for every pair at
/// distance d <= k (pairs farther than k are unconstrained, so this is
/// well-defined for any diameter). Labels must be non-negative.
bool is_valid_labeling(const Graph& graph, const DistanceMatrix& dist, const PVec& p,
                       const Labeling& labeling);

/// As above, returning the first violation found (nullopt when valid).
std::optional<LabelingViolation> find_violation(const Graph& graph, const DistanceMatrix& dist,
                                                const PVec& p, const Labeling& labeling);

/// Convenience overload computing distances internally.
bool is_valid_labeling(const Graph& graph, const PVec& p, const Labeling& labeling);

}  // namespace lptsp
