#include "core/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace lptsp {

bool is_proper_coloring(const Graph& graph, const Coloring& coloring) {
  if (static_cast<int>(coloring.colors.size()) != graph.n()) return false;
  for (const int color : coloring.colors) {
    if (color < 0 || color >= coloring.count) return false;
  }
  for (const auto& [u, v] : graph.edges()) {
    if (coloring.colors[static_cast<std::size_t>(u)] ==
        coloring.colors[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

Coloring greedy_coloring(const Graph& graph, const std::vector<int>& order) {
  LPTSP_REQUIRE(static_cast<int>(order.size()) == graph.n(), "order size mismatch");
  Coloring result;
  result.colors.assign(static_cast<std::size_t>(graph.n()), -1);
  std::vector<bool> taken;
  for (const int v : order) {
    taken.assign(static_cast<std::size_t>(graph.n()) + 1, false);
    for (const int u : graph.neighbors(v)) {
      const int c = result.colors[static_cast<std::size_t>(u)];
      if (c >= 0) taken[static_cast<std::size_t>(c)] = true;
    }
    int color = 0;
    while (taken[static_cast<std::size_t>(color)]) ++color;
    result.colors[static_cast<std::size_t>(v)] = color;
    result.count = std::max(result.count, color + 1);
  }
  return result;
}

Coloring dsatur_coloring(const Graph& graph) {
  const int n = graph.n();
  Coloring result;
  result.colors.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return result;

  std::vector<std::vector<bool>> neighbor_colors(static_cast<std::size_t>(n));
  for (auto& row : neighbor_colors) row.assign(static_cast<std::size_t>(n) + 1, false);
  std::vector<int> saturation(static_cast<std::size_t>(n), 0);

  for (int step = 0; step < n; ++step) {
    int pick = -1;
    for (int v = 0; v < n; ++v) {
      if (result.colors[static_cast<std::size_t>(v)] != -1) continue;
      if (pick == -1 || saturation[static_cast<std::size_t>(v)] > saturation[static_cast<std::size_t>(pick)] ||
          (saturation[static_cast<std::size_t>(v)] == saturation[static_cast<std::size_t>(pick)] &&
           graph.degree(v) > graph.degree(pick))) {
        pick = v;
      }
    }
    int color = 0;
    while (neighbor_colors[static_cast<std::size_t>(pick)][static_cast<std::size_t>(color)]) ++color;
    result.colors[static_cast<std::size_t>(pick)] = color;
    result.count = std::max(result.count, color + 1);
    for (const int u : graph.neighbors(pick)) {
      if (!neighbor_colors[static_cast<std::size_t>(u)][static_cast<std::size_t>(color)]) {
        neighbor_colors[static_cast<std::size_t>(u)][static_cast<std::size_t>(color)] = true;
        ++saturation[static_cast<std::size_t>(u)];
      }
    }
  }
  return result;
}

std::vector<int> greedy_clique(const Graph& graph) {
  const int n = graph.n();
  if (n == 0) return {};
  std::vector<int> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](int a, int b) { return graph.degree(a) > graph.degree(b); });
  std::vector<int> clique;
  for (const int v : by_degree) {
    const bool compatible = std::all_of(clique.begin(), clique.end(),
                                        [&](int u) { return graph.has_edge(u, v); });
    if (compatible) clique.push_back(v);
  }
  return clique;
}

namespace {

/// DSATUR-ordered branch and bound for the chromatic number.
struct ColorSearch {
  const Graph& graph;
  std::vector<int> colors;
  Coloring best;

  explicit ColorSearch(const Graph& g, Coloring upper)
      : graph(g), colors(static_cast<std::size_t>(g.n()), -1), best(std::move(upper)) {}

  int pick_vertex() const {
    int pick = -1;
    int pick_saturation = -1;
    for (int v = 0; v < graph.n(); ++v) {
      if (colors[static_cast<std::size_t>(v)] != -1) continue;
      // Saturation = distinct neighbor colors.
      std::vector<bool> seen(static_cast<std::size_t>(graph.n()) + 1, false);
      int saturation = 0;
      for (const int u : graph.neighbors(v)) {
        const int c = colors[static_cast<std::size_t>(u)];
        if (c >= 0 && !seen[static_cast<std::size_t>(c)]) {
          seen[static_cast<std::size_t>(c)] = true;
          ++saturation;
        }
      }
      if (saturation > pick_saturation ||
          (saturation == pick_saturation && pick != -1 && graph.degree(v) > graph.degree(pick))) {
        pick = v;
        pick_saturation = saturation;
      }
    }
    return pick;
  }

  void search(int colored, int used) {
    if (used >= best.count) return;  // can't beat the incumbent
    if (colored == graph.n()) {
      best.colors = colors;
      best.count = used;
      return;
    }
    const int v = pick_vertex();
    std::vector<bool> taken(static_cast<std::size_t>(used) + 2, false);
    for (const int u : graph.neighbors(v)) {
      const int c = colors[static_cast<std::size_t>(u)];
      if (c >= 0) taken[static_cast<std::size_t>(c)] = true;
    }
    // Existing colors first, then (at most) one fresh color: trying more
    // than one fresh color only permutes color names.
    for (int c = 0; c <= used && c + 1 < best.count; ++c) {
      if (c < used && taken[static_cast<std::size_t>(c)]) continue;
      colors[static_cast<std::size_t>(v)] = c;
      search(colored + 1, std::max(used, c + 1));
      colors[static_cast<std::size_t>(v)] = -1;
    }
  }
};

}  // namespace

Coloring exact_coloring(const Graph& graph) {
  const int n = graph.n();
  if (n == 0) return {};
  Coloring upper = dsatur_coloring(graph);
  const int clique_bound = static_cast<int>(greedy_clique(graph).size());
  if (upper.count == clique_bound) return upper;  // DSATUR already optimal

  ColorSearch search(graph, upper);
  search.search(0, 0);
  LPTSP_ENSURE(is_proper_coloring(graph, search.best), "exact coloring produced improper result");
  LPTSP_ENSURE(search.best.count >= clique_bound, "chromatic number below clique bound");
  return search.best;
}

}  // namespace lptsp
