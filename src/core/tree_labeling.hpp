#pragma once

#include "core/labeling.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// Exact L(2,1)-labeling of trees in polynomial time (Chang–Kuo 1996) —
/// the classic algorithm behind the paper's introduction remark that
/// trees are solvable in polynomial time while graphs of tree-width 2 are
/// already NP-hard.
///
/// Theory: for any tree, lambda_{2,1} is either Delta+1 or Delta+2. The
/// decision "is Delta+1 enough?" is answered by a rooted DP whose state is
/// (vertex, own label, parent label); a vertex's children must take
/// pairwise distinct labels, differ from the grandparent label, and be at
/// gap >= 2 from the vertex itself — a system of distinct representatives
/// solved as bipartite matching (children x labels, Kuhn's algorithm).
/// Reconstruction re-runs the matchings top-down. O(n * S^3 * Delta^2)
/// with S = Delta + 3 labels; comfortably polynomial.
///
/// Requires: a tree (connected, m = n-1). Works for ANY diameter — this
/// solver deliberately lives outside Theorem 2's small-diameter scope and
/// serves as another independent oracle in tests.
struct TreeL21Result {
  Weight span = 0;
  Labeling labeling;
  bool is_delta_plus_one = false;  ///< true when lambda = Delta + 1
};
TreeL21Result l21_tree(const Graph& tree);

}  // namespace lptsp
