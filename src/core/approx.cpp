#include "core/approx.hpp"

#include "core/l1_labeling.hpp"
#include "util/check.hpp"

namespace lptsp {

PmaxApproxResult pmax_approx_labeling(const Graph& graph, const PVec& p, bool exact_l1) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  const L1Result l1 =
      exact_l1 ? l1_labeling_exact(graph, p.k()) : l1_labeling_greedy(graph, p.k());

  PmaxApproxResult result;
  result.l1_span = l1.span;
  result.bound_certified = l1.optimal;
  result.labeling.labels.reserve(l1.labeling.labels.size());
  for (const Weight label : l1.labeling.labels) {
    result.labeling.labels.push_back(label * p.pmax());
  }
  result.span = result.labeling.span();
  // Any pair at distance d <= k has distinct colors in the L(1) step, so
  // the scaled gap is >= pmax >= p_d: always a valid L(p)-labeling.
  LPTSP_ENSURE(is_valid_labeling(graph, p, result.labeling),
               "scaled coloring is not a valid L(p)-labeling");
  return result;
}

}  // namespace lptsp
