#include "core/known_classes.hpp"

#include "util/check.hpp"

namespace lptsp {

Weight l21_span_path(int n) {
  LPTSP_REQUIRE(n >= 1, "path needs at least 1 vertex");
  if (n == 1) return 0;
  if (n == 2) return 2;
  if (n <= 4) return 3;
  return 4;  // Griggs–Yeh: lambda(P_n) = 4 for n >= 5
}

Weight l21_span_cycle(int n) {
  LPTSP_REQUIRE(n >= 3, "cycle needs at least 3 vertices");
  return 4;  // Griggs–Yeh: lambda(C_n) = 4 for every n >= 3
}

Weight l21_span_wheel(int n) {
  LPTSP_REQUIRE(n >= 4, "wheel needs at least 4 vertices");
  // Via Corollary 2: the complement of W_n is an isolated hub plus the
  // complement of C_{n-1}; for rim >= 5 that complement has a Hamiltonian
  // path, so s* = 2 and lambda = (n-1) + 1 = n. Small wheels degenerate:
  // W_4 = K_4 (lambda 6) and the C_4-rim complement is 2K_2 (s* = 3).
  if (n <= 5) return 6;
  return n;
}

Weight l21_span_complete(int n) {
  LPTSP_REQUIRE(n >= 1, "complete graph needs at least 1 vertex");
  return 2 * (static_cast<Weight>(n) - 1);
}

Weight l21_span_star(int leaves) {
  LPTSP_REQUIRE(leaves >= 1, "star needs at least 1 leaf");
  return leaves + 1;
}

Weight l21_span_complete_bipartite(int a, int b) {
  LPTSP_REQUIRE(a >= 1 && b >= 1, "parts must be non-empty");
  return a + b;
}

}  // namespace lptsp
