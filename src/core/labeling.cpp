#include "core/labeling.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace lptsp {

Weight Labeling::span() const {
  LPTSP_REQUIRE(!labels.empty(), "span of an empty labeling is undefined");
  return *std::max_element(labels.begin(), labels.end());
}

std::string LabelingViolation::to_string() const {
  return "pair {" + std::to_string(u) + "," + std::to_string(v) + "} at distance " +
         std::to_string(distance) + " needs gap >= " + std::to_string(required) +
         " but has " + std::to_string(actual_gap);
}

std::optional<LabelingViolation> find_violation(const Graph& graph, const DistanceMatrix& dist,
                                                const PVec& p, const Labeling& labeling) {
  LPTSP_REQUIRE(static_cast<int>(labeling.labels.size()) == graph.n(),
                "labeling size must match vertex count");
  LPTSP_REQUIRE(dist.n() == graph.n(), "distance matrix size mismatch");
  for (const Weight label : labeling.labels) {
    LPTSP_REQUIRE(label >= 0, "labels must be non-negative");
  }
  for (int u = 0; u < graph.n(); ++u) {
    const int* drow = dist.row(u);
    for (int v = u + 1; v < graph.n(); ++v) {
      const int d = drow[v];
      if (d == kUnreachable || d > p.k()) continue;
      const Weight gap = std::abs(labeling.labels[static_cast<std::size_t>(u)] -
                                  labeling.labels[static_cast<std::size_t>(v)]);
      if (gap < p.at(d)) {
        return LabelingViolation{u, v, d, p.at(d), gap};
      }
    }
  }
  return std::nullopt;
}

bool is_valid_labeling(const Graph& graph, const DistanceMatrix& dist, const PVec& p,
                       const Labeling& labeling) {
  return !find_violation(graph, dist, p, labeling).has_value();
}

bool is_valid_labeling(const Graph& graph, const PVec& p, const Labeling& labeling) {
  return is_valid_labeling(graph, all_pairs_distances(graph), p, labeling);
}

}  // namespace lptsp
