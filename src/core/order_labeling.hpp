#pragma once

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "graph/bfs.hpp"
#include "tsp/path.hpp"

namespace lptsp {

/// Claim 1 of the paper: for a vertex order pi (on the reduced instance
/// H), the minimum-span labeling that respects the order assigns
/// l(v_i) = sum of the i-1 consecutive weights — prefix sums along the
/// Hamiltonian path. Valid whenever pmax <= 2*pmin; the span equals the
/// path length.
Labeling labeling_from_order(const MetricInstance& reduced, const Order& order);

/// The order-minimal labeling WITHOUT the metric condition: the monotone
/// fixpoint l(v_i) = max_{j<i, dist(v_j,v_i) <= k} (l(v_j) + p_d), 0 if
/// unconstrained. Always yields the minimum span among labelings sorted
/// consistently with `order`; used by the ablation and as an independent
/// oracle (min over all orders = lambda_p for ANY p and diameter).
Labeling minimal_labeling_for_order(const DistanceMatrix& dist, const PVec& p,
                                    const Order& order);

/// lambda_p by exhaustive order enumeration of minimal_labeling_for_order
/// — oracle number two, independent of the TSP reduction and of Claim 1.
/// Requires n <= 9.
Weight min_span_over_all_orders(const Graph& graph, const PVec& p);

}  // namespace lptsp
