#pragma once

#include "core/pvec.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "tsp/instance.hpp"

namespace lptsp {

/// Instance-independent certificates around lambda_p, used by benchmarks
/// and as sanity rails in tests.

/// Lower bound for connected graphs with diam(G) <= k: all labels are
/// pairwise >= pmin apart, so lambda_p >= (n-1) * pmin. (Theorem 2's
/// trivial bound; equals the TSP bound (n-1)*min weight.)
Weight span_lower_bound_small_diameter(const Graph& graph, const PVec& p);

/// Degree lower bound for L(2,1)-like vectors: a vertex of degree Delta
/// has Delta neighbours needing gaps >= p1 from it and >= p2 from each
/// other, giving lambda >= p2 * (Delta - 1) + p1 when k >= 2.
Weight span_lower_bound_degree(const Graph& graph, const PVec& p);

/// The strongest available lower bound (max of the above, plus the MST
/// bound when the reduction applies).
Weight span_lower_bound(const Graph& graph, const PVec& p);

/// Greedy first-fit upper bound (valid for any graph and any p).
Weight span_upper_bound_greedy(const Graph& graph, const PVec& p);

}  // namespace lptsp
