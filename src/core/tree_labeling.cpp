#include "core/tree_labeling.hpp"

#include <algorithm>
#include <functional>
#include <cstdlib>
#include <vector>

#include "graph/properties.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// Rooted-tree DP deciding feasibility of a (span+1)-label L(2,1)
/// assignment, with memoization over (vertex, own label, parent label).
struct TreeSearch {
  const Graph& tree;
  int labels;  // usable labels are 0 .. labels-1
  int root = 0;
  std::vector<int> parent;
  std::vector<std::vector<int>> children;
  // memo[v][a][b]: -1 unknown, 0 infeasible, 1 feasible. b == labels acts
  // as the "no parent" sentinel.
  std::vector<std::vector<std::vector<signed char>>> memo;

  TreeSearch(const Graph& t, int label_count) : tree(t), labels(label_count) {
    const int n = tree.n();
    parent.assign(static_cast<std::size_t>(n), -1);
    children.resize(static_cast<std::size_t>(n));
    std::vector<int> order{root};
    order.reserve(static_cast<std::size_t>(n));
    for (std::size_t head = 0; head < order.size(); ++head) {
      const int v = order[head];
      for (const int u : tree.neighbors(v)) {
        if (u != parent[static_cast<std::size_t>(v)]) {
          parent[static_cast<std::size_t>(u)] = v;
          children[static_cast<std::size_t>(v)].push_back(u);
          order.push_back(u);
        }
      }
    }
    memo.assign(static_cast<std::size_t>(n),
                std::vector<std::vector<signed char>>(
                    static_cast<std::size_t>(labels),
                    std::vector<signed char>(static_cast<std::size_t>(labels) + 1, -1)));
  }

  /// Kuhn's augmenting-path bipartite matching: children (left) against
  /// candidate labels (right). Returns the matching (child index -> label)
  /// when perfect on the left side, empty otherwise.
  std::vector<int> match_children(const std::vector<std::vector<int>>& candidates) const {
    const int t = static_cast<int>(candidates.size());
    std::vector<int> label_owner(static_cast<std::size_t>(labels), -1);
    std::vector<int> assignment(static_cast<std::size_t>(t), -1);
    std::vector<bool> visited;
    // Recursive lambda via explicit stack-free DFS helper.
    std::function<bool(int)> augment = [&](int child) -> bool {
      for (const int label : candidates[static_cast<std::size_t>(child)]) {
        if (visited[static_cast<std::size_t>(label)]) continue;
        visited[static_cast<std::size_t>(label)] = true;
        if (label_owner[static_cast<std::size_t>(label)] == -1 ||
            augment(label_owner[static_cast<std::size_t>(label)])) {
          label_owner[static_cast<std::size_t>(label)] = child;
          assignment[static_cast<std::size_t>(child)] = label;
          return true;
        }
      }
      return false;
    };
    for (int child = 0; child < t; ++child) {
      visited.assign(static_cast<std::size_t>(labels), false);
      if (!augment(child)) return {};
    }
    return assignment;
  }

  /// Candidate labels for each child of v given v's label a and v's
  /// parent's label b (b == labels for "no parent").
  std::vector<std::vector<int>> child_candidates(int v, int a, int b) {
    std::vector<std::vector<int>> candidates;
    candidates.reserve(children[static_cast<std::size_t>(v)].size());
    for (const int child : children[static_cast<std::size_t>(v)]) {
      std::vector<int> feasible_labels;
      for (int label = 0; label < labels; ++label) {
        if (std::abs(label - a) < 2) continue;  // adjacent to v
        if (label == b) continue;               // distance 2 via v
        if (feasible(child, label, a)) feasible_labels.push_back(label);
      }
      candidates.push_back(std::move(feasible_labels));
    }
    return candidates;
  }

  bool feasible(int v, int a, int b) {
    signed char& entry = memo[static_cast<std::size_t>(v)][static_cast<std::size_t>(a)]
                             [static_cast<std::size_t>(b)];
    if (entry != -1) return entry == 1;
    entry = 0;  // guard against (impossible) cycles while recursing
    const auto candidates = child_candidates(v, a, b);
    const bool ok = children[static_cast<std::size_t>(v)].empty() ||
                    !match_children(candidates).empty();
    entry = ok ? 1 : 0;
    return ok;
  }

  /// Top-down reconstruction; requires feasibility at the root.
  bool assign(std::vector<Weight>& out) {
    for (int a = 0; a < labels; ++a) {
      if (feasible(root, a, labels)) {
        out[static_cast<std::size_t>(root)] = a;
        assign_children(root, a, labels, out);
        return true;
      }
    }
    return false;
  }

  void assign_children(int v, int a, int b, std::vector<Weight>& out) {
    if (children[static_cast<std::size_t>(v)].empty()) return;
    const auto candidates = child_candidates(v, a, b);
    const auto matching = match_children(candidates);
    LPTSP_ENSURE(!matching.empty(), "tree DP reconstruction lost feasibility");
    for (std::size_t i = 0; i < matching.size(); ++i) {
      const int child = children[static_cast<std::size_t>(v)][i];
      out[static_cast<std::size_t>(child)] = matching[i];
      assign_children(child, matching[i], a, out);
    }
  }
};

}  // namespace

TreeL21Result l21_tree(const Graph& tree) {
  const int n = tree.n();
  LPTSP_REQUIRE(n >= 1, "tree must be non-empty");
  LPTSP_REQUIRE(tree.m() == n - 1 && is_connected(tree), "input must be a tree");

  TreeL21Result result;
  result.labeling.labels.assign(static_cast<std::size_t>(n), 0);
  if (n == 1) return result;

  const int delta = max_degree(tree);
  // Chang–Kuo: lambda is Delta+1 or Delta+2; try the smaller span first.
  for (const int span : {delta + 1, delta + 2}) {
    TreeSearch search(tree, span + 1);
    if (search.assign(result.labeling.labels)) {
      result.span = span;
      result.is_delta_plus_one = (span == delta + 1);
      LPTSP_ENSURE(is_valid_labeling(tree, PVec::L21(), result.labeling),
                   "tree solver produced an invalid labeling");
      LPTSP_ENSURE(result.labeling.span() <= span, "tree solver exceeded its span budget");
      return result;
    }
  }
  LPTSP_ENSURE(false, "Chang-Kuo dichotomy violated: Delta+2 must always be feasible");
  return result;
}

}  // namespace lptsp
