#include "core/partition_paths.hpp"

#include <algorithm>

#include "core/cograph_paths.hpp"
#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "tsp/held_karp.hpp"
#include "util/check.hpp"

namespace lptsp {

bool is_valid_path_partition(const Graph& graph, const PathPartition& partition) {
  std::vector<bool> covered(static_cast<std::size_t>(graph.n()), false);
  int total = 0;
  for (const auto& path : partition.paths) {
    if (path.empty()) return false;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const int v = path[i];
      if (v < 0 || v >= graph.n() || covered[static_cast<std::size_t>(v)]) return false;
      covered[static_cast<std::size_t>(v)] = true;
      ++total;
      if (i > 0 && !graph.has_edge(path[i - 1], v)) return false;
    }
  }
  return total == graph.n();
}

namespace {

/// Split a Hamiltonian order into maximal runs of graph edges (Fig. 2).
PathPartition split_order_into_paths(const Graph& graph, const std::vector<int>& order) {
  PathPartition partition;
  std::vector<int> current;
  for (const int v : order) {
    if (!current.empty() && !graph.has_edge(current.back(), v)) {
      partition.paths.push_back(std::move(current));
      current = {};
    }
    current.push_back(v);
  }
  if (!current.empty()) partition.paths.push_back(std::move(current));
  return partition;
}

}  // namespace

PathPartition path_partition_exact(const Graph& graph) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  if (graph.n() == 1) return {{{0}}};
  MetricInstance instance(graph.n());
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = u + 1; v < graph.n(); ++v) {
      instance.set_weight(u, v, graph.has_edge(u, v) ? 0 : 1);
    }
  }
  const PathSolution solution = held_karp_path(instance);
  PathPartition partition = split_order_into_paths(graph, solution.order);
  LPTSP_ENSURE(partition.size() == static_cast<int>(solution.cost) + 1,
               "path count must equal heavy-edge count + 1");
  LPTSP_ENSURE(is_valid_path_partition(graph, partition), "exact partition is invalid");
  return partition;
}

PathPartition path_partition_greedy(const Graph& graph) {
  LPTSP_REQUIRE(graph.n() >= 1, "graph must be non-empty");
  std::vector<bool> used(static_cast<std::size_t>(graph.n()), false);
  PathPartition partition;
  for (int start = 0; start < graph.n(); ++start) {
    if (used[static_cast<std::size_t>(start)]) continue;
    std::vector<int> path{start};
    used[static_cast<std::size_t>(start)] = true;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const int v : graph.neighbors(path.back())) {
        if (!used[static_cast<std::size_t>(v)]) {
          used[static_cast<std::size_t>(v)] = true;
          path.push_back(v);
          grew = true;
          break;
        }
      }
      for (const int v : graph.neighbors(path.front())) {
        if (!used[static_cast<std::size_t>(v)]) {
          used[static_cast<std::size_t>(v)] = true;
          path.insert(path.begin(), v);
          grew = true;
          break;
        }
      }
    }
    partition.paths.push_back(std::move(path));
  }
  LPTSP_ENSURE(is_valid_path_partition(graph, partition), "greedy partition is invalid");
  return partition;
}

Diameter2Result lpq_span_diameter2(const Graph& graph, int p, int q, PartitionSolver solver) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1, "graph must be non-empty");
  LPTSP_REQUIRE(p >= 0 && q >= 0, "p and q must be non-negative");
  // Corollary 2 inherits Theorem 2's Claim-1 machinery, which needs the
  // bounded-weight condition max(p,q) <= 2*min(p,q).
  LPTSP_REQUIRE(std::max(p, q) <= 2 * std::min(p, q),
                "Corollary 2 requires max(p,q) <= 2*min(p,q)");
  LPTSP_REQUIRE(is_connected(graph), "Corollary 2 requires a connected graph");
  LPTSP_REQUIRE(n == 1 || diameter(graph) <= 2, "Corollary 2 requires diam(G) <= 2");

  Diameter2Result result;
  if (n == 1) {
    result.partition_size = 1;
    result.labeling.labels = {0};
    return result;
  }

  const Weight cheap = std::min(p, q);
  const Weight heavy = std::max(p, q);
  result.used_complement = p > q;
  const Graph cheap_graph = result.used_complement ? complement(graph) : graph;

  int partition_size = 0;
  PathPartition witness;
  switch (solver) {
    case PartitionSolver::Exact:
      witness = path_partition_exact(cheap_graph);
      partition_size = witness.size();
      break;
    case PartitionSolver::Greedy:
      witness = path_partition_greedy(cheap_graph);
      partition_size = witness.size();
      break;
    case PartitionSolver::CographDP:
      partition_size = cograph_min_path_cover(cheap_graph);
      break;
  }
  result.partition_size = partition_size;
  result.span = static_cast<Weight>(n - 1) * cheap +
                (heavy - cheap) * static_cast<Weight>(partition_size - 1);

  if (!witness.paths.empty()) {
    // Build the witness labeling by concatenating the paths: cheap steps
    // inside a path, heavy steps between paths (this is exactly the
    // lambda_p(G, pi) of the concatenated order).
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    for (const auto& path : witness.paths) order.insert(order.end(), path.begin(), path.end());
    const DistanceMatrix dist = all_pairs_distances(graph);
    const PVec pv({p, q});
    result.labeling = minimal_labeling_for_order(dist, pv, order);
    LPTSP_ENSURE(is_valid_labeling(graph, dist, pv, result.labeling),
                 "Corollary-2 witness labeling invalid");
    LPTSP_ENSURE(result.labeling.span() <= result.span,
                 "witness span exceeds the Corollary-2 value");
  }
  return result;
}

}  // namespace lptsp
