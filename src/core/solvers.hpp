#pragma once

#include <string>

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "graph/graph.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/path.hpp"

namespace lptsp {

/// TSP engines pluggable behind the Theorem-2 reduction — the library's
/// realization of the paper's "solve L(p)-labeling with TSP engines".
enum class Engine {
  BruteForce,         ///< permutation enumeration (n <= 11), exact
  HeldKarp,           ///< O(2^n n^2) DP (Corollary 1), exact
  Christofides,       ///< Christofides–Hoogeveen path variant (Corollary 1)
  DoubleMst,          ///< MST preorder walk, 2-approximation
  NearestNeighbor,    ///< multi-start NN construction
  NearestNeighbor2Opt,///< NN + 2-opt local optimum
  GreedyEdge,         ///< greedy-edge construction
  LinKernighanStyle,  ///< NN + variable-neighborhood descent (LK stand-in)
  ChainedLK,          ///< kicked multi-start LK-style (strongest heuristic)
  SimulatedAnnealing, ///< 2-opt annealing + VND polish
  BranchBound,        ///< exact DFS + MST bound (O(n) memory), exact
};

std::string engine_name(Engine engine);

/// Options for solve_labeling.
struct SolveOptions {
  Engine engine = Engine::HeldKarp;
  unsigned threads = 1;            ///< reduction BFS + parallel engines
  std::uint64_t seed = 1;          ///< randomized engines
  HeldKarpOptions held_karp = {};  ///< exact-engine caps
  ChainedLkOptions chained_lk = {};
  int nn_starts = 8;               ///< multi-start count for NN engines
  long long bb_node_limit = 50'000'000;  ///< BranchBound search cap
};

/// Result of the full reduce -> TSP -> relabel pipeline.
struct SolveResult {
  Labeling labeling;   ///< verified L(p)-labeling of the input graph
  Weight span = 0;     ///< its span (== Hamiltonian path weight)
  Order order;         ///< the underlying vertex order (Hamiltonian path)
  bool optimal = false;///< true when the engine certifies optimality
  double seconds = 0;  ///< wall time of reduction + engine + relabel
};

/// Solve L(p)-LABELING on a connected graph with diam(G) <= k and
/// pmax <= 2*pmin by reducing to Metric Path TSP (Theorem 2), running the
/// chosen engine, and converting the Hamiltonian path back into labels via
/// Claim 1. The produced labeling is verified against the original graph
/// before returning (an invariant failure would indicate a library bug).
SolveResult solve_labeling(const Graph& graph, const PVec& p, const SolveOptions& options = {});

}  // namespace lptsp
