#pragma once

#include <string>

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "core/reduction.hpp"
#include "graph/graph.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/path.hpp"

namespace lptsp {

/// TSP engines pluggable behind the Theorem-2 reduction — the library's
/// realization of the paper's "solve L(p)-labeling with TSP engines".
enum class Engine {
  BruteForce,         ///< permutation enumeration (n <= 11), exact
  HeldKarp,           ///< O(2^n n^2) DP (Corollary 1), exact
  Christofides,       ///< Christofides–Hoogeveen path variant (Corollary 1)
  DoubleMst,          ///< MST preorder walk, 2-approximation
  NearestNeighbor,    ///< multi-start NN construction
  NearestNeighbor2Opt,///< NN + 2-opt local optimum
  GreedyEdge,         ///< greedy-edge construction
  LinKernighanStyle,  ///< NN + variable-neighborhood descent (LK stand-in)
  ChainedLK,          ///< kicked multi-start LK-style (strongest heuristic)
  SimulatedAnnealing, ///< 2-opt annealing + VND polish
  BranchBound,        ///< exact DFS + MST bound (O(n) memory), exact
};

/// Compile-checked engine names. The switch has no default and the project
/// builds with -Werror=switch, so adding an Engine value without a name
/// here is a build failure, not an "unknown" in a log line.
constexpr const char* engine_name_cstr(Engine engine) noexcept {
  switch (engine) {
    case Engine::BruteForce: return "brute-force";
    case Engine::HeldKarp: return "held-karp";
    case Engine::Christofides: return "christofides";
    case Engine::DoubleMst: return "double-mst";
    case Engine::NearestNeighbor: return "nearest-neighbor";
    case Engine::NearestNeighbor2Opt: return "nn+2opt";
    case Engine::GreedyEdge: return "greedy-edge";
    case Engine::LinKernighanStyle: return "lk-style";
    case Engine::ChainedLK: return "chained-lk";
    case Engine::SimulatedAnnealing: return "annealing";
    case Engine::BranchBound: return "branch-bound";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

std::string engine_name(Engine engine);

/// Options for solve_labeling.
struct SolveOptions {
  Engine engine = Engine::HeldKarp;
  unsigned threads = 1;            ///< reduction BFS + parallel engines
  std::uint64_t seed = 1;          ///< randomized engines
  HeldKarpOptions held_karp = {};  ///< exact-engine caps
  ChainedLkOptions chained_lk = {};
  int nn_starts = 8;               ///< multi-start count for NN engines
  long long bb_node_limit = 50'000'000;  ///< BranchBound search cap
};

/// Result of the full reduce -> TSP -> relabel pipeline.
struct SolveResult {
  Labeling labeling;   ///< verified L(p)-labeling of the input graph
  Weight span = 0;     ///< its span (== Hamiltonian path weight)
  Order order;         ///< the underlying vertex order (Hamiltonian path)
  bool optimal = false;///< true when the engine certifies optimality
  double seconds = 0;  ///< wall time of reduction + engine + relabel
};

/// Solve L(p)-LABELING on a connected graph with diam(G) <= k and
/// pmax <= 2*pmin by reducing to Metric Path TSP (Theorem 2), running the
/// chosen engine, and converting the Hamiltonian path back into labels via
/// Claim 1. The produced labeling is verified against the original graph
/// before returning (an invariant failure would indicate a library bug).
SolveResult solve_labeling(const Graph& graph, const PVec& p, const SolveOptions& options = {});

/// Run the engine + relabel half of the pipeline on a precomputed
/// reduction, skipping the all-pairs BFS. `reduced` must have been built
/// from `graph` and `p` (the result is verified against them). This is the
/// injection point the solve cache uses to amortize reductions across
/// repeated requests.
SolveResult solve_labeling_reduced(const Graph& graph, const PVec& p,
                                   const ReducedInstance& reduced,
                                   const SolveOptions& options = {});

/// As above, borrowing the instance and distance matrix separately —
/// callers holding a cached DistanceMatrix avoid copying it into a
/// ReducedInstance (O(n^2) per request on hot cache paths).
SolveResult solve_labeling_injected(const Graph& graph, const PVec& p,
                                    const MetricInstance& instance, const DistanceMatrix& dist,
                                    const SolveOptions& options = {});

/// Why a labeling request cannot be served, as data instead of exceptions —
/// the service layer rejects bad requests gracefully instead of unwinding.
enum class SolveStatus {
  Ok,                        ///< preconditions hold; result is valid
  EmptyGraph,                ///< n == 0
  Disconnected,              ///< Theorem 2 requires a connected graph
  DiameterExceedsK,          ///< diam(G) > k, so some pair is unconstrained
  MetricConditionViolated,   ///< pmax > 2*pmin, reduction not exact
  EngineFailure,             ///< engine gave up (size/node caps) or crashed
  RejectedOverload,          ///< admission control turned the request away
  TimedOut,                  ///< client-side: request deadline elapsed
  TransportDisconnected,     ///< client-side: connection lost before a reply
};

/// Compile-checked status names (no default + -Werror=switch: an unnamed
/// new enumerator fails the build).
constexpr const char* status_name_cstr(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::Ok: return "ok";
    case SolveStatus::EmptyGraph: return "empty-graph";
    case SolveStatus::Disconnected: return "disconnected";
    case SolveStatus::DiameterExceedsK: return "diameter-exceeds-k";
    case SolveStatus::MetricConditionViolated: return "metric-condition-violated";
    case SolveStatus::EngineFailure: return "engine-failure";
    case SolveStatus::RejectedOverload: return "rejected-overload";
    case SolveStatus::TimedOut: return "timed-out";
    case SolveStatus::TransportDisconnected: return "transport-disconnected";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

std::string status_name(SolveStatus status);

/// Human-readable rejection detail for a non-Ok classification, shared by
/// every front-end (throwing, try_, service) so diagnostics cannot drift.
/// `diameter` is only consulted for DiameterExceedsK.
std::string status_message(SolveStatus status, int diameter, const PVec& p);

/// Status + result pair returned by the non-throwing front-end.
struct SolveOutcome {
  SolveStatus status = SolveStatus::EngineFailure;
  std::string message;   ///< human-readable detail when !ok()
  SolveResult result;    ///< meaningful only when ok()

  [[nodiscard]] bool ok() const noexcept { return status == SolveStatus::Ok; }
};

/// Classify a (graph, p) request against Theorem 2's preconditions using an
/// already-computed distance matrix (callers that have one avoid a second
/// all-pairs BFS). Never throws.
SolveStatus classify_labeling_request(const Graph& graph, const PVec& p,
                                      const DistanceMatrix& dist);

/// Non-throwing counterpart of solve_labeling: validates preconditions up
/// front and reports them as a typed status; engine resource-cap failures
/// (e.g. the BranchBound node limit) surface as EngineFailure rather than
/// an exception.
SolveOutcome try_solve_labeling(const Graph& graph, const PVec& p,
                                const SolveOptions& options = {});

}  // namespace lptsp
