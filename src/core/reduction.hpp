#pragma once

#include "core/pvec.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "tsp/instance.hpp"

namespace lptsp {

/// The Theorem-2 reduction output: the complete graph H with
/// w(u, v) = p_{dist_G(u,v)}, plus the distance matrix it was built from
/// (callers reuse it for verification).
struct ReducedInstance {
  MetricInstance instance;
  DistanceMatrix dist;
};

/// Theorem 2 (main result). Requires:
///   - G connected with diam(G) <= k (the dimension of p), and
///   - pmax <= 2 * pmin (which makes H metric).
/// Under these conditions lambda_p(G) equals the optimal Hamiltonian-path
/// weight of H. Runs in O(nm) (one BFS per vertex, parallelizable via
/// `threads`) plus O(n^2) matrix fill.
ReducedInstance reduce_to_path_tsp(const Graph& graph, const PVec& p, unsigned threads = 1);

/// The same construction without the pmax <= 2*pmin check, for the
/// metric-condition ablation (E10): H is still well-defined whenever
/// diam(G) <= k, but may be non-metric and its Path-TSP optimum may
/// strictly undercut lambda_p(G).
ReducedInstance reduce_to_path_tsp_unchecked(const Graph& graph, const PVec& p,
                                             unsigned threads = 1);

/// The O(n^2) matrix-fill half of the reduction on an already-computed
/// distance matrix: w(u, v) = p_{dist(u, v)}. Callers that cache distance
/// matrices (the solve cache) use this to skip the O(nm) all-pairs BFS,
/// the dominant reduction cost on dense small-diameter graphs. Requires
/// all pairs finite and max distance <= k. The fill parallelizes over
/// sources like the full reduction (`threads` = 0 shared pool, 1 serial).
MetricInstance instance_from_distances(const DistanceMatrix& dist, const PVec& p,
                                       unsigned threads = 1);

}  // namespace lptsp
