#include "core/exact_bb.hpp"

#include <algorithm>
#include <numeric>

#include "core/greedy_labeling.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// Backtracking feasibility: can all vertices be labeled within [0, span]?
struct FeasibilitySearch {
  const DistanceMatrix& dist;
  const PVec& p;
  const std::vector<int>& order;  // assignment order
  Weight span;
  std::vector<Weight> labels;
  std::vector<bool> assigned;

  bool feasible_label(int v, Weight label) const {
    for (int u = 0; u < dist.n(); ++u) {
      if (!assigned[static_cast<std::size_t>(u)]) continue;
      const int d = dist.at(u, v);
      if (d == kUnreachable || d == 0 || d > p.k()) continue;
      const Weight gap =
          label >= labels[static_cast<std::size_t>(u)] ? label - labels[static_cast<std::size_t>(u)]
                                                       : labels[static_cast<std::size_t>(u)] - label;
      if (gap < p.at(d)) return false;
    }
    return true;
  }

  bool assign_from(std::size_t index) {
    if (index == order.size()) return true;
    const int v = order[index];
    // Complement symmetry: the mirrored labeling s - l is also valid, so
    // the first vertex only needs to scan the lower half.
    const Weight limit = (index == 0) ? span / 2 : span;
    for (Weight label = 0; label <= limit; ++label) {
      if (!feasible_label(v, label)) continue;
      labels[static_cast<std::size_t>(v)] = label;
      assigned[static_cast<std::size_t>(v)] = true;
      if (assign_from(index + 1)) return true;
      assigned[static_cast<std::size_t>(v)] = false;
    }
    return false;
  }
};

}  // namespace

ExactBBResult exact_labeling_branch_and_bound(const Graph& graph, const PVec& p) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1 && n <= 10, "direct exact search is capped at 10 vertices");
  const DistanceMatrix dist = all_pairs_distances(graph);

  // Upper bound from the first-fit heuristic; lower bound from the
  // strongest single pairwise constraint.
  const Labeling greedy = greedy_first_fit(graph, p);
  Weight upper = greedy.labels.empty() ? 0 : greedy.span();
  Weight lower = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const int d = dist.at(u, v);
      if (d != kUnreachable && d >= 1 && d <= p.k()) {
        lower = std::max(lower, static_cast<Weight>(p.at(d)));
      }
    }
  }

  // Assignment order: degree-descending so constraints bind early.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return graph.degree(a) > graph.degree(b); });

  Labeling best = greedy;
  // Binary search on the span; feasibility is monotone.
  while (lower < upper) {
    const Weight mid = lower + (upper - lower) / 2;
    FeasibilitySearch search{dist, p, order, mid,
                             std::vector<Weight>(static_cast<std::size_t>(n), 0),
                             std::vector<bool>(static_cast<std::size_t>(n), false)};
    if (search.assign_from(0)) {
      best.labels = search.labels;
      upper = mid;
    } else {
      lower = mid + 1;
    }
  }
  return {best, upper};
}

}  // namespace lptsp
