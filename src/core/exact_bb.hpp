#pragma once

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// Direct exact L(p)-LABELING by feasibility search over the span —
/// deliberately independent of the TSP reduction and of Claim 1, so it
/// serves as the ground-truth oracle the reduction is validated against.
///
/// For each candidate span s (binary search between a trivial lower bound
/// and a greedy upper bound), a backtracking search assigns labels
/// 0..s in a degree-descending vertex order with constraint propagation
/// against already-labeled vertices. Works for any p and any diameter
/// (pairs beyond distance k are unconstrained). Exponential; intended for
/// n <= 10 cross-checks.
struct ExactBBResult {
  Labeling labeling;
  Weight span = 0;
};
ExactBBResult exact_labeling_branch_and_bound(const Graph& graph, const PVec& p);

}  // namespace lptsp
