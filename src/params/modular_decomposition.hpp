#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// One node of a modular decomposition tree.
struct MDNode {
  enum class Kind {
    Leaf,      ///< single vertex
    Parallel,  ///< children are the connected components (disjoint union)
    Series,    ///< children are the co-components (join)
    Prime,     ///< children are the maximal proper strong modules
  };
  Kind kind = Kind::Leaf;
  int vertex = -1;            ///< for leaves
  std::vector<int> children;  ///< node ids
  std::vector<int> vertices;  ///< vertex set of the subtree (sorted)
};

/// Modular decomposition tree (Gallai decomposition).
struct MDTree {
  std::vector<MDNode> nodes;
  int root = -1;

  [[nodiscard]] const MDNode& node(int id) const { return nodes[static_cast<std::size_t>(id)]; }
};

/// Compute the modular decomposition via Gallai's theorem: recurse on
/// components (parallel), co-components (series), or the maximal proper
/// strong modules (prime), the latter found by pair-closure generation.
/// O(n^3)-ish — intended for the laptop-scale analyses in this repo, not
/// for the linear-time record (Tedder et al., cited by the paper, is the
/// production-grade alternative).
MDTree modular_decomposition(const Graph& graph);

/// Modular-width (Definition 1 of the paper): the maximum child count
/// over prime nodes, and at least min(n, 2). Children of series/parallel
/// nodes can always be bundled into two modules, so only prime nodes
/// contribute.
int modular_width(const MDTree& tree);
int modular_width(const Graph& graph);

/// The smallest module of `graph` containing `seed` (>= 2 vertices):
/// repeatedly absorb splitters. Exposed for tests.
std::vector<int> module_closure(const Graph& graph, const std::vector<int>& seed);

/// True if `vertices` is a module: every outside vertex sees all or none.
bool is_module(const Graph& graph, const std::vector<int>& vertices);

}  // namespace lptsp
