#include "params/neighborhood_diversity.hpp"

#include <cstdint>

#include "graph/properties.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// True twins or false twins: adjacency rows equal after masking out the
/// two vertices themselves.
bool are_twins(const Graph& graph, int u, int v) {
  const std::uint64_t* row_u = graph.adjacency_row(u);
  const std::uint64_t* row_v = graph.adjacency_row(v);
  const int words = graph.words_per_row();
  for (int w = 0; w < words; ++w) {
    std::uint64_t a = row_u[w];
    std::uint64_t b = row_v[w];
    if (u / 64 == w) {
      a &= ~(std::uint64_t{1} << (u % 64));
      b &= ~(std::uint64_t{1} << (u % 64));
    }
    if (v / 64 == w) {
      a &= ~(std::uint64_t{1} << (v % 64));
      b &= ~(std::uint64_t{1} << (v % 64));
    }
    if (a != b) return false;
  }
  return true;
}

}  // namespace

NdPartition neighborhood_diversity_partition(const Graph& graph) {
  const int n = graph.n();
  NdPartition partition;
  partition.class_of.assign(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (partition.class_of[static_cast<std::size_t>(v)] != -1) continue;
    const int id = static_cast<int>(partition.classes.size());
    partition.classes.emplace_back();
    partition.classes.back().push_back(v);
    partition.class_of[static_cast<std::size_t>(v)] = id;
    // Twin-ness is an equivalence relation, so one linear sweep per
    // representative suffices.
    for (int u = v + 1; u < n; ++u) {
      if (partition.class_of[static_cast<std::size_t>(u)] == -1 && are_twins(graph, v, u)) {
        partition.classes.back().push_back(u);
        partition.class_of[static_cast<std::size_t>(u)] = id;
      }
    }
  }
  partition.is_clique_class.reserve(partition.classes.size());
  for (const auto& members : partition.classes) {
    partition.is_clique_class.push_back(members.size() >= 2 &&
                                        graph.has_edge(members[0], members[1]));
  }
  // Sanity: each class must be homogeneous (clique or independent set).
  for (std::size_t c = 0; c < partition.classes.size(); ++c) {
    const auto& members = partition.classes[c];
    LPTSP_ENSURE(partition.is_clique_class[c] ? is_clique(graph, members)
                                              : is_independent_set(graph, members),
                 "twin class is neither clique nor independent");
  }
  return partition;
}

int neighborhood_diversity(const Graph& graph) {
  return static_cast<int>(neighborhood_diversity_partition(graph).classes.size());
}

}  // namespace lptsp
