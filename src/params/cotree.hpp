#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// Cotree of a cograph: internal nodes are unions (parallel) or joins
/// (series); leaves are vertices. Cographs are exactly the graphs of
/// modular-width <= 2, the canonical easy class for the paper's
/// Corollary 2 (Partition into Paths is FPT in modular-width).
struct Cotree {
  struct Node {
    bool is_leaf = false;
    bool is_series = false;  ///< join node (valid when !is_leaf)
    int vertex = -1;         ///< valid when is_leaf
    std::vector<int> children;
    std::vector<int> vertices;  ///< subtree vertex set (sorted)
  };
  std::vector<Node> nodes;
  int root = -1;

  [[nodiscard]] const Node& node(int id) const { return nodes[static_cast<std::size_t>(id)]; }
};

/// Build the cotree by recursive component / co-component splitting;
/// returns nullopt when the graph is not a cograph (some induced subgraph
/// is both connected and co-connected with >= 2 vertices).
std::optional<Cotree> build_cotree(const Graph& graph);

/// Cograph test (P4-free).
bool is_cograph(const Graph& graph);

}  // namespace lptsp
