#include "params/modular_decomposition.hpp"

#include <algorithm>

#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"

namespace lptsp {

bool is_module(const Graph& graph, const std::vector<int>& vertices) {
  std::vector<bool> inside(static_cast<std::size_t>(graph.n()), false);
  for (const int v : vertices) inside[static_cast<std::size_t>(v)] = true;
  for (int x = 0; x < graph.n(); ++x) {
    if (inside[static_cast<std::size_t>(x)]) continue;
    int adjacent = 0;
    for (const int v : vertices) {
      if (graph.has_edge(x, v)) ++adjacent;
    }
    if (adjacent != 0 && adjacent != static_cast<int>(vertices.size())) return false;
  }
  return true;
}

std::vector<int> module_closure(const Graph& graph, const std::vector<int>& seed) {
  LPTSP_REQUIRE(!seed.empty(), "closure seed must be non-empty");
  const int n = graph.n();
  std::vector<bool> inside(static_cast<std::size_t>(n), false);
  std::vector<int> members;
  // neighbor_count[x] = |N(x) ∩ S| for x outside S; maintained
  // incrementally so each absorption costs O(n).
  std::vector<int> neighbor_count(static_cast<std::size_t>(n), 0);
  std::vector<int> queue;

  const auto absorb = [&](int v) {
    if (inside[static_cast<std::size_t>(v)]) return;
    inside[static_cast<std::size_t>(v)] = true;
    members.push_back(v);
    for (const int u : graph.neighbors(v)) ++neighbor_count[static_cast<std::size_t>(u)];
  };
  for (const int v : seed) absorb(v);

  bool changed = true;
  while (changed) {
    changed = false;
    const int size = static_cast<int>(members.size());
    for (int x = 0; x < n; ++x) {
      if (inside[static_cast<std::size_t>(x)]) continue;
      const int count = neighbor_count[static_cast<std::size_t>(x)];
      if (count != 0 && count != size) {
        absorb(x);  // x splits S, so any module containing S contains x
        changed = true;
        break;  // |S| changed; rescan with the new size
      }
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

namespace {

/// Recursive Gallai construction over an induced subgraph given by
/// original vertex ids.
int decompose(const Graph& graph, std::vector<int> vertices, MDTree& tree) {
  std::sort(vertices.begin(), vertices.end());
  const int id = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes[static_cast<std::size_t>(id)].vertices = vertices;

  if (vertices.size() == 1) {
    tree.nodes[static_cast<std::size_t>(id)].kind = MDNode::Kind::Leaf;
    tree.nodes[static_cast<std::size_t>(id)].vertex = vertices[0];
    return id;
  }

  const Graph sub = induced_subgraph(graph, vertices);

  // Case 1: disconnected -> parallel node over components.
  // Case 2: complement disconnected -> series node over co-components.
  for (const bool use_complement : {false, true}) {
    const Graph& probe = sub;
    const auto component =
        connected_components(use_complement ? complement(probe) : probe);
    const int count = *std::max_element(component.begin(), component.end()) + 1;
    if (count <= 1) continue;
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(count));
    for (std::size_t local = 0; local < component.size(); ++local) {
      parts[static_cast<std::size_t>(component[local])].push_back(vertices[local]);
    }
    tree.nodes[static_cast<std::size_t>(id)].kind =
        use_complement ? MDNode::Kind::Series : MDNode::Kind::Parallel;
    for (auto& part : parts) {
      const int child = decompose(graph, std::move(part), tree);
      tree.nodes[static_cast<std::size_t>(id)].children.push_back(child);
    }
    return id;
  }

  // Case 3: prime. By Gallai's theorem the maximal proper modules
  // partition V; the part containing v is {v} ∪ {u : closure({v,u}) != V}
  // because any module containing vertices from two parts must be V.
  tree.nodes[static_cast<std::size_t>(id)].kind = MDNode::Kind::Prime;
  const int local_n = sub.n();
  std::vector<int> part_of(static_cast<std::size_t>(local_n), -1);
  std::vector<std::vector<int>> parts;
  for (int v = 0; v < local_n; ++v) {
    if (part_of[static_cast<std::size_t>(v)] != -1) continue;
    const int part_id = static_cast<int>(parts.size());
    parts.emplace_back();
    parts.back().push_back(v);
    part_of[static_cast<std::size_t>(v)] = part_id;
    for (int u = 0; u < local_n; ++u) {
      if (u == v || part_of[static_cast<std::size_t>(u)] != -1) continue;
      const auto closure = module_closure(sub, {v, u});
      if (static_cast<int>(closure.size()) < local_n) {
        // closure is a proper module containing v; all of it joins v's part.
        for (const int w : closure) {
          if (part_of[static_cast<std::size_t>(w)] == -1) {
            part_of[static_cast<std::size_t>(w)] = part_id;
            parts.back().push_back(w);
          } else {
            LPTSP_ENSURE(part_of[static_cast<std::size_t>(w)] == part_id,
                         "overlapping maximal modules in prime node");
          }
        }
      }
    }
  }
  for (auto& part : parts) {
    std::vector<int> original;
    original.reserve(part.size());
    for (const int local : part) original.push_back(vertices[static_cast<std::size_t>(local)]);
    const int child = decompose(graph, std::move(original), tree);
    tree.nodes[static_cast<std::size_t>(id)].children.push_back(child);
  }
  LPTSP_ENSURE(tree.nodes[static_cast<std::size_t>(id)].children.size() >= 4,
               "a prime node has at least 4 children");
  return id;
}

}  // namespace

MDTree modular_decomposition(const Graph& graph) {
  LPTSP_REQUIRE(graph.n() >= 1, "modular decomposition needs a non-empty graph");
  MDTree tree;
  std::vector<int> all(static_cast<std::size_t>(graph.n()));
  for (int v = 0; v < graph.n(); ++v) all[static_cast<std::size_t>(v)] = v;
  tree.root = decompose(graph, std::move(all), tree);
  return tree;
}

int modular_width(const MDTree& tree) {
  int width = 0;
  for (const auto& node : tree.nodes) {
    if (node.kind == MDNode::Kind::Prime) {
      width = std::max(width, static_cast<int>(node.children.size()));
    }
  }
  const int n = static_cast<int>(tree.nodes[static_cast<std::size_t>(tree.root)].vertices.size());
  return std::max(width, std::min(n, 2));
}

int modular_width(const Graph& graph) {
  return modular_width(modular_decomposition(graph));
}

}  // namespace lptsp
