#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// Partition of V into neighborhood-diversity classes (Definition 2 of the
/// paper): u and v share a class iff N(u) \ {v} = N(v) \ {u}, i.e. they
/// are true twins (adjacent, same closed neighborhood) or false twins
/// (non-adjacent, same open neighborhood). Every class is a clique or an
/// independent set and is a module of G.
struct NdPartition {
  std::vector<std::vector<int>> classes;
  std::vector<int> class_of;

  /// True when class c induces a clique (false => independent set;
  /// singleton classes report as independent).
  std::vector<bool> is_clique_class;
};

/// Compute the (unique, coarsest) twin partition. O(n^2 * n/64) via
/// bit-row comparison.
NdPartition neighborhood_diversity_partition(const Graph& graph);

/// nd(G) = number of classes.
int neighborhood_diversity(const Graph& graph);

}  // namespace lptsp
