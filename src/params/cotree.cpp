#include "params/cotree.hpp"

#include <algorithm>

#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// Returns the node id, or -1 if a non-cograph induced subgraph is found.
int build(const Graph& graph, std::vector<int> vertices, Cotree& tree) {
  std::sort(vertices.begin(), vertices.end());
  const int id = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes[static_cast<std::size_t>(id)].vertices = vertices;

  if (vertices.size() == 1) {
    tree.nodes[static_cast<std::size_t>(id)].is_leaf = true;
    tree.nodes[static_cast<std::size_t>(id)].vertex = vertices[0];
    return id;
  }

  const Graph sub = induced_subgraph(graph, vertices);
  for (const bool use_complement : {false, true}) {
    const auto component = connected_components(use_complement ? complement(sub) : sub);
    const int count = *std::max_element(component.begin(), component.end()) + 1;
    if (count <= 1) continue;
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(count));
    for (std::size_t local = 0; local < component.size(); ++local) {
      parts[static_cast<std::size_t>(component[local])].push_back(vertices[local]);
    }
    tree.nodes[static_cast<std::size_t>(id)].is_series = use_complement;
    for (auto& part : parts) {
      const int child = build(graph, std::move(part), tree);
      if (child == -1) return -1;
      tree.nodes[static_cast<std::size_t>(id)].children.push_back(child);
    }
    return id;
  }
  return -1;  // connected and co-connected on >= 2 vertices: not a cograph
}

}  // namespace

std::optional<Cotree> build_cotree(const Graph& graph) {
  LPTSP_REQUIRE(graph.n() >= 1, "cotree needs a non-empty graph");
  Cotree tree;
  std::vector<int> all(static_cast<std::size_t>(graph.n()));
  for (int v = 0; v < graph.n(); ++v) all[static_cast<std::size_t>(v)] = v;
  tree.root = build(graph, std::move(all), tree);
  if (tree.root == -1) return std::nullopt;
  return tree;
}

bool is_cograph(const Graph& graph) {
  return build_cotree(graph).has_value();
}

}  // namespace lptsp
