#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/endian.hpp"

namespace lptsp {

namespace {

/// Next line that is neither blank nor a '#' comment; false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  LPTSP_REQUIRE(next_data_line(in, line), "edge list: missing header line");
  std::istringstream header(line);
  int n = 0;
  int m = 0;
  LPTSP_REQUIRE(static_cast<bool>(header >> n >> m), "edge list: header must be '<n> <m>'");
  LPTSP_REQUIRE(n >= 0 && m >= 0, "edge list: negative counts");
  Graph graph(n);
  for (int i = 0; i < m; ++i) {
    LPTSP_REQUIRE(next_data_line(in, line), "edge list: fewer edges than declared");
    std::istringstream edge(line);
    int u = 0;
    int v = 0;
    LPTSP_REQUIRE(static_cast<bool>(edge >> u >> v), "edge list: malformed edge line");
    graph.add_edge(u, v);
  }
  return graph;
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  LPTSP_REQUIRE(in.good(), "cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& graph) {
  out << "# lptsp edge list\n" << graph.n() << ' ' << graph.m() << '\n';
  for (const auto& [u, v] : graph.edges()) out << u << ' ' << v << '\n';
}

void write_edge_list_file(const std::string& path, const Graph& graph) {
  std::ofstream out(path);
  LPTSP_REQUIRE(out.good(), "cannot open output file: " + path);
  write_edge_list(out, graph);
}

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  endian::put_u32(out, value);
}

}  // namespace

std::size_t graph_binary_size(const Graph& graph) noexcept {
  // n, one degree word per vertex, one word per edge (forward lists hold
  // each edge exactly once).
  return 4 * (1 + static_cast<std::size_t>(graph.n()) + static_cast<std::size_t>(graph.m()));
}

void append_graph_binary(std::vector<std::uint8_t>& out, const Graph& graph) {
  const int n = graph.n();
  out.reserve(out.size() + graph_binary_size(graph));
  append_u32(out, static_cast<std::uint32_t>(n));
  std::vector<int> forward;
  for (int v = 0; v < n; ++v) {
    forward.clear();
    for (const int u : graph.neighbors(v)) {
      if (u > v) forward.push_back(u);
    }
    std::sort(forward.begin(), forward.end());
    append_u32(out, static_cast<std::uint32_t>(forward.size()));
    for (const int u : forward) append_u32(out, static_cast<std::uint32_t>(u));
  }
}

bool decode_graph_binary(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                         Graph& graph, std::string& error, int max_vertices) {
  std::uint32_t n = 0;
  if (!endian::try_get_u32(data, size, offset, n)) {
    error = "graph: truncated vertex count";
    return false;
  }
  if (n > static_cast<std::uint32_t>(max_vertices)) {
    error = "graph: vertex count " + std::to_string(n) + " exceeds limit " +
            std::to_string(max_vertices);
    return false;
  }
  Graph decoded(static_cast<int>(n));
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t degree = 0;
    if (!endian::try_get_u32(data, size, offset, degree)) {
      error = "graph: truncated degree of vertex " + std::to_string(v);
      return false;
    }
    // Forward degree is at most n - 1 - v; checking before the neighbor
    // loop bounds the work a hostile length prefix can cause.
    if (degree > n - 1 - v) {
      error = "graph: forward degree " + std::to_string(degree) + " of vertex " +
              std::to_string(v) + " out of range";
      return false;
    }
    std::uint32_t previous = v;
    for (std::uint32_t i = 0; i < degree; ++i) {
      std::uint32_t u = 0;
      if (!endian::try_get_u32(data, size, offset, u)) {
        error = "graph: truncated adjacency of vertex " + std::to_string(v);
        return false;
      }
      // Strictly ascending and > v: rules out self-loops, duplicates, and
      // backward edges in one comparison, and makes the encoding unique.
      if (u <= previous || u >= n) {
        error = "graph: invalid neighbor " + std::to_string(u) + " of vertex " +
                std::to_string(v);
        return false;
      }
      decoded.add_edge(static_cast<int>(v), static_cast<int>(u));
      previous = u;
    }
  }
  graph = std::move(decoded);
  error.clear();
  return true;
}

}  // namespace lptsp
