#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace lptsp {

namespace {

/// Next line that is neither blank nor a '#' comment; false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  LPTSP_REQUIRE(next_data_line(in, line), "edge list: missing header line");
  std::istringstream header(line);
  int n = 0;
  int m = 0;
  LPTSP_REQUIRE(static_cast<bool>(header >> n >> m), "edge list: header must be '<n> <m>'");
  LPTSP_REQUIRE(n >= 0 && m >= 0, "edge list: negative counts");
  Graph graph(n);
  for (int i = 0; i < m; ++i) {
    LPTSP_REQUIRE(next_data_line(in, line), "edge list: fewer edges than declared");
    std::istringstream edge(line);
    int u = 0;
    int v = 0;
    LPTSP_REQUIRE(static_cast<bool>(edge >> u >> v), "edge list: malformed edge line");
    graph.add_edge(u, v);
  }
  return graph;
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  LPTSP_REQUIRE(in.good(), "cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& graph) {
  out << "# lptsp edge list\n" << graph.n() << ' ' << graph.m() << '\n';
  for (const auto& [u, v] : graph.edges()) out << u << ' ' << v << '\n';
}

void write_edge_list_file(const std::string& path, const Graph& graph) {
  std::ofstream out(path);
  LPTSP_REQUIRE(out.good(), "cannot open output file: " + path);
  write_edge_list(out, graph);
}

}  // namespace lptsp
