#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// True when the graph has exactly one connected component (the empty
/// graph and single vertices count as connected).
bool is_connected(const Graph& graph);

/// Component id (0-based) per vertex; ids are assigned in discovery order.
std::vector<int> connected_components(const Graph& graph);

/// Diameter (max hop distance over all pairs). Requires a connected graph.
int diameter(const Graph& graph);

/// Diameter from a precomputed distance matrix; requires all pairs finite.
int diameter(const DistanceMatrix& dist);

/// Largest vertex degree (0 for the empty graph).
int max_degree(const Graph& graph);

/// True if every pair of the given vertices is adjacent.
bool is_clique(const Graph& graph, const std::vector<int>& vertices);

/// True if no pair of the given vertices is adjacent.
bool is_independent_set(const Graph& graph, const std::vector<int>& vertices);

}  // namespace lptsp
