#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace lptsp {

/// Simple undirected graph on vertices {0, ..., n-1}.
///
/// Stores both adjacency lists (for BFS / degree iteration) and a packed
/// adjacency bit-matrix (for O(1) has_edge and fast set operations such as
/// complement and power graphs). Self-loops and parallel edges are
/// rejected; all labeling/TSP theory in this library assumes simple graphs.
class Graph {
 public:
  /// An empty graph on n >= 0 vertices.
  explicit Graph(int n = 0);

  /// Build from an explicit edge list. Duplicate edges are rejected.
  static Graph from_edges(int n, const std::vector<std::pair<int, int>>& edges);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int m() const noexcept { return m_; }

  /// Add undirected edge {u, v}. Requires u != v, both in range, and the
  /// edge not already present.
  void add_edge(int u, int v);

  /// Add edge {u, v} unless it already exists; returns true if added.
  bool add_edge_if_absent(int u, int v);

  [[nodiscard]] bool has_edge(int u, int v) const noexcept;
  [[nodiscard]] const std::vector<int>& neighbors(int v) const;
  [[nodiscard]] int degree(int v) const;

  /// All edges as (u, v) with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<std::pair<int, int>> edges() const;

  /// Row v of the adjacency bit-matrix ((n+63)/64 words).
  [[nodiscard]] const std::uint64_t* adjacency_row(int v) const;
  [[nodiscard]] int words_per_row() const noexcept { return words_; }

  /// Base of the packed adjacency bit-matrix: row v starts at
  /// adjacency_bits() + v * words_per_row(). Hot kernels index this
  /// directly instead of paying a checked adjacency_row() call per row.
  [[nodiscard]] const std::uint64_t* adjacency_bits() const noexcept { return bits_.data(); }

  /// Structural equality (same n and same edge set).
  [[nodiscard]] bool operator==(const Graph& other) const;

 private:
  void check_vertex(int v) const;

  int n_ = 0;
  int m_ = 0;
  int words_ = 0;
  std::vector<std::vector<int>> adj_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace lptsp
