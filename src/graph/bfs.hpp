#pragma once

#include <cassert>
#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// Distance value used for unreachable vertex pairs.
inline constexpr int kUnreachable = -1;

/// Square matrix of pairwise shortest-path distances (hop counts).
class DistanceMatrix {
 public:
  explicit DistanceMatrix(int n);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int at(int u, int v) const;
  void set(int u, int v, int distance);

  /// Unchecked read for hot kernels (debug-assert only). The checked at()
  /// remains the public API for untrusted indices.
  [[nodiscard]] int at_unchecked(int u, int v) const noexcept {
    assert(u >= 0 && u < n_ && v >= 0 && v < n_);
    return data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }

  /// Row u of the matrix as a contiguous n-entry array. Kernels iterate
  /// rows linearly instead of paying a checked at() per entry.
  [[nodiscard]] const int* row(int u) const noexcept {
    assert(u >= 0 && u < n_);
    return data_.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  }
  [[nodiscard]] int* row(int u) noexcept {
    assert(u >= 0 && u < n_);
    return data_.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  }

  /// True if every pair is reachable (the underlying graph is connected).
  [[nodiscard]] bool all_finite() const noexcept;

  /// Maximum finite entry, i.e. the diameter when all_finite(). Returns 0
  /// for n <= 1.
  [[nodiscard]] int max_finite() const noexcept;

 private:
  int n_;
  std::vector<int> data_;
};

/// Hop distances from src to every vertex (kUnreachable where disconnected).
/// Adjacency-list BFS; the readable reference implementation.
std::vector<int> bfs_distances(const Graph& graph, int src);

/// Hop distances from src via frontier-bitset BFS: each level ORs the
/// adjacency rows of the current frontier into a visited bitset, so one
/// level costs O(|frontier| * n/64) word operations instead of scanning
/// adjacency lists. Equivalent to bfs_distances on every graph; this is the
/// fallback kernel of all_pairs_distances for diameters above 2.
std::vector<int> bfs_distances_frontier(const Graph& graph, int src);

/// All-pairs shortest paths, parallelized across sources (`threads` = 0
/// uses the shared pool, 1 forces serial). This is the O(nm) step of the
/// paper's Theorem-2 reduction, rebuilt around the paper's own target
/// class: for each source the kernel first tries the diameter-<=2 fast
/// path, deriving dist(u,v) in {1,2} from adjacency-row word intersections
/// (O(n^2/64) per source, cache-linear); any source with a vertex at
/// distance >= 3 falls back to frontier-bitset BFS for that source only.
DistanceMatrix all_pairs_distances(const Graph& graph, unsigned threads = 0);

/// The pre-optimization reference: one adjacency-list BFS per source.
/// Kept as the equivalence oracle for kernel tests and the baseline lane
/// of bench_e9; not used on any hot path.
DistanceMatrix all_pairs_distances_reference(const Graph& graph, unsigned threads = 0);

}  // namespace lptsp
