#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// Distance value used for unreachable vertex pairs.
inline constexpr int kUnreachable = -1;

/// Square matrix of pairwise shortest-path distances (hop counts).
class DistanceMatrix {
 public:
  explicit DistanceMatrix(int n);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int at(int u, int v) const;
  void set(int u, int v, int distance);

  /// True if every pair is reachable (the underlying graph is connected).
  [[nodiscard]] bool all_finite() const noexcept;

  /// Maximum finite entry, i.e. the diameter when all_finite(). Returns 0
  /// for n <= 1.
  [[nodiscard]] int max_finite() const noexcept;

 private:
  int n_;
  std::vector<int> data_;
};

/// Hop distances from src to every vertex (kUnreachable where disconnected).
std::vector<int> bfs_distances(const Graph& graph, int src);

/// All-pairs shortest paths by one BFS per source, parallelized across
/// sources (`threads` = 0 uses the shared pool, 1 forces serial). This is
/// the O(nm) step of the paper's Theorem-2 reduction.
DistanceMatrix all_pairs_distances(const Graph& graph, unsigned threads = 0);

}  // namespace lptsp
