#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// Parse the plain edge-list format:
///   first non-comment line: "<n> <m>"
///   then m lines "<u> <v>" with 0-based endpoints.
/// Lines starting with '#' are comments. Throws precondition_error on
/// malformed input (wrong counts, out-of-range endpoints, duplicates).
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Serialize in the same edge-list format (with a comment header).
void write_edge_list(std::ostream& out, const Graph& graph);
void write_edge_list_file(const std::string& path, const Graph& graph);

// ---------------------------------------------------------------------------
// Canonical binary graph encoding (degree-prefixed forward adjacency).
//
// All integers little-endian u32:
//   n | for v in 0..n-1: deg⁺(v), then the deg⁺(v) neighbors u of v with
//   u > v, strictly ascending.
// Each edge appears exactly once (under its smaller endpoint), the layout
// is unique per graph, and decoding is a single validated forward pass.
// This is the graph payload of the lptspd wire protocol; keeping it next
// to the text codec makes it the library-wide binary interchange format
// rather than a wire-private one.
// ---------------------------------------------------------------------------

/// Append the binary encoding of `graph` to `out`.
void append_graph_binary(std::vector<std::uint8_t>& out, const Graph& graph);

/// Upper bound on the encoded size (exact, for reserve()).
[[nodiscard]] std::size_t graph_binary_size(const Graph& graph) noexcept;

/// Decode a graph starting at `data[offset]`. On success returns true,
/// stores the graph in `graph`, and advances `offset` past the encoding.
/// On failure returns false with a diagnostic in `error` and leaves
/// `offset` unspecified; never throws — the input is untrusted wire bytes.
/// `max_vertices` bounds n before any allocation happens, so a hostile
/// header cannot force an oversized allocation.
[[nodiscard]] bool decode_graph_binary(const std::uint8_t* data, std::size_t size,
                                       std::size_t& offset, Graph& graph, std::string& error,
                                       int max_vertices = 1 << 20);

}  // namespace lptsp
