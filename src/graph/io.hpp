#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace lptsp {

/// Parse the plain edge-list format:
///   first non-comment line: "<n> <m>"
///   then m lines "<u> <v>" with 0-based endpoints.
/// Lines starting with '#' are comments. Throws precondition_error on
/// malformed input (wrong counts, out-of-range endpoints, duplicates).
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Serialize in the same edge-list format (with a comment header).
void write_edge_list(std::ostream& out, const Graph& graph);
void write_edge_list_file(const std::string& path, const Graph& graph);

}  // namespace lptsp
