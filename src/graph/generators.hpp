#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lptsp {

// ---------------------------------------------------------------------------
// Deterministic classic families (the polynomially solvable classes the
// paper's introduction references: paths, cycles, wheels, complete graphs).
// ---------------------------------------------------------------------------

/// Path v0 - v1 - ... - v(n-1).
Graph path_graph(int n);

/// Cycle on n >= 3 vertices.
Graph cycle_graph(int n);

/// Complete graph K_n.
Graph complete_graph(int n);

/// Star K_{1,n-1}; vertex 0 is the center.
Graph star_graph(int n);

/// Wheel: cycle on n-1 >= 3 vertices plus a hub (vertex n-1).
Graph wheel_graph(int n);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(int a, int b);

/// Complete multipartite graph with the given part sizes.
Graph complete_multipartite(const std::vector<int>& part_sizes);

/// r x c grid graph.
Graph grid_graph(int rows, int cols);

/// The Petersen graph (3-regular, diameter 2).
Graph petersen_graph();

/// The 5-vertex, 5-edge, diameter-3 example of the paper's Figure 1:
/// a triangle {a,b,c} with a pendant path c-d-e (vertices 0..4 = a..e).
/// Its distance multiset is {d=1: 5 pairs, d=2: 3 pairs, d=3: 2 pairs},
/// matching the edge weights drawn in the figure.
Graph fig1_graph();

/// Decode a graph on n vertices from a bitmask over the n*(n-1)/2 vertex
/// pairs in lexicographic order ({0,1},{0,2},...,{n-2,n-1}). Used by the
/// exhaustive small-graph enumerations in tests and benchmarks.
Graph graph_from_edge_mask(int n, std::uint64_t mask);

// ---------------------------------------------------------------------------
// Random families (benchmark workloads).
// ---------------------------------------------------------------------------

/// Erdős–Rényi G(n, p): each pair independently an edge.
Graph erdos_renyi(int n, double edge_prob, Rng& rng);

/// Uniform random labelled tree (Prüfer sequence).
Graph random_tree(int n, Rng& rng);

/// Erdős–Rényi conditioned on connectivity: a random spanning tree is
/// added first, then each remaining pair with probability edge_prob.
Graph random_connected(int n, double edge_prob, Rng& rng);

/// Random connected graph post-processed to have diameter <= max_diameter
/// by repeatedly joining a currently-farthest pair. The result is the
/// paper's target class ("small diameter graphs"): diameter <= max_diameter
/// is guaranteed, and for sparse inputs the diameter is usually exactly
/// max_diameter.
Graph random_with_diameter_at_most(int n, int max_diameter, double edge_prob, Rng& rng);

/// Random geometric graph on the unit square; the radius is chosen so the
/// expected mean degree is reached, then connectivity and the diameter cap
/// are enforced as in random_with_diameter_at_most. Models the paper's
/// radio-transmitter motivation.
Graph random_geometric_small_diameter(int n, double mean_degree, int max_diameter, Rng& rng);

/// Random cograph built from a random cotree: unions and joins of
/// recursively generated subgraphs (every internal cotree node flips a
/// coin). Cographs have modular-width <= 2.
Graph random_cograph(int n, Rng& rng);

/// Random split graph: a clique on ~clique_fraction*n vertices, an
/// independent set on the rest, and independent cross edges with
/// probability cross_prob. A universal vertex is NOT added; split graphs
/// with a dominating clique typically have diameter <= 3.
Graph random_split_graph(int n, double clique_fraction, double cross_prob, Rng& rng);

}  // namespace lptsp
