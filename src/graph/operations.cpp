#include "graph/operations.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

Graph complement(const Graph& graph) {
  Graph result(graph.n());
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = u + 1; v < graph.n(); ++v) {
      if (!graph.has_edge(u, v)) result.add_edge(u, v);
    }
  }
  return result;
}

Graph power(const Graph& graph, int k) {
  LPTSP_REQUIRE(k >= 1, "graph power exponent must be >= 1");
  return power(graph, k, all_pairs_distances(graph));
}

Graph power(const Graph& graph, int k, const DistanceMatrix& dist) {
  LPTSP_REQUIRE(k >= 1, "graph power exponent must be >= 1");
  LPTSP_REQUIRE(dist.n() == graph.n(), "distance matrix size mismatch");
  Graph result(graph.n());
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = u + 1; v < graph.n(); ++v) {
      const int d = dist.at(u, v);
      if (d != kUnreachable && d <= k) result.add_edge(u, v);
    }
  }
  return result;
}

Graph induced_subgraph(const Graph& graph, const std::vector<int>& vertices) {
  std::vector<int> sorted = vertices;
  std::sort(sorted.begin(), sorted.end());
  LPTSP_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                "induced subgraph vertices must be distinct");
  Graph result(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (graph.has_edge(vertices[i], vertices[j])) {
        result.add_edge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return result;
}

Graph disjoint_union(const Graph& left, const Graph& right) {
  Graph result(left.n() + right.n());
  for (const auto& [u, v] : left.edges()) result.add_edge(u, v);
  for (const auto& [u, v] : right.edges()) result.add_edge(u + left.n(), v + left.n());
  return result;
}

Graph join(const Graph& left, const Graph& right) {
  Graph result = disjoint_union(left, right);
  for (int u = 0; u < left.n(); ++u) {
    for (int v = 0; v < right.n(); ++v) result.add_edge(u, left.n() + v);
  }
  return result;
}

Graph add_universal_vertex(const Graph& graph) {
  Graph result(graph.n() + 1);
  for (const auto& [u, v] : graph.edges()) result.add_edge(u, v);
  for (int v = 0; v < graph.n(); ++v) result.add_edge(v, graph.n());
  return result;
}

Graph relabel(const Graph& graph, const std::vector<int>& perm) {
  LPTSP_REQUIRE(static_cast<int>(perm.size()) == graph.n(), "permutation size mismatch");
  std::vector<bool> seen(perm.size(), false);
  for (const int image : perm) {
    LPTSP_REQUIRE(image >= 0 && image < graph.n() && !seen[static_cast<std::size_t>(image)],
                  "relabel requires a permutation");
    seen[static_cast<std::size_t>(image)] = true;
  }
  Graph result(graph.n());
  for (const auto& [u, v] : graph.edges()) {
    result.add_edge(perm[static_cast<std::size_t>(u)], perm[static_cast<std::size_t>(v)]);
  }
  return result;
}

}  // namespace lptsp
