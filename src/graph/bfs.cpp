#include "graph/bfs.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "kernels/kernels.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

DistanceMatrix::DistanceMatrix(int n) : n_(n) {
  LPTSP_REQUIRE(n >= 0, "matrix size must be non-negative");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kUnreachable);
  for (int v = 0; v < n; ++v) set(v, v, 0);
}

int DistanceMatrix::at(int u, int v) const {
  LPTSP_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "index out of range");
  return data_[static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v)];
}

void DistanceMatrix::set(int u, int v, int distance) {
  LPTSP_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "index out of range");
  data_[static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v)] = distance;
}

bool DistanceMatrix::all_finite() const noexcept {
  return std::all_of(data_.begin(), data_.end(), [](int d) { return d != kUnreachable; });
}

int DistanceMatrix::max_finite() const noexcept {
  int best = 0;
  for (const int d : data_) best = std::max(best, d);
  return best;
}

std::vector<int> bfs_distances(const Graph& graph, int src) {
  LPTSP_REQUIRE(src >= 0 && src < graph.n(), "BFS source out of range");
  std::vector<int> dist(static_cast<std::size_t>(graph.n()), kUnreachable);
  std::vector<int> queue;
  queue.reserve(static_cast<std::size_t>(graph.n()));
  dist[static_cast<std::size_t>(src)] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    for (const int v : graph.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

namespace {

/// Frontier-bitset BFS writing into out[0..n). The three scratch bitsets
/// (visited / frontier / next) are caller-provided so all-pairs sweeps
/// reuse them across sources instead of allocating per source.
void frontier_bfs_row(const std::uint64_t* bits, int words, int n, int src, int* out,
                      std::uint64_t* visited, std::uint64_t* frontier, std::uint64_t* next) {
  std::fill(out, out + n, kUnreachable);
  std::fill(visited, visited + words, 0);
  std::fill(frontier, frontier + words, 0);
  out[src] = 0;
  visited[src >> 6] |= std::uint64_t{1} << (src & 63);
  frontier[src >> 6] |= std::uint64_t{1} << (src & 63);
  int depth = 0;
  bool grew = true;
  while (grew) {
    ++depth;
    std::fill(next, next + words, 0);
    for (int w = 0; w < words; ++w) {
      std::uint64_t pending = frontier[w];
      while (pending != 0) {
        const int u = (w << 6) + std::countr_zero(pending);
        pending &= pending - 1;
        const std::uint64_t* urow = bits + static_cast<std::size_t>(u) * words;
        for (int x = 0; x < words; ++x) next[x] |= urow[x];
      }
    }
    grew = false;
    for (int w = 0; w < words; ++w) {
      std::uint64_t fresh = next[w] & ~visited[w];
      next[w] = fresh;
      visited[w] |= fresh;
      if (fresh != 0) {
        grew = true;
        while (fresh != 0) {
          out[(w << 6) + std::countr_zero(fresh)] = depth;
          fresh &= fresh - 1;
        }
      }
    }
    std::swap(frontier, next);
  }
}

}  // namespace

std::vector<int> bfs_distances_frontier(const Graph& graph, int src) {
  LPTSP_REQUIRE(src >= 0 && src < graph.n(), "BFS source out of range");
  const int n = graph.n();
  const int words = graph.words_per_row();
  std::vector<int> dist(static_cast<std::size_t>(n), kUnreachable);
  std::vector<std::uint64_t> scratch(static_cast<std::size_t>(words) * 3, 0);
  frontier_bfs_row(graph.adjacency_bits(), words, n, src, dist.data(), scratch.data(),
                   scratch.data() + words, scratch.data() + 2 * words);
  return dist;
}

DistanceMatrix all_pairs_distances(const Graph& graph, unsigned threads) {
  const int n = graph.n();
  DistanceMatrix matrix(n);
  if (n == 0) return matrix;
  const std::uint64_t* bits = graph.adjacency_bits();
  const int words = graph.words_per_row();
  // Hoist the dispatch table once per sweep: the diameter-<=2 fast path
  // (word intersection of adjacency rows) is ISA-dispatched — scalar /
  // AVX2 / AVX-512 per the running CPU and LPTSP_FORCE_ISA.
  const kernels::KernelTable& kt = kernels::kernels();
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t src) {
        int* out = matrix.row(static_cast<int>(src));
        if (kt.diam2_row(bits, words, n, static_cast<int>(src), out)) return;
        // Per-worker scratch: the vector persists across sources handled by
        // the same thread, so the fallback allocates once per thread, not
        // once per source.
        thread_local std::vector<std::uint64_t> scratch;
        scratch.assign(static_cast<std::size_t>(words) * 3, 0);
        frontier_bfs_row(bits, words, n, static_cast<int>(src), out, scratch.data(),
                         scratch.data() + words, scratch.data() + 2 * words);
      },
      threads);
  return matrix;
}

DistanceMatrix all_pairs_distances_reference(const Graph& graph, unsigned threads) {
  DistanceMatrix matrix(graph.n());
  parallel_for(
      static_cast<std::size_t>(graph.n()),
      [&](std::size_t src) {
        const auto dist = bfs_distances(graph, static_cast<int>(src));
        int* row = matrix.row(static_cast<int>(src));
        std::copy(dist.begin(), dist.end(), row);
      },
      threads);
  return matrix;
}

}  // namespace lptsp
