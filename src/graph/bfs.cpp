#include "graph/bfs.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

DistanceMatrix::DistanceMatrix(int n) : n_(n) {
  LPTSP_REQUIRE(n >= 0, "matrix size must be non-negative");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kUnreachable);
  for (int v = 0; v < n; ++v) set(v, v, 0);
}

int DistanceMatrix::at(int u, int v) const {
  LPTSP_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "index out of range");
  return data_[static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v)];
}

void DistanceMatrix::set(int u, int v, int distance) {
  LPTSP_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "index out of range");
  data_[static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v)] = distance;
}

bool DistanceMatrix::all_finite() const noexcept {
  return std::all_of(data_.begin(), data_.end(), [](int d) { return d != kUnreachable; });
}

int DistanceMatrix::max_finite() const noexcept {
  int best = 0;
  for (const int d : data_) best = std::max(best, d);
  return best;
}

std::vector<int> bfs_distances(const Graph& graph, int src) {
  LPTSP_REQUIRE(src >= 0 && src < graph.n(), "BFS source out of range");
  std::vector<int> dist(static_cast<std::size_t>(graph.n()), kUnreachable);
  std::vector<int> queue;
  queue.reserve(static_cast<std::size_t>(graph.n()));
  dist[static_cast<std::size_t>(src)] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    for (const int v : graph.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

DistanceMatrix all_pairs_distances(const Graph& graph, unsigned threads) {
  DistanceMatrix matrix(graph.n());
  parallel_for(
      static_cast<std::size_t>(graph.n()),
      [&](std::size_t src) {
        const auto dist = bfs_distances(graph, static_cast<int>(src));
        for (int v = 0; v < graph.n(); ++v) {
          matrix.set(static_cast<int>(src), v, dist[static_cast<std::size_t>(v)]);
        }
      },
      threads);
  return matrix;
}

}  // namespace lptsp
