#include "graph/properties.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lptsp {

bool is_connected(const Graph& graph) {
  if (graph.n() <= 1) return true;
  const auto dist = bfs_distances(graph, 0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d == kUnreachable; });
}

std::vector<int> connected_components(const Graph& graph) {
  std::vector<int> component(static_cast<std::size_t>(graph.n()), -1);
  int next_id = 0;
  std::vector<int> stack;
  for (int start = 0; start < graph.n(); ++start) {
    if (component[static_cast<std::size_t>(start)] != -1) continue;
    component[static_cast<std::size_t>(start)] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const int v : graph.neighbors(u)) {
        if (component[static_cast<std::size_t>(v)] == -1) {
          component[static_cast<std::size_t>(v)] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

int diameter(const Graph& graph) {
  LPTSP_REQUIRE(is_connected(graph), "diameter is defined for connected graphs only");
  int best = 0;
  for (int src = 0; src < graph.n(); ++src) {
    const auto dist = bfs_distances(graph, src);
    for (const int d : dist) best = std::max(best, d);
  }
  return best;
}

int diameter(const DistanceMatrix& dist) {
  LPTSP_REQUIRE(dist.all_finite(), "diameter requires a connected graph");
  return dist.max_finite();
}

int max_degree(const Graph& graph) {
  int best = 0;
  for (int v = 0; v < graph.n(); ++v) best = std::max(best, graph.degree(v));
  return best;
}

bool is_clique(const Graph& graph, const std::vector<int>& vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (!graph.has_edge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

bool is_independent_set(const Graph& graph, const std::vector<int>& vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (graph.has_edge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace lptsp
