#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/bfs.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"

namespace lptsp {

Graph path_graph(int n) {
  Graph graph(n);
  for (int v = 0; v + 1 < n; ++v) graph.add_edge(v, v + 1);
  return graph;
}

Graph cycle_graph(int n) {
  LPTSP_REQUIRE(n >= 3, "a cycle needs at least 3 vertices");
  Graph graph = path_graph(n);
  graph.add_edge(n - 1, 0);
  return graph;
}

Graph complete_graph(int n) {
  Graph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) graph.add_edge(u, v);
  }
  return graph;
}

Graph star_graph(int n) {
  LPTSP_REQUIRE(n >= 1, "a star needs at least 1 vertex");
  Graph graph(n);
  for (int v = 1; v < n; ++v) graph.add_edge(0, v);
  return graph;
}

Graph wheel_graph(int n) {
  LPTSP_REQUIRE(n >= 4, "a wheel needs at least 4 vertices");
  Graph graph(n);
  const int rim = n - 1;
  for (int v = 0; v < rim; ++v) graph.add_edge(v, (v + 1) % rim);
  for (int v = 0; v < rim; ++v) graph.add_edge(v, rim);
  return graph;
}

Graph complete_bipartite(int a, int b) {
  return complete_multipartite({a, b});
}

Graph complete_multipartite(const std::vector<int>& part_sizes) {
  int n = 0;
  for (const int size : part_sizes) {
    LPTSP_REQUIRE(size >= 1, "part sizes must be positive");
    n += size;
  }
  Graph graph(n);
  std::vector<int> part_of(static_cast<std::size_t>(n));
  int offset = 0;
  for (std::size_t part = 0; part < part_sizes.size(); ++part) {
    for (int i = 0; i < part_sizes[part]; ++i) part_of[static_cast<std::size_t>(offset + i)] = static_cast<int>(part);
    offset += part_sizes[part];
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (part_of[static_cast<std::size_t>(u)] != part_of[static_cast<std::size_t>(v)]) {
        graph.add_edge(u, v);
      }
    }
  }
  return graph;
}

Graph grid_graph(int rows, int cols) {
  LPTSP_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  Graph graph(rows * cols);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) graph.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) graph.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return graph;
}

Graph petersen_graph() {
  Graph graph(10);
  for (int v = 0; v < 5; ++v) {
    graph.add_edge(v, (v + 1) % 5);      // outer pentagon
    graph.add_edge(5 + v, 5 + (v + 2) % 5);  // inner pentagram
    graph.add_edge(v, 5 + v);            // spokes
  }
  return graph;
}

Graph fig1_graph() {
  // Vertices 0..4 = a..e: triangle {a,b,c} plus pendant path c-d-e.
  return Graph::from_edges(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
}

Graph graph_from_edge_mask(int n, std::uint64_t mask) {
  LPTSP_REQUIRE(n >= 0 && n * (n - 1) / 2 <= 64, "edge mask supports at most 11 vertices");
  Graph graph(n);
  int bit = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v, ++bit) {
      if ((mask >> bit) & 1) graph.add_edge(u, v);
    }
  }
  return graph;
}

Graph erdos_renyi(int n, double edge_prob, Rng& rng) {
  Graph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(edge_prob)) graph.add_edge(u, v);
    }
  }
  return graph;
}

Graph random_tree(int n, Rng& rng) {
  LPTSP_REQUIRE(n >= 1, "a tree needs at least 1 vertex");
  Graph graph(n);
  if (n == 1) return graph;
  if (n == 2) {
    graph.add_edge(0, 1);
    return graph;
  }
  // Decode a uniformly random Prüfer sequence.
  std::vector<int> prufer(static_cast<std::size_t>(n - 2));
  for (auto& entry : prufer) entry = rng.uniform_int(0, n - 1);
  std::vector<int> remaining_degree(static_cast<std::size_t>(n), 1);
  for (const int v : prufer) ++remaining_degree[static_cast<std::size_t>(v)];
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (const int code : prufer) {
    for (int leaf = 0; leaf < n; ++leaf) {
      if (remaining_degree[static_cast<std::size_t>(leaf)] == 1 && !used[static_cast<std::size_t>(leaf)]) {
        graph.add_edge(leaf, code);
        used[static_cast<std::size_t>(leaf)] = true;
        --remaining_degree[static_cast<std::size_t>(code)];
        break;
      }
    }
  }
  int first = -1;
  for (int v = 0; v < n; ++v) {
    if (!used[static_cast<std::size_t>(v)] && remaining_degree[static_cast<std::size_t>(v)] == 1) {
      if (first == -1) {
        first = v;
      } else {
        graph.add_edge(first, v);
      }
    }
  }
  return graph;
}

Graph random_connected(int n, double edge_prob, Rng& rng) {
  LPTSP_REQUIRE(n >= 1, "need at least 1 vertex");
  Graph graph = random_tree(n, rng);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!graph.has_edge(u, v) && rng.bernoulli(edge_prob)) graph.add_edge(u, v);
    }
  }
  return graph;
}

namespace {

/// Adds edges between currently-farthest pairs until diam(G) <= cap.
/// Each added edge strictly shrinks the distance of the chosen pair, and in
/// the worst case the loop ends at the complete graph, so it terminates.
///
/// The all-pairs matrix is computed once and then maintained incrementally:
/// adding the unweighted edge {a, b} can only shorten a path by routing it
/// through the new edge exactly once, so
///   d'(x, y) = min(d(x, y), d(x, a) + 1 + d(b, y), d(x, b) + 1 + d(a, y)),
/// an O(n^2) row sweep instead of a fresh O(nm) BFS sweep per added edge.
/// The chosen-edge sequence (and hence the output distribution) is
/// identical to the recompute-from-scratch version.
void enforce_diameter_cap(Graph& graph, int cap, Rng& rng) {
  LPTSP_REQUIRE(cap >= 1, "diameter cap must be >= 1");
  DistanceMatrix dist = all_pairs_distances(graph);
  LPTSP_REQUIRE(dist.all_finite(), "diameter cap requires a connected graph");
  std::vector<std::pair<int, int>> farthest;
  while (true) {
    farthest.clear();
    int worst = 0;
    for (int u = 0; u < graph.n(); ++u) {
      const int* drow = dist.row(u);
      for (int v = u + 1; v < graph.n(); ++v) {
        const int d = drow[v];
        if (d > worst) {
          worst = d;
          farthest.clear();
        }
        if (d == worst && worst > cap) farthest.emplace_back(u, v);
      }
    }
    if (worst <= cap) return;
    const auto [a, b] = farthest[rng.uniform_index(farthest.size())];
    graph.add_edge(a, b);
    const int* da = dist.row(a);
    const int* db = dist.row(b);
    for (int x = 0; x < graph.n(); ++x) {
      const int via_a = da[x] + 1;  // x -> a, cross to b
      const int via_b = db[x] + 1;  // x -> b, cross to a
      int* drow = dist.row(x);
      for (int y = 0; y < graph.n(); ++y) {
        const int through = std::min(via_a + db[y], via_b + da[y]);
        if (through < drow[y]) drow[y] = through;
      }
    }
  }
}

}  // namespace

Graph random_with_diameter_at_most(int n, int max_diameter, double edge_prob, Rng& rng) {
  Graph graph = random_connected(n, edge_prob, rng);
  enforce_diameter_cap(graph, max_diameter, rng);
  return graph;
}

Graph random_geometric_small_diameter(int n, double mean_degree, int max_diameter, Rng& rng) {
  LPTSP_REQUIRE(n >= 2, "need at least 2 vertices");
  // Radius from the expected-degree formula for a unit-square Poisson
  // layout: E[deg] ~ n * pi * r^2.
  const double radius = std::sqrt(std::max(0.5, mean_degree) / (static_cast<double>(n) * 3.14159265358979));
  std::vector<std::pair<double, double>> points(static_cast<std::size_t>(n));
  for (auto& [x, y] : points) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  Graph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double dx = points[static_cast<std::size_t>(u)].first - points[static_cast<std::size_t>(v)].first;
      const double dy = points[static_cast<std::size_t>(u)].second - points[static_cast<std::size_t>(v)].second;
      if (dx * dx + dy * dy <= radius * radius) graph.add_edge(u, v);
    }
  }
  // Connect stranded components through nearest representatives, then cap
  // the diameter (geometric graphs are long and thin by construction).
  const auto component = connected_components(graph);
  for (int v = 1; v < n; ++v) {
    if (component[static_cast<std::size_t>(v)] != component[0]) graph.add_edge_if_absent(0, v);
  }
  enforce_diameter_cap(graph, max_diameter, rng);
  return graph;
}

namespace {

Graph random_cograph_rec(int n, Rng& rng, int depth) {
  if (n == 1) return Graph(1);
  // Split into two non-empty halves; deeper levels favour even splits so
  // the cotree stays balanced and n stays exact.
  const int left = rng.uniform_int(1, n - 1);
  const Graph left_graph = random_cograph_rec(left, rng, depth + 1);
  const Graph right_graph = random_cograph_rec(n - left, rng, depth + 1);
  return rng.bernoulli(0.5) ? join(left_graph, right_graph)
                            : disjoint_union(left_graph, right_graph);
}

}  // namespace

Graph random_cograph(int n, Rng& rng) {
  LPTSP_REQUIRE(n >= 1, "need at least 1 vertex");
  return random_cograph_rec(n, rng, 0);
}

Graph random_split_graph(int n, double clique_fraction, double cross_prob, Rng& rng) {
  LPTSP_REQUIRE(n >= 2, "need at least 2 vertices");
  const int clique_size = std::clamp(static_cast<int>(std::lround(clique_fraction * n)), 1, n);
  Graph graph(n);
  for (int u = 0; u < clique_size; ++u) {
    for (int v = u + 1; v < clique_size; ++v) graph.add_edge(u, v);
  }
  for (int u = clique_size; u < n; ++u) {
    bool attached = false;
    for (int v = 0; v < clique_size; ++v) {
      if (rng.bernoulli(cross_prob)) {
        graph.add_edge(u, v);
        attached = true;
      }
    }
    if (!attached) graph.add_edge(u, rng.uniform_int(0, clique_size - 1));
  }
  return graph;
}

}  // namespace lptsp
