#include "graph/graph.hpp"

#include <string>

#include "util/check.hpp"

namespace lptsp {

Graph::Graph(int n) : n_(n), words_((n + 63) / 64) {
  LPTSP_REQUIRE(n >= 0, "vertex count must be non-negative");
  adj_.resize(static_cast<std::size_t>(n));
  bits_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(words_), 0);
}

Graph Graph::from_edges(int n, const std::vector<std::pair<int, int>>& edges) {
  Graph graph(n);
  for (const auto& [u, v] : edges) graph.add_edge(u, v);
  return graph;
}

void Graph::check_vertex(int v) const {
  LPTSP_REQUIRE(v >= 0 && v < n_, "vertex " + std::to_string(v) + " out of range [0, " +
                                      std::to_string(n_) + ")");
}

void Graph::add_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  LPTSP_REQUIRE(u != v, "self-loops are not allowed");
  LPTSP_REQUIRE(!has_edge(u, v), "edge {" + std::to_string(u) + "," + std::to_string(v) +
                                     "} already present");
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  bits_[static_cast<std::size_t>(u) * words_ + static_cast<std::size_t>(v) / 64] |=
      std::uint64_t{1} << (v % 64);
  bits_[static_cast<std::size_t>(v) * words_ + static_cast<std::size_t>(u) / 64] |=
      std::uint64_t{1} << (u % 64);
  ++m_;
}

bool Graph::add_edge_if_absent(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  if (u == v || has_edge(u, v)) return false;
  add_edge(u, v);
  return true;
}

bool Graph::has_edge(int u, int v) const noexcept {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) return false;
  return (bits_[static_cast<std::size_t>(u) * words_ + static_cast<std::size_t>(v) / 64] >>
          (v % 64)) &
         1;
}

const std::vector<int>& Graph::neighbors(int v) const {
  check_vertex(v);
  return adj_[static_cast<std::size_t>(v)];
}

int Graph::degree(int v) const {
  check_vertex(v);
  return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
}

std::vector<std::pair<int, int>> Graph::edges() const {
  std::vector<std::pair<int, int>> result;
  result.reserve(static_cast<std::size_t>(m_));
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (has_edge(u, v)) result.emplace_back(u, v);
    }
  }
  return result;
}

const std::uint64_t* Graph::adjacency_row(int v) const {
  check_vertex(v);
  return bits_.data() + static_cast<std::size_t>(v) * words_;
}

bool Graph::operator==(const Graph& other) const {
  return n_ == other.n_ && m_ == other.m_ && bits_ == other.bits_;
}

}  // namespace lptsp
