#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// Complement graph G̅ (edge iff non-edge in G, no self-loops).
Graph complement(const Graph& graph);

/// k-th power G^k: edge {u,v} iff 1 <= dist_G(u,v) <= k. Requires k >= 1.
Graph power(const Graph& graph, int k);

/// Same as power() but reuses a precomputed distance matrix.
Graph power(const Graph& graph, int k, const DistanceMatrix& dist);

/// Subgraph induced by `vertices` (which must be distinct and in range);
/// vertex i of the result corresponds to vertices[i].
Graph induced_subgraph(const Graph& graph, const std::vector<int>& vertices);

/// Disjoint union: vertices of `right` are shifted by left.n().
Graph disjoint_union(const Graph& left, const Graph& right);

/// Join: disjoint union plus all edges between the two sides.
Graph join(const Graph& left, const Graph& right);

/// Copy of `graph` with one extra vertex (index n) adjacent to all others.
Graph add_universal_vertex(const Graph& graph);

/// Copy of `graph` with vertices renamed by `perm` (old v -> perm[v]).
/// `perm` must be a permutation of {0,...,n-1}.
Graph relabel(const Graph& graph, const std::vector<int>& perm);

}  // namespace lptsp
