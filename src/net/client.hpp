#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace lptsp {

/// How solve_retry() behaves across transient failures: capped exponential
/// backoff with multiplicative jitter, bounded by both an attempt count and
/// the caller's end-to-end request timeout.
struct ClientRetryPolicy {
  int max_attempts = 4;                          ///< total tries (first + retries)
  std::chrono::milliseconds initial_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  double backoff_multiplier = 2.0;
  /// Each sleep is scaled by a uniform factor in [1-jitter, 1+jitter] so a
  /// fleet of clients does not retry in lockstep.
  double jitter = 0.2;
};

/// Full client configuration; the legacy WireLimits constructor maps to
/// this with timeouts disabled (pure blocking behaviour, as before).
struct ClientOptions {
  WireLimits wire;
  /// TCP connect + handshake budget. 0 = block indefinitely.
  std::chrono::milliseconds connect_timeout{5000};
  /// End-to-end budget for solve_retry(), spanning every attempt, backoff
  /// sleep, and reconnect. 0 = no deadline (retries still capped by
  /// ClientRetryPolicy::max_attempts).
  std::chrono::milliseconds request_timeout{5000};
  ClientRetryPolicy retry;
  /// Seed for the backoff jitter stream (deterministic for tests).
  std::uint64_t jitter_seed = 0x6c707473ULL;
  /// Client-side request tracing. When true, submit() stamps requests
  /// that carry no trace context with a generated sampled 64-bit trace
  /// id (suppressed automatically on connections that negotiated < v4)
  /// and records spans — connect, serialize, send, server-turnaround
  /// (with the server's echoed queue/service timings nested inside),
  /// deserialize — into a client-owned ring exposed via traces(). The
  /// server adopts the same id, so both rings dump one joined trace.
  bool trace = false;
  /// Retained client traces (ring capacity) when `trace` is on.
  std::size_t trace_capacity = 64;
};

/// Blocking lptspd client with a pipelined submit/wait split.
///
/// submit() writes a Request frame and returns immediately; the server
/// answers out of order, so wait(id) reads frames — buffering responses to
/// other ids — until the requested one arrives. solve() is the synchronous
/// convenience for one-at-a-time callers; a throughput-minded caller keeps
/// a window of submits outstanding and drains with next().
///
/// Service-level outcomes (including RejectedOverload backpressure) are
/// ordinary SolveResponse values. Transport and protocol failures — broken
/// connection, handshake mismatch, an Error frame from the server — throw
/// std::runtime_error from the legacy blocking calls: once framing is in
/// doubt there is no response stream left to return typed values on.
///
/// The deadline-aware calls never block forever and never throw for
/// transport loss: wait_for() returns a typed SolveStatus::TimedOut or
/// SolveStatus::TransportDisconnected response, and solve_retry() wraps
/// submit + wait_for in reconnect + capped exponential backoff with jitter
/// under one end-to-end request_timeout budget, honouring the server's
/// retry-after hint on RejectedOverload.
class LabelingClient {
 public:
  explicit LabelingClient(const WireLimits& limits = {});
  explicit LabelingClient(const ClientOptions& options);
  ~LabelingClient();

  LabelingClient(const LabelingClient&) = delete;
  LabelingClient& operator=(const LabelingClient&) = delete;

  /// Connect and run the Hello/HelloAck handshake. Bounded by
  /// connect_timeout (nonblocking connect + poll); throws on failure.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Close and re-connect to the endpoint of the last successful
  /// connect(). Returns false (instead of throwing) when the server is
  /// still unreachable; used by solve_retry between attempts.
  bool reconnect();

  /// Write one Request frame (blocking until the kernel accepts it).
  void submit(const SolveRequest& request);

  /// Next response in arrival order (responses already buffered by an
  /// id-specific wait() are served first, oldest first).
  SolveResponse next();

  /// The response to a specific request id, buffering any others that
  /// arrive before it. Blocks indefinitely; see wait_for for a deadline.
  SolveResponse wait(std::uint64_t id);

  /// wait() with a deadline and typed failure outcomes instead of blocking
  /// forever or throwing: on deadline expiry returns a response with
  /// status TimedOut (the connection stays open — a late reply is buffered
  /// for next() when it eventually arrives); on connection loss or a
  /// protocol fault returns TransportDisconnected (the connection is
  /// closed; reconnect() restores it). timeout <= 0 waits forever.
  SolveResponse wait_for(std::uint64_t id, std::chrono::milliseconds timeout);

  /// submit + wait in one call (blocking, throwing — the legacy path).
  SolveResponse solve(const SolveRequest& request);

  /// submit + wait_for with reconnect and capped exponential backoff with
  /// jitter, all under the end-to-end request_timeout budget. Transport
  /// loss and RejectedOverload (after honouring its retry-after hint) are
  /// retried up to ClientRetryPolicy::max_attempts; the final failure is
  /// returned as its typed response, never thrown.
  SolveResponse solve_retry(const SolveRequest& request);

  /// Scrape the server's metrics snapshot (v2+ servers), rendered in
  /// `format`. Responses to still-pipelined requests that arrive first are
  /// buffered for later next()/wait() calls. Throws on transport faults
  /// and on servers that refuse stats frames. `journal_since` (Journal
  /// format only) asks for events with seq > journal_since — the
  /// incremental-scrape cursor.
  std::string stats(StatsFormat format = StatsFormat::Json, std::uint64_t journal_since = 0);

  /// Send a Shutdown frame (server flushes pending responses, then closes)
  /// and close this side. Safe to call with responses still unread —
  /// they are discarded.
  void shutdown();

  /// Close without the protocol goodbye.
  void close();

  /// Version negotiated on the current connection (the server acks the
  /// lower of the two); kWireVersion before the first connect().
  [[nodiscard]] std::uint16_t negotiated_version() const noexcept {
    return negotiated_version_;
  }

  /// Client-side trace ring (empty unless ClientOptions::trace is on).
  [[nodiscard]] const obs::TraceRing& traces() const noexcept { return traces_; }

 private:
  /// Typed outcome of one bounded read attempt.
  enum class ReadOutcome { Ok, TimedOut, Disconnected };
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// Tracing is live when the option is on AND the peer speaks v4+ (an
  /// older server would reject the unknown request flag bits).
  [[nodiscard]] bool tracing_active() const noexcept {
    return options_.trace && negotiated_version_ >= kTraceContextMinVersion;
  }
  /// Fresh nonzero trace id from a deterministic per-client stream.
  std::uint64_t next_trace_id();
  /// Close the pending client trace for `response` (if any): append the
  /// server-turnaround span, the echoed server timings, and the measured
  /// deserialize time, then retain it in traces_.
  void finish_trace_for(const SolveResponse& response);

  void write_all(const std::uint8_t* data, std::size_t size);
  /// Read until one decoded message is available; throws on EOF/fault.
  WireMessage read_message();
  /// Deadline-bounded read of one message. Never throws: expiry returns
  /// TimedOut (connection intact), EOF/IO/protocol faults close the
  /// connection and return Disconnected with `detail` set.
  ReadOutcome try_read_message(WireMessage& out, const Deadline& deadline, std::string& detail);
  /// Read until a Response frame arrives; Error frames throw.
  SolveResponse read_response();

  ClientOptions options_;
  WireLimits limits_;
  int fd_ = -1;
  FrameReader reader_;
  /// Endpoint of the last successful connect(), for reconnect().
  std::string host_;
  std::uint16_t port_ = 0;
  Rng jitter_rng_;
  /// Responses read while waiting for a different id, oldest first. Scans
  /// are linear; the deque is bounded by the caller's pipeline window.
  std::deque<SolveResponse> buffered_;

  // --- client-side tracing state ---
  std::uint16_t negotiated_version_ = kWireVersion;
  std::uint64_t trace_id_state_ = 0;     ///< splitmix stream for next_trace_id()
  std::uint64_t pending_connect_ns_ = 0; ///< last connect duration, spent on the next trace
  std::uint64_t last_decode_ns_ = 0;     ///< duration of the last successful frame decode
  /// Traces for submitted-but-unanswered requests, submit order. Linear
  /// scans, bounded by the caller's pipeline window (like buffered_).
  struct PendingTrace {
    std::uint64_t id = 0;
    std::uint64_t sent_ns = 0;  ///< steady_now_ns() when the frame was fully written
    obs::Trace trace;
  };
  std::vector<PendingTrace> pending_traces_;
  obs::TraceRing traces_;
};

}  // namespace lptsp
