#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/wire.hpp"

namespace lptsp {

/// Blocking lptspd client with a pipelined submit/wait split.
///
/// submit() writes a Request frame and returns immediately; the server
/// answers out of order, so wait(id) reads frames — buffering responses to
/// other ids — until the requested one arrives. solve() is the synchronous
/// convenience for one-at-a-time callers; a throughput-minded caller keeps
/// a window of submits outstanding and drains with next().
///
/// Service-level outcomes (including RejectedOverload backpressure) are
/// ordinary SolveResponse values. Transport and protocol failures — broken
/// connection, handshake mismatch, an Error frame from the server — throw
/// std::runtime_error: once framing is in doubt there is no response
/// stream left to return typed values on.
class LabelingClient {
 public:
  explicit LabelingClient(const WireLimits& limits = {});
  ~LabelingClient();

  LabelingClient(const LabelingClient&) = delete;
  LabelingClient& operator=(const LabelingClient&) = delete;

  /// Connect and run the Hello/HelloAck handshake.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Write one Request frame (blocking until the kernel accepts it).
  void submit(const SolveRequest& request);

  /// Next response in arrival order (responses already buffered by an
  /// id-specific wait() are served first, oldest first).
  SolveResponse next();

  /// The response to a specific request id, buffering any others that
  /// arrive before it.
  SolveResponse wait(std::uint64_t id);

  /// submit + wait in one call.
  SolveResponse solve(const SolveRequest& request);

  /// Scrape the server's metrics snapshot (v2+ servers), rendered in
  /// `format`. Responses to still-pipelined requests that arrive first are
  /// buffered for later next()/wait() calls. Throws on transport faults
  /// and on servers that refuse stats frames.
  std::string stats(StatsFormat format = StatsFormat::Json);

  /// Send a Shutdown frame (server flushes pending responses, then closes)
  /// and close this side. Safe to call with responses still unread —
  /// they are discarded.
  void shutdown();

  /// Close without the protocol goodbye.
  void close();

 private:
  void write_all(const std::uint8_t* data, std::size_t size);
  /// Read until one decoded message is available; throws on EOF/fault.
  WireMessage read_message();
  /// Read until a Response frame arrives; Error frames throw.
  SolveResponse read_response();

  WireLimits limits_;
  int fd_ = -1;
  FrameReader reader_;
  /// Responses read while waiting for a different id, oldest first. Scans
  /// are linear; the deque is bounded by the caller's pipeline window.
  std::deque<SolveResponse> buffered_;
};

}  // namespace lptsp
