#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/request.hpp"

namespace lptsp {

/// The lptspd wire protocol: length-prefixed binary frames carrying the
/// batch labeling service's SolveRequest/SolveResponse across a socket.
///
/// Frame layout (all integers little-endian):
///
///   u32 payload_len | u8 message_type | body (payload_len - 1 bytes)
///
/// A connection opens with Hello/HelloAck (magic + version handshake);
/// afterwards the client pipelines Request frames and the server answers
/// with Response frames in completion order (matched by the u64 request
/// id), plus Error frames for protocol-level faults. Decoding never throws
/// across the boundary: every malformed input is reported as a typed
/// WireFault, and size limits are checked before any allocation so a
/// hostile length prefix cannot cause unbounded memory growth.

/// Bytes "LPTS" when the u32 is written little-endian.
inline constexpr std::uint32_t kWireMagic = 0x5354504CU;
/// Current protocol version. v2 added StatsRequest/StatsReply; v3 added
/// the retry-after hint on Response frames (flag bit + trailing u32, only
/// emitted when the hint is nonzero); v4 added trace context on Request
/// frames (flag bits + trailing u64 trace id), the server-timing echo on
/// Response frames (flag bit + two trailing u64s), and the Journal stats
/// format; still within v4, StatsRequest grew an optional trailing u64
/// `since` cursor (incremental journal scrapes) and the Profile stats
/// format — both additive, both rejected cleanly by older servers as
/// malformed/unknown rather than misread. Every older frame is
/// bit-identical in v4, so the handshake
/// negotiates downward: the server accepts any version in
/// [kWireMinVersion, kWireVersion] and acks with the client's (lower)
/// version, on which the newer frames/fields are suppressed.
inline constexpr std::uint16_t kWireVersion = 4;
inline constexpr std::uint16_t kWireMinVersion = 1;
/// First protocol version carrying StatsRequest/StatsReply.
inline constexpr std::uint16_t kStatsMinVersion = 2;
/// First protocol version whose Response frames may carry a retry-after
/// hint (on RejectedOverload, for client backoff).
inline constexpr std::uint16_t kRetryAfterMinVersion = 3;
/// First protocol version carrying trace context on Requests, the
/// server-timing echo on Responses, and the Journal stats format.
inline constexpr std::uint16_t kTraceContextMinVersion = 4;

enum class MessageType : std::uint8_t {
  Hello = 1,         ///< client -> server: magic + version
  HelloAck = 2,      ///< server -> client: magic + negotiated version
  Request = 3,       ///< client -> server: one SolveRequest
  Response = 4,      ///< server -> client: one SolveResponse (typed status)
  Error = 5,         ///< server -> client: protocol fault, connection closing
  Shutdown = 6,      ///< client -> server: flush pending responses and close
  StatsRequest = 7,  ///< client -> server (v2+): scrape the metrics snapshot
  StatsReply = 8,    ///< server -> client (v2+): rendered snapshot text
};

/// Compile-checked message-type names (no default + -Werror=switch: an
/// unnamed new enumerator fails the build, not the log line).
constexpr const char* message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::Hello: return "hello";
    case MessageType::HelloAck: return "hello-ack";
    case MessageType::Request: return "request";
    case MessageType::Response: return "response";
    case MessageType::Error: return "error";
    case MessageType::Shutdown: return "shutdown";
    case MessageType::StatsRequest: return "stats-request";
    case MessageType::StatsReply: return "stats-reply";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

/// Rendering a StatsRequest asks for; the reply carries the same byte so
/// a pipelined scraper can match formats without tracking order.
enum class StatsFormat : std::uint8_t {
  Json = 1,        ///< flat JSON snapshot (counters/gauges/histograms)
  Prometheus = 2,  ///< Prometheus text exposition
  Text = 3,        ///< human-readable aligned table
  Traces = 4,      ///< slow-trace ring as a JSON array
  Journal = 5,     ///< structured event journal as a JSON array (v4+)
  Profile = 6,     ///< work-attribution profile as a JSON object (v4+)
};

constexpr const char* stats_format_name(StatsFormat format) noexcept {
  switch (format) {
    case StatsFormat::Json: return "json";
    case StatsFormat::Prometheus: return "prometheus";
    case StatsFormat::Text: return "text";
    case StatsFormat::Traces: return "traces";
    case StatsFormat::Journal: return "journal";
    case StatsFormat::Profile: return "profile";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

/// Why a frame was refused. None means the frame decoded cleanly.
enum class WireFault : std::uint8_t {
  None = 0,
  Truncated,   ///< body shorter than its fields declare
  Oversized,   ///< frame or field length exceeds the configured limit
  BadMagic,    ///< handshake magic mismatch (not an lptspd peer)
  BadVersion,  ///< protocol version not supported
  BadType,     ///< unknown message type byte
  Malformed,   ///< field-level validation failed (see detail)
};

constexpr const char* wire_fault_name(WireFault fault) noexcept {
  switch (fault) {
    case WireFault::None: return "none";
    case WireFault::Truncated: return "truncated";
    case WireFault::Oversized: return "oversized";
    case WireFault::BadMagic: return "bad-magic";
    case WireFault::BadVersion: return "bad-version";
    case WireFault::BadType: return "bad-type";
    case WireFault::Malformed: return "malformed";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

/// Decode-side resource limits, all enforced before allocation.
struct WireLimits {
  std::size_t max_frame_bytes = std::size_t{16} << 20;  ///< payload cap
  int max_vertices = 1 << 20;                           ///< graph n cap
  int max_pvec_entries = 64;                            ///< p-vector k cap
};

/// One decoded message; `type` selects which fields are meaningful.
struct WireMessage {
  MessageType type = MessageType::Hello;
  std::uint16_t version = 0;     ///< Hello / HelloAck
  SolveRequest request;          ///< Request
  SolveResponse response;        ///< Response
  std::uint64_t error_id = 0;    ///< Error: offending request id (0 = none)
  WireFault error_fault = WireFault::None;  ///< Error: fault being reported
  std::string error_message;     ///< Error: human-readable detail
  StatsFormat stats_format = StatsFormat::Json;  ///< StatsRequest / StatsReply
  /// StatsRequest: only events with seq > stats_since are wanted (Journal
  /// format; 0 = everything). Carried as an optional trailing u64.
  std::uint64_t stats_since = 0;
  std::string stats_payload;     ///< StatsReply: rendered snapshot
};

/// Outcome of decoding one payload: either a message or a typed fault.
struct DecodeResult {
  WireFault fault = WireFault::None;
  std::string detail;  ///< diagnostic when fault != None
  WireMessage message;

  [[nodiscard]] bool ok() const noexcept { return fault == WireFault::None; }
};

// Encoders append one complete frame (length prefix included) to `out`.
// Request/Response bodies are bit-exact round-trips: decode(encode(x))
// reproduces every field the wire carries (the fuzz test asserts this).
// The handshake encoders take the version to claim: clients send
// kWireVersion, the server acks with whatever it negotiated (so a v1
// client reads a v1 HelloAck and is none the wiser).
void encode_hello(std::vector<std::uint8_t>& out, std::uint16_t version = kWireVersion);
void encode_hello_ack(std::vector<std::uint8_t>& out, std::uint16_t version = kWireVersion);
/// `version` is the NEGOTIATED connection version: a v1-v3 server's
/// decoder rejects unknown request flag bits, so the trace context (flag
/// bits + trailing u64 id) is only emitted when the connection speaks
/// v4+ (and the request carries a nonzero trace id).
void encode_request(std::vector<std::uint8_t>& out, const SolveRequest& request,
                    std::uint16_t version = kWireVersion);
/// Same frame, but with the trace context supplied out of band instead of
/// read from the request. The traced client path stamps a generated id on
/// every request; taking the override here means it never has to copy the
/// request (and its graph) just to set two fields.
void encode_request_traced(std::vector<std::uint8_t>& out, const SolveRequest& request,
                           std::uint16_t version, std::uint64_t trace_id, bool trace_sampled);
/// `version` is the NEGOTIATED connection version: a v1/v2 peer's decoder
/// rejects unknown flag bits, so the retry-after hint is only emitted when
/// the connection speaks v3+ (and the hint is nonzero), and the
/// server-timing echo only on v4+ (when measured).
void encode_response(std::vector<std::uint8_t>& out, const SolveResponse& response,
                     std::uint16_t version = kWireVersion);
void encode_error(std::vector<std::uint8_t>& out, std::uint64_t id, WireFault fault,
                  const std::string& message);
void encode_shutdown(std::vector<std::uint8_t>& out);
/// `since` (nonzero only for Journal scrapes) is appended as a trailing
/// u64 when set; the plain one-byte frame stays bit-identical, so old
/// servers keep accepting cursor-less requests.
void encode_stats_request(std::vector<std::uint8_t>& out, StatsFormat format,
                          std::uint64_t since = 0);
void encode_stats_reply(std::vector<std::uint8_t>& out, StatsFormat format,
                        const std::string& payload);

/// Decode one payload (the bytes after the length prefix). Never throws.
[[nodiscard]] DecodeResult decode_payload(const std::uint8_t* data, std::size_t size,
                                          const WireLimits& limits = {});

/// Incremental frame extraction over a byte stream: feed() whatever the
/// socket produced, then drain next() until it returns false. The first
/// framing or decode fault poisons the stream — every later next() reports
/// the same fault — because after a bad frame the length prefixes can no
/// longer be trusted; the connection must be closed.
class FrameReader {
 public:
  FrameReader() = default;
  explicit FrameReader(const WireLimits& limits) : limits_(limits) {}

  void feed(const std::uint8_t* data, std::size_t size);

  /// True when a frame (or the poisoning fault) was produced; false when
  /// more bytes are needed.
  [[nodiscard]] bool next(DecodeResult& result);

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  [[nodiscard]] WireFault fault() const noexcept { return fault_; }
  [[nodiscard]] const std::string& fault_detail() const noexcept { return fault_detail_; }

  /// Bytes buffered but not yet decoded (monitoring / backpressure).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  WireLimits limits_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
  WireFault fault_ = WireFault::None;
  std::string fault_detail_;
};

}  // namespace lptsp
