#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/solvers.hpp"
#include "util/fault.hpp"

namespace lptsp {

namespace {

[[noreturn]] void transport_error(const std::string& what) {
  throw std::runtime_error("lptspd client: " + what);
}

/// Remaining budget as a poll(2) timeout: -1 = no deadline, 0 = expired.
int remaining_poll_ms(const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  if (!deadline.has_value()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        *deadline - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) return 0;
  return left > INT_MAX ? INT_MAX : static_cast<int>(left);
}

SolveResponse failure_response(std::uint64_t id, SolveStatus status, std::string message) {
  SolveResponse response;
  response.id = id;
  response.status = status;
  response.message = std::move(message);
  return response;
}

ClientOptions legacy_options(const WireLimits& limits) {
  ClientOptions options;
  options.wire = limits;
  // The WireLimits constructor is the pre-deadline API: pure blocking
  // behaviour, exactly as before timeouts existed.
  options.connect_timeout = std::chrono::milliseconds{0};
  options.request_timeout = std::chrono::milliseconds{0};
  return options;
}

std::uint64_t splitmix64_step(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

LabelingClient::LabelingClient(const WireLimits& limits)
    : LabelingClient(legacy_options(limits)) {}

LabelingClient::LabelingClient(const ClientOptions& options)
    : options_(options),
      limits_(options.wire),
      reader_(options.wire),
      jitter_rng_(options.jitter_seed),
      // A separate stream from jitter_rng_ keeps trace ids from
      // perturbing the backoff schedule tests pin.
      trace_id_state_(options.jitter_seed ^ 0x7472616365ULL),
      traces_(obs::TraceRing::Config{options.trace ? options.trace_capacity : 0, 0}) {}

LabelingClient::~LabelingClient() { close(); }

void LabelingClient::connect(const std::string& host, std::uint16_t port) {
  if (connected()) transport_error("already connected");
  const std::uint64_t connect_start = options_.trace ? obs::steady_now_ns() : 0;

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    // Not a literal address: resolve it (the daemon's --host flag takes
    // names like "localhost").
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 || found == nullptr) {
      transport_error("cannot resolve host " + host);
    }
    address.sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    ::freeaddrinfo(found);
  }

  const Deadline deadline =
      options_.connect_timeout.count() > 0
          ? Deadline{std::chrono::steady_clock::now() + options_.connect_timeout}
          : Deadline{};

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) transport_error("socket() failed");

  // Nonblocking connect so both the timeout and EINTR are handled
  // explicitly (a blocking connect interrupted by a signal leaves the
  // attempt in limbo; here poll() just resumes waiting on it).
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    const std::string detail = std::strerror(errno);
    close();
    transport_error("connect to " + host + ":" + std::to_string(port) + " failed: " + detail);
  }
  if (rc != 0) {
    while (true) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, remaining_poll_ms(deadline));
      if (ready < 0) {
        if (errno == EINTR) continue;
        const std::string detail = std::strerror(errno);
        close();
        transport_error("connect poll failed: " + detail);
      }
      if (ready == 0) {
        close();
        transport_error("connect to " + host + ":" + std::to_string(port) + " timed out");
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      const std::string detail = std::strerror(err);
      close();
      transport_error("connect to " + host + ":" + std::to_string(port) + " failed: " + detail);
    }
  }
  ::fcntl(fd_, F_SETFL, flags);  // back to blocking; reads go through poll()

  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::vector<std::uint8_t> hello;
  encode_hello(hello);
  write_all(hello.data(), hello.size());
  WireMessage ack;
  std::string detail;
  switch (try_read_message(ack, deadline, detail)) {
    case ReadOutcome::Ok:
      break;
    case ReadOutcome::TimedOut:
      close();
      transport_error("handshake with " + host + ":" + std::to_string(port) + " timed out");
    case ReadOutcome::Disconnected:
      transport_error("handshake failed: " + detail);
  }
  if (ack.type != MessageType::HelloAck) {
    close();
    transport_error(std::string("handshake expected hello-ack, got ") +
                    message_type_name(ack.type));
  }
  // The ack carries the version the server settled on; every encoder on
  // this connection gates its version-dependent fields on it.
  negotiated_version_ = ack.version;
  if (options_.trace) pending_connect_ns_ = obs::steady_now_ns() - connect_start;
  host_ = host;
  port_ = port;
}

bool LabelingClient::reconnect() {
  if (host_.empty()) return false;  // never connected; nowhere to go back to
  close();
  try {
    connect(host_, port_);
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

std::uint64_t LabelingClient::next_trace_id() {
  const std::uint64_t id = splitmix64_step(trace_id_state_);
  return id != 0 ? id : 1;  // 0 means "no context" on the wire
}

void LabelingClient::submit(const SolveRequest& request) {
  if (!connected()) transport_error("not connected");
  if (!tracing_active()) {
    std::vector<std::uint8_t> frame;
    encode_request(frame, request, negotiated_version_);
    write_all(frame.data(), frame.size());
    return;
  }

  // A retry reuses the request id; the stale pending trace (whose reply
  // will never come) must not swallow the new attempt's response.
  for (auto it = pending_traces_.begin(); it != pending_traces_.end(); ++it) {
    if (it->id == request.id) {
      pending_traces_.erase(it);
      break;
    }
  }

  obs::Trace trace;
  trace.request_id = request.id;
  trace.sampled = true;
  trace.origin_ns = obs::steady_now_ns();
  trace.spans.reserve(8);
  if (pending_connect_ns_ != 0) {
    // The handshake predates any request; bill it to the first trace on
    // the connection as a span at origin.
    trace.spans.push_back(
        {obs::Stage::ClientConnect, nullptr, 0, pending_connect_ns_, false, false});
    pending_connect_ns_ = 0;
  }

  // Stamp a generated sampled id unless the caller pre-stamped one. The
  // override goes straight to the encoder — copying the request (and its
  // graph) per traced send would cost more than the tracing itself.
  std::uint64_t trace_id = request.trace_id;
  bool sampled = request.trace_sampled;
  if (trace_id == 0) {
    trace_id = next_trace_id();
    sampled = true;
  }
  std::vector<std::uint8_t> frame;
  {
    obs::SpanScope serialize(&trace, obs::Stage::ClientSerialize);
    encode_request_traced(frame, request, negotiated_version_, trace_id, sampled);
  }
  trace.trace_id = trace_id;
  {
    obs::SpanScope send(&trace, obs::Stage::ClientSend);
    write_all(frame.data(), frame.size());
  }
  pending_traces_.push_back({request.id, obs::steady_now_ns(), std::move(trace)});
}

void LabelingClient::finish_trace_for(const SolveResponse& response) {
  for (auto it = pending_traces_.begin(); it != pending_traces_.end(); ++it) {
    if (it->id != response.id) continue;
    PendingTrace pending = std::move(*it);
    pending_traces_.erase(it);
    obs::Trace& trace = pending.trace;
    const std::uint64_t now = obs::steady_now_ns();
    const std::uint64_t turnaround_start = pending.sent_ns - trace.origin_ns;
    trace.spans.push_back({obs::Stage::ServerTurnaround, nullptr, turnaround_start,
                           now - pending.sent_ns, false, false});
    // The echoed server timings and the measured decode cost nest inside
    // the turnaround: net transit = turnaround minus the nested spans.
    if (response.server_queue_ns != 0 || response.server_service_ns != 0) {
      trace.spans.push_back({obs::Stage::ServerQueue, nullptr, turnaround_start,
                             response.server_queue_ns, false, true});
      trace.spans.push_back({obs::Stage::ServerService, nullptr,
                             turnaround_start + response.server_queue_ns,
                             response.server_service_ns, false, true});
    }
    if (last_decode_ns_ != 0 && now - trace.origin_ns >= last_decode_ns_) {
      trace.spans.push_back({obs::Stage::ClientDeserialize, nullptr,
                             now - trace.origin_ns - last_decode_ns_, last_decode_ns_, false,
                             true});
    }
    trace.total_ns = now - trace.origin_ns;
    trace.result = response.ok() ? response_source_name_cstr(response.source) : "error";
    traces_.keep(std::move(trace));
    return;
  }
}

SolveResponse LabelingClient::next() {
  if (!buffered_.empty()) {
    SolveResponse response = std::move(buffered_.front());
    buffered_.pop_front();
    return response;
  }
  return read_response();
}

SolveResponse LabelingClient::wait(std::uint64_t id) {
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    if (it->id == id) {
      SolveResponse response = std::move(*it);
      buffered_.erase(it);
      return response;
    }
  }
  while (true) {
    SolveResponse response = read_response();
    if (response.id == id) return response;
    buffered_.push_back(std::move(response));
  }
}

SolveResponse LabelingClient::wait_for(std::uint64_t id, std::chrono::milliseconds timeout) {
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    if (it->id == id) {
      SolveResponse response = std::move(*it);
      buffered_.erase(it);
      return response;
    }
  }
  const Deadline deadline = timeout.count() > 0
                                ? Deadline{std::chrono::steady_clock::now() + timeout}
                                : Deadline{};
  while (true) {
    WireMessage message;
    std::string detail;
    switch (try_read_message(message, deadline, detail)) {
      case ReadOutcome::Ok:
        break;
      case ReadOutcome::TimedOut:
        // The connection stays open: if the reply lands later it is
        // buffered by the next read and drained via next().
        return failure_response(id, SolveStatus::TimedOut,
                                status_message(SolveStatus::TimedOut, 0, PVec({1})));
      case ReadOutcome::Disconnected:
        return failure_response(id, SolveStatus::TransportDisconnected, detail);
    }
    switch (message.type) {
      case MessageType::Response:
        finish_trace_for(message.response);
        if (message.response.id == id) return std::move(message.response);
        buffered_.push_back(std::move(message.response));
        continue;
      case MessageType::Error: {
        std::string error_detail = std::string("server reported ") +
                                   wire_fault_name(message.error_fault) + ": " +
                                   message.error_message;
        close();
        return failure_response(id, SolveStatus::TransportDisconnected,
                                std::move(error_detail));
      }
      case MessageType::Hello:
      case MessageType::HelloAck:
      case MessageType::Request:
      case MessageType::Shutdown:
      case MessageType::StatsRequest:
      case MessageType::StatsReply: {
        std::string frame_detail = std::string("unexpected ") +
                                   message_type_name(message.type) + " frame from server";
        close();
        return failure_response(id, SolveStatus::TransportDisconnected,
                                std::move(frame_detail));
      }
    }
  }
}

SolveResponse LabelingClient::solve(const SolveRequest& request) {
  submit(request);
  return wait(request.id);
}

SolveResponse LabelingClient::solve_retry(const SolveRequest& request) {
  const Deadline deadline =
      options_.request_timeout.count() > 0
          ? Deadline{std::chrono::steady_clock::now() + options_.request_timeout}
          : Deadline{};
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  std::chrono::milliseconds backoff = options_.retry.initial_backoff;
  SolveResponse last =
      failure_response(request.id, SolveStatus::TransportDisconnected, "no attempt made");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Backoff before the retry; the server's retry-after hint (on
      // RejectedOverload) sets a floor under the exponential schedule.
      std::chrono::milliseconds sleep = backoff;
      if (last.status == SolveStatus::RejectedOverload && last.retry_after_ms > 0) {
        sleep = std::max(sleep, std::chrono::milliseconds{last.retry_after_ms});
      }
      const double jitter = std::clamp(options_.retry.jitter, 0.0, 1.0);
      const double factor = 1.0 + jitter * (2.0 * jitter_rng_.uniform01() - 1.0);
      sleep = std::chrono::milliseconds{
          static_cast<std::int64_t>(static_cast<double>(sleep.count()) * factor)};
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() + sleep >= *deadline) {
        return last;  // sleeping would spend the whole remaining budget
      }
      std::this_thread::sleep_for(sleep);
      backoff = std::min(
          std::chrono::milliseconds{static_cast<std::int64_t>(
              static_cast<double>(backoff.count()) * options_.retry.backoff_multiplier)},
          options_.retry.max_backoff);
    }

    if (!connected() && !reconnect()) {
      last = failure_response(request.id, SolveStatus::TransportDisconnected,
                              "reconnect to " + host_ + ":" + std::to_string(port_) +
                                  " failed");
      continue;
    }
    try {
      submit(request);
    } catch (const std::runtime_error& error) {
      last = failure_response(request.id, SolveStatus::TransportDisconnected, error.what());
      continue;
    }

    std::chrono::milliseconds remaining{0};  // 0 = wait forever (no budget)
    if (deadline.has_value()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        return failure_response(request.id, SolveStatus::TimedOut,
                                status_message(SolveStatus::TimedOut, 0, request.p));
      }
      remaining = left;
    }
    SolveResponse response = wait_for(request.id, remaining);
    switch (response.status) {
      case SolveStatus::TimedOut:
        return response;  // the end-to-end budget is spent; retrying cannot help
      case SolveStatus::TransportDisconnected:
      case SolveStatus::RejectedOverload:
        last = std::move(response);
        continue;  // transient: back off and retry
      case SolveStatus::Ok:
      case SolveStatus::EmptyGraph:
      case SolveStatus::Disconnected:
      case SolveStatus::DiameterExceedsK:
      case SolveStatus::MetricConditionViolated:
      case SolveStatus::EngineFailure:
        return response;  // definitive answer (success or permanent rejection)
    }
  }
  return last;
}

std::string LabelingClient::stats(StatsFormat format, std::uint64_t journal_since) {
  if (!connected()) transport_error("not connected");
  std::vector<std::uint8_t> frame;
  encode_stats_request(frame, format, journal_since);
  write_all(frame.data(), frame.size());
  // Bound the scrape by the request budget: a wedged daemon must produce a
  // clean diagnostic, not a hung tool.
  const Deadline deadline =
      options_.request_timeout.count() > 0
          ? Deadline{std::chrono::steady_clock::now() + options_.request_timeout}
          : Deadline{};
  while (true) {
    WireMessage message;
    std::string detail;
    switch (try_read_message(message, deadline, detail)) {
      case ReadOutcome::Ok:
        break;
      case ReadOutcome::TimedOut:
        close();
        transport_error("stats request timed out");
      case ReadOutcome::Disconnected:
        transport_error(detail);
    }
    switch (message.type) {
      case MessageType::StatsReply:
        return std::move(message.stats_payload);
      case MessageType::Response:
        // A pipelined solve finishing ahead of the scrape; keep it for
        // next()/wait().
        finish_trace_for(message.response);
        buffered_.push_back(std::move(message.response));
        continue;
      case MessageType::Error: {
        const std::string reply_detail = message.error_message;
        const WireFault fault = message.error_fault;
        close();
        transport_error(std::string("server refused stats: ") + wire_fault_name(fault) + ": " +
                        reply_detail);
      }
      case MessageType::Hello:
      case MessageType::HelloAck:
      case MessageType::Request:
      case MessageType::Shutdown:
      case MessageType::StatsRequest:
        close();
        transport_error(std::string("unexpected ") + message_type_name(message.type) +
                        " frame from server");
    }
  }
}

void LabelingClient::shutdown() {
  if (!connected()) return;
  std::vector<std::uint8_t> frame;
  encode_shutdown(frame);
  try {
    write_all(frame.data(), frame.size());
  } catch (const std::runtime_error&) {
    // Goodbye is best-effort; the close below is what matters.
  }
  close();
}

void LabelingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffered_.clear();
  reader_ = FrameReader(limits_);
  // In-flight traces will never get their responses on this connection.
  pending_traces_.clear();
  pending_connect_ns_ = 0;
  negotiated_version_ = kWireVersion;
}

void LabelingClient::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    if (fault::should_fail(FaultSite::NetDisconnect)) {
      close();
      transport_error("write failed: injected disconnect");
    }
    std::size_t chunk = size - sent;
    // Injected short write: hand the kernel one byte, exactly as a full
    // socket buffer would — the loop must finish the frame regardless.
    if (chunk > 1 && fault::should_fail(FaultSite::NetWriteShort)) chunk = 1;
    // MSG_NOSIGNAL: a peer reset must surface as the documented
    // runtime_error, not a process-killing SIGPIPE.
    const ssize_t wrote = ::send(fd_, data + sent, chunk, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      close();  // half-dead fd must not survive for a retry to trip over
      transport_error("write failed: " + detail);
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

LabelingClient::ReadOutcome LabelingClient::try_read_message(WireMessage& out,
                                                             const Deadline& deadline,
                                                             std::string& detail) {
  if (!connected()) {
    detail = "not connected";
    return ReadOutcome::Disconnected;
  }
  DecodeResult result;
  // Time the successful decode for the ClientDeserialize span; the clock
  // is only read while a traced request is actually in flight.
  const bool measure_decode = !pending_traces_.empty();
  std::uint64_t decode_start = measure_decode ? obs::steady_now_ns() : 0;
  while (!reader_.next(result)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms = remaining_poll_ms(deadline);
    if (timeout_ms == 0) return ReadOutcome::TimedOut;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal, not a connection fault
      detail = std::string("poll failed: ") + std::strerror(errno);
      close();
      return ReadOutcome::Disconnected;
    }
    if (ready == 0) return ReadOutcome::TimedOut;
    if (fault::should_fail(FaultSite::NetDisconnect)) {
      close();
      detail = "injected disconnect";
      return ReadOutcome::Disconnected;
    }
    std::uint8_t buffer[64 * 1024];
    std::size_t cap = sizeof(buffer);
    // Injected short read: take one byte, as a trickling network would —
    // the frame reader must reassemble regardless.
    if (fault::should_fail(FaultSite::NetReadShort)) cap = 1;
    const ssize_t got = ::read(fd_, buffer, cap);
    if (got > 0) {
      reader_.feed(buffer, static_cast<std::size_t>(got));
      if (measure_decode) decode_start = obs::steady_now_ns();
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    detail = got == 0 ? "server closed the connection"
                      : std::string("read failed: ") + std::strerror(errno);
    close();
    return ReadOutcome::Disconnected;
  }
  if (measure_decode) last_decode_ns_ = obs::steady_now_ns() - decode_start;
  if (!result.ok()) {
    detail = std::string("protocol fault from server bytes: ") + wire_fault_name(result.fault) +
             " (" + result.detail + ")";
    close();
    return ReadOutcome::Disconnected;
  }
  out = std::move(result.message);
  return ReadOutcome::Ok;
}

WireMessage LabelingClient::read_message() {
  WireMessage message;
  std::string detail;
  // No deadline: this path blocks (the legacy contract) and throws on
  // transport loss; TimedOut is unreachable without a deadline.
  const ReadOutcome outcome = try_read_message(message, Deadline{}, detail);
  if (outcome != ReadOutcome::Ok) transport_error(detail);
  return message;
}

SolveResponse LabelingClient::read_response() {
  while (true) {
    WireMessage message = read_message();
    switch (message.type) {
      case MessageType::Response:
        finish_trace_for(message.response);
        return std::move(message.response);
      case MessageType::Error: {
        const std::string detail = message.error_message;
        const WireFault fault = message.error_fault;
        close();
        transport_error(std::string("server reported ") + wire_fault_name(fault) + ": " +
                        detail);
      }
      case MessageType::Hello:
      case MessageType::HelloAck:
      case MessageType::Request:
      case MessageType::Shutdown:
      case MessageType::StatsRequest:
      case MessageType::StatsReply:
        close();
        transport_error(std::string("unexpected ") + message_type_name(message.type) +
                        " frame from server");
    }
  }
}

}  // namespace lptsp
