#include "net/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace lptsp {

namespace {

[[noreturn]] void transport_error(const std::string& what) {
  throw std::runtime_error("lptspd client: " + what);
}

}  // namespace

LabelingClient::LabelingClient(const WireLimits& limits) : limits_(limits), reader_(limits) {}

LabelingClient::~LabelingClient() { close(); }

void LabelingClient::connect(const std::string& host, std::uint16_t port) {
  if (connected()) transport_error("already connected");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    // Not a literal address: resolve it (the daemon's --host flag takes
    // names like "localhost").
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 || found == nullptr) {
      transport_error("cannot resolve host " + host);
    }
    address.sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    ::freeaddrinfo(found);
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) transport_error("socket() failed");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const std::string detail = std::strerror(errno);
    close();
    transport_error("connect to " + host + ":" + std::to_string(port) + " failed: " + detail);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::vector<std::uint8_t> hello;
  encode_hello(hello);
  write_all(hello.data(), hello.size());
  const WireMessage ack = read_message();
  if (ack.type != MessageType::HelloAck) {
    close();
    transport_error(std::string("handshake expected hello-ack, got ") +
                    message_type_name(ack.type));
  }
}

void LabelingClient::submit(const SolveRequest& request) {
  if (!connected()) transport_error("not connected");
  std::vector<std::uint8_t> frame;
  encode_request(frame, request);
  write_all(frame.data(), frame.size());
}

SolveResponse LabelingClient::next() {
  if (!buffered_.empty()) {
    SolveResponse response = std::move(buffered_.front());
    buffered_.pop_front();
    return response;
  }
  return read_response();
}

SolveResponse LabelingClient::wait(std::uint64_t id) {
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    if (it->id == id) {
      SolveResponse response = std::move(*it);
      buffered_.erase(it);
      return response;
    }
  }
  while (true) {
    SolveResponse response = read_response();
    if (response.id == id) return response;
    buffered_.push_back(std::move(response));
  }
}

SolveResponse LabelingClient::solve(const SolveRequest& request) {
  submit(request);
  return wait(request.id);
}

std::string LabelingClient::stats(StatsFormat format) {
  if (!connected()) transport_error("not connected");
  std::vector<std::uint8_t> frame;
  encode_stats_request(frame, format);
  write_all(frame.data(), frame.size());
  while (true) {
    WireMessage message = read_message();
    switch (message.type) {
      case MessageType::StatsReply:
        return std::move(message.stats_payload);
      case MessageType::Response:
        // A pipelined solve finishing ahead of the scrape; keep it for
        // next()/wait().
        buffered_.push_back(std::move(message.response));
        continue;
      case MessageType::Error: {
        const std::string detail = message.error_message;
        const WireFault fault = message.error_fault;
        close();
        transport_error(std::string("server refused stats: ") + wire_fault_name(fault) + ": " +
                        detail);
      }
      case MessageType::Hello:
      case MessageType::HelloAck:
      case MessageType::Request:
      case MessageType::Shutdown:
      case MessageType::StatsRequest:
        close();
        transport_error(std::string("unexpected ") + message_type_name(message.type) +
                        " frame from server");
    }
  }
}

void LabelingClient::shutdown() {
  if (!connected()) return;
  std::vector<std::uint8_t> frame;
  encode_shutdown(frame);
  try {
    write_all(frame.data(), frame.size());
  } catch (const std::runtime_error&) {
    // Goodbye is best-effort; the close below is what matters.
  }
  close();
}

void LabelingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffered_.clear();
  reader_ = FrameReader(limits_);
}

void LabelingClient::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer reset must surface as the documented
    // runtime_error, not a process-killing SIGPIPE.
    const ssize_t wrote = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      close();  // half-dead fd must not survive for a retry to trip over
      transport_error("write failed: " + detail);
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

WireMessage LabelingClient::read_message() {
  DecodeResult result;
  while (!reader_.next(result)) {
    std::uint8_t buffer[64 * 1024];
    const ssize_t got = ::read(fd_, buffer, sizeof(buffer));
    if (got > 0) {
      reader_.feed(buffer, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    close();
    transport_error(got == 0 ? "server closed the connection"
                             : std::string("read failed: ") + std::strerror(errno));
  }
  if (!result.ok()) {
    const std::string detail = result.detail;
    close();
    transport_error(std::string("protocol fault from server bytes: ") +
                    wire_fault_name(result.fault) + " (" + detail + ")");
  }
  return std::move(result.message);
}

SolveResponse LabelingClient::read_response() {
  while (true) {
    WireMessage message = read_message();
    switch (message.type) {
      case MessageType::Response:
        return std::move(message.response);
      case MessageType::Error: {
        const std::string detail = message.error_message;
        const WireFault fault = message.error_fault;
        close();
        transport_error(std::string("server reported ") + wire_fault_name(fault) + ": " +
                        detail);
      }
      case MessageType::Hello:
      case MessageType::HelloAck:
      case MessageType::Request:
      case MessageType::Shutdown:
      case MessageType::StatsRequest:
      case MessageType::StatsReply:
        close();
        transport_error(std::string("unexpected ") + message_type_name(message.type) +
                        " frame from server");
    }
  }
}

}  // namespace lptsp
