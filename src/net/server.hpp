#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "service/batch_solver.hpp"

namespace lptsp {

/// lptspd: the batch labeling service behind a socket.
///
/// A poll(2)-based single-acceptor event loop owns every connection: it
/// parses length-prefixed wire frames, hands admitted requests to
/// BatchSolver::submit_async, and writes completions back in whatever
/// order the solver finishes them (clients match responses to requests by
/// id). The loop itself never solves anything and never blocks on the
/// solver, so one slow instance cannot stall the accept path.
///
/// Backpressure is enforced at two levels, both answered with a typed
/// SolveStatus::RejectedOverload response instead of unbounded buffering:
///   - per connection: at most `max_inflight_per_connection` requests
///     submitted-but-unanswered, and at most
///     `max_queued_bytes_per_connection` of encoded responses waiting for
///     a slow reader;
///   - per service: BatchSolver's own `max_pending_requests` admission
///     gate (configure it on the solver passed in).
///
/// Protocol-level faults (bad magic, truncated or malformed frames) are
/// answered with an Error frame and the connection is closed — the length
/// prefixes of a stream that produced one bad frame cannot be trusted.
/// Wire decoding is exception-free by construction, so no client bytes
/// can unwind the event loop.
class LabelingServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read the chosen one via port()
    int backlog = 64;
    int max_connections = 64;
    std::size_t max_inflight_per_connection = 64;
    std::size_t max_queued_bytes_per_connection = std::size_t{4} << 20;
    WireLimits wire;
    /// Brownout ladder, driven by the solver's pending_requests() gauge.
    /// Rung 1: at `brownout_heuristic_pending` pending requests the
    /// portfolio is forced heuristic-only (sheds the exact engines, keeps
    /// answering). Rung 2: at `brownout_reject_pending` new requests are
    /// rejected with RejectedOverload + a retry-after hint. Each rung
    /// releases with hysteresis once pending falls to
    /// `brownout_exit_ratio` of its threshold. 0 disables a rung.
    std::size_t brownout_heuristic_pending = 0;
    std::size_t brownout_reject_pending = 0;
    double brownout_exit_ratio = 0.5;
    /// Base retry-after hint stamped on every RejectedOverload reply (v3+
    /// connections); 0 = no hint. When the solver's predicted pending
    /// work exceeds this, the hint grows to the predicted drain time
    /// (capped at 60s) — clients backing off a deep heavy backlog wait
    /// proportionally longer than ones hitting a momentary spike.
    std::uint32_t brownout_retry_after_ms = 250;
  };

  /// Monotonic observability counters (queue depth lives on the solver:
  /// BatchSolver::pending_requests / rejected_overload). The same values
  /// are published as net_* metrics in the solver's registry; this struct
  /// remains the in-process accessor.
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_refused = 0;  ///< over max_connections
    std::uint64_t frames_received = 0;
    std::uint64_t requests_submitted = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t rejected_inflight = 0;    ///< per-connection in-flight cap
    std::uint64_t rejected_backlog = 0;     ///< per-connection output-bytes cap
    std::uint64_t protocol_errors = 0;      ///< Error frames sent
    std::uint64_t bytes_in = 0;             ///< raw socket bytes read
    std::uint64_t bytes_out = 0;            ///< raw socket bytes written
    std::uint64_t stats_requests = 0;       ///< StatsRequest frames served
    std::uint64_t brownout_sheds = 0;       ///< times rung 1 (heuristic-only) engaged
    std::uint64_t brownout_rejects = 0;     ///< requests rejected by rung 2
  };

  /// The solver must outlive the server.
  explicit LabelingServer(BatchSolver& solver) : LabelingServer(solver, Options{}) {}
  LabelingServer(BatchSolver& solver, const Options& options);
  ~LabelingServer();

  LabelingServer(const LabelingServer&) = delete;
  LabelingServer& operator=(const LabelingServer&) = delete;

  /// Bind, listen, and run the event loop on a background thread. Throws
  /// precondition_error when the address cannot be bound (local
  /// configuration error, not wire input).
  void start();

  /// Stop accepting, close every connection, join the loop thread.
  /// In-flight solves finish on the solver's pools; their completions are
  /// dropped. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Port actually bound (after start(); useful with port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] Counters counters() const;

  /// Connections currently open (gauge).
  [[nodiscard]] std::size_t open_connections() const noexcept {
    return open_connections_.load(std::memory_order_relaxed);
  }

  /// Current brownout rung: 0 = healthy, 1 = heuristic-only, 2 = rejecting
  /// new requests. Also published as the net_brownout_level gauge.
  [[nodiscard]] int brownout_level() const noexcept {
    return brownout_level_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct CompletionQueue;

  void event_loop();
  void accept_new_connections();
  void drain_completions();
  void handle_readable(Connection& connection);
  void handle_frame(Connection& connection, WireMessage&& message);
  void handle_request(Connection& connection, SolveRequest&& request);
  /// Re-evaluate both brownout rungs against pending_requests(), with
  /// hysteresis (BrownoutLadder does the state machine; this applies its
  /// side effects). Loop-thread only.
  void update_brownout();
  /// Retry-after to stamp on RejectedOverload replies: the configured
  /// base, stretched to the solver's predicted pending-work drain time
  /// when that is longer. 0 when hints are disabled.
  [[nodiscard]] std::uint32_t retry_after_hint() const;
  void handle_stats_request(Connection& connection, StatsFormat format, std::uint64_t since);
  /// Encode an Error frame, bump protocol_errors_ + the per-fault counter,
  /// and mark the connection closing.
  void send_fault(Connection& connection, WireFault fault, const std::string& detail);
  void flush_writes(Connection& connection);
  void close_connection(std::uint64_t connection_id);
  /// Publish net_* counters and the open-connections gauge into the
  /// solver's registry (constructor; the destructor deregisters).
  void register_metrics();

  BatchSolver& solver_;
  Options options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread loop_thread_;

  // Completions cross from solver worker threads into the event loop via
  // this queue + a wake pipe. It is shared_ptr-owned because solver
  // callbacks may still fire after the server object is destroyed; they
  // hold the queue alive and find it closed.
  std::shared_ptr<CompletionQueue> completions_;

  // Event-loop-owned state (only touched by loop_thread_ once started).
  struct LoopState;
  std::unique_ptr<LoopState> loop_;

  std::atomic<std::size_t> open_connections_{0};
  // obs::Counter storage backs both counters() and the registry's net_*
  // metrics — one set of numbers, two consumers.
  obs::Counter connections_accepted_;
  obs::Counter connections_refused_;
  obs::Counter frames_received_;
  obs::Counter requests_submitted_;
  obs::Counter responses_sent_;
  obs::Counter rejected_inflight_;
  obs::Counter rejected_backlog_;
  obs::Counter protocol_errors_;
  obs::Counter bytes_in_;
  obs::Counter bytes_out_;
  obs::Counter stats_requests_;
  obs::Counter brownout_sheds_;
  obs::Counter brownout_rejects_;
  /// Published rung (0/1/2); written by the loop thread, read by scrapers.
  std::atomic<int> brownout_level_{0};
  /// Error frames sent, by WireFault (index = fault value; the None slot
  /// is never incremented but keeps indexing trivial).
  std::array<obs::Counter, 7> wire_faults_;
};

}  // namespace lptsp
