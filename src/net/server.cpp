#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/brownout.hpp"
#include "obs/journal.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace lptsp {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  // Responses are small frames written as soon as they complete; Nagle
  // would batch them behind unacked data and serialize the pipeline.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

struct LabelingServer::Connection {
  explicit Connection(const WireLimits& limits) : reader(limits) {}

  std::uint64_t id = 0;
  int fd = -1;
  FrameReader reader;
  std::vector<std::uint8_t> out;  ///< encoded frames awaiting write
  std::size_t out_offset = 0;
  std::size_t inflight = 0;       ///< submitted to the solver, not yet answered
  /// Protocol version this connection negotiated at Hello. Stats frames
  /// are refused below kStatsMinVersion.
  std::uint16_t version = kWireVersion;
  bool handshaken = false;
  bool draining = false;  ///< client sent Shutdown: close once quiet
  bool closing = false;   ///< protocol fault: close once the Error frame flushes

  [[nodiscard]] std::size_t queued_bytes() const { return out.size() - out_offset; }
};

/// Solver completions cross thread boundaries here. Callbacks hold the
/// queue via shared_ptr, so a completion landing after the server died
/// finds wake_fd == -1 and is dropped instead of touching freed memory.
struct LabelingServer::CompletionQueue {
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, SolveResponse>> items;  ///< (connection id, response)
  int wake_fd = -1;
};

struct LabelingServer::LoopState {
  std::unordered_map<std::uint64_t, Connection> connections;
  std::uint64_t next_connection_id = 1;
  std::vector<pollfd> pollfds;
  std::vector<std::uint64_t> poll_ids;  ///< poll_ids[i] owns pollfds[i + 2]
  /// Poll cycles left during which the listener is NOT polled. Set after
  /// an unrecoverable accept() error (fd exhaustion): a pending
  /// connection we cannot accept would otherwise keep the listen fd
  /// POLLIN-ready and spin the loop at 100% CPU.
  int accept_backoff = 0;
  /// Brownout hysteresis state machine (loop-thread owned — the atomic
  /// brownout_level_ is the published view).
  BrownoutLadder brownout;
};

LabelingServer::LabelingServer(BatchSolver& solver, const Options& options)
    : solver_(solver), options_(options) {
  register_metrics();
}

LabelingServer::~LabelingServer() {
  stop();
  // The net_* metrics point into this object; a snapshot taken after the
  // server is gone must not read freed storage.
  solver_.metrics_registry().deregister(this);
}

void LabelingServer::register_metrics() {
  obs::MetricRegistry& registry = solver_.metrics_registry();
  registry.register_counter("net_connections_accepted", &connections_accepted_, this);
  registry.register_counter("net_connections_refused", &connections_refused_, this);
  registry.register_counter("net_frames_received", &frames_received_, this);
  registry.register_counter("net_requests_submitted", &requests_submitted_, this);
  registry.register_counter("net_responses_sent", &responses_sent_, this);
  registry.register_counter("net_rejected_inflight", &rejected_inflight_, this);
  registry.register_counter("net_rejected_backlog", &rejected_backlog_, this);
  registry.register_counter("net_protocol_errors", &protocol_errors_, this);
  registry.register_counter("net_bytes_in", &bytes_in_, this);
  registry.register_counter("net_bytes_out", &bytes_out_, this);
  registry.register_counter("net_stats_requests", &stats_requests_, this);
  registry.register_counter("net_brownout_sheds", &brownout_sheds_, this);
  registry.register_counter("net_brownout_rejects", &brownout_rejects_, this);
  registry.register_gauge(
      "net_open_connections", [this] { return static_cast<std::int64_t>(open_connections()); },
      this);
  registry.register_gauge(
      "net_brownout_level", [this] { return static_cast<std::int64_t>(brownout_level()); },
      this);
  // One counter per fault kind, named from the enum (None excluded: a
  // clean decode is not an error to count).
  static_assert(static_cast<std::size_t>(WireFault::Malformed) + 1 ==
                    std::tuple_size<decltype(wire_faults_)>::value,
                "wire_faults_ must cover every WireFault");
  for (std::size_t fault = 1; fault < wire_faults_.size(); ++fault) {
    std::string name = std::string("net_wire_fault_") +
                       wire_fault_name(static_cast<WireFault>(fault));
    // "bad-magic" -> "bad_magic": metric names must stay Prometheus-legal.
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    registry.register_counter(std::move(name), &wire_faults_[fault], this);
  }
}

void LabelingServer::start() {
  LPTSP_REQUIRE(!running_.load(), "server already running");
  stop_requested_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  LPTSP_REQUIRE(listen_fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &address.sin_addr) != 1) {
    close_fd(listen_fd_);
    LPTSP_REQUIRE(false, "invalid bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string detail = std::strerror(errno);
    close_fd(listen_fd_);
    LPTSP_REQUIRE(false, "cannot listen on " + options_.bind_address + ": " + detail);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    close_fd(listen_fd_);
    LPTSP_REQUIRE(false, "pipe() failed");
  }
  set_nonblocking(pipe_fds[0]);
  set_nonblocking(pipe_fds[1]);
  wake_read_fd_ = pipe_fds[0];

  completions_ = std::make_shared<CompletionQueue>();
  completions_->wake_fd = pipe_fds[1];
  loop_ = std::make_unique<LoopState>();
  loop_->brownout = BrownoutLadder(BrownoutLadder::Config{
      options_.brownout_heuristic_pending, options_.brownout_reject_pending,
      options_.brownout_exit_ratio});

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { event_loop(); });
}

void LabelingServer::stop() {
  if (!running_.exchange(false)) return;
  stop_requested_.store(true);
  {
    const std::lock_guard lock(completions_->mutex);
    if (completions_->wake_fd >= 0) {
      const char byte = 'q';
      // Retry EINTR: losing this wake would leave the join below waiting
      // out a full poll timeout.
      while (::write(completions_->wake_fd, &byte, 1) < 0 && errno == EINTR) {
      }
    }
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    // Close the wake pipe's write end last: solver callbacks that are
    // still running keep the queue alive via shared_ptr and now see it
    // closed, dropping their completions.
    const std::lock_guard lock(completions_->mutex);
    close_fd(completions_->wake_fd);
    completions_->items.clear();
  }
  close_fd(wake_read_fd_);
  loop_.reset();
}

LabelingServer::Counters LabelingServer::counters() const {
  Counters counters;
  counters.connections_accepted = connections_accepted_.value();
  counters.connections_refused = connections_refused_.value();
  counters.frames_received = frames_received_.value();
  counters.requests_submitted = requests_submitted_.value();
  counters.responses_sent = responses_sent_.value();
  counters.rejected_inflight = rejected_inflight_.value();
  counters.rejected_backlog = rejected_backlog_.value();
  counters.protocol_errors = protocol_errors_.value();
  counters.bytes_in = bytes_in_.value();
  counters.bytes_out = bytes_out_.value();
  counters.stats_requests = stats_requests_.value();
  counters.brownout_sheds = brownout_sheds_.value();
  counters.brownout_rejects = brownout_rejects_.value();
  return counters;
}

void LabelingServer::event_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Re-evaluate the ladder every cycle, not just on request arrival, so
    // the rungs release as the backlog drains even on a quiet socket.
    update_brownout();
    auto& pollfds = loop_->pollfds;
    auto& poll_ids = loop_->poll_ids;
    pollfds.clear();
    poll_ids.clear();
    if (loop_->accept_backoff > 0) --loop_->accept_backoff;
    pollfds.push_back({listen_fd_, loop_->accept_backoff > 0 ? short{0} : short{POLLIN}, 0});
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    for (auto& [id, connection] : loop_->connections) {
      short events = 0;
      // Reads pause while a fault is pending close, the client said
      // Shutdown, or the write backlog is past twice the reject threshold
      // (flow control: stop consuming what we cannot answer).
      if (!connection.closing && !connection.draining &&
          connection.queued_bytes() < 2 * options_.max_queued_bytes_per_connection) {
        events |= POLLIN;
      }
      if (connection.queued_bytes() > 0) events |= POLLOUT;
      pollfds.push_back({connection.fd, events, 0});
      poll_ids.push_back(id);
    }

    const int ready = ::poll(pollfds.data(), static_cast<nfds_t>(pollfds.size()), 250);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable poll failure
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;

    if ((pollfds[0].revents & POLLIN) != 0) accept_new_connections();
    if ((pollfds[1].revents & POLLIN) != 0) {
      char scratch[256];
      while (true) {
        const ssize_t got = ::read(wake_read_fd_, scratch, sizeof(scratch));
        if (got > 0) continue;
        if (got < 0 && errno == EINTR) continue;  // signal: keep draining
        break;  // drained (EAGAIN) or pipe gone
      }
      drain_completions();
    }

    for (std::size_t i = 0; i < poll_ids.size(); ++i) {
      const std::uint64_t id = poll_ids[i];
      const short revents = pollfds[i + 2].revents;
      if (revents == 0) continue;
      const auto it = loop_->connections.find(id);
      if (it == loop_->connections.end()) continue;  // closed earlier this round
      Connection& connection = it->second;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        close_connection(id);
        continue;
      }
      if ((revents & POLLIN) != 0) handle_readable(connection);
      // handle_readable may have closed the connection; re-find it.
      const auto again = loop_->connections.find(id);
      if (again == loop_->connections.end()) continue;
      if ((revents & (POLLOUT | POLLHUP)) != 0 || again->second.queued_bytes() > 0) {
        flush_writes(again->second);
      }
      const auto final_it = loop_->connections.find(id);
      if (final_it != loop_->connections.end() && (revents & POLLHUP) != 0 &&
          (revents & POLLIN) == 0) {
        close_connection(id);
      }
    }
  }

  // Loop teardown: close every connection and the listener. The wake pipe
  // write end stays open until stop() has joined us, so late completions
  // never write to a closed fd.
  std::vector<std::uint64_t> ids;
  ids.reserve(loop_->connections.size());
  for (const auto& [id, connection] : loop_->connections) ids.push_back(id);
  for (const std::uint64_t id : ids) close_connection(id);
  close_fd(listen_fd_);
  // The heuristic-only override belongs to this server's ladder; the
  // solver (and any future server over it) must get its portfolio back.
  if (loop_->brownout.heuristic_engaged()) solver_.portfolio().force_heuristic_only(false);
  loop_->brownout = BrownoutLadder{};
  brownout_level_.store(0, std::memory_order_relaxed);
}

void LabelingServer::update_brownout() {
  if (!loop_->brownout.enabled()) return;
  const BrownoutLadder::Transition transition =
      loop_->brownout.update(solver_.pending_requests());
  if (transition.heuristic_changed) {
    solver_.portfolio().force_heuristic_only(transition.heuristic_engaged);
    if (transition.heuristic_engaged) brownout_sheds_.add();
  }
  brownout_level_.store(transition.new_level, std::memory_order_relaxed);
  if (transition.level_changed()) {
    // Rung transitions are the incident timeline's backbone: the journal
    // answers "when did we start shedding, and when did we recover".
    obs::journal().emit(
        obs::EventType::BrownoutRung,
        transition.new_level > transition.old_level ? obs::EventLevel::Warn
                                                    : obs::EventLevel::Info,
        nullptr, 0, 0, transition.old_level, transition.new_level);
  }
}

std::uint32_t LabelingServer::retry_after_hint() const {
  const std::uint32_t base = options_.brownout_retry_after_ms;
  if (base == 0) return 0;  // hints disabled
  // Price the hint off the solver's predicted pending work: a client told
  // to retry in `base` ms against a 5-second heavy backlog would only
  // bounce off the gate again. Capped at 60s so one mispredicted monster
  // request cannot park clients for minutes.
  const std::uint64_t work_ms = solver_.pending_work_ns() / 1'000'000;
  if (work_ms > base) return static_cast<std::uint32_t>(std::min<std::uint64_t>(work_ms, 60'000));
  return base;
}

void LabelingServer::accept_new_connections() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      if (errno == ECONNABORTED) continue;  // peer gave up while queued
      // Unrecoverable here and now (typically EMFILE/ENFILE fd
      // exhaustion): the queued connection cannot be accepted, and the
      // still-readable listener would spin the poll loop. Back off for a
      // few cycles and retry once other connections have released fds.
      loop_->accept_backoff = 8;
      connections_refused_.add();
      return;
    }
    if (loop_->connections.size() >= static_cast<std::size_t>(options_.max_connections)) {
      // Refusal IS the admission response at this level; accepting and
      // buffering would be the unbounded growth we are here to prevent.
      ::close(fd);
      connections_refused_.add();
      continue;
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    const std::uint64_t id = loop_->next_connection_id++;
    Connection connection(options_.wire);
    connection.id = id;
    connection.fd = fd;
    loop_->connections.emplace(id, std::move(connection));
    connections_accepted_.add();
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void LabelingServer::drain_completions() {
  std::vector<std::pair<std::uint64_t, SolveResponse>> ready;
  {
    const std::lock_guard lock(completions_->mutex);
    ready.swap(completions_->items);
  }
  for (auto& [connection_id, response] : ready) {
    const auto it = loop_->connections.find(connection_id);
    if (it == loop_->connections.end()) continue;  // connection died mid-solve
    Connection& connection = it->second;
    if (connection.inflight > 0) --connection.inflight;
    // The solver's own admission gate produces RejectedOverload without a
    // hint; stamp the configured one so every overload reply tells the
    // client when to come back.
    if (response.status == SolveStatus::RejectedOverload && response.retry_after_ms == 0) {
      response.retry_after_ms = retry_after_hint();
    }
    encode_response(connection.out, response, connection.version);
    responses_sent_.add();
    flush_writes(connection);
  }
}

void LabelingServer::handle_readable(Connection& connection) {
  std::uint8_t buffer[64 * 1024];
  while (true) {
    if (fault::should_fail(FaultSite::NetDisconnect)) {
      // Injected peer reset: the connection dies exactly as if the client
      // vanished mid-frame.
      close_connection(connection.id);
      return;
    }
    std::size_t cap = sizeof(buffer);
    // Injected short read: one byte per syscall, as a trickling or
    // heavily fragmented peer would deliver — framing must reassemble.
    if (fault::should_fail(FaultSite::NetReadShort)) cap = 1;
    const ssize_t got = ::read(connection.fd, buffer, cap);
    if (got > 0) {
      bytes_in_.add(static_cast<std::uint64_t>(got));
      connection.reader.feed(buffer, static_cast<std::size_t>(got));
      if (got < static_cast<ssize_t>(cap)) break;
      continue;
    }
    if (got == 0) {
      // Orderly peer close. Frames that arrived in this same batch are
      // complete and valid — a client may legitimately write its whole
      // pipeline, shutdown(SHUT_WR), and block on the responses. Treat
      // EOF exactly like a Shutdown frame: decode what is buffered,
      // answer it, and close once quiet.
      connection.draining = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    close_connection(connection.id);
    return;
  }

  DecodeResult result;
  while (!connection.closing && connection.reader.next(result)) {
    frames_received_.add();
    if (!result.ok()) {
      // Typed refusal, never a crash: tell the client what was wrong with
      // its bytes, then close — the stream's framing is untrustworthy.
      send_fault(connection, result.fault, result.detail);
      break;
    }
    handle_frame(connection, std::move(result.message));
  }
  flush_writes(connection);
}

void LabelingServer::send_fault(Connection& connection, WireFault fault,
                                const std::string& detail) {
  encode_error(connection.out, 0, fault, detail);
  protocol_errors_.add();
  // Peer attribution: counters say how many faults, the journal says
  // which connection sent them.
  obs::journal().emit(obs::EventType::WireFault, obs::EventLevel::Error,
                      wire_fault_name(fault), 0, connection.id);
  const auto index = static_cast<std::size_t>(fault);
  if (index > 0 && index < wire_faults_.size()) wire_faults_[index].add();
  connection.closing = true;
}

void LabelingServer::handle_frame(Connection& connection, WireMessage&& message) {
  if (!connection.handshaken) {
    if (message.type != MessageType::Hello) {
      send_fault(connection, WireFault::Malformed,
                 std::string("expected hello, got ") + message_type_name(message.type));
      return;
    }
    connection.handshaken = true;
    // Negotiate downward: remember the client's version and ack with it,
    // so a v1 client sees the v1 handshake it expects. decode_handshake
    // already bounded it to [kWireMinVersion, kWireVersion].
    connection.version = message.version;
    encode_hello_ack(connection.out, connection.version);
    return;
  }
  switch (message.type) {
    case MessageType::Request:
      handle_request(connection, std::move(message.request));
      return;
    case MessageType::StatsRequest:
      handle_stats_request(connection, message.stats_format, message.stats_since);
      return;
    case MessageType::Shutdown:
      connection.draining = true;
      return;
    case MessageType::Hello:
    case MessageType::HelloAck:
    case MessageType::Response:
    case MessageType::Error:
    case MessageType::StatsReply:
      send_fault(connection, WireFault::Malformed,
                 std::string("unexpected ") + message_type_name(message.type) +
                     " frame from client");
      return;
  }
}

void LabelingServer::handle_stats_request(Connection& connection, StatsFormat format,
                                          std::uint64_t since) {
  if (connection.version < kStatsMinVersion) {
    // The client negotiated v1 and then sent a v2 frame — a protocol
    // violation, not a soft failure.
    send_fault(connection, WireFault::Malformed,
               "stats frames require protocol version 2 (connection negotiated v1)");
    return;
  }
  if ((format == StatsFormat::Journal || format == StatsFormat::Profile) &&
      connection.version < kTraceContextMinVersion) {
    send_fault(connection, WireFault::Malformed,
               std::string(stats_format_name(format)) +
                   " format requires protocol version 4 (connection negotiated v" +
                   std::to_string(connection.version) + ")");
    return;
  }
  stats_requests_.add();
  std::string payload;
  switch (format) {
    case StatsFormat::Json: payload = solver_.metrics_registry().snapshot().to_json(); break;
    case StatsFormat::Prometheus:
      payload = solver_.metrics_registry().snapshot().to_prometheus();
      break;
    case StatsFormat::Text: payload = solver_.metrics_registry().snapshot().to_text(); break;
    case StatsFormat::Traces: payload = solver_.traces().dump_json(); break;
    case StatsFormat::Journal: payload = obs::journal().dump_json(since); break;
    case StatsFormat::Profile: payload = solver_.profile_json(); break;
  }
  encode_stats_reply(connection.out, format, payload);
}

void LabelingServer::handle_request(Connection& connection, SolveRequest&& request) {
  const auto reject = [&](const char* detail, obs::Counter& counter) {
    SolveResponse response;
    response.id = request.id;
    response.status = SolveStatus::RejectedOverload;
    response.message = detail;
    response.retry_after_ms = retry_after_hint();
    encode_response(connection.out, response, connection.version);
    counter.add();
    responses_sent_.add();
  };
  if (connection.inflight >= options_.max_inflight_per_connection) {
    reject("connection in-flight request limit reached, drain responses first",
           rejected_inflight_);
    return;
  }
  if (connection.queued_bytes() > options_.max_queued_bytes_per_connection) {
    reject("connection response backlog limit reached, read faster", rejected_backlog_);
    return;
  }
  // The top brownout rung: the pending gauge crossed the reject threshold,
  // so the kindest answer is an immediate typed refusal with a hint —
  // queueing more work would only stretch every deadline in the backlog.
  update_brownout();
  if (loop_->brownout.reject_engaged()) {
    // Trace-correlated: an incident read can tie "this client's request
    // was refused" to the client-side trace carrying the same id.
    obs::journal().emit(obs::EventType::OverloadReject, obs::EventLevel::Error, nullptr,
                        request.trace_id, connection.id);
    reject("service browned out: pending backlog over the reject threshold, retry later",
           brownout_rejects_);
    return;
  }
  ++connection.inflight;
  requests_submitted_.add();
  // The callback runs on a solver worker: it must only touch the shared
  // completion queue, never connection state (the event loop owns that).
  // The request is moved, not copied — the decoded graph already exists.
  solver_.submit_async(std::move(request),
                       [queue = completions_, connection_id = connection.id](SolveResponse response) {
                         const std::lock_guard lock(queue->mutex);
                         if (queue->wake_fd < 0) return;  // server is gone
                         queue->items.emplace_back(connection_id, std::move(response));
                         const char byte = 'c';
                         // Retry EINTR so a signal cannot swallow the wake
                         // and leave the completion parked until the next
                         // poll timeout.
                         while (::write(queue->wake_fd, &byte, 1) < 0 && errno == EINTR) {
                         }
                       });
}

void LabelingServer::flush_writes(Connection& connection) {
  while (connection.out_offset < connection.out.size()) {
    if (fault::should_fail(FaultSite::NetDisconnect)) {
      close_connection(connection.id);  // injected peer reset mid-write
      return;
    }
    std::size_t chunk = connection.out.size() - connection.out_offset;
    // Injected short write: the kernel "accepts" one byte, as a full
    // socket buffer would — the flush must resume where it left off.
    if (chunk > 1 && fault::should_fail(FaultSite::NetWriteShort)) chunk = 1;
    // MSG_NOSIGNAL: a client that resets mid-response must cost one
    // connection, not a SIGPIPE against the whole daemon.
    const ssize_t wrote =
        ::send(connection.fd, connection.out.data() + connection.out_offset,
               chunk, MSG_NOSIGNAL);
    if (wrote > 0) {
      bytes_out_.add(static_cast<std::uint64_t>(wrote));
      connection.out_offset += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return;
    close_connection(connection.id);  // broken pipe or similar
    return;
  }
  connection.out.clear();
  connection.out_offset = 0;
  if (connection.closing ||
      (connection.draining && connection.inflight == 0)) {
    close_connection(connection.id);
  }
}

void LabelingServer::close_connection(std::uint64_t connection_id) {
  const auto it = loop_->connections.find(connection_id);
  if (it == loop_->connections.end()) return;
  close_fd(it->second.fd);
  loop_->connections.erase(it);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace lptsp
