#pragma once

#include <cstddef>

namespace lptsp {

/// The server's two-rung graceful-degradation ladder as a pure hysteresis
/// state machine, extracted from the event loop so its edge cases — exit
/// thresholds that round to zero, rung 2 engaging or releasing while rung
/// 1 is mid-transition — are directly testable without sockets.
///
/// Rung 1 (heuristic-only) engages at `heuristic_pending` pending
/// requests; rung 2 (reject) at `reject_pending`. Each rung releases with
/// hysteresis once pending falls to `enter * exit_ratio`, truncated — an
/// exit threshold that truncates to 0 means the rung holds until the
/// queue is completely empty, which is the conservative reading (release
/// late, not early). The rungs move independently: one update() can
/// engage or release both, and the level is simply the highest engaged
/// rung. A rung with threshold 0 is disabled and never engages.
class BrownoutLadder {
 public:
  struct Config {
    std::size_t heuristic_pending = 0;  ///< rung-1 engage threshold; 0 disables
    std::size_t reject_pending = 0;     ///< rung-2 engage threshold; 0 disables
    double exit_ratio = 0.5;            ///< release at enter * ratio (truncated)
  };

  /// What one update() did, for the caller's side effects (portfolio
  /// override, journal, counters) — the ladder itself is side-effect-free.
  struct Transition {
    int old_level = 0;
    int new_level = 0;
    bool heuristic_changed = false;  ///< rung 1 engaged or released this update
    bool heuristic_engaged = false;  ///< rung 1 state after the update
    [[nodiscard]] bool level_changed() const noexcept { return old_level != new_level; }
  };

  BrownoutLadder() = default;
  explicit BrownoutLadder(const Config& config) noexcept : config_(config) {}

  [[nodiscard]] bool enabled() const noexcept {
    return config_.heuristic_pending > 0 || config_.reject_pending > 0;
  }

  /// Re-evaluate both rungs against the pending-queue depth.
  Transition update(std::size_t pending) noexcept {
    Transition transition;
    transition.old_level = level();
    if (config_.heuristic_pending > 0) {
      if (!heuristic_ && pending >= config_.heuristic_pending) {
        heuristic_ = true;
        transition.heuristic_changed = true;
      } else if (heuristic_ && pending <= exit_threshold(config_.heuristic_pending)) {
        heuristic_ = false;
        transition.heuristic_changed = true;
      }
    }
    if (config_.reject_pending > 0) {
      if (!reject_ && pending >= config_.reject_pending) {
        reject_ = true;
      } else if (reject_ && pending <= exit_threshold(config_.reject_pending)) {
        reject_ = false;
      }
    }
    transition.new_level = level();
    transition.heuristic_engaged = heuristic_;
    return transition;
  }

  /// 0 = healthy, 1 = heuristic-only, 2 = rejecting new requests.
  [[nodiscard]] int level() const noexcept { return reject_ ? 2 : (heuristic_ ? 1 : 0); }
  [[nodiscard]] bool heuristic_engaged() const noexcept { return heuristic_; }
  [[nodiscard]] bool reject_engaged() const noexcept { return reject_; }

  /// Exposed for tests: where a rung with engage threshold `enter`
  /// releases. Truncation means small thresholds (or a tiny exit_ratio)
  /// round to 0 — the rung then only releases on an empty queue.
  [[nodiscard]] std::size_t exit_threshold(std::size_t enter) const noexcept {
    return static_cast<std::size_t>(static_cast<double>(enter) * config_.exit_ratio);
  }

 private:
  Config config_;
  bool heuristic_ = false;
  bool reject_ = false;
};

}  // namespace lptsp
