#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/endian.hpp"

namespace lptsp {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. The writers append to a byte vector; the
// reader is a bounds-checked cursor that flips `ok` instead of throwing,
// so one `if (!cursor.ok)` per field is the whole error-handling story.
// ---------------------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) { out.push_back(value); }
using endian::put_u16;
using endian::put_u32;
using endian::put_u64;

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t offset = 0;
  bool ok = true;

  [[nodiscard]] std::size_t remaining() const { return size - offset; }

  std::uint8_t u8() {
    if (!ok || remaining() < 1) {
      ok = false;
      return 0;
    }
    return data[offset++];
  }

  std::uint16_t u16() {
    if (!ok || remaining() < 2) {
      ok = false;
      return 0;
    }
    const std::uint16_t value = endian::get_u16(data + offset);
    offset += 2;
    return value;
  }

  std::uint32_t u32() {
    if (!ok || remaining() < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t value = endian::get_u32(data + offset);
    offset += 4;
    return value;
  }

  std::uint64_t u64() {
    if (!ok || remaining() < 8) {
      ok = false;
      return 0;
    }
    const std::uint64_t value = endian::get_u64(data + offset);
    offset += 8;
    return value;
  }

  /// Length-prefixed string; the length check against remaining() bounds
  /// the allocation by the actual frame size.
  std::string str() {
    const std::uint32_t length = u32();
    if (!ok || remaining() < length) {
      ok = false;
      return {};
    }
    std::string value(reinterpret_cast<const char*>(data + offset), length);
    offset += length;
    return value;
  }
};

/// Frame skeleton: reserve the 4-byte length slot, write the type byte,
/// and patch the payload length in close(). Encoders cannot produce
/// malformed frames by construction.
std::size_t open_frame(std::vector<std::uint8_t>& out, MessageType type) {
  const std::size_t length_slot = out.size();
  put_u32(out, 0);
  put_u8(out, static_cast<std::uint8_t>(type));
  return length_slot;
}

void close_frame(std::vector<std::uint8_t>& out, std::size_t length_slot) {
  const auto payload = static_cast<std::uint32_t>(out.size() - length_slot - 4);
  out[length_slot] = static_cast<std::uint8_t>(payload & 0xff);
  out[length_slot + 1] = static_cast<std::uint8_t>((payload >> 8) & 0xff);
  out[length_slot + 2] = static_cast<std::uint8_t>((payload >> 16) & 0xff);
  out[length_slot + 3] = static_cast<std::uint8_t>((payload >> 24) & 0xff);
}

constexpr std::uint8_t kResponseOptimalBit = 1;
constexpr std::uint8_t kResponseReductionCachedBit = 2;
/// v3+: a trailing u32 retry-after hint (milliseconds) follows the labels.
constexpr std::uint8_t kResponseRetryAfterBit = 4;
/// v4+: two trailing u64s (server queue-wait ns, service ns) follow the
/// retry-after hint (when present).
constexpr std::uint8_t kResponseServerTimingBit = 8;

/// Request flag byte. Through v3 this byte was the engine-pin flag and
/// only 0/1 decoded; v4 reads it as a bit set, so a v1-v3 decoder
/// naturally rejects frames carrying trace context it cannot parse —
/// exactly why the encoder suppresses these bits below v4.
constexpr std::uint8_t kRequestPinnedBit = 1;
/// v4+: a trailing u64 trace id follows the graph bytes.
constexpr std::uint8_t kRequestTraceContextBit = 2;
constexpr std::uint8_t kRequestTraceSampledBit = 4;

DecodeResult fail(WireFault fault, std::string detail) {
  DecodeResult result;
  result.fault = fault;
  result.detail = std::move(detail);
  return result;
}

DecodeResult decode_handshake(Cursor& cursor, MessageType type) {
  DecodeResult result;
  result.message.type = type;
  const std::uint32_t magic = cursor.u32();
  const std::uint16_t version = cursor.u16();
  if (!cursor.ok) return fail(WireFault::Truncated, "handshake body too short");
  if (magic != kWireMagic) return fail(WireFault::BadMagic, "handshake magic mismatch");
  // Accept the whole negotiable range, not just the current version: a v1
  // peer's Hello (and the v1 HelloAck the server answers it with) must
  // keep decoding after the version bump that added stats frames.
  if (version < kWireMinVersion || version > kWireVersion) {
    return fail(WireFault::BadVersion,
                "protocol version " + std::to_string(version) + " not supported");
  }
  if (cursor.remaining() != 0) {
    return fail(WireFault::Malformed, "handshake: trailing bytes");
  }
  result.message.version = version;
  return result;
}

DecodeResult decode_request(Cursor& cursor, const WireLimits& limits) {
  DecodeResult result;
  result.message.type = MessageType::Request;
  SolveRequest& request = result.message.request;
  request.id = cursor.u64();
  const std::uint32_t deadline_ms = cursor.u32();
  const auto priority = static_cast<std::int32_t>(cursor.u32());
  const std::uint8_t flags = cursor.u8();
  const std::uint8_t engine_byte = cursor.u8();
  const std::uint8_t k = cursor.u8();
  if (!cursor.ok) return fail(WireFault::Truncated, "request header too short");
  request.deadline = std::chrono::milliseconds{deadline_ms};
  request.priority = priority;
  if (flags > (kRequestPinnedBit | kRequestTraceContextBit | kRequestTraceSampledBit)) {
    return fail(WireFault::Malformed, "request: unknown flag bits");
  }
  if ((flags & kRequestTraceSampledBit) != 0 && (flags & kRequestTraceContextBit) == 0) {
    return fail(WireFault::Malformed, "request: sampled bit without trace context");
  }
  if ((flags & kRequestPinnedBit) != 0) {
    if (engine_byte > static_cast<std::uint8_t>(Engine::BranchBound)) {
      return fail(WireFault::Malformed,
                  "request: unknown engine " + std::to_string(engine_byte));
    }
    request.engine = static_cast<Engine>(engine_byte);
  }
  if (k < 1 || k > limits.max_pvec_entries) {
    return fail(WireFault::Malformed, "request: p-vector length " + std::to_string(k) +
                                          " outside [1, " +
                                          std::to_string(limits.max_pvec_entries) + "]");
  }
  std::vector<int> entries(static_cast<std::size_t>(k));
  for (auto& entry : entries) {
    entry = static_cast<std::int32_t>(cursor.u32());
    if (entry < 0) return fail(WireFault::Malformed, "request: negative p-vector entry");
  }
  if (!cursor.ok) return fail(WireFault::Truncated, "request: truncated p-vector");
  request.p = PVec(std::move(entries));

  std::string graph_error;
  if (!decode_graph_binary(cursor.data, cursor.size, cursor.offset, request.graph, graph_error,
                           limits.max_vertices)) {
    return fail(WireFault::Malformed, "request: " + graph_error);
  }
  if ((flags & kRequestTraceContextBit) != 0) {
    request.trace_id = cursor.u64();
    if (!cursor.ok) return fail(WireFault::Truncated, "request: truncated trace context");
    request.trace_sampled = (flags & kRequestTraceSampledBit) != 0;
  }
  if (cursor.remaining() != 0) {
    return fail(WireFault::Malformed, "request: trailing bytes after graph");
  }
  return result;
}

DecodeResult decode_response(Cursor& cursor) {
  DecodeResult result;
  result.message.type = MessageType::Response;
  SolveResponse& response = result.message.response;
  response.id = cursor.u64();
  const std::uint8_t status = cursor.u8();
  const std::uint8_t source = cursor.u8();
  const std::uint8_t engine_byte = cursor.u8();
  const std::uint8_t flags = cursor.u8();
  const auto span = static_cast<std::int64_t>(cursor.u64());
  const std::uint64_t seconds_bits = cursor.u64();
  if (!cursor.ok) return fail(WireFault::Truncated, "response header too short");
  if (status > static_cast<std::uint8_t>(SolveStatus::TransportDisconnected)) {
    return fail(WireFault::Malformed, "response: unknown status " + std::to_string(status));
  }
  if (source > static_cast<std::uint8_t>(ResponseSource::Coalesced)) {
    return fail(WireFault::Malformed, "response: unknown source " + std::to_string(source));
  }
  if (engine_byte > static_cast<std::uint8_t>(Engine::BranchBound)) {
    return fail(WireFault::Malformed, "response: unknown engine " + std::to_string(engine_byte));
  }
  if (flags > (kResponseOptimalBit | kResponseReductionCachedBit | kResponseRetryAfterBit |
               kResponseServerTimingBit)) {
    return fail(WireFault::Malformed, "response: unknown flag bits");
  }
  response.status = static_cast<SolveStatus>(status);
  response.source = static_cast<ResponseSource>(source);
  response.engine = static_cast<Engine>(engine_byte);
  response.optimal = (flags & kResponseOptimalBit) != 0;
  response.reduction_cached = (flags & kResponseReductionCachedBit) != 0;
  response.span = span;
  response.seconds = std::bit_cast<double>(seconds_bits);
  response.message = cursor.str();
  const std::uint32_t label_count = cursor.u32();
  if (!cursor.ok) return fail(WireFault::Truncated, "response: truncated message");
  // Each label is 8 bytes: check the declared count against the bytes
  // actually present BEFORE allocating, so a hostile count cannot force
  // an oversized allocation.
  if (cursor.remaining() / 8 < label_count) {
    return fail(WireFault::Truncated, "response: truncated label vector");
  }
  response.labeling.labels.resize(label_count);
  for (auto& label : response.labeling.labels) {
    label = static_cast<std::int64_t>(cursor.u64());
  }
  if ((flags & kResponseRetryAfterBit) != 0) {
    response.retry_after_ms = cursor.u32();
    if (!cursor.ok) return fail(WireFault::Truncated, "response: truncated retry-after hint");
  }
  if ((flags & kResponseServerTimingBit) != 0) {
    response.server_queue_ns = cursor.u64();
    response.server_service_ns = cursor.u64();
    if (!cursor.ok) return fail(WireFault::Truncated, "response: truncated server timing");
  }
  if (cursor.remaining() != 0) {
    return fail(WireFault::Malformed, "response: trailing bytes after labels");
  }
  return result;
}

DecodeResult decode_stats_request(Cursor& cursor) {
  DecodeResult result;
  result.message.type = MessageType::StatsRequest;
  const std::uint8_t format = cursor.u8();
  if (!cursor.ok) return fail(WireFault::Truncated, "stats request too short");
  if (format < static_cast<std::uint8_t>(StatsFormat::Json) ||
      format > static_cast<std::uint8_t>(StatsFormat::Profile)) {
    return fail(WireFault::Malformed,
                "stats request: unknown format " + std::to_string(format));
  }
  // Optional trailing u64: the incremental-scrape cursor (--since). Either
  // absent (the v2-era one-byte frame) or exactly eight bytes — anything
  // else is malformed, so framing bugs cannot masquerade as a cursor.
  if (cursor.remaining() == 8) {
    result.message.stats_since = cursor.u64();
  } else if (cursor.remaining() != 0) {
    return fail(WireFault::Malformed, "stats request: trailing bytes");
  }
  result.message.stats_format = static_cast<StatsFormat>(format);
  return result;
}

DecodeResult decode_stats_reply(Cursor& cursor) {
  DecodeResult result;
  result.message.type = MessageType::StatsReply;
  const std::uint8_t format = cursor.u8();
  if (!cursor.ok) return fail(WireFault::Truncated, "stats reply too short");
  if (format < static_cast<std::uint8_t>(StatsFormat::Json) ||
      format > static_cast<std::uint8_t>(StatsFormat::Profile)) {
    return fail(WireFault::Malformed, "stats reply: unknown format " + std::to_string(format));
  }
  result.message.stats_format = static_cast<StatsFormat>(format);
  result.message.stats_payload = cursor.str();
  if (!cursor.ok) return fail(WireFault::Truncated, "stats reply: truncated payload");
  if (cursor.remaining() != 0) {
    return fail(WireFault::Malformed, "stats reply: trailing bytes");
  }
  return result;
}

DecodeResult decode_error(Cursor& cursor) {
  DecodeResult result;
  result.message.type = MessageType::Error;
  result.message.error_id = cursor.u64();
  const std::uint8_t fault_byte = cursor.u8();
  if (!cursor.ok) return fail(WireFault::Truncated, "error frame too short");
  if (fault_byte > static_cast<std::uint8_t>(WireFault::Malformed)) {
    return fail(WireFault::Malformed, "error frame: unknown fault " + std::to_string(fault_byte));
  }
  result.message.error_fault = static_cast<WireFault>(fault_byte);
  result.message.error_message = cursor.str();
  if (!cursor.ok) return fail(WireFault::Truncated, "error frame: truncated message");
  if (cursor.remaining() != 0) {
    return fail(WireFault::Malformed, "error frame: trailing bytes");
  }
  return result;
}

}  // namespace

void encode_hello(std::vector<std::uint8_t>& out, std::uint16_t version) {
  const std::size_t slot = open_frame(out, MessageType::Hello);
  put_u32(out, kWireMagic);
  put_u16(out, version);
  close_frame(out, slot);
}

void encode_hello_ack(std::vector<std::uint8_t>& out, std::uint16_t version) {
  const std::size_t slot = open_frame(out, MessageType::HelloAck);
  put_u32(out, kWireMagic);
  put_u16(out, version);
  close_frame(out, slot);
}

void encode_request(std::vector<std::uint8_t>& out, const SolveRequest& request,
                    std::uint16_t version) {
  encode_request_traced(out, request, version, request.trace_id, request.trace_sampled);
}

void encode_request_traced(std::vector<std::uint8_t>& out, const SolveRequest& request,
                           std::uint16_t version, std::uint64_t trace_id,
                           bool trace_sampled) {
  // The wire carries k as one byte; emitting a frame whose declared
  // length disagrees with its payload would poison the whole pipelined
  // connection server-side, so refuse locally with a clear error.
  LPTSP_REQUIRE(request.p.k() <= 255, "wire format carries at most 255 p-vector entries");
  // A v1-v3 server's decoder rejects flag values above 1, so the trace
  // context (bits + trailing u64) is only emitted on v4+ connections.
  const bool carry_trace = version >= kTraceContextMinVersion && trace_id != 0;
  std::uint8_t flags = request.engine.has_value() ? kRequestPinnedBit : 0;
  if (carry_trace) {
    flags |= kRequestTraceContextBit;
    if (trace_sampled) flags |= kRequestTraceSampledBit;
  }
  const std::size_t slot = open_frame(out, MessageType::Request);
  put_u64(out, request.id);
  const auto deadline = request.deadline.count();
  put_u32(out, deadline > 0 ? static_cast<std::uint32_t>(
                                  std::min<std::int64_t>(deadline, 0xffffffffLL))
                            : 0);
  put_u32(out, static_cast<std::uint32_t>(request.priority));
  put_u8(out, flags);
  put_u8(out, request.engine.has_value() ? static_cast<std::uint8_t>(*request.engine) : 0);
  put_u8(out, static_cast<std::uint8_t>(request.p.k()));
  for (const int entry : request.p.entries()) put_u32(out, static_cast<std::uint32_t>(entry));
  append_graph_binary(out, request.graph);
  if (carry_trace) put_u64(out, trace_id);
  close_frame(out, slot);
}

void encode_response(std::vector<std::uint8_t>& out, const SolveResponse& response,
                     std::uint16_t version) {
  // Older decoders reject unknown flag bits, so the hint (bit + trailing
  // u32) is only emitted on connections that negotiated v3+, and the
  // server-timing echo (bit + two trailing u64s) only on v4+.
  const bool carry_retry_after =
      version >= kRetryAfterMinVersion && response.retry_after_ms != 0;
  const bool carry_server_timing =
      version >= kTraceContextMinVersion &&
      (response.server_queue_ns != 0 || response.server_service_ns != 0);
  const std::size_t slot = open_frame(out, MessageType::Response);
  put_u64(out, response.id);
  put_u8(out, static_cast<std::uint8_t>(response.status));
  put_u8(out, static_cast<std::uint8_t>(response.source));
  put_u8(out, static_cast<std::uint8_t>(response.engine));
  put_u8(out, static_cast<std::uint8_t>((response.optimal ? kResponseOptimalBit : 0) |
                                        (response.reduction_cached
                                             ? kResponseReductionCachedBit
                                             : 0) |
                                        (carry_retry_after ? kResponseRetryAfterBit : 0) |
                                        (carry_server_timing ? kResponseServerTimingBit
                                                             : 0)));
  put_u64(out, static_cast<std::uint64_t>(response.span));
  put_u64(out, std::bit_cast<std::uint64_t>(response.seconds));
  put_u32(out, static_cast<std::uint32_t>(response.message.size()));
  out.insert(out.end(), response.message.begin(), response.message.end());
  put_u32(out, static_cast<std::uint32_t>(response.labeling.labels.size()));
  for (const Weight label : response.labeling.labels) {
    put_u64(out, static_cast<std::uint64_t>(label));
  }
  if (carry_retry_after) put_u32(out, response.retry_after_ms);
  if (carry_server_timing) {
    put_u64(out, response.server_queue_ns);
    put_u64(out, response.server_service_ns);
  }
  close_frame(out, slot);
}

void encode_error(std::vector<std::uint8_t>& out, std::uint64_t id, WireFault fault,
                  const std::string& message) {
  const std::size_t slot = open_frame(out, MessageType::Error);
  put_u64(out, id);
  put_u8(out, static_cast<std::uint8_t>(fault));
  put_u32(out, static_cast<std::uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  close_frame(out, slot);
}

void encode_shutdown(std::vector<std::uint8_t>& out) {
  const std::size_t slot = open_frame(out, MessageType::Shutdown);
  close_frame(out, slot);
}

void encode_stats_request(std::vector<std::uint8_t>& out, StatsFormat format,
                          std::uint64_t since) {
  const std::size_t slot = open_frame(out, MessageType::StatsRequest);
  put_u8(out, static_cast<std::uint8_t>(format));
  if (since != 0) put_u64(out, since);
  close_frame(out, slot);
}

void encode_stats_reply(std::vector<std::uint8_t>& out, StatsFormat format,
                        const std::string& payload) {
  const std::size_t slot = open_frame(out, MessageType::StatsReply);
  put_u8(out, static_cast<std::uint8_t>(format));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  close_frame(out, slot);
}

DecodeResult decode_payload(const std::uint8_t* data, std::size_t size,
                            const WireLimits& limits) {
  Cursor cursor{data, size};
  const std::uint8_t type_byte = cursor.u8();
  if (!cursor.ok) return fail(WireFault::Truncated, "empty payload");
  if (type_byte < static_cast<std::uint8_t>(MessageType::Hello) ||
      type_byte > static_cast<std::uint8_t>(MessageType::StatsReply)) {
    return fail(WireFault::BadType, "unknown message type " + std::to_string(type_byte));
  }
  const auto type = static_cast<MessageType>(type_byte);
  switch (type) {
    case MessageType::Hello:
    case MessageType::HelloAck:
      return decode_handshake(cursor, type);
    case MessageType::Request:
      return decode_request(cursor, limits);
    case MessageType::Response:
      return decode_response(cursor);
    case MessageType::Error:
      return decode_error(cursor);
    case MessageType::Shutdown: {
      if (cursor.remaining() != 0) {
        return fail(WireFault::Malformed, "shutdown frame: trailing bytes");
      }
      DecodeResult result;
      result.message.type = MessageType::Shutdown;
      return result;
    }
    case MessageType::StatsRequest:
      return decode_stats_request(cursor);
    case MessageType::StatsReply:
      return decode_stats_reply(cursor);
  }
  return fail(WireFault::BadType, "unreachable");
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) return;  // the stream is already dead; do not buffer more
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameReader::next(DecodeResult& result) {
  if (poisoned_) return false;  // caller should have closed after the fault
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // O(1) per byte instead of O(stream length).
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint32_t payload_length = endian::get_u32(head);
  if (payload_length > limits_.max_frame_bytes) {
    result = fail(WireFault::Oversized,
                  "frame payload " + std::to_string(payload_length) + " exceeds limit " +
                      std::to_string(limits_.max_frame_bytes));
  } else if (payload_length == 0) {
    result = fail(WireFault::Malformed, "empty frame payload");
  } else if (available - 4 < payload_length) {
    return false;  // whole frame not buffered yet
  } else {
    result = decode_payload(head + 4, payload_length, limits_);
    consumed_ += 4 + payload_length;
  }
  if (!result.ok()) {
    poisoned_ = true;
    fault_ = result.fault;
    fault_detail_ = result.detail;
    buffer_.clear();
    consumed_ = 0;
  }
  return true;
}

}  // namespace lptsp
