/// AVX-512 kernel tier (F+BW+DQ+VL). Compiled with the matching -m flags
/// per-source from CMakeLists.txt; reduces to a nullptr stub when the
/// target or compiler lacks them. Mask registers remove every scalar tail:
/// a ragged row end becomes one masked load instead of a fixup loop, which
/// is where this tier earns its keep on the adversarial widths
/// (n = 63/65/127/129) the dispatch tests pin.

#include "kernels/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <limits>

namespace lptsp::kernels {

namespace {

constexpr std::int16_t kInf16 = std::numeric_limits<std::int16_t>::max() / 2;
constexpr std::int32_t kInf32 = std::numeric_limits<std::int32_t>::max() / 2;

bool diam2_row_avx512(const std::uint64_t* bits, int words, int n, int src, int* out) {
  const std::uint64_t* srow = bits + static_cast<std::size_t>(src) * words;
  for (int v = 0; v < n; ++v) {
    if ((srow[v >> 6] >> (v & 63)) & 1u) {
      out[v] = 1;
      continue;
    }
    if (v == src) {
      out[v] = 0;
      continue;
    }
    const std::uint64_t* vrow = bits + static_cast<std::size_t>(v) * words;
    bool meets = false;
    int w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i a = _mm512_loadu_si512(srow + w);
      const __m512i b = _mm512_loadu_si512(vrow + w);
      if (_mm512_test_epi64_mask(a, b) != 0) {
        meets = true;
        break;
      }
    }
    if (!meets && w < words) {
      const __mmask8 m = static_cast<__mmask8>((1u << (words - w)) - 1);
      const __m512i a = _mm512_maskz_loadu_epi64(m, srow + w);
      const __m512i b = _mm512_maskz_loadu_epi64(m, vrow + w);
      meets = _mm512_test_epi64_mask(a, b) != 0;
    }
    if (!meets) return false;
    out[v] = 2;
  }
  return true;
}

std::int16_t hk_min_i16_avx512(const std::int16_t* dp_rest, const std::int16_t* wrow, int n) {
  const __m512i inf = _mm512_set1_epi16(kInf16);
  __m512i best = inf;
  int j = 0;
  for (; j + 32 <= n; j += 32) {
    const __m512i d = _mm512_loadu_si512(dp_rest + j);
    const __m512i w = _mm512_loadu_si512(wrow + j);
    best = _mm512_min_epi16(best, _mm512_add_epi16(d, w));
  }
  if (j < n) {
    // Masked-off lanes take kInf from the add's src operand, i.e. the
    // reduction identity — no scalar tail.
    const __mmask32 m = static_cast<__mmask32>((std::uint32_t{1} << (n - j)) - 1);
    const __m512i d = _mm512_maskz_loadu_epi16(m, dp_rest + j);
    const __m512i w = _mm512_maskz_loadu_epi16(m, wrow + j);
    best = _mm512_min_epi16(best, _mm512_mask_add_epi16(inf, m, d, w));
  }
  // No epi16 reduce intrinsic; fold 512 -> 256 -> 128 -> scalar.
  __m256i half = _mm256_min_epi16(_mm512_castsi512_si256(best),
                                  _mm512_extracti64x4_epi64(best, 1));
  __m128i quarter =
      _mm_min_epi16(_mm256_castsi256_si128(half), _mm256_extracti128_si256(half, 1));
  quarter = _mm_min_epi16(quarter, _mm_srli_si128(quarter, 8));
  quarter = _mm_min_epi16(quarter, _mm_srli_si128(quarter, 4));
  quarter = _mm_min_epi16(quarter, _mm_srli_si128(quarter, 2));
  return static_cast<std::int16_t>(_mm_cvtsi128_si32(quarter));
}

std::int32_t hk_min_i32_avx512(const std::int32_t* dp_rest, const std::int32_t* wrow, int n) {
  const __m512i inf = _mm512_set1_epi32(kInf32);
  __m512i best = inf;
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512i d = _mm512_loadu_si512(dp_rest + j);
    const __m512i w = _mm512_loadu_si512(wrow + j);
    best = _mm512_min_epi32(best, _mm512_add_epi32(d, w));
  }
  if (j < n) {
    const __mmask16 m = static_cast<__mmask16>((std::uint32_t{1} << (n - j)) - 1);
    const __m512i d = _mm512_maskz_loadu_epi32(m, dp_rest + j);
    const __m512i w = _mm512_maskz_loadu_epi32(m, wrow + j);
    best = _mm512_min_epi32(best, _mm512_mask_add_epi32(inf, m, d, w));
  }
  return _mm512_reduce_min_epi32(best);
}

std::int64_t weight_range_min_avx512(const std::int64_t* w, int count) {
  const __m512i inf = _mm512_set1_epi64(std::numeric_limits<std::int64_t>::max());
  __m512i best = inf;
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    best = _mm512_min_epi64(best, _mm512_loadu_si512(w + i));
  }
  if (i < count) {
    const __mmask8 m = static_cast<__mmask8>((1u << (count - i)) - 1);
    best = _mm512_min_epi64(best, _mm512_mask_loadu_epi64(inf, m, w + i));
  }
  return _mm512_reduce_min_epi64(best);
}

int weight_range_count_eq_avx512(const std::int64_t* w, int count, std::int64_t value) {
  const __m512i needle = _mm512_set1_epi64(value);
  int matches = 0;
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    matches += __builtin_popcount(_mm512_cmpeq_epi64_mask(_mm512_loadu_si512(w + i), needle));
  }
  if (i < count) {
    const __mmask8 m = static_cast<__mmask8>((1u << (count - i)) - 1);
    matches += __builtin_popcount(
        _mm512_mask_cmpeq_epi64_mask(m, _mm512_maskz_loadu_epi64(m, w + i), needle));
  }
  return matches;
}

}  // namespace

const KernelTable* avx512_kernel_table() noexcept {
  static const KernelTable table{IsaTier::Avx512,         diam2_row_avx512,
                                 hk_min_i16_avx512,       hk_min_i32_avx512,
                                 weight_range_min_avx512, weight_range_count_eq_avx512};
  return &table;
}

}  // namespace lptsp::kernels

#else  // tier not compiled in on this target/compiler

namespace lptsp::kernels {
const KernelTable* avx512_kernel_table() noexcept { return nullptr; }
}  // namespace lptsp::kernels

#endif
