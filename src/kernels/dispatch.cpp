/// Kernel dispatch resolution: clamp hardware detection to the tiers this
/// binary carries, apply the LPTSP_FORCE_ISA override, and hand out
/// per-tier tables for differential tests and per-ISA benchmarks.

#include <atomic>

#include "kernels/kernels.hpp"

namespace lptsp::kernels {

namespace {

const KernelTable* table_if_built(IsaTier tier) noexcept {
  switch (tier) {
    case IsaTier::Scalar: return scalar_kernel_table();
    case IsaTier::Avx2: return avx2_kernel_table();
    case IsaTier::Avx512: return avx512_kernel_table();
  }
  return nullptr;  // unreachable
}

/// Widest tier <= `ceiling` that is actually compiled into this binary.
/// (The scalar table is always built, so this never returns nullptr.)
const KernelTable* widest_built_at_most(IsaTier ceiling) noexcept {
  for (int t = static_cast<int>(ceiling); t > 0; --t) {
    const KernelTable* table = table_if_built(static_cast<IsaTier>(t));
    if (table != nullptr) return table;
  }
  return scalar_kernel_table();
}

/// The active table pointer. Null until first use; resolved lazily so the
/// env override is honored no matter how early a static initializer pulls
/// in a kernel, and swappable afterwards for in-process tier comparisons.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* resolve_initial() noexcept {
  IsaTier ceiling = detected_isa_tier();
  const std::optional<IsaTier> forced = forced_isa_tier_from_env();
  if (forced.has_value() && *forced < ceiling) ceiling = *forced;
  return widest_built_at_most(ceiling);
}

}  // namespace

IsaTier detected_isa_tier() noexcept {
  static const IsaTier tier = widest_built_at_most(hw_isa_tier())->tier;
  return tier;
}

std::vector<IsaTier> supported_tiers() {
  std::vector<IsaTier> tiers{IsaTier::Scalar};
  for (const IsaTier tier : {IsaTier::Avx2, IsaTier::Avx512}) {
    if (kernel_table_for(tier).tier == tier) tiers.push_back(tier);
  }
  return tiers;
}

const KernelTable& kernel_table_for(IsaTier tier) noexcept {
  const IsaTier ceiling = detected_isa_tier();
  return *widest_built_at_most(tier < ceiling ? tier : ceiling);
}

const KernelTable& kernels() noexcept {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // CAS only the null -> resolved transition: racing first users agree
    // on the same table, and a concurrent set_isa_tier() that has already
    // published an explicit choice must not be overwritten by the default
    // resolution (the CAS failure hands its table back instead).
    const KernelTable* resolved = resolve_initial();
    if (g_active.compare_exchange_strong(table, resolved, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      table = resolved;
    }
  }
  return *table;
}

IsaTier active_isa_tier() noexcept { return kernels().tier; }

void set_isa_tier(IsaTier tier) noexcept {
  g_active.store(&kernel_table_for(tier), std::memory_order_release);
}

}  // namespace lptsp::kernels
