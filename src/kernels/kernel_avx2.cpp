/// AVX2 kernel tier. This translation unit is compiled with -mavx2 (set
/// per-source in CMakeLists.txt, independent of LPTSP_NATIVE_ARCH); when
/// the target or compiler cannot do that, the guard below reduces it to a
/// stub returning nullptr and dispatch treats the tier as absent.
///
/// Execution safety: nothing outside this TU calls these functions
/// directly — they are reachable only through kernel_table_for()/
/// kernels(), which clamp to the cpuid-detected tier.

#include "kernels/kernels.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <limits>

namespace lptsp::kernels {

namespace {

constexpr std::int16_t kInf16 = std::numeric_limits<std::int16_t>::max() / 2;
constexpr std::int32_t kInf32 = std::numeric_limits<std::int32_t>::max() / 2;

inline __m256i load256(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

bool diam2_row_avx2(const std::uint64_t* bits, int words, int n, int src, int* out) {
  const std::uint64_t* srow = bits + static_cast<std::size_t>(src) * words;
  for (int v = 0; v < n; ++v) {
    if ((srow[v >> 6] >> (v & 63)) & 1u) {
      out[v] = 1;
      continue;
    }
    if (v == src) {
      out[v] = 0;
      continue;
    }
    const std::uint64_t* vrow = bits + static_cast<std::size_t>(v) * words;
    // Word intersection 4 words (256 adjacency bits) per test; early exit
    // at vector granularity keeps the dense-graph fast case fast. The
    // scalar tail avoids reading past the final row of the bit matrix.
    bool meets = false;
    int w = 0;
    for (; w + 4 <= words; w += 4) {
      if (!_mm256_testz_si256(load256(srow + w), load256(vrow + w))) {
        meets = true;
        break;
      }
    }
    if (!meets) {
      for (; w < words; ++w) {
        if ((srow[w] & vrow[w]) != 0) {
          meets = true;
          break;
        }
      }
    }
    if (!meets) return false;
    out[v] = 2;
  }
  return true;
}

inline std::int16_t hmin_epi16(__m128i x) {
  x = _mm_min_epi16(x, _mm_srli_si128(x, 8));
  x = _mm_min_epi16(x, _mm_srli_si128(x, 4));
  x = _mm_min_epi16(x, _mm_srli_si128(x, 2));
  return static_cast<std::int16_t>(_mm_cvtsi128_si32(x));
}

inline __m128i load128(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}

std::int16_t hk_min_i16_avx2(const std::int16_t* dp_rest, const std::int16_t* wrow, int n) {
  // Accumulators start at kInf, the same identity the scalar loop uses, so
  // the result is min(kInf, min_j(dp+w)) regardless of how many lanes ran.
  // dp <= kInf and w < kInf (pre-checked by the DP), so the plain epi16
  // add cannot wrap. Ragged tails re-read a full vector ending exactly at
  // element n-1: min-reduction is insensitive to the duplicated elements,
  // and a whole overlapped block beats a serial scalar tail — at the DP's
  // real row width (n <= 22) the tail IS most of the row.
  if (n >= 16) {
    __m256i best = _mm256_set1_epi16(kInf16);
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      best = _mm256_min_epi16(best, _mm256_add_epi16(load256(dp_rest + j), load256(wrow + j)));
    }
    if (j < n) {
      best = _mm256_min_epi16(
          best, _mm256_add_epi16(load256(dp_rest + n - 16), load256(wrow + n - 16)));
    }
    return hmin_epi16(
        _mm_min_epi16(_mm256_castsi256_si128(best), _mm256_extracti128_si256(best, 1)));
  }
  if (n >= 8) {
    __m128i best = _mm_min_epi16(_mm_set1_epi16(kInf16),
                                 _mm_add_epi16(load128(dp_rest), load128(wrow)));
    if (n > 8) {
      best = _mm_min_epi16(best,
                           _mm_add_epi16(load128(dp_rest + n - 8), load128(wrow + n - 8)));
    }
    return hmin_epi16(best);
  }
  std::int16_t result = kInf16;
  for (int j = 0; j < n; ++j) {
    const std::int16_t candidate = static_cast<std::int16_t>(dp_rest[j] + wrow[j]);
    if (candidate < result) result = candidate;
  }
  return result;
}

inline std::int32_t hmin_epi32(__m128i x) {
  x = _mm_min_epi32(x, _mm_srli_si128(x, 8));
  x = _mm_min_epi32(x, _mm_srli_si128(x, 4));
  return _mm_cvtsi128_si32(x);
}

std::int32_t hk_min_i32_avx2(const std::int32_t* dp_rest, const std::int32_t* wrow, int n) {
  if (n >= 8) {
    __m256i best = _mm256_set1_epi32(kInf32);
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      best = _mm256_min_epi32(best, _mm256_add_epi32(load256(dp_rest + j), load256(wrow + j)));
    }
    if (j < n) {
      best = _mm256_min_epi32(
          best, _mm256_add_epi32(load256(dp_rest + n - 8), load256(wrow + n - 8)));
    }
    return hmin_epi32(
        _mm_min_epi32(_mm256_castsi256_si128(best), _mm256_extracti128_si256(best, 1)));
  }
  if (n >= 4) {
    __m128i best = _mm_min_epi32(_mm_set1_epi32(kInf32),
                                 _mm_add_epi32(load128(dp_rest), load128(wrow)));
    if (n > 4) {
      best = _mm_min_epi32(best,
                           _mm_add_epi32(load128(dp_rest + n - 4), load128(wrow + n - 4)));
    }
    return hmin_epi32(best);
  }
  std::int32_t result = kInf32;
  for (int j = 0; j < n; ++j) {
    const std::int32_t candidate = dp_rest[j] + wrow[j];
    if (candidate < result) result = candidate;
  }
  return result;
}

std::int64_t weight_range_min_avx2(const std::int64_t* w, int count) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  int i = 0;
  if (count >= 4) {
    // AVX2 has no epi64 min; build one from the signed compare + a
    // per-byte blend (the compare mask is lane-uniform, so byte blending
    // is exact).
    __m256i vbest = _mm256_set1_epi64x(best);
    for (; i + 4 <= count; i += 4) {
      const __m256i cur = load256(w + i);
      vbest = _mm256_blendv_epi8(vbest, cur, _mm256_cmpgt_epi64(vbest, cur));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
    for (const std::int64_t lane : lanes) {
      if (lane < best) best = lane;
    }
  }
  for (; i < count; ++i) {
    if (w[i] < best) best = w[i];
  }
  return best;
}

int weight_range_count_eq_avx2(const std::int64_t* w, int count, std::int64_t value) {
  int matches = 0;
  const __m256i needle = _mm256_set1_epi64x(value);
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(load256(w + i), needle);
    matches += __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq))));
  }
  for (; i < count; ++i) matches += w[i] == value ? 1 : 0;
  return matches;
}

}  // namespace

const KernelTable* avx2_kernel_table() noexcept {
  static const KernelTable table{IsaTier::Avx2,        diam2_row_avx2,
                                 hk_min_i16_avx2,      hk_min_i32_avx2,
                                 weight_range_min_avx2, weight_range_count_eq_avx2};
  return &table;
}

}  // namespace lptsp::kernels

#else  // tier not compiled in on this target/compiler

namespace lptsp::kernels {
const KernelTable* avx2_kernel_table() noexcept { return nullptr; }
}  // namespace lptsp::kernels

#endif
