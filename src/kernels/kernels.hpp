#pragma once

#include <cstdint>
#include <vector>

#include "util/cpu.hpp"

namespace lptsp::kernels {

/// Runtime-dispatched SIMD kernels for the library's dense inner loops.
///
/// Each kernel has one scalar implementation (the portable correctness
/// reference, always built) plus explicit AVX2 / AVX-512 implementations
/// compiled in their own translation units with the matching -m flags, so
/// a portable binary still carries every tier and picks one per CPU at
/// startup. Dispatch is a function-pointer table resolved once on first
/// use; hot callers hoist `kernels()` (one atomic load) out of their
/// loops, so steady state costs one predictable indirect call per row /
/// subset — nothing per element.
///
/// Tier selection: hardware detection (util/cpu.hpp) clamped to the tiers
/// this binary was built with, further clamped by the LPTSP_FORCE_ISA
/// environment override (scalar|avx2|avx512). Forcing a tier the machine
/// or binary lacks falls back to the widest available one — the override
/// can only narrow, never SIGILL.

/// Diameter-<=2 APSP row kernel: the bit-matrix word-intersection fast
/// path of all_pairs_distances. Writes out[v] in {0,1,2} for all v and
/// returns true, or returns false as soon as some vertex is at distance
/// >= 3 / unreachable (the unresolved suffix of out is untouched).
/// `bits` is the packed adjacency matrix (row v at bits + v*words).
using Diam2RowFn = bool (*)(const std::uint64_t* bits, int words, int n, int src, int* out);

/// Held-Karp layer min-reduction: min(kInf, min_j(dp_rest[j] + wrow[j]))
/// over j in [0, n), where kInf is numeric_limits<Cost>::max() / 2 (the
/// DP's masked-source sentinel; dp entries are <= kInf and weights are
/// pre-checked so the sum cannot overflow). Both operand rows may be
/// unaligned; n is the instance size (<= 24 in the DP, arbitrary in
/// tests/benches).
using HkMinI16Fn = std::int16_t (*)(const std::int16_t* dp_rest, const std::int16_t* wrow, int n);
using HkMinI32Fn = std::int32_t (*)(const std::int32_t* dp_rest, const std::int32_t* wrow, int n);

/// Weight-row scan primitives behind the candidate-list build's
/// cheapest-tier census (tsp/candidates.cpp). Weights are the TSP layer's
/// int64 Weight. min over an empty range is the +inf identity
/// (numeric_limits<int64_t>::max()); count_eq over an empty range is 0,
/// so callers split a row around the diagonal without special-casing the
/// endpoints.
using WeightRangeMinFn = std::int64_t (*)(const std::int64_t* w, int count);
using WeightRangeCountEqFn = int (*)(const std::int64_t* w, int count, std::int64_t value);

struct KernelTable {
  IsaTier tier = IsaTier::Scalar;
  Diam2RowFn diam2_row = nullptr;
  HkMinI16Fn hk_min_i16 = nullptr;
  HkMinI32Fn hk_min_i32 = nullptr;
  WeightRangeMinFn weight_range_min = nullptr;
  WeightRangeCountEqFn weight_range_count_eq = nullptr;
};

/// The widest tier that is BOTH executable on this CPU and compiled into
/// this binary (a non-x86 build or a compiler without -mavx2 support
/// drops the upper tiers at build time).
IsaTier detected_isa_tier() noexcept;

/// Every tier runnable on this machine, narrowest (Scalar) first. The
/// enumeration the differential tests and per-ISA benchmarks iterate;
/// always contains Scalar.
std::vector<IsaTier> supported_tiers();

/// The tier-specific table, clamped to detected_isa_tier(). This is the
/// differential-testing and per-ISA-benchmark entry point: it hands out
/// any supported tier regardless of the active dispatch choice.
const KernelTable& kernel_table_for(IsaTier tier) noexcept;

/// The active dispatch table. Resolved once on first use:
/// min(detected_isa_tier(), LPTSP_FORCE_ISA if set). Hot paths hoist the
/// returned reference out of their loops.
const KernelTable& kernels() noexcept;

/// The active tier (kernels().tier), for startup/stats lines.
IsaTier active_isa_tier() noexcept;

/// Re-point dispatch at a specific tier (clamped to detected). Intended
/// for tests and tools that compare tiers within one process; production
/// binaries pick a tier once at startup and leave it. Thread-safe (atomic
/// pointer swap), but callers racing kernel work against a tier switch
/// get whichever table their hoisted load saw — fine for its users, all
/// of which switch tiers between solves.
void set_isa_tier(IsaTier tier) noexcept;

/// Per-ISA table factories, defined in their own -m-flagged translation
/// units. Return nullptr when the tier was not compiled in (non-x86
/// target or compiler without the flag); dispatch.cpp treats that as
/// "tier absent".
const KernelTable* scalar_kernel_table() noexcept;
const KernelTable* avx2_kernel_table() noexcept;
const KernelTable* avx512_kernel_table() noexcept;

}  // namespace lptsp::kernels
