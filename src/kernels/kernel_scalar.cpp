/// Scalar (portable C++) kernel tier — the correctness reference every
/// wider tier is differentially tested against, and the only tier on
/// non-x86 targets. Compiled with the project's baseline flags; the loops
/// are written branch-light so -O3 autovectorization still helps where
/// the compiler can prove it safe.

#include <limits>

#include "kernels/kernels.hpp"

namespace lptsp::kernels {

namespace {

/// Try the diameter-<=2 fast path for one source: dist 1 straight off the
/// adjacency row, dist 2 from a word-wise intersection of the two rows
/// (early exit on the first common word, so dense rows resolve in one or
/// two ANDs). Returns false — without touching the unresolved suffix — as
/// soon as some vertex is at distance >= 3 or unreachable.
bool diam2_row_scalar(const std::uint64_t* bits, int words, int n, int src, int* out) {
  const std::uint64_t* srow = bits + static_cast<std::size_t>(src) * words;
  for (int v = 0; v < n; ++v) {
    if ((srow[v >> 6] >> (v & 63)) & 1u) {
      out[v] = 1;
      continue;
    }
    if (v == src) {
      out[v] = 0;
      continue;
    }
    const std::uint64_t* vrow = bits + static_cast<std::size_t>(v) * words;
    bool meets = false;
    for (int w = 0; w < words; ++w) {
      if ((srow[w] & vrow[w]) != 0) {
        meets = true;
        break;
      }
    }
    if (!meets) return false;
    out[v] = 2;
  }
  return true;
}

/// min(kInf, min_j(dp[j] + w[j])): the sum never overflows Cost because
/// the DP pre-checks worst-case path cost < kInf and dp entries are
/// <= kInf, so kInf + weight <= 2*kInf <= numeric_limits<Cost>::max().
template <typename Cost>
Cost hk_min_scalar(const Cost* dp_rest, const Cost* wrow, int n) {
  Cost best = std::numeric_limits<Cost>::max() / 2;
  for (int j = 0; j < n; ++j) {
    const Cost candidate = static_cast<Cost>(dp_rest[j] + wrow[j]);
    if (candidate < best) best = candidate;
  }
  return best;
}

std::int16_t hk_min_i16_scalar(const std::int16_t* dp_rest, const std::int16_t* wrow, int n) {
  return hk_min_scalar<std::int16_t>(dp_rest, wrow, n);
}

std::int32_t hk_min_i32_scalar(const std::int32_t* dp_rest, const std::int32_t* wrow, int n) {
  return hk_min_scalar<std::int32_t>(dp_rest, wrow, n);
}

std::int64_t weight_range_min_scalar(const std::int64_t* w, int count) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < count; ++i) {
    if (w[i] < best) best = w[i];
  }
  return best;
}

int weight_range_count_eq_scalar(const std::int64_t* w, int count, std::int64_t value) {
  int matches = 0;
  for (int i = 0; i < count; ++i) matches += w[i] == value ? 1 : 0;
  return matches;
}

}  // namespace

const KernelTable* scalar_kernel_table() noexcept {
  static const KernelTable table{IsaTier::Scalar,       diam2_row_scalar,
                                 hk_min_i16_scalar,     hk_min_i32_scalar,
                                 weight_range_min_scalar, weight_range_count_eq_scalar};
  return &table;
}

}  // namespace lptsp::kernels
