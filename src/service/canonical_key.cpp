#include "service/canonical_key.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace lptsp {

namespace {

/// color[v] in [0, classes); class ids are canonical ranks, so any two
/// isomorphic graphs produce matching colorings up to the isomorphism.
using Coloring = std::vector<int>;

/// One-dimensional Weisfeiler–Leman refinement: repeatedly re-color every
/// vertex by (own color, sorted multiset of neighbor colors) until the
/// partition stops splitting. Signatures start with the old color, so new
/// classes only ever split old ones and rank order stays canonical.
int refine(const Graph& graph, Coloring& color, int classes) {
  const int n = graph.n();
  while (classes < n) {
    std::vector<std::vector<int>> sig(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      auto& s = sig[static_cast<std::size_t>(v)];
      s.reserve(static_cast<std::size_t>(graph.degree(v)) + 1);
      s.push_back(color[static_cast<std::size_t>(v)]);
      for (const int u : graph.neighbors(v)) s.push_back(color[static_cast<std::size_t>(u)]);
      std::sort(s.begin() + 1, s.end());
    }
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return sig[static_cast<std::size_t>(a)] < sig[static_cast<std::size_t>(b)];
    });
    Coloring next(static_cast<std::size_t>(n));
    int next_classes = 0;
    for (int i = 0; i < n; ++i) {
      if (i > 0 && sig[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] !=
                       sig[static_cast<std::size_t>(order[static_cast<std::size_t>(i - 1)])]) {
        ++next_classes;
      }
      next[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = next_classes;
    }
    ++next_classes;
    if (next_classes == classes) break;  // stable partition
    color = std::move(next);
    classes = next_classes;
  }
  return classes;
}

std::vector<std::pair<int, int>> relabeled_edges(const Graph& graph, const Coloring& color) {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(graph.m()));
  for (const auto& [u, v] : graph.edges()) {
    int a = color[static_cast<std::size_t>(u)];
    int b = color[static_cast<std::size_t>(v)];
    if (a > b) std::swap(a, b);
    edges.emplace_back(a, b);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// True when the vertices in `members` are pairwise interchangeable by an
/// automorphism: uniformly adjacent (clique) or non-adjacent (independent
/// set) among themselves, with identical neighborhoods outside the set.
/// Swapping any two such vertices fixes the rest of the graph, so
/// individualizing ONE member explores the whole orbit — this is what
/// keeps complete graphs, stars, and complete multipartite inputs linear
/// instead of factorial.
bool interchangeable_class(const Graph& graph, const std::vector<int>& members) {
  std::vector<bool> in_class(static_cast<std::size_t>(graph.n()), false);
  for (const int v : members) in_class[static_cast<std::size_t>(v)] = true;
  const bool uniform_adjacent = graph.has_edge(members[0], members[1]);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (graph.has_edge(members[i], members[j]) != uniform_adjacent) return false;
    }
  }
  std::vector<int> reference;
  for (const int u : graph.neighbors(members[0])) {
    if (!in_class[static_cast<std::size_t>(u)]) reference.push_back(u);
  }
  std::sort(reference.begin(), reference.end());
  std::vector<int> outside;
  for (std::size_t i = 1; i < members.size(); ++i) {
    outside.clear();
    for (const int u : graph.neighbors(members[i])) {
      if (!in_class[static_cast<std::size_t>(u)]) outside.push_back(u);
    }
    std::sort(outside.begin(), outside.end());
    if (outside != reference) return false;
  }
  return true;
}

/// Individualization-and-refinement over the WL-stable partition: pick the
/// first non-singleton class (class ids are invariant, so the choice is
/// too), individualize each member in turn, refine, recurse, and keep the
/// lexicographically smallest leaf edge list. Exhausting `budget` flips
/// `exact` off instead of exploring an exponential tree.
struct Searcher {
  const Graph& graph;
  int budget;
  bool exact = true;
  bool have_best = false;
  std::vector<std::pair<int, int>> best_edges;
  Coloring best_color;

  void descend(Coloring color, int classes) {
    const int n = graph.n();
    if (classes == n) {
      auto edges = relabeled_edges(graph, color);
      if (!have_best || edges < best_edges) {
        best_edges = std::move(edges);
        best_color = std::move(color);
        have_best = true;
      }
      return;
    }
    std::vector<int> count(static_cast<std::size_t>(classes), 0);
    for (const int c : color) ++count[static_cast<std::size_t>(c)];
    int target = 0;
    while (count[static_cast<std::size_t>(target)] <= 1) ++target;
    std::vector<int> members;
    for (int v = 0; v < n; ++v) {
      if (color[static_cast<std::size_t>(v)] == target) members.push_back(v);
    }
    const bool orbit = interchangeable_class(graph, members);
    for (const int v : members) {
      if (!exact) return;
      if (--budget < 0) {
        exact = false;
        return;
      }
      Coloring child = color;
      for (int u = 0; u < n; ++u) {
        if (u != v && child[static_cast<std::size_t>(u)] >= target) {
          ++child[static_cast<std::size_t>(u)];
        }
      }
      const int child_classes = refine(graph, child, classes + 1);
      descend(std::move(child), child_classes);
      // All members lead to isomorphic leaves when the class is a single
      // automorphism orbit; one branch is exhaustive.
      if (orbit) break;
    }
  }
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (v ^ (v >> 31)) ^ (h << 13) ^ (h >> 7);
}

void append_i32(std::string& out, int value) {
  const auto u = static_cast<std::uint32_t>(value);
  out.push_back(static_cast<char>(u & 0xff));
  out.push_back(static_cast<char>((u >> 8) & 0xff));
  out.push_back(static_cast<char>((u >> 16) & 0xff));
  out.push_back(static_cast<char>((u >> 24) & 0xff));
}

}  // namespace

CanonicalForm canonical_form(const Graph& graph, const CanonicalFormOptions& options) {
  CanonicalForm form;
  const int n = graph.n();
  form.n = n;
  if (n == 0) {
    form.hash = mix(0, 0);
    return form;
  }

  Coloring color(static_cast<std::size_t>(n));
  {
    // Seed colors with degree ranks (the degree sequence is the zeroth WL
    // round and already splits most random graphs substantially).
    std::vector<int> degrees(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) degrees[static_cast<std::size_t>(v)] = graph.degree(v);
    std::vector<int> distinct = degrees;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
    for (int v = 0; v < n; ++v) {
      color[static_cast<std::size_t>(v)] = static_cast<int>(
          std::lower_bound(distinct.begin(), distinct.end(),
                           degrees[static_cast<std::size_t>(v)]) -
          distinct.begin());
    }
  }
  const int classes = refine(graph, color, static_cast<int>([&] {
                               std::vector<int> c = color;
                               std::sort(c.begin(), c.end());
                               return std::unique(c.begin(), c.end()) - c.begin();
                             }()));

  Searcher searcher{graph, options.branch_budget, true, false, {}, {}};
  if (classes == n) {
    searcher.best_color = color;
    searcher.best_edges = relabeled_edges(graph, color);
    searcher.have_best = true;
  } else {
    searcher.descend(color, classes);
  }

  form.exact = searcher.exact && searcher.have_best;
  if (!form.exact) {
    // Budget exhausted: fall back to an arbitrary (vertex-id tie-broken)
    // discrete refinement. Still a valid relabeling of THIS graph, so the
    // caller can solve in "canonical" space and map back — it just must
    // not be used as a cross-request cache key.
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return color[static_cast<std::size_t>(a)] < color[static_cast<std::size_t>(b)];
    });
    Coloring fallback(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) fallback[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
    searcher.best_color = std::move(fallback);
    searcher.best_edges = relabeled_edges(graph, searcher.best_color);
  }

  form.to_canonical = std::move(searcher.best_color);
  form.edges = std::move(searcher.best_edges);
  std::uint64_t h = mix(0x6c7f1a5d3b2e9c41ULL, static_cast<std::uint64_t>(n));
  for (const auto& [u, v] : form.edges) {
    h = mix(h, (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v));
  }
  form.hash = h;
  return form;
}

std::string graph_key(const CanonicalForm& form) {
  std::string key;
  key.reserve(2 + 4 + form.edges.size() * 8);
  key.push_back('G');
  append_i32(key, form.n);
  for (const auto& [u, v] : form.edges) {
    append_i32(key, u);
    append_i32(key, v);
  }
  return key;
}

std::string result_key(const CanonicalForm& form, const PVec& p) {
  std::string key = graph_key(form);
  key.push_back('P');
  append_i32(key, p.k());
  for (const int entry : p.entries()) append_i32(key, entry);
  return key;
}

std::vector<Weight> map_labels_from_canonical(const CanonicalForm& form,
                                              const std::vector<Weight>& canonical_labels) {
  LPTSP_REQUIRE(form.to_canonical.size() == canonical_labels.size(),
                "canonical form / label size mismatch");
  std::vector<Weight> labels(canonical_labels.size());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    labels[v] = canonical_labels[static_cast<std::size_t>(form.to_canonical[v])];
  }
  return labels;
}

}  // namespace lptsp
