#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pvec.hpp"
#include "core/solvers.hpp"
#include "graph/bfs.hpp"
#include "obs/metrics.hpp"

namespace lptsp {

class PersistentBackend;  // store/backend.hpp — optional durability sink

/// Cached per canonical graph (p-independent): the all-pairs distance
/// matrix in canonical vertex numbering. A hit here skips the O(nm) BFS,
/// the dominant reduction cost on dense small-diameter graphs; only the
/// O(n^2) matrix fill with the request's p remains.
struct ReductionEntry {
  DistanceMatrix dist;
  int diameter = 0;
  bool connected = true;
};

/// Cached per (canonical graph, p): a verified labeling in canonical
/// vertex numbering. A hit skips reduction AND engine entirely; the
/// service only has to permute labels onto the requester's vertex ids.
struct ResultEntry {
  std::vector<Weight> labels;
  Weight span = 0;
  bool optimal = false;
  Engine engine = Engine::ChainedLK;
  /// The wall-clock budget (ms) the producing race ran under; 0 means
  /// unlimited. A non-optimal entry produced under a finite budget is
  /// "upgradeable": a later request with more budget re-solves and
  /// refreshes the entry instead of being served the truncated result
  /// forever.
  std::int64_t deadline_ms = 0;
  /// True when this entry was reloaded (and re-verified) from the durable
  /// store rather than produced by an engine in this process — the basis
  /// of the persisted-hit observability counter.
  bool from_disk = false;
};

struct CacheStats {
  std::uint64_t result_hits = 0;
  std::uint64_t result_misses = 0;
  std::uint64_t reduction_hits = 0;
  std::uint64_t reduction_misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Result hits served by entries that warm_from_disk() loaded — the
  /// restart-survival payoff, separated from ordinary warm-process hits.
  std::uint64_t persisted_hits = 0;
};

/// Sharded, mutex-striped LRU cache for solve results and reductions.
///
/// Keys are the exact byte strings from service/canonical_key.hpp: the
/// canonical edge list is part of the key, so a lookup hit proves the
/// graphs isomorphic — a hash collision can cost a shard probe, never a
/// wrong answer. Striping: a key's shard is fixed by its hash, each shard
/// holds independent LRU lists + maps under its own mutex, so concurrent
/// requests only contend when they land on the same shard.
///
/// Results and reductions live in separate LRU namespaces with separate
/// budgets: a flood of one-off reductions can never evict hot results past
/// the result budget (and vice versa), so the two workloads cannot starve
/// each other however traffic is mixed.
class SolveCache {
 public:
  struct Config {
    /// Target max RESULT entries across all shards. Rounded UP to a
    /// multiple of shards (each shard gets ceil(capacity/shards)), so
    /// actual residency can exceed this by up to shards-1 entries.
    std::size_t capacity = 4096;
    std::size_t shards = 8;  ///< mutex stripes (>= 1)
    /// Target max REDUCTION entries across all shards; 0 = same as
    /// `capacity`. Total residency is bounded by the two budgets summed.
    std::size_t reduction_capacity = 0;
  };

  /// Outcome of warm_from_disk(), for logs and the restart bench.
  struct WarmStats {
    std::uint64_t loaded = 0;    ///< records verified and inserted
    std::uint64_t rejected = 0;  ///< undecodable or failed re-verification
    double seconds = 0;          ///< wall time of the load (decode + verify)
  };

  SolveCache() : SolveCache(Config{}) {}
  explicit SolveCache(const Config& config);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  std::shared_ptr<const ReductionEntry> find_reduction(const std::string& key);
  void put_reduction(const std::string& key, std::shared_ptr<const ReductionEntry> entry);

  std::shared_ptr<const ResultEntry> find_result(const std::string& key);
  void put_result(const std::string& key, std::shared_ptr<const ResultEntry> entry);

  /// Durable write-through: inserts like put_result and, when a backend is
  /// attached AND the in-memory cache accepted the entry (it was new or
  /// strictly better than the resident one), appends it to the store. The
  /// canonical graph and p make the persisted record self-verifying on
  /// reload; they are not retained in memory.
  void put_result(const std::string& key, const Graph& canon, const PVec& p,
                  std::shared_ptr<const ResultEntry> entry);

  /// Attach the durability sink used by the write-through overload and
  /// warm_from_disk(). Call before traffic starts; not thread-safe against
  /// concurrent puts.
  void attach_backend(std::shared_ptr<PersistentBackend> backend);

  [[nodiscard]] const std::shared_ptr<PersistentBackend>& backend() const noexcept {
    return backend_;
  }

  /// Reload every persisted result from the attached backend. Each record
  /// is re-verified from its own bytes (decode the canonical graph, redo
  /// the distance BFS, check the labeling and span) before insertion; bad
  /// records — bit rot the CRC missed, tampering, stale formats — are
  /// counted and skipped, never served and never fatal. No-op without a
  /// backend.
  WarmStats warm_from_disk();

  /// Entries currently resident (sums shard sizes; racy but monotonic
  /// enough for monitoring).
  [[nodiscard]] std::size_t size() const;
  /// Per-namespace residency, for the budget-isolation guarantees.
  [[nodiscard]] std::size_t result_entries() const;
  [[nodiscard]] std::size_t reduction_entries() const;

  [[nodiscard]] CacheStats stats() const;

  /// Publish the cache's counters (per-namespace hits/misses, insertions,
  /// evictions, persisted hits) and residency gauges into `registry`,
  /// tagged with `owner` (defaults to this cache). The cache must outlive
  /// the registry's snapshots or deregister(owner) first.
  void register_metrics(obs::MetricRegistry& registry, const void* owner = nullptr) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Drop every entry (stats are kept; the durable store is untouched).
  void clear();

 private:
  /// LRU namespace index. Values are type-erased so both entry types share
  /// the LRU machinery; the space pins each key to exactly one entry type,
  /// so the typed accessors can cast back safely.
  enum Space : std::size_t { kResultSpace = 0, kReductionSpace = 1, kSpaces = 2 };

  struct Lru {
    std::list<std::pair<std::string, std::shared_ptr<const void>>> order;  // front = hottest
    std::unordered_map<std::string, decltype(order)::iterator> index;
  };

  struct Shard {
    std::mutex mutex;
    Lru spaces[kSpaces];
  };

  Shard& shard_for(const std::string& key);
  std::shared_ptr<const void> find(const std::string& key, Space space, obs::Counter& hits,
                                   obs::Counter& misses);
  /// `keep_existing(existing, incoming)` returning true suppresses a
  /// refresh-in-place — the compare runs under the shard lock, which is
  /// what makes "a worse concurrent solve can never degrade a better
  /// cached entry" hold under races. Returns true when the incoming entry
  /// was inserted or refreshed (false = resident entry kept), which gates
  /// the durable write-through.
  bool put(const std::string& key, Space space, std::shared_ptr<const void> value,
           bool (*keep_existing)(const void* existing, const void* incoming) = nullptr);
  std::size_t space_entries(Space space) const;
  static bool keep_better_result(const void* existing, const void* incoming);

  Config config_;
  std::size_t per_shard_capacity_[kSpaces] = {0, 0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<PersistentBackend> backend_;
  // obs::Counter members (relaxed atomics underneath) double as the
  // stats() source and the storage the metric registry reads — one set of
  // numbers, two consumers.
  obs::Counter result_hits_;
  obs::Counter result_misses_;
  obs::Counter reduction_hits_;
  obs::Counter reduction_misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter persisted_hits_;
};

}  // namespace lptsp
