#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solvers.hpp"
#include "graph/bfs.hpp"

namespace lptsp {

/// Cached per canonical graph (p-independent): the all-pairs distance
/// matrix in canonical vertex numbering. A hit here skips the O(nm) BFS,
/// the dominant reduction cost on dense small-diameter graphs; only the
/// O(n^2) matrix fill with the request's p remains.
struct ReductionEntry {
  DistanceMatrix dist;
  int diameter = 0;
  bool connected = true;
};

/// Cached per (canonical graph, p): a verified labeling in canonical
/// vertex numbering. A hit skips reduction AND engine entirely; the
/// service only has to permute labels onto the requester's vertex ids.
struct ResultEntry {
  std::vector<Weight> labels;
  Weight span = 0;
  bool optimal = false;
  Engine engine = Engine::ChainedLK;
  /// The wall-clock budget (ms) the producing race ran under; 0 means
  /// unlimited. A non-optimal entry produced under a finite budget is
  /// "upgradeable": a later request with more budget re-solves and
  /// refreshes the entry instead of being served the truncated result
  /// forever.
  std::int64_t deadline_ms = 0;
};

struct CacheStats {
  std::uint64_t result_hits = 0;
  std::uint64_t result_misses = 0;
  std::uint64_t reduction_hits = 0;
  std::uint64_t reduction_misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Sharded, mutex-striped LRU cache for solve results and reductions.
///
/// Keys are the exact byte strings from service/canonical_key.hpp: the
/// canonical edge list is part of the key, so a lookup hit proves the
/// graphs isomorphic — a hash collision can cost a shard probe, never a
/// wrong answer. Striping: a key's shard is fixed by its hash, each shard
/// holds an independent LRU list + map under its own mutex, so concurrent
/// requests only contend when they land on the same shard.
class SolveCache {
 public:
  struct Config {
    /// Target max entries across all shards. Rounded UP to a multiple of
    /// shards (each shard gets ceil(capacity/shards)), so actual residency
    /// can exceed this by up to shards-1 entries.
    std::size_t capacity = 4096;
    std::size_t shards = 8;  ///< mutex stripes (>= 1)
  };

  SolveCache() : SolveCache(Config{}) {}
  explicit SolveCache(const Config& config);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  std::shared_ptr<const ReductionEntry> find_reduction(const std::string& key);
  void put_reduction(const std::string& key, std::shared_ptr<const ReductionEntry> entry);

  std::shared_ptr<const ResultEntry> find_result(const std::string& key);
  void put_result(const std::string& key, std::shared_ptr<const ResultEntry> entry);

  /// Entries currently resident (sums shard sizes; racy but monotonic
  /// enough for monitoring).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Drop every entry (stats are kept).
  void clear();

 private:
  // Values are type-erased so result and reduction entries share the LRU
  // machinery; the key namespace ('G' vs 'G...P' suffix from
  // canonical_key.hpp) pins each key to exactly one entry type, so the
  // typed accessors can cast back safely.
  struct Shard {
    std::mutex mutex;
    std::list<std::pair<std::string, std::shared_ptr<const void>>> lru;  // front = hottest
    std::unordered_map<std::string, decltype(lru)::iterator> index;
  };

  Shard& shard_for(const std::string& key);
  std::shared_ptr<const void> find(const std::string& key, std::atomic<std::uint64_t>& hits,
                                   std::atomic<std::uint64_t>& misses);
  /// `keep_existing(existing, incoming)` returning true suppresses a
  /// refresh-in-place — the compare runs under the shard lock, which is
  /// what makes "a worse concurrent solve can never degrade a better
  /// cached entry" hold under races.
  void put(const std::string& key, std::shared_ptr<const void> value,
           bool (*keep_existing)(const void* existing, const void* incoming) = nullptr);

  Config config_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> result_hits_{0};
  std::atomic<std::uint64_t> result_misses_{0};
  std::atomic<std::uint64_t> reduction_hits_{0};
  std::atomic<std::uint64_t> reduction_misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace lptsp
