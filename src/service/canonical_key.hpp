#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pvec.hpp"
#include "graph/graph.hpp"
#include "tsp/instance.hpp"

namespace lptsp {

/// Canonical form of a graph under vertex relabeling, used as the solve
/// cache key. Two graphs receive identical `edges` if and only if they are
/// isomorphic (when `exact`), so a cache keyed on the canonical edge list
/// can never serve a wrong answer, and `to_canonical` lets the service map
/// a labeling solved in canonical space back onto the caller's vertex ids.
struct CanonicalForm {
  /// to_canonical[v] = canonical index of original vertex v.
  std::vector<int> to_canonical;
  /// Edge list of the canonically relabeled graph, (u, v) with u < v,
  /// sorted lexicographically.
  std::vector<std::pair<int, int>> edges;
  int n = 0;
  /// Order-insensitive fingerprint of (n, edges) for logging and quick
  /// isomorphism-identity checks; cache lookups always compare the full
  /// edge-list key, never this hash alone.
  std::uint64_t hash = 0;
  /// True when the individualization search ran to completion, which makes
  /// the form a genuine canonical invariant. False means the search budget
  /// was exhausted (pathologically symmetric inputs); such forms are valid
  /// relabelings but NOT canonical, and must bypass the cache.
  bool exact = true;
};

struct CanonicalFormOptions {
  /// Budget on individualization branches explored. Weisfeiler–Leman color
  /// refinement is discrete (no branching at all) for almost all graphs;
  /// vertex-transitive inputs like Petersen need a handful of branches.
  /// Exhausting the budget flips `exact` off rather than spending
  /// super-polynomial time on adversarial symmetric graphs.
  int branch_budget = 512;
};

/// Compute a canonical form by degree-seeded Weisfeiler–Leman color
/// refinement with individualization-and-refinement tie-breaking (the
/// textbook nauty scheme, minus automorphism pruning). Cost is
/// O(rounds * (n + m) log n) on WL-discrete graphs — far below the O(nm)
/// all-pairs BFS it lets the cache skip.
CanonicalForm canonical_form(const Graph& graph, const CanonicalFormOptions& options = {});

/// Byte-string cache key for the canonical graph alone (reduction cache).
std::string graph_key(const CanonicalForm& form);

/// Byte-string cache key for (canonical graph, p) (result cache).
std::string result_key(const CanonicalForm& form, const PVec& p);

/// Map labels solved in canonical space back to the original vertex ids of
/// the graph `form` was computed from: result[v] = canonical_labels[
/// form.to_canonical[v]]. Valid because isomorphisms preserve distances,
/// hence the L(p) constraints.
std::vector<Weight> map_labels_from_canonical(const CanonicalForm& form,
                                              const std::vector<Weight>& canonical_labels);

}  // namespace lptsp
