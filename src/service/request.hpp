#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "core/solvers.hpp"
#include "graph/graph.hpp"

namespace lptsp {

/// One labeling request submitted to the batch solver: a graph, the
/// constraint vector, and per-request quality-of-service knobs.
struct SolveRequest {
  Graph graph{0};
  PVec p = PVec::L21();
  /// Soft wall-clock budget for the engine race; 0 = use the service
  /// default. The portfolio cancels cancellable engines at the deadline
  /// and returns the best verified result found so far.
  std::chrono::milliseconds deadline{0};
  /// Pin a specific engine instead of racing the portfolio (e.g. for
  /// reproducing a paper experiment through the service front-end).
  std::optional<Engine> engine;
  /// Higher-priority requests are scheduled earlier within a batch.
  int priority = 0;
  /// Caller correlation tag, echoed back verbatim in the response.
  std::uint64_t id = 0;
  /// Cross-process trace context: a client-generated id joining the
  /// client's and server's trace rings. 0 = no context. Carried on the
  /// wire from protocol v4; older peers simply never see it.
  std::uint64_t trace_id = 0;
  /// The client asked for this trace to be retained end to end (bypasses
  /// the server ring's slow threshold).
  bool trace_sampled = false;
};

/// How a response was produced, for observability and cache accounting.
enum class ResponseSource {
  Solved,       ///< a fresh engine run produced the labeling
  ResultCache,  ///< served from the solve cache (no engine ran)
  Coalesced,    ///< deduplicated onto another in-flight identical request
};

/// Compile-checked source names (no default + -Werror=switch: an unnamed
/// new enumerator fails the build, not the log line).
constexpr const char* response_source_name_cstr(ResponseSource source) noexcept {
  switch (source) {
    case ResponseSource::Solved: return "solved";
    case ResponseSource::ResultCache: return "result-cache";
    case ResponseSource::Coalesced: return "coalesced";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

std::string response_source_name(ResponseSource source);

/// Outcome of one SolveRequest. Invalid requests come back with a typed
/// status and message instead of an exception, so one bad graph cannot
/// poison a batch.
struct SolveResponse {
  std::uint64_t id = 0;
  SolveStatus status = SolveStatus::EngineFailure;
  std::string message;            ///< detail when !ok()
  Labeling labeling;              ///< verified L(p)-labeling (when ok())
  Weight span = 0;
  bool optimal = false;           ///< certified optimal by an exact engine
  Engine engine = Engine::ChainedLK;  ///< engine that produced the labels
  ResponseSource source = ResponseSource::Solved;
  bool reduction_cached = false;  ///< the all-pairs BFS was skipped
  double seconds = 0;             ///< wall time spent on this request
  /// RejectedOverload hint: how long the client should back off before
  /// retrying, in milliseconds. 0 = no hint. Carried on the wire from
  /// protocol v3; older peers simply never see it.
  std::uint32_t retry_after_ms = 0;
  /// Server-side timing echo: queue wait and service time in
  /// nanoseconds, so the client can split its observed turnaround into
  /// transit vs server work. 0 = not measured. Carried on the wire from
  /// protocol v4; older peers simply never see it.
  std::uint64_t server_queue_ns = 0;
  std::uint64_t server_service_ns = 0;

  [[nodiscard]] bool ok() const noexcept { return status == SolveStatus::Ok; }
};

inline std::string response_source_name(ResponseSource source) {
  return response_source_name_cstr(source);
}

}  // namespace lptsp
