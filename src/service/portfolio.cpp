#include "service/portfolio.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <utility>

#include "service/tuner.hpp"
#include "tsp/branch_bound.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/held_karp.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace lptsp {

// The tuner keeps its own per-bucket state; the two tables must agree on
// what a bucket is.
static_assert(EngineTuner::kBuckets == EnginePortfolio::kBuckets,
              "tuner and portfolio must agree on the size bucketing");

namespace {

/// Without a tuner: once the exact engine has this many heuristic losses
/// on record at a size bucket and no win, stop launching it by default —
/// but see kFallbackReprobeEvery below; the skip is never permanent.
constexpr std::uint64_t kExactSkipThreshold = 8;

/// Without a tuner: every Nth otherwise-skipped race launches the exact
/// engine anyway. The win table is cumulative (and merged from persisted
/// state on restart), so a skip gated only on its counts would be
/// self-reinforcing — the exact engine could never earn the win that
/// lifts the skip.
constexpr std::uint64_t kFallbackReprobeEvery = 16;

struct Run {
  EngineAttempt attempt;
  PathSolution solution;
};

}  // namespace

EnginePortfolio::EnginePortfolio(TaskPool& pool, const PortfolioOptions& options)
    : pool_(pool), options_(options) {}

int EnginePortfolio::bucket_of(int n) noexcept {
  const int width = std::bit_width(static_cast<unsigned>(std::max(1, n)));
  return std::min(width, kBuckets - 1);
}

int EnginePortfolio::slot_of(Engine engine) noexcept {
  switch (engine) {
    case Engine::HeldKarp: return 0;
    case Engine::BranchBound: return 1;
    default: return 2;  // every heuristic maps to the ChainedLK slot
  }
}

std::uint64_t EnginePortfolio::wins(int n, Engine engine) const {
  return wins_[static_cast<std::size_t>(bucket_of(n))][static_cast<std::size_t>(slot_of(engine))]
      .load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> EnginePortfolio::win_table() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(static_cast<std::size_t>(kBuckets) * kSlots);
  for (const auto& bucket : wins_) {
    for (const auto& slot : bucket) counts.push_back(slot.load(std::memory_order_relaxed));
  }
  return counts;
}

void EnginePortfolio::merge_win_table(const std::vector<std::uint64_t>& counts) {
  if (counts.size() != static_cast<std::size_t>(kBuckets) * kSlots) return;
  std::size_t i = 0;
  for (auto& bucket : wins_) {
    for (auto& slot : bucket) slot.fetch_add(counts[i++], std::memory_order_relaxed);
  }
}

Engine EnginePortfolio::preferred_engine(int n) const {
  const auto& bucket = wins_[static_cast<std::size_t>(bucket_of(n))];
  const std::uint64_t hk = bucket[0].load(std::memory_order_relaxed);
  const std::uint64_t bb = bucket[1].load(std::memory_order_relaxed);
  const std::uint64_t lk = bucket[2].load(std::memory_order_relaxed);
  if (hk == 0 && bb == 0 && lk == 0) {
    return n <= std::min(options_.exact_max_n, kHeldKarpMemoryCapN) ? Engine::HeldKarp
                                                                    : Engine::ChainedLK;
  }
  if (hk >= bb && hk >= lk) return Engine::HeldKarp;
  if (bb >= lk) return Engine::BranchBound;
  return Engine::ChainedLK;
}

PortfolioOutcome EnginePortfolio::race(const MetricInstance& instance,
                                       std::optional<std::chrono::milliseconds> deadline_override) {
  const Timer timer;
  // Injected engine stall (chaos harness): burn wall time on this worker
  // before any engine starts, driving the pending gauge up the same way a
  // pathological instance would.
  fault::maybe_stall(FaultSite::EngineStall);
  const int n = instance.n();
  LPTSP_REQUIRE(n >= 1, "portfolio requires a non-empty instance");
  const std::chrono::milliseconds deadline = deadline_override.value_or(options_.deadline);

  PortfolioOutcome outcome;
  races_total_.add();
  if (n <= 3) {
    // Too small to be worth a race (or a thread hop): enumerate exactly.
    // Counted in races_total but not in any per-engine slot — brute force
    // shares the heuristic slot in the win table, and folding its
    // microsecond runs into chained-lk's latency histogram would skew it.
    outcome.solution = brute_force_path(instance);
    outcome.optimal = true;
    outcome.winner = Engine::BruteForce;
    outcome.attempts.push_back(
        {Engine::BruteForce, true, true, true, outcome.solution.cost, timer.seconds(), {}});
    outcome.seconds = timer.seconds();
    return outcome;
  }

  // Pick the exact contender. Held–Karp polls the race's cancel flag at
  // its layer boundaries, so it may race well beyond the sizes whose
  // predicted runtime (~2^n n^2 simple ops) fits the deadline — a 4x
  // overrun prediction is tolerated because a cancelled HK now forfeits
  // cleanly instead of blowing the deadline. Only when HK is predicted
  // hopeless (or exceeds its memory cap) does the O(n)-memory BranchBound
  // take the slot: unlike HK, a cancelled BranchBound still contributes
  // its anytime incumbent, which matters on deadline-bound traffic.
  // Learned per-bucket effort: scales heuristic kicks and the exact
  // budgets; 100% with the default overrun factor when no tuner is
  // attached (or learning is off).
  EngineTuner* const tuner = options_.learn ? tuner_ : nullptr;
  const EffortPolicy effort =
      tuner != nullptr ? tuner->effort(bucket_of(n)) : EffortPolicy{};

  bool use_hk = n <= std::min(options_.exact_max_n, kHeldKarpMemoryCapN);
  if (use_hk && deadline.count() > 0) {
    const double predicted_ms = std::ldexp(1.0, n) * n * n / 1e6;
    if (predicted_ms > effort.hk_overrun_factor * static_cast<double>(deadline.count())) {
      use_hk = false;
    }
  }
  const Engine exact_engine = use_hk ? Engine::HeldKarp : Engine::BranchBound;

  bool run_exact = true;
  if (heuristic_only_.load(std::memory_order_relaxed)) {
    // Brownout rung 1: shed the exact engine, keep the bounded heuristic.
    run_exact = false;
    races_heuristic_only_.add();
  }
  if (run_exact && options_.learn) {
    const int bucket_index = bucket_of(n);
    if (tuner != nullptr) {
      // Decayed pre-trim with epsilon re-probe (the tuner journals its
      // own trim flips and counts skips/re-probes).
      run_exact = tuner->admit_exact(bucket_index);
    } else {
      const auto& bucket = wins_[static_cast<std::size_t>(bucket_index)];
      const std::uint64_t exact_wins = bucket[0].load(std::memory_order_relaxed) +
                                       bucket[1].load(std::memory_order_relaxed);
      const std::uint64_t heuristic_wins = bucket[2].load(std::memory_order_relaxed);
      if (exact_wins == 0 && heuristic_wins >= kExactSkipThreshold) {
        const std::uint64_t skips =
            skip_streak_[static_cast<std::size_t>(bucket_index)].fetch_add(
                1, std::memory_order_relaxed) +
            1;
        if (skips % kFallbackReprobeEvery != 0) run_exact = false;
      }
    }
  }

  std::atomic<bool> cancel{false};
  std::vector<std::future<Run>> futures;

  if (run_exact) {
    futures.push_back(pool_.submit([this, &instance, &cancel, exact_engine, effort]() -> Run {
      const Timer attempt_timer;
      Run run;
      run.attempt.engine = exact_engine;
      run.solution.cost = -1;
      try {
        if (exact_engine == Engine::HeldKarp) {
          HeldKarpOptions hk;
          hk.cancel = &cancel;
          HeldKarpRun result = held_karp_path_run(instance, hk);
          run.solution = std::move(result.solution);
          run.attempt.finished = result.completed;
          run.attempt.work.hk_layers = result.layers;
          run.attempt.work.hk_cells = result.cells;
        } else {
          BranchBoundOptions bb;
          // Effort-scaled search cap, floored so a harshly down-tuned
          // bucket still explores enough nodes to beat a greedy tour.
          bb.node_limit =
              std::max<long long>(100'000, options_.bb_node_limit * effort.percent / 100);
          bb.cancel = &cancel;
          BranchBoundRun result = branch_bound_path_run(instance, bb);
          run.solution = std::move(result.solution);
          run.attempt.finished = result.completed;
          run.attempt.work.bb_nodes = static_cast<std::uint64_t>(result.nodes);
          run.attempt.work.bb_pruned = static_cast<std::uint64_t>(result.pruned);
        }
      } catch (const precondition_error&) {
        // Node limit exceeded: the search forfeits this race.
        run.solution.cost = -1;
      }
      run.attempt.seconds = attempt_timer.seconds();
      return run;
    }));
  }

  futures.push_back(pool_.submit([this, &instance, &cancel, n, effort]() -> Run {
    const Timer attempt_timer;
    Run run;
    run.attempt.engine = Engine::ChainedLK;
    ChainedLkOptions lk;
    lk.seed = options_.seed;
    lk.cancel = &cancel;
    // Scale kick effort down as n grows so one kick round stays well under
    // typical deadlines and the cancel flag is polled often; the tuner's
    // learned per-bucket effort then scales that baseline up or down.
    lk.restarts = 3;
    lk.kicks = std::max(4, std::max(8, 200 / std::max(1, n / 16)) * effort.percent / 100);
    ChainedLkRun result = chained_lk_path_run(instance, lk);
    run.solution = std::move(result.solution);
    run.attempt.finished = result.completed;
    run.attempt.work.lk_kicks = result.kicks;
    run.attempt.work.lk_accepted = result.accepted;
    run.attempt.work.lk_wakes = result.wakes;
    run.attempt.work.lk_moves = result.moves;
    run.attempt.seconds = attempt_timer.seconds();
    return run;
  }));

  // Join phase. Every future must be joined even when one throws
  // (invariant errors, bad_alloc): the tasks reference this frame's
  // `cancel` and the caller's instance, so abandoning one on unwind would
  // be a use-after-free.
  std::vector<Run> runs;
  runs.reserve(futures.size());
  std::exception_ptr first_error;
  const auto join_one = [&](std::future<Run>& future) -> Run* {
    try {
      runs.push_back(future.get());
      return &runs.back();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      cancel.store(true, std::memory_order_relaxed);
      return nullptr;
    }
  };
  const auto until = deadline.count() > 0
                         ? std::chrono::steady_clock::now() + deadline
                         : std::chrono::steady_clock::time_point::max();

  // If the exact engine certifies an optimum before the deadline, the
  // heuristic provably cannot win (ties go to the optimal attempt), so
  // stop it immediately instead of letting it kick until the deadline.
  if (run_exact && futures[0].wait_until(until) == std::future_status::ready) {
    Run* exact_run = join_one(futures[0]);
    if (exact_run != nullptr && exact_run->attempt.finished && exact_run->solution.cost >= 0) {
      cancel.store(true, std::memory_order_relaxed);
    }
  }
  for (auto& future : futures) {
    if (future.valid()) future.wait_until(until);
  }
  cancel.store(true, std::memory_order_relaxed);
  for (auto& future : futures) {
    if (future.valid()) join_one(future);
  }
  if (first_error) std::rethrow_exception(first_error);

  int best = -1;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    Run& run = runs[i];
    EngineAttempt& attempt = run.attempt;
    attempt.cost = run.solution.cost;
    attempt.verified = run.solution.cost >= 0 && is_valid_order(run.solution.order, n) &&
                       path_length(instance, run.solution.order) == run.solution.cost;
    const bool exact = attempt.engine == Engine::HeldKarp || attempt.engine == Engine::BranchBound;
    attempt.optimal = attempt.verified && attempt.finished && exact;
    if (attempt.verified &&
        (best < 0 || run.solution.cost < runs[static_cast<std::size_t>(best)].solution.cost ||
         (run.solution.cost == runs[static_cast<std::size_t>(best)].solution.cost &&
          attempt.optimal && !runs[static_cast<std::size_t>(best)].attempt.optimal))) {
      best = static_cast<int>(i);
    }
  }
  for (const Run& run : runs) {
    outcome.attempts.push_back(run.attempt);
    outcome.work.merge(run.attempt.work);
    work_.add(run.attempt.work);
    const auto slot = static_cast<std::size_t>(slot_of(run.attempt.engine));
    slot_latency_[slot].record(static_cast<std::uint64_t>(run.attempt.seconds * 1e9));
    if (!run.attempt.finished) slot_cancelled_[slot].add();
  }

  int verified_attempts = 0;
  for (const Run& run : runs) {
    if (run.attempt.verified) ++verified_attempts;
  }
  if (best >= 0) {
    Run& winner = runs[static_cast<std::size_t>(best)];
    outcome.solution = std::move(winner.solution);
    outcome.optimal = winner.attempt.optimal;
    outcome.winner = winner.attempt.engine;
    slot_wins_[static_cast<std::size_t>(slot_of(outcome.winner))].add();
    if (verified_attempts >= 2) {
      // Only contested races teach the scheduler anything. Walkovers —
      // including races where a cancelled Held–Karp forfeited without a
      // solution — would make an exact-engine skip self-reinforcing.
      wins_[static_cast<std::size_t>(bucket_of(n))]
           [static_cast<std::size_t>(slot_of(outcome.winner))]
               .fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    outcome.solution.cost = -1;  // no engine verified — caller reports EngineFailure
    races_failed_.add();
  }
  outcome.seconds = timer.seconds();
  if (tuner != nullptr) {
    // Feed the race back: contested mirrors the win table's rule, so the
    // tuner's decayed scores and the persisted counts learn from the same
    // evidence. Walkovers still teach the latency predictor and the
    // effort windows — they are real costs the admission gate must price.
    const bool exact_won = best >= 0 && (outcome.winner == Engine::HeldKarp ||
                                         outcome.winner == Engine::BranchBound);
    tuner->observe_race(bucket_of(n), exact_won, best >= 0 && verified_attempts >= 2,
                        static_cast<std::uint64_t>(outcome.seconds * 1e9), deadline.count());
  }
  return outcome;
}

void EnginePortfolio::register_metrics(obs::MetricRegistry& registry, const void* owner) const {
  if (owner == nullptr) owner = this;
  registry.register_counter("races_total", &races_total_, owner);
  registry.register_counter("races_failed", &races_failed_, owner);
  registry.register_counter("races_heuristic_only", &races_heuristic_only_, owner);
  // Slot order mirrors slot_of(): HeldKarp / BranchBound / ChainedLK.
  static constexpr const char* kSlotNames[kSlots] = {"held_karp", "branch_bound", "chained_lk"};
  for (int slot = 0; slot < kSlots; ++slot) {
    const auto i = static_cast<std::size_t>(slot);
    registry.register_counter(std::string("engine_race_wins_") + kSlotNames[i], &slot_wins_[i],
                              owner);
    registry.register_counter(std::string("engine_race_cancelled_") + kSlotNames[i],
                              &slot_cancelled_[i], owner);
    registry.register_histogram(std::string("engine_ns_") + kSlotNames[i], &slot_latency_[i],
                                owner);
  }
  work_.register_into(registry, owner);
}

}  // namespace lptsp
