#include "service/batch_solver.hpp"

#include <algorithm>
#include <utility>

#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "graph/operations.hpp"
#include "store/backend.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace lptsp {

namespace {

/// Requests pinning an engine live in their own cache/coalescing
/// namespace: "run Held-Karp" must not be answered with a cached
/// ChainedLK labeling (or vice versa), even though both label the same
/// instance. Portfolio requests (no pin) share the '\0' namespace.
void append_engine_tag(std::string& key, const std::optional<Engine>& engine) {
  key.push_back('E');
  key.push_back(engine.has_value() ? static_cast<char>(1 + static_cast<int>(*engine)) : '\0');
}

/// Join every future before letting the first exception escape: the tasks
/// write into the caller's frame, so abandoning one on unwind would leave
/// it racing a destroyed stack.
void join_all(std::vector<std::future<void>>& tasks) {
  std::exception_ptr first_error;
  for (auto& task : tasks) {
    try {
      task.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

BatchSolver::BatchSolver(const Options& options)
    : options_(options),
      traces_(obs::TraceRing::Config{
          options.trace_capacity,
          static_cast<std::uint64_t>(options.trace_threshold.count()) * 1'000'000}),
      cache_(options.cache),
      tuner_(options.tuner, options.portfolio.deadline),
      engine_pool_(options.engine_workers),
      portfolio_(engine_pool_, options.portfolio),
      request_pool_(options.request_workers) {
  tuner_.attach_key_profile(&key_profile_);
  if (options_.tuner.enabled) portfolio_.attach_tuner(&tuner_);
  if (!options_.store_path.empty()) {
    PersistentBackend::Options store_options;
    store_options.path = options_.store_path;
    store_options.sync_every_put = options_.store_sync_every_put;
    store_options.degraded_after_failures = options_.store_degraded_after_failures;
    store_options.reopen_probe_interval = options_.store_reopen_probe_interval;
    std::string error;
    backend_ = PersistentBackend::open(store_options, error);
    LPTSP_REQUIRE(backend_ != nullptr, "cannot open durable store: " + error);
    // With the cache disabled, results are neither written through nor
    // served, so skip attaching and the per-record re-verification of a
    // warm load — the store still carries the win table (engine-choice
    // learning is independent of result caching).
    if (options_.use_cache) {
      cache_.attach_backend(backend_);
      warm_stats_ = cache_.warm_from_disk();
    }
    if (const auto table = backend_->load_win_table()) {
      if (table->buckets == EnginePortfolio::kBuckets && table->slots == EnginePortfolio::kSlots) {
        portfolio_.merge_win_table(table->counts);
        // Seed the tuner's decayed scores from the same history (capped):
        // the pre-trim resumes where the last process left off, but —
        // unlike the raw cumulative counts — the seed decays away, so a
        // heuristic-heavy table biases the first decisions without ever
        // freezing the exact engine out (the re-probe regression).
        tuner_.seed_from_win_table(table->counts, EnginePortfolio::kSlots);
      }
    }
  }
  register_metrics();
}

void BatchSolver::register_metrics() {
  registry_.register_counter("requests_total", &requests_total_, this);
  registry_.register_counter("requests_coalesced", &requests_coalesced_, this);
  registry_.register_counter("engine_solves", &engine_solves_, this);
  registry_.register_counter("rejected_overload", &rejected_overload_, this);
  registry_.register_counter("rejected_work_priced", &rejected_work_priced_, this);
  registry_.register_gauge(
      "pending_requests", [this] { return static_cast<std::int64_t>(pending_requests()); }, this);
  registry_.register_gauge(
      "pending_work_ns", [this] { return static_cast<std::int64_t>(pending_work_ns()); }, this);
  // Warm-load outcome as gauges: fixed after construction, but gauges keep
  // them out of rate() queries where a counter would mislead.
  registry_.register_gauge(
      "warm_loaded", [this] { return static_cast<std::int64_t>(warm_stats_.loaded); }, this);
  registry_.register_gauge(
      "warm_rejected", [this] { return static_cast<std::int64_t>(warm_stats_.rejected); }, this);
  registry_.register_histogram("request_ns", &request_ns_, this);
  registry_.register_histogram("queue_wait_ns", &queue_wait_ns_, this);
  registry_.register_histogram("canonical_ns", &canonical_ns_, this);
  registry_.register_histogram("cache_lookup_ns", &cache_lookup_ns_, this);
  registry_.register_histogram("reduction_ns", &reduction_ns_, this);
  registry_.register_histogram("engine_race_ns", &engine_race_ns_, this);
  registry_.register_histogram("verify_ns", &verify_ns_, this);
  registry_.register_histogram("store_put_ns", &store_put_ns_, this);
  registry_.register_histogram("coalesced_wait_ns", &coalesced_wait_ns_, this);
  cache_.register_metrics(registry_);
  portfolio_.register_metrics(registry_);
  tuner_.register_metrics(registry_, this);
  slo_.register_into(registry_, this);
  registry_.register_gauge(
      "profile_keys_tracked", [this] { return static_cast<std::int64_t>(key_profile_.size()); },
      this);
  registry_.register_counter("profile_key_evictions", &key_profile_.evictions_counter(), this);
  if (backend_ != nullptr) backend_->register_metrics(registry_);
}

BatchSolver::~BatchSolver() {
  // Drain in-flight requests BEFORE checkpointing: a race finishing during
  // shutdown still records its win, and with the pool quiesced the
  // checkpoint captures every count. (Member destruction then re-drains a
  // by-now-empty pool — request_pool_ is declared last for that reason.)
  if (backend_ != nullptr) {
    request_pool_.drain();
    checkpoint_win_table();
  }
}

void BatchSolver::checkpoint_win_table() {
  if (backend_ == nullptr) return;
  WinTableRecord record;
  record.buckets = EnginePortfolio::kBuckets;
  record.slots = EnginePortfolio::kSlots;
  record.counts = portfolio_.win_table();
  backend_->put_win_table(record);
}

BatchSolver::CanonicalOutcome BatchSolver::solve_canonical(
    const Graph& graph, const CanonicalForm& form, const PVec& p,
    const std::optional<Engine>& engine, std::chrono::milliseconds deadline, obs::Trace* trace) {
  CanonicalOutcome out;
  if (graph.n() == 0) {
    out.status = SolveStatus::EmptyGraph;
    out.message = status_message(out.status, 0, p);
    return out;
  }

  // Inexact canonical forms (individualization budget exhausted) are valid
  // relabelings of THIS graph but not cross-request invariants, so they
  // must never touch the shared cache.
  const bool cacheable = options_.use_cache && form.exact;
  // This request's race budget in ms; 0 = unlimited. Pinned engines run to
  // completion regardless of deadline, so they always count as unlimited.
  const std::int64_t budget_ms =
      engine.has_value() ? 0
                         : (deadline.count() > 0 ? deadline.count()
                                                 : options_.portfolio.deadline.count());
  std::string rkey;
  if (cacheable) {
    rkey = result_key(form, p);
    append_engine_tag(rkey, engine);
  }
  // A deadline-truncated non-optimal hit is kept as `floor` rather than
  // served when this request brings strictly more budget: the re-solve may
  // upgrade it, but the cached result remains the fallback and the
  // quality floor — an unluckier re-race can never degrade the cache.
  std::shared_ptr<const ResultEntry> floor;
  if (cacheable) {
    const obs::SpanScope span(trace, obs::Stage::CacheLookup);
    if (auto entry = cache_.find_result(rkey)) {
      const bool upgradeable = !entry->optimal && entry->deadline_ms != 0 &&
                               (budget_ms == 0 || budget_ms > entry->deadline_ms);
      if (!upgradeable) {
        out.status = SolveStatus::Ok;
        out.entry = std::move(entry);
        out.result_cached = true;
        // A deadline-bounded request served from cache met its deadline
        // with (essentially) the full budget as slack.
        if (options_.profile && budget_ms > 0) slo_.record_cache_hit(budget_ms);
        return out;
      }
      floor = std::move(entry);
    }
  }

  obs::SpanScope reduction_span(trace, obs::Stage::Reduction);
  const Graph canon = relabel(graph, form.to_canonical);
  std::shared_ptr<const ReductionEntry> reduction;
  if (cacheable) {
    reduction = cache_.find_reduction(graph_key(form));
    out.reduction_cached = reduction != nullptr;
  }
  if (!reduction) {
    DistanceMatrix dist = all_pairs_distances(canon, 1);
    const bool connected = dist.all_finite();
    const int diameter = connected ? dist.max_finite() : 0;
    reduction = std::make_shared<const ReductionEntry>(
        ReductionEntry{std::move(dist), diameter, connected});
    if (cacheable) cache_.put_reduction(graph_key(form), reduction);
  }
  reduction_span.finish();

  // Classify off the entry's cached connected/diameter fields: a reduction
  // hit must not pay classify_labeling_request's O(n^2) matrix re-scans.
  out.status = !reduction->connected          ? SolveStatus::Disconnected
               : reduction->diameter > p.k()  ? SolveStatus::DiameterExceedsK
               : !p.satisfies_reduction_condition() ? SolveStatus::MetricConditionViolated
                                                    : SolveStatus::Ok;
  if (out.status != SolveStatus::Ok) {
    out.message = status_message(out.status, reduction->diameter, p);
    return out;
  }

  MetricInstance instance = instance_from_distances(reduction->dist, p);
  engine_solves_.add();

  std::shared_ptr<const ResultEntry> entry;
  if (engine.has_value()) {
    // Pinned engine: run the classic single-engine pipeline on the cached
    // reduction (borrowed, not copied).
    SolveOptions solve_options;
    solve_options.engine = *engine;
    solve_options.seed = options_.seed;
    const obs::SpanScope race_span(trace, obs::Stage::EngineRace, engine_name_cstr(*engine));
    try {
      SolveResult result = solve_labeling_injected(canon, p, instance, reduction->dist,
                                                   solve_options);
      entry = std::make_shared<const ResultEntry>(ResultEntry{
          std::move(result.labeling.labels), result.span, result.optimal, *engine, 0});
    } catch (const precondition_error& e) {
      out.status = SolveStatus::EngineFailure;
      out.message = e.what();
      return out;
    }
  } else {
    const std::optional<std::chrono::milliseconds> race_deadline =
        deadline.count() > 0 ? std::optional(deadline) : std::nullopt;
    const std::uint64_t race_begin = trace != nullptr ? obs::steady_now_ns() : 0;
    PortfolioOutcome raced = portfolio_.race(instance, race_deadline);
    if (options_.profile) {
      // race() times itself unconditionally, so attribution adds no clock
      // reads — one shard-mutex touch for the key table, relaxed adds and
      // (rarely) the ring mutex for the SLO.
      const auto race_ns = static_cast<std::uint64_t>(raced.seconds * 1e9);
      const bool had_deadline = budget_ms > 0;
      const bool deadline_hit =
          !had_deadline || race_ns <= static_cast<std::uint64_t>(budget_ms) * 1'000'000ULL;
      key_profile_.record(form.hash, form.n, race_ns, engine_name_cstr(raced.winner),
                          had_deadline, deadline_hit);
      if (had_deadline) slo_.record(race_ns, budget_ms);
    }
    if (trace != nullptr) {
      const std::uint64_t race_start = race_begin - trace->origin_ns;
      trace->spans.push_back({obs::Stage::EngineRace, nullptr, race_start,
                              obs::steady_now_ns() - race_begin, false, false});
      // One nested span per racing engine, synthesized from the attempt
      // records (the engines themselves run on pool workers and never see
      // the trace). They overlap their EngineRace parent, hence `nested`.
      for (const EngineAttempt& attempt : raced.attempts) {
        trace->spans.push_back({obs::Stage::EngineAttempt, engine_name_cstr(attempt.engine),
                                race_start,
                                static_cast<std::uint64_t>(attempt.seconds * 1e9),
                                raced.solution.cost >= 0 && attempt.engine == raced.winner,
                                true});
      }
    }
    if (raced.solution.cost < 0) {
      if (floor) {
        out.status = SolveStatus::Ok;
        out.entry = std::move(floor);
        out.result_cached = true;
        return out;
      }
      out.status = SolveStatus::EngineFailure;
      out.message = "no portfolio engine produced a verified solution";
      return out;
    }
    obs::SpanScope verify_span(trace, obs::Stage::Verify);
    Labeling labeling = labeling_from_order(instance, raced.solution.order);
    const bool verified = labeling.span() == raced.solution.cost &&
                          is_valid_labeling(canon, reduction->dist, p, labeling);
    verify_span.finish();
    if (!verified) {
      if (floor) {
        out.status = SolveStatus::Ok;
        out.entry = std::move(floor);
        out.result_cached = true;
        return out;
      }
      out.status = SolveStatus::EngineFailure;
      out.message = "portfolio result failed verification";
      return out;
    }
    if (floor && floor->span < raced.solution.cost) {
      // The bigger budget lost the race to the cached incumbent; keep the
      // cached labeling, but record the larger budget so identical
      // requests stop retrying a hopeless upgrade.
      entry = std::make_shared<const ResultEntry>(
          ResultEntry{floor->labels, floor->span, floor->optimal, floor->engine, budget_ms});
    } else {
      entry = std::make_shared<const ResultEntry>(ResultEntry{std::move(labeling.labels),
                                                              raced.solution.cost, raced.optimal,
                                                              raced.winner, budget_ms});
    }
  }

  out.status = SolveStatus::Ok;
  out.entry = entry;
  // The durable overload writes the entry through to the store (when one
  // is attached) with its canonical graph and p, making the persisted
  // record self-verifying on the next start.
  if (cacheable) {
    const obs::SpanScope span(trace, obs::Stage::StoreWrite);
    cache_.put_result(rkey, canon, p, std::move(entry));
  }
  return out;
}

BatchSolver::CanonicalOutcome BatchSolver::solve_canonical_coalesced(
    const Graph& graph, const CanonicalForm& form, const PVec& p,
    const std::optional<Engine>& engine, std::chrono::milliseconds deadline, obs::Trace* trace) {
  const bool cacheable = options_.use_cache && form.exact;
  if (!cacheable) return solve_canonical(graph, form, p, engine, deadline, trace);

  // Pinned-engine requests only coalesce with requests pinning the same
  // engine (a portfolio answer is not a substitute for "run Held-Karp"),
  // and requests only coalesce within the same race budget — a 50ms
  // request must not block on an in-flight unlimited solve.
  std::string key = result_key(form, p);
  append_engine_tag(key, engine);
  key.push_back('D');
  key += std::to_string(engine.has_value()
                            ? 0
                            : (deadline.count() > 0 ? deadline.count()
                                                    : options_.portfolio.deadline.count()));

  std::promise<CanonicalOutcome> promise;
  std::shared_future<CanonicalOutcome> shared;
  bool leader = false;
  {
    const std::lock_guard lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      shared = it->second;
    } else {
      shared = promise.get_future().share();
      inflight_.emplace(key, shared);
      leader = true;
    }
  }

  if (!leader) {
    // The registrant is currently running on some worker and never blocks
    // on this pool, so waiting here cannot deadlock.
    const obs::SpanScope span(trace, obs::Stage::CoalescedWait);
    requests_coalesced_.add();
    CanonicalOutcome out = shared.get();
    out.coalesced = true;
    return out;
  }

  CanonicalOutcome out;
  try {
    out = solve_canonical(graph, form, p, engine, deadline, trace);
  } catch (...) {
    promise.set_exception(std::current_exception());
    const std::lock_guard lock(inflight_mutex_);
    inflight_.erase(key);
    throw;
  }
  promise.set_value(out);
  {
    const std::lock_guard lock(inflight_mutex_);
    inflight_.erase(key);
  }
  return out;
}

SolveResponse BatchSolver::respond(const SolveRequest& request, const CanonicalForm& form,
                                   const CanonicalOutcome& outcome,
                                   ResponseSource fallback_source, double seconds) const {
  SolveResponse response;
  response.id = request.id;
  response.status = outcome.status;
  response.message = outcome.message;
  response.reduction_cached = outcome.reduction_cached;
  response.seconds = seconds;
  if (outcome.result_cached) {
    response.source = ResponseSource::ResultCache;
  } else if (outcome.coalesced) {
    response.source = ResponseSource::Coalesced;
  } else {
    response.source = fallback_source;
  }
  if (outcome.status == SolveStatus::Ok) {
    response.labeling.labels = map_labels_from_canonical(form, outcome.entry->labels);
    response.span = outcome.entry->span;
    response.optimal = outcome.entry->optimal;
    response.engine = outcome.entry->engine;
  }
  return response;
}

SolveResponse BatchSolver::solve_one(const SolveRequest& request) {
  return solve_one_timed(request, 0);
}

SolveResponse BatchSolver::solve_one_timed(const SolveRequest& request,
                                           std::uint64_t enqueued_ns) {
  const Timer timer;
  requests_total_.add();
  obs::Trace trace;
  obs::Trace* tp = nullptr;
  std::uint64_t queue_ns = 0;
  if (options_.metrics) {
    tp = &trace;
    trace.request_id = request.id;
    // Adopt the client's trace context (v4 wire): the ring then holds
    // the server half of a joined cross-process trace, and a sampled id
    // bypasses the slow threshold so the client's ask is honored.
    trace.trace_id = request.trace_id;
    trace.sampled = request.trace_sampled;
    trace.spans.reserve(8);
    const std::uint64_t now = obs::steady_now_ns();
    // The trace origin is the ADMISSION time when the request was queued:
    // queue wait is part of what the caller experienced, so it belongs in
    // total_ns (and in the slow-trace threshold).
    trace.origin_ns = enqueued_ns != 0 && enqueued_ns < now ? enqueued_ns : now;
    if (trace.origin_ns != now) {
      queue_ns = now - trace.origin_ns;
      trace.spans.push_back({obs::Stage::QueueWait, nullptr, 0, queue_ns, false, false});
    }
  }
  CanonicalForm form;
  {
    const obs::SpanScope span(tp, obs::Stage::Canonicalize);
    form = canonical_form(request.graph, options_.canonical);
  }
  const CanonicalOutcome outcome = solve_canonical_coalesced(request.graph, form, request.p,
                                                             request.engine, request.deadline, tp);
  SolveResponse response =
      respond(request, form, outcome, ResponseSource::Solved, timer.seconds());
  if (tp != nullptr) {
    // Echo the split the client cannot see: how long its request sat in
    // the queue vs how long the pipeline worked on it. Carried on v4+
    // responses; encode_response suppresses it for older peers.
    response.server_queue_ns = queue_ns;
    response.server_service_ns = obs::steady_now_ns() - trace.origin_ns - queue_ns;
    finish_trace(std::move(trace), response.status == SolveStatus::Ok
                                       ? response_source_name_cstr(response.source)
                                       : status_name_cstr(response.status));
  }
  return response;
}

void BatchSolver::finish_trace(obs::Trace&& trace, const char* result) {
  trace.total_ns = obs::steady_now_ns() - trace.origin_ns;
  trace.result = result;
  request_ns_.record(trace.total_ns);
  for (const obs::Span& span : trace.spans) {
    // Exhaustive by -Werror=switch: adding a Stage forces a routing
    // decision here. Nested engine attempts are routed per-engine by the
    // portfolio's own histograms, not double-counted here.
    switch (span.stage) {
      case obs::Stage::QueueWait: queue_wait_ns_.record(span.duration_ns); break;
      case obs::Stage::Canonicalize: canonical_ns_.record(span.duration_ns); break;
      case obs::Stage::CacheLookup: cache_lookup_ns_.record(span.duration_ns); break;
      case obs::Stage::Reduction: reduction_ns_.record(span.duration_ns); break;
      case obs::Stage::EngineRace: engine_race_ns_.record(span.duration_ns); break;
      case obs::Stage::EngineAttempt: break;
      case obs::Stage::Verify: verify_ns_.record(span.duration_ns); break;
      case obs::Stage::StoreWrite: store_put_ns_.record(span.duration_ns); break;
      case obs::Stage::CoalescedWait: coalesced_wait_ns_.record(span.duration_ns); break;
      // Client-side stages never appear in server-built traces; routing
      // them nowhere (rather than a default) keeps the switch exhaustive.
      case obs::Stage::ClientConnect:
      case obs::Stage::ClientSerialize:
      case obs::Stage::ClientSend:
      case obs::Stage::ServerTurnaround:
      case obs::Stage::ClientDeserialize:
      case obs::Stage::ServerQueue:
      case obs::Stage::ServerService:
        break;
    }
  }
  traces_.keep(std::move(trace));
}

bool BatchSolver::admit(const SolveRequest& request, std::uint64_t& admitted_work_ns) {
  admitted_work_ns = 0;
  if (options_.max_pending_requests != 0 &&
      request_pool_.pending() >= options_.max_pending_requests) {
    // Rejected submissions still count toward requests_total (they got a
    // response), so rejected/total is a meaningful rejection ratio.
    requests_total_.add();
    rejected_overload_.add();
    return false;
  }
  if (options_.max_pending_work_ns == 0 && !options_.tuner.enabled) return true;
  // Price the request by its size bucket and budget. The canonical key is
  // unknown this early (canonicalization happens on a worker), so the
  // prediction is per-size, not per-key — the hot-key table still feeds
  // it through the tuner's bucket aggregation.
  const std::int64_t budget_ms = request.deadline.count() > 0
                                     ? request.deadline.count()
                                     : options_.portfolio.deadline.count();
  const std::uint64_t predicted = tuner_.predicted_work_ns(request.graph.n(), budget_ms);
  if (options_.max_pending_work_ns != 0) {
    const std::uint64_t pending = pending_work_ns_.load(std::memory_order_relaxed);
    // An empty queue always admits: one request can never be priced out
    // of an idle service, however expensive it looks.
    if (pending != 0 && pending + predicted > options_.max_pending_work_ns) {
      requests_total_.add();
      rejected_overload_.add();
      rejected_work_priced_.add();
      return false;
    }
  }
  // Charge the gauge even when only counting (tuner on, work gate off):
  // the server's retry-after hint reads it either way.
  pending_work_ns_.fetch_add(predicted, std::memory_order_relaxed);
  admitted_work_ns = predicted;
  return true;
}

namespace {

SolveResponse overload_response(const SolveRequest& request) {
  SolveResponse response;
  response.id = request.id;
  response.status = SolveStatus::RejectedOverload;
  response.message = status_message(response.status, 0, request.p);
  return response;
}

}  // namespace

std::future<SolveResponse> BatchSolver::submit(SolveRequest request) {
  std::uint64_t admitted_work_ns = 0;
  if (!admit(request, admitted_work_ns)) {
    std::promise<SolveResponse> rejected;
    rejected.set_value(overload_response(request));
    return rejected.get_future();
  }
  const std::uint64_t enqueued_ns = options_.metrics ? obs::steady_now_ns() : 0;
  return request_pool_.submit(
      [this, request = std::move(request), enqueued_ns, admitted_work_ns]() -> SolveResponse {
        // Release exactly the predicted cost charged at admission, on
        // every exit path — a leaked charge would ratchet the work gauge
        // up until admission rejected everything.
        try {
          SolveResponse response = solve_one_timed(request, enqueued_ns);
          pending_work_ns_.fetch_sub(admitted_work_ns, std::memory_order_relaxed);
          return response;
        } catch (...) {
          pending_work_ns_.fetch_sub(admitted_work_ns, std::memory_order_relaxed);
          throw;
        }
      });
}

void BatchSolver::submit_async(SolveRequest request, std::function<void(SolveResponse)> done) {
  std::uint64_t admitted_work_ns = 0;
  if (!admit(request, admitted_work_ns)) {
    done(overload_response(request));
    return;
  }
  const std::uint64_t enqueued_ns = options_.metrics ? obs::steady_now_ns() : 0;
  request_pool_.submit([this, request = std::move(request), done = std::move(done), enqueued_ns,
                        admitted_work_ns] {
    // The callback must fire exactly once even if the pipeline throws —
    // an event-loop front-end that never hears back would leak an
    // in-flight slot forever.
    SolveResponse response;
    try {
      response = solve_one_timed(request, enqueued_ns);
    } catch (const std::exception& e) {
      response.id = request.id;
      response.status = SolveStatus::EngineFailure;
      response.message = e.what();
    }
    pending_work_ns_.fetch_sub(admitted_work_ns, std::memory_order_relaxed);
    done(std::move(response));
  });
}

std::string BatchSolver::profile_json() const {
  // Top-K width of the rendered table: enough to dominate any realistic
  // Zipf head while keeping the reply frame small.
  constexpr std::size_t kTopKeys = 16;
  const std::uint64_t uptime_ns = obs::steady_now_ns() - obs::process_start_ns();
  std::string out = "{\"uptime_ns\":" + std::to_string(uptime_ns);
  out += ",\"work\":";
  out += portfolio_.work().to_json(uptime_ns);
  out += ",\"top_keys\":";
  out += key_profile_.to_json(kTopKeys);
  out += ",\"slo\":";
  out += slo_.to_json();
  out += ",\"tuner\":";
  out += tuner_.to_json();
  out.push_back('}');
  return out;
}

std::vector<SolveResponse> BatchSolver::solve_batch(const std::vector<SolveRequest>& requests) {
  const std::size_t count = requests.size();
  std::vector<SolveResponse> responses(count);
  if (count == 0) return responses;
  requests_total_.add(count);

  // Stage 1: canonicalize every request in parallel — this is the
  // order-insensitive identity the dedupe below groups on.
  std::vector<CanonicalForm> forms(count);
  {
    std::vector<std::future<void>> canonical_tasks;
    canonical_tasks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      canonical_tasks.push_back(request_pool_.submit([this, &requests, &forms, i] {
        forms[i] = canonical_form(requests[i].graph, options_.canonical);
      }));
    }
    join_all(canonical_tasks);
  }

  // Stage 2: group identical (canonical graph, p, pinned engine) requests.
  // Inexact forms get a per-request key, i.e. no grouping.
  struct Group {
    std::vector<std::size_t> members;
    int max_priority = 0;
  };
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<Group> groups;
  for (std::size_t i = 0; i < count; ++i) {
    std::string key;
    if (forms[i].exact) {
      key = result_key(forms[i], requests[i].p);
      append_engine_tag(key, requests[i].engine);
    } else {
      key = "U";
      key += std::to_string(i);
    }
    const auto [it, inserted] = group_of.emplace(std::move(key), groups.size());
    if (inserted) groups.push_back({});
    Group& group = groups[it->second];
    group.members.push_back(i);
    group.max_priority = group.members.size() == 1
                             ? requests[i].priority
                             : std::max(group.max_priority, requests[i].priority);
  }

  // Stage 3: schedule one solve per group, highest priority first (the
  // request pool is FIFO, so submission order is start order).
  std::vector<std::size_t> schedule(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) schedule[g] = g;
  std::stable_sort(schedule.begin(), schedule.end(), [&](std::size_t a, std::size_t b) {
    return groups[a].max_priority > groups[b].max_priority;
  });

  std::vector<std::future<void>> solve_tasks;
  solve_tasks.reserve(groups.size());
  for (const std::size_t g : schedule) {
    const std::uint64_t enqueued_ns = options_.metrics ? obs::steady_now_ns() : 0;
    solve_tasks.push_back(request_pool_.submit([this, &requests, &forms, &responses, &groups, g,
                                                enqueued_ns] {
      const Timer timer;
      const Group& group = groups[g];
      const std::size_t leader = group.members.front();
      // One trace per group (the group shares one solve). Canonicalization
      // ran batched in stage 1, so these traces start at the solve.
      obs::Trace trace;
      obs::Trace* tp = nullptr;
      if (options_.metrics) {
        tp = &trace;
        trace.request_id = requests[leader].id;
        trace.trace_id = requests[leader].trace_id;
        trace.sampled = requests[leader].trace_sampled;
        trace.spans.reserve(8);
        const std::uint64_t now = obs::steady_now_ns();
        trace.origin_ns = enqueued_ns != 0 && enqueued_ns < now ? enqueued_ns : now;
        if (trace.origin_ns != now) {
          trace.spans.push_back({obs::Stage::QueueWait, nullptr, 0, now - trace.origin_ns, false,
                                 false});
        }
      }
      // The group shares one solve; give it the most generous budget any
      // member asked for. A member on the service default counts as the
      // default's budget (or unlimited when that is 0), never less than an
      // explicit long deadline another member brought.
      std::chrono::milliseconds deadline{0};
      bool any_default = false;
      for (const std::size_t m : group.members) {
        if (requests[m].deadline.count() <= 0) any_default = true;
        deadline = std::max(deadline, requests[m].deadline);
      }
      if (any_default) {
        const std::chrono::milliseconds service_default = options_.portfolio.deadline;
        deadline = service_default.count() == 0 ? std::chrono::milliseconds{0}
                                                : std::max(deadline, service_default);
      }
      const CanonicalOutcome outcome = solve_canonical_coalesced(
          requests[leader].graph, forms[leader], requests[leader].p, requests[leader].engine,
          deadline, tp);
      const double seconds = timer.seconds();
      for (const std::size_t m : group.members) {
        responses[m] = respond(requests[m], forms[m], outcome,
                               m == leader ? ResponseSource::Solved : ResponseSource::Coalesced,
                               seconds);
      }
      // Deduplicated members share the leader's solve without ever waiting
      // on the in-flight map — count them as coalesced all the same.
      if (group.members.size() > 1) requests_coalesced_.add(group.members.size() - 1);
      if (tp != nullptr) {
        finish_trace(std::move(trace), responses[leader].status == SolveStatus::Ok
                                           ? response_source_name_cstr(responses[leader].source)
                                           : status_name_cstr(responses[leader].status));
      }
    }));
  }
  join_all(solve_tasks);
  return responses;
}

}  // namespace lptsp
