#include "service/tuner.hpp"

#include <algorithm>
#include <bit>

#include "obs/journal.hpp"

namespace lptsp {

namespace {

/// Decayed-score floor below which the exact engine counts as "never wins
/// here": one win decays under it only after several decay windows.
constexpr double kExactPresenceFloor = 0.5;

/// Seeded scores are capped at this many skip_scores: enough to carry a
/// verdict across a restart, small enough to decay away quickly.
constexpr double kSeedCapFactor = 4.0;

/// Minimum admission price: even a certain cache hit costs queue slots.
constexpr std::uint64_t kMinPredictedNs = 1'000;

/// Histogram samples required before the latency quantile outranks the
/// conservative deadline-based fallback.
constexpr std::uint64_t kMinPredictorSamples = 8;

}  // namespace

EngineTuner::EngineTuner(const TunerOptions& options, std::chrono::milliseconds default_deadline)
    : options_(options), default_deadline_(default_deadline) {
  if (default_deadline_.count() <= 0) default_deadline_ = std::chrono::milliseconds{250};
  if (options_.effort_min_percent < 1) options_.effort_min_percent = 1;
  if (options_.effort_max_percent < options_.effort_min_percent) {
    options_.effort_max_percent = options_.effort_min_percent;
  }
  if (options_.admission_quantile <= 0 || options_.admission_quantile > 1) {
    options_.admission_quantile = 0.90;
  }
  for (auto& percent : effort_percent_) percent.store(100, std::memory_order_relaxed);
}

int EngineTuner::clamp_bucket(int bucket) noexcept {
  return std::clamp(bucket, 0, kBuckets - 1);
}

bool EngineTuner::trimmed_now(const Bucket& bucket) const noexcept {
  return bucket.exact_score < kExactPresenceFloor &&
         bucket.heuristic_score >= options_.skip_score;
}

void EngineTuner::seed_from_win_table(const std::vector<std::uint64_t>& counts, int slots) {
  if (!options_.enabled || slots < 3) return;
  if (counts.size() != static_cast<std::size_t>(kBuckets) * static_cast<std::size_t>(slots)) {
    return;
  }
  const double cap = options_.skip_score * kSeedCapFactor;
  const std::lock_guard lock(mutex_);
  for (int b = 0; b < kBuckets; ++b) {
    const auto base = static_cast<std::size_t>(b) * static_cast<std::size_t>(slots);
    const double exact = static_cast<double>(counts[base] + counts[base + 1]);
    const double heuristic = static_cast<double>(counts[base + 2]);
    buckets_[static_cast<std::size_t>(b)].exact_score = std::min(exact, cap);
    buckets_[static_cast<std::size_t>(b)].heuristic_score = std::min(heuristic, cap);
  }
}

bool EngineTuner::admit_exact(int bucket) {
  if (!options_.enabled) return true;
  const auto index = static_cast<std::size_t>(clamp_bucket(bucket));
  bool flipped = false;
  bool now_trimmed = false;
  bool launch = true;
  bool reprobe = false;
  {
    const std::lock_guard lock(mutex_);
    Bucket& state = buckets_[index];
    now_trimmed = trimmed_now(state);
    if (now_trimmed != state.trimmed) {
      state.trimmed = now_trimmed;
      flipped = true;
    }
    if (now_trimmed) {
      state.skips_since_probe += 1;
      if (options_.reprobe_every > 0 && state.skips_since_probe >= options_.reprobe_every) {
        state.skips_since_probe = 0;
        reprobe = true;
      } else {
        launch = false;
      }
    } else {
      state.skips_since_probe = 0;
    }
  }
  // Journal and counters outside the lock — same discipline as SloTracker.
  if (flipped) {
    obs::journal().emit(obs::EventType::TunerPretrim,
                        now_trimmed ? obs::EventLevel::Warn : obs::EventLevel::Info, nullptr, 0,
                        static_cast<std::uint64_t>(index), now_trimmed ? 0 : 1,
                        now_trimmed ? 1 : 0);
  }
  if (reprobe) {
    reprobes_.add();
    return true;
  }
  if (!launch) pretrim_skips_.add();
  return launch;
}

void EngineTuner::observe_race(int bucket, bool exact_won, bool contested, std::uint64_t race_ns,
                               std::int64_t deadline_ms) {
  const auto index = static_cast<std::size_t>(clamp_bucket(bucket));
  race_ns_[index].record(std::max(race_ns, std::uint64_t{1}));
  if (!options_.enabled) return;

  int old_percent = 0;
  int new_percent = 0;
  {
    const std::lock_guard lock(mutex_);
    Bucket& state = buckets_[index];
    state.observations += 1;
    if (options_.decay_every > 0 && state.observations % options_.decay_every == 0) {
      state.exact_score *= 0.5;
      state.heuristic_score *= 0.5;
    }
    if (contested) {
      (exact_won ? state.exact_score : state.heuristic_score) += 1.0;
    }

    if (options_.effort_update_every == 0 || deadline_ms <= 0) return;
    const auto budget_ns = static_cast<std::uint64_t>(deadline_ms) * 1'000'000ULL;
    state.window_total += 1;
    if (race_ns > budget_ns) {
      state.window_misses += 1;
    } else {
      state.window_slack_frac_sum +=
          static_cast<double>(budget_ns - race_ns) / static_cast<double>(budget_ns);
    }
    if (state.window_total < options_.effort_update_every) return;

    const std::uint32_t hits = state.window_total - state.window_misses;
    const int hit_percent = static_cast<int>(hits * 100 / state.window_total);
    const double mean_slack =
        hits == 0 ? 0.0 : state.window_slack_frac_sum / static_cast<double>(hits);
    old_percent = effort_percent_[index].load(std::memory_order_relaxed);
    new_percent = old_percent;
    if (hit_percent < options_.target_hit_percent) {
      // Missing deadlines: shed effort so cancelled engines stop burning
      // the budget without finishing.
      new_percent = old_percent - options_.effort_step_percent;
    } else if (state.window_misses == 0 && mean_slack > 0.5) {
      // Every race hit with over half the budget to spare: spend the
      // headroom on more kicks / nodes / a bolder Held-Karp predicate.
      new_percent = old_percent + options_.effort_step_percent;
    }
    new_percent = std::clamp(new_percent, options_.effort_min_percent, options_.effort_max_percent);
    state.window_total = 0;
    state.window_misses = 0;
    state.window_slack_frac_sum = 0;
    if (new_percent == old_percent) return;
    effort_percent_[index].store(new_percent, std::memory_order_relaxed);
  }
  effort_changes_.add();
  obs::journal().emit(obs::EventType::TunerEffort, obs::EventLevel::Info, nullptr, 0,
                      static_cast<std::uint64_t>(index), old_percent, new_percent);
}

EffortPolicy EngineTuner::effort(int bucket) const {
  EffortPolicy policy;
  if (!options_.enabled) return policy;
  const auto index = static_cast<std::size_t>(clamp_bucket(bucket));
  policy.percent = effort_percent_[index].load(std::memory_order_relaxed);
  policy.hk_overrun_factor = std::clamp(
      kBaseHkOverrunFactor * static_cast<double>(policy.percent) / 100.0, 1.0, 16.0);
  return policy;
}

std::uint64_t EngineTuner::predicted_work_ns(int n, std::int64_t deadline_ms) const {
  const auto index = static_cast<std::size_t>(
      clamp_bucket(static_cast<int>(std::bit_width(static_cast<unsigned>(std::max(1, n))))));
  std::uint64_t estimate = 0;
  const obs::HistogramSnapshot snap = race_ns_[index].snapshot();
  if (snap.count >= kMinPredictorSamples) {
    estimate = snap.quantile(options_.admission_quantile);
  }
  if (key_profile_ != nullptr) {
    estimate = std::max(estimate, key_profile_->bucket_mean_ns(static_cast<int>(index)));
  }
  if (estimate == 0) {
    // No history at this size: price at the full race budget. Unknown
    // sizes are exactly where optimistic admission melts the queue.
    const std::int64_t budget_ms =
        deadline_ms > 0 ? deadline_ms : default_deadline_.count();
    estimate = static_cast<std::uint64_t>(budget_ms) * 1'000'000ULL;
  }
  if (deadline_ms > 0) {
    estimate = std::min(estimate,
                        static_cast<std::uint64_t>(deadline_ms) * std::uint64_t{2'000'000});
  }
  return std::max(estimate, kMinPredictedNs);
}

void EngineTuner::register_metrics(obs::MetricRegistry& registry, const void* owner) const {
  if (owner == nullptr) owner = this;
  registry.register_counter("tuner_reprobes", &reprobes_, owner);
  registry.register_counter("tuner_pretrim_skips", &pretrim_skips_, owner);
  registry.register_counter("tuner_effort_changes", &effort_changes_, owner);
}

std::string EngineTuner::to_json() const {
  std::string out = "{\"enabled\":";
  out += options_.enabled ? "true" : "false";
  out += ",\"reprobes\":" + std::to_string(reprobes_.value());
  out += ",\"pretrim_skips\":" + std::to_string(pretrim_skips_.value());
  out += ",\"effort_changes\":" + std::to_string(effort_changes_.value());
  out += ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < kBuckets; ++b) {
    const auto index = static_cast<std::size_t>(b);
    double exact_score = 0;
    double heuristic_score = 0;
    std::uint64_t observations = 0;
    bool trimmed = false;
    {
      const std::lock_guard lock(mutex_);
      const Bucket& state = buckets_[index];
      exact_score = state.exact_score;
      heuristic_score = state.heuristic_score;
      observations = state.observations;
      trimmed = state.trimmed;
    }
    const std::uint64_t raced = race_ns_[index].snapshot().count;
    if (observations == 0 && raced == 0 && exact_score == 0 && heuristic_score == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"bucket\":" + std::to_string(b);
    out += ",\"exact_score\":" + obs::format_fixed2(exact_score);
    out += ",\"heuristic_score\":" + obs::format_fixed2(heuristic_score);
    out += ",\"trimmed\":";
    out += trimmed ? "true" : "false";
    out += ",\"effort_percent\":" +
           std::to_string(effort_percent_[index].load(std::memory_order_relaxed));
    out += ",\"races\":" + std::to_string(raced);
    // Price an already-observed size with no extra deadline context.
    out += ",\"predicted_ns\":" + std::to_string(predicted_work_ns(1 << std::max(0, b - 1), 0));
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace lptsp
