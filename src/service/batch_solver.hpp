#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/canonical_key.hpp"
#include "service/portfolio.hpp"
#include "service/request.hpp"
#include "service/solve_cache.hpp"
#include "service/tuner.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

/// The batch labeling service: the library's single-shot
/// `solve_labeling` grown into a serving layer.
///
/// Pipeline per request:
///   1. canonicalize the graph (WL refinement) — order-insensitive, so
///      isomorphic relabelings of the same instance share one identity;
///   2. result cache probe — a hit skips reduction AND engine, only a
///      label permutation remains;
///   3. reduction cache probe — a hit skips the O(nm) all-pairs BFS;
///   4. precondition classification — bad requests get a typed status,
///      they never throw across the service boundary;
///   5. engine portfolio race (or the request's pinned engine) under the
///      request deadline;
///   6. verified result is cached in canonical space and mapped back to
///      the caller's vertex numbering.
///
/// Batches are deduplicated up front (N isomorphic requests -> 1 solve);
/// single requests submitted through submit() coalesce against identical
/// in-flight work. Two pools keep the pipeline deadlock-free: request
/// tasks run on one, engine races on another, and neither ever blocks on
/// its own pool.
class BatchSolver {
 public:
  struct Options {
    SolveCache::Config cache;
    PortfolioOptions portfolio;
    CanonicalFormOptions canonical;
    unsigned request_workers = 0;  ///< 0 = hardware concurrency
    unsigned engine_workers = 0;   ///< 0 = hardware concurrency
    bool use_cache = true;         ///< false = every request solves fresh
    std::uint64_t seed = 1;        ///< seed for pinned-engine solves
    /// Admission control for the streaming front-ends (submit /
    /// submit_async): when this many requests are already queued or
    /// running on the request pool, new submissions are answered
    /// immediately with SolveStatus::RejectedOverload instead of growing
    /// the backlog without bound. 0 = unlimited (solve_batch is never
    /// gated: its caller already bounded the batch).
    std::size_t max_pending_requests = 0;
    /// Work-priced admission for the same front-ends: when > 0, a new
    /// submission is priced by the tuner (predicted engine nanoseconds
    /// for its size bucket and deadline) and rejected when the predicted
    /// work already admitted-but-unfinished would exceed this budget.
    /// Expensive requests stop fitting before cheap ones do, so overload
    /// rejects heavies first instead of starving cache-hit traffic. A
    /// request arriving at an empty queue is always admitted (nothing may
    /// be priced out of an idle service). 0 = count-based admission only.
    std::uint64_t max_pending_work_ns = 0;
    /// The learning layer (see src/service/tuner.hpp): decayed exact-skip
    /// pre-trim with re-probe, per-bucket effort tuning, and the
    /// admission cost predictor. tuner.enabled = false reverts the
    /// portfolio to its static built-in policies.
    TunerOptions tuner;
    /// Durable store file (see src/store/): when non-empty, verified solve
    /// results are written through to this append-only log, reloaded and
    /// re-verified on the next start (a restart keeps its hit ratio), and
    /// the portfolio win table is checkpointed across runs. Created if
    /// absent; opening an existing file with a corrupt header throws
    /// precondition_error (torn tails and bad records are repaired/skipped
    /// silently — they are expected crash debris). With use_cache false
    /// only the win table is persisted (results would never be served).
    std::string store_path;
    /// fsync the store after every persisted result. Off by default:
    /// results are re-derivable, so the OS page-cache durability window is
    /// an acceptable trade against paying an fsync per solve.
    bool store_sync_every_put = false;
    /// Consecutive store write failures before the backend flips into
    /// read-only degraded mode (cache-only serving continues; the
    /// store_degraded gauge reports it). <= 0 disables the ladder.
    int store_degraded_after_failures = 3;
    /// While degraded, attempt a reopen/heal at most this often.
    std::chrono::milliseconds store_reopen_probe_interval{1000};
    /// Stage timing and request tracing. Counters are always maintained
    /// (one relaxed add each, unmeasurable); this flag gates only the
    /// steady_clock reads — per-request traces, stage histograms, the
    /// request-latency histogram — which is what the overhead bench
    /// toggles. Off: the slow-trace ring stays empty and latency
    /// histograms stay at zero, but every counter keeps counting.
    bool metrics = true;
    /// Work-attribution profiling: the per-canonical-key hot-graph table
    /// and deadline SLO tracking (see src/obs/profile.hpp). Gates only
    /// the per-request record calls (one shard-mutex touch per engine
    /// race, one slack record per deadline-bounded request); the
    /// engine-work counters themselves are always maintained — counters
    /// always count, same rule as `metrics`.
    bool profile = true;
    /// Slow-trace retention: keep the most recent `trace_capacity` traces
    /// whose end-to-end latency (queue wait included) was at least
    /// `trace_threshold`. Capacity 0 disables retention; threshold 0
    /// retains every request (up to capacity).
    std::size_t trace_capacity = 64;
    std::chrono::milliseconds trace_threshold{0};
  };

  BatchSolver() : BatchSolver(Options{}) {}
  explicit BatchSolver(const Options& options);

  /// Checkpoints the portfolio win table to the durable store (when one is
  /// configured) before tearing the pipeline down.
  ~BatchSolver();

  BatchSolver(const BatchSolver&) = delete;
  BatchSolver& operator=(const BatchSolver&) = delete;

  /// Solve a batch: dedupe by canonical key, schedule unique instances
  /// across the request pool (higher max-priority groups first), fan the
  /// shared results back out. responses[i] answers requests[i].
  std::vector<SolveResponse> solve_batch(const std::vector<SolveRequest>& requests);

  /// Async front-end for streaming traffic: returns immediately; the
  /// future resolves when the request is served. Identical requests that
  /// are already in flight are coalesced onto the same solve. Subject to
  /// max_pending_requests admission control (a rejected request's future
  /// resolves immediately with RejectedOverload).
  std::future<SolveResponse> submit(SolveRequest request);

  /// Callback flavor of submit() for event-loop front-ends (the socket
  /// server) that cannot block on a future: `done` is invoked exactly once
  /// with the response, on a request-pool worker — or inline, before
  /// submit_async returns, when admission control rejects the request.
  /// `done` must not block on this BatchSolver's own request pool.
  void submit_async(SolveRequest request, std::function<void(SolveResponse)> done);

  /// Convenience synchronous single-request entry point.
  SolveResponse solve_one(const SolveRequest& request);

  [[nodiscard]] const SolveCache& cache() const noexcept { return cache_; }
  [[nodiscard]] EnginePortfolio& portfolio() noexcept { return portfolio_; }
  [[nodiscard]] const EngineTuner& tuner() const noexcept { return tuner_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The shared metric registry every pipeline component publishes into
  /// (cache, portfolio, store, and this solver's own stage histograms).
  /// Front-ends register their transport counters here too, so one
  /// snapshot() covers the whole process.
  [[nodiscard]] obs::MetricRegistry& metrics_registry() noexcept { return registry_; }

  /// The slow-trace ring (see Options::trace_capacity/trace_threshold).
  [[nodiscard]] const obs::TraceRing& traces() const noexcept { return traces_; }

  /// The per-canonical-key hot-graph table and deadline SLO tracker (see
  /// Options::profile), exposed for tests and monitoring.
  [[nodiscard]] const obs::KeyProfileTable& key_profile() const noexcept { return key_profile_; }
  [[nodiscard]] const obs::SloTracker& slo() const noexcept { return slo_; }

  /// The work-attribution profile as one JSON object — the payload behind
  /// StatsFormat::Profile and lptspd's --profile-json dump:
  /// {"uptime_ns":..,"work":{per-engine totals + rates},
  ///  "top_keys":[hottest canonical keys],"slo":{deadline summary}}.
  /// The schema is a contract (README "Profiling & SLO").
  [[nodiscard]] std::string profile_json() const;

  /// Number of actual engine runs performed (excludes cache hits and
  /// coalesced/deduplicated requests) — the denominator of every
  /// amortization claim, and what the dedupe tests assert on.
  [[nodiscard]] std::uint64_t engine_solves() const noexcept { return engine_solves_.value(); }

  /// Requests queued or running on the request pool right now — the
  /// queue-depth gauge admission control reads, exported for monitoring.
  [[nodiscard]] std::size_t pending_requests() const { return request_pool_.pending(); }

  /// Submissions turned away by admission control since construction.
  [[nodiscard]] std::uint64_t rejected_overload() const noexcept {
    return rejected_overload_.value();
  }

  /// The subset of rejected_overload turned away by the work-priced gate
  /// (max_pending_work_ns), as opposed to the request-count gate.
  [[nodiscard]] std::uint64_t rejected_work_priced() const noexcept {
    return rejected_work_priced_.value();
  }

  /// Predicted engine nanoseconds admitted but not yet finished — the
  /// backlog gauge work-priced admission and the server's retry-after
  /// hint read. Maintained whenever the tuner is enabled (priced at
  /// admission, released on completion), 0 otherwise.
  [[nodiscard]] std::uint64_t pending_work_ns() const noexcept {
    return pending_work_ns_.load(std::memory_order_relaxed);
  }

  /// Outcome of the startup warm load from the durable store (all zeros
  /// when no store is configured).
  [[nodiscard]] const SolveCache::WarmStats& warm_stats() const noexcept { return warm_stats_; }

  /// The durable store backend, or nullptr when persistence is off.
  [[nodiscard]] const std::shared_ptr<PersistentBackend>& store() const noexcept {
    return backend_;
  }

  /// Persist the portfolio win table now (also done on destruction). Safe
  /// to call while traffic is in flight; no-op without a store.
  void checkpoint_win_table();

 private:
  /// Result of solving one canonical instance, shareable across all
  /// requests that mapped to it.
  struct CanonicalOutcome {
    SolveStatus status = SolveStatus::EngineFailure;
    std::string message;
    std::shared_ptr<const ResultEntry> entry;  ///< set when status == Ok
    bool reduction_cached = false;
    bool result_cached = false;
    bool coalesced = false;  ///< joined an identical in-flight solve
  };

  CanonicalOutcome solve_canonical(const Graph& graph, const CanonicalForm& form, const PVec& p,
                                   const std::optional<Engine>& engine,
                                   std::chrono::milliseconds deadline, obs::Trace* trace);
  CanonicalOutcome solve_canonical_coalesced(const Graph& graph, const CanonicalForm& form,
                                             const PVec& p, const std::optional<Engine>& engine,
                                             std::chrono::milliseconds deadline,
                                             obs::Trace* trace);
  SolveResponse respond(const SolveRequest& request, const CanonicalForm& form,
                        const CanonicalOutcome& outcome, ResponseSource fallback_source,
                        double seconds) const;

  /// solve_one with queue provenance: `enqueued_ns` (steady_now_ns() at
  /// admission, 0 = not queued / metrics off) becomes the trace origin, so
  /// queue wait is part of the recorded end-to-end latency.
  SolveResponse solve_one_timed(const SolveRequest& request, std::uint64_t enqueued_ns);

  /// Stamp total/result, feed the per-stage histograms, hand the trace to
  /// the slow ring. Only called when metrics are on.
  void finish_trace(obs::Trace&& trace, const char* result);

  /// Publish this solver's own metrics plus every owned component's into
  /// registry_ (constructor tail).
  void register_metrics();

  /// True when the request has admission headroom under BOTH gates (the
  /// request-count bound and, when configured, the work-price budget);
  /// false increments the rejection counters. On admission,
  /// `admitted_work_ns` is the predicted cost charged to the pending-work
  /// gauge — the completion path must release exactly that amount. The
  /// check is racy by design (two concurrent submits may both pass at the
  /// boundary) — the bounds are backpressure valves, not exact
  /// semaphores.
  bool admit(const SolveRequest& request, std::uint64_t& admitted_work_ns);

  // Declaration order doubles as teardown order (reversed): request_pool_
  // is declared LAST so its destructor — which drains still-queued request
  // tasks — runs first, while the engine pool, portfolio, cache, and
  // coalescing state those tasks use are all still alive.
  Options options_;
  // Every registered metric points into members of this object (or the
  // backend it shares), so "metrics outlive snapshots" holds by
  // construction; shorter-lived publishers (the socket server) deregister
  // in their destructors.
  obs::MetricRegistry registry_;
  obs::TraceRing traces_;
  SolveCache cache_;
  std::shared_ptr<PersistentBackend> backend_;  ///< shared with cache_
  SolveCache::WarmStats warm_stats_;
  // Declared before the pools and the portfolio: races finishing during
  // teardown still report into the tuner, so it must be destroyed after
  // them (i.e. constructed before).
  EngineTuner tuner_;
  TaskPool engine_pool_;
  EnginePortfolio portfolio_;
  obs::Counter requests_total_;
  obs::Counter requests_coalesced_;
  obs::Counter engine_solves_;
  obs::Counter rejected_overload_;
  obs::Counter rejected_work_priced_;
  /// Predicted ns admitted but not finished (see pending_work_ns()).
  std::atomic<std::uint64_t> pending_work_ns_{0};
  // Per-stage latency histograms, fed from completed traces (metrics on
  // only). request_ns_ is end-to-end including queue wait.
  obs::LatencyHistogram request_ns_;
  obs::LatencyHistogram queue_wait_ns_;
  obs::LatencyHistogram canonical_ns_;
  obs::LatencyHistogram cache_lookup_ns_;
  obs::LatencyHistogram reduction_ns_;
  obs::LatencyHistogram engine_race_ns_;
  obs::LatencyHistogram verify_ns_;
  obs::LatencyHistogram store_put_ns_;
  obs::LatencyHistogram coalesced_wait_ns_;
  // Work-attribution profiling (Options::profile): which canonical graphs
  // eat the engine time, and how the per-request deadlines fared.
  obs::KeyProfileTable key_profile_;
  obs::SloTracker slo_;

  // In-flight coalescing for submit(): maps a result key to the shared
  // outcome of the request currently computing it.
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_future<CanonicalOutcome>> inflight_;

  TaskPool request_pool_;
};

}  // namespace lptsp
