#include "service/solve_cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/labeling.hpp"
#include "store/backend.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace lptsp {

SolveCache::SolveCache(const Config& config) : config_(config) {
  LPTSP_REQUIRE(config.shards >= 1, "cache needs at least one shard");
  LPTSP_REQUIRE(config.capacity >= config.shards,
                "cache capacity must cover at least one entry per shard");
  // Ceiling division: the configured total must be reachable even when it
  // does not divide evenly across shards. Each namespace gets its own
  // per-shard budget so neither can squeeze the other.
  const std::size_t reduction_capacity =
      config.reduction_capacity == 0 ? config.capacity : config.reduction_capacity;
  per_shard_capacity_[kResultSpace] =
      std::max<std::size_t>(1, (config.capacity + config.shards - 1) / config.shards);
  per_shard_capacity_[kReductionSpace] =
      std::max<std::size_t>(1, (reduction_capacity + config.shards - 1) / config.shards);
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const void> SolveCache::find(const std::string& key, Space space,
                                             obs::Counter& hits, obs::Counter& misses) {
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  Lru& lru = shard.spaces[space];
  const auto it = lru.index.find(key);
  if (it == lru.index.end()) {
    misses.add();
    return nullptr;
  }
  // Move-to-front keeps the LRU order without invalidating map iterators.
  lru.order.splice(lru.order.begin(), lru.order, it->second);
  hits.add();
  return it->second->second;
}

bool SolveCache::put(const std::string& key, Space space, std::shared_ptr<const void> value,
                     bool (*keep_existing)(const void*, const void*)) {
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  Lru& lru = shard.spaces[space];
  const auto it = lru.index.find(key);
  if (it != lru.index.end()) {
    // Refresh in place (e.g. a better labeling for the same instance),
    // unless the policy says the resident entry is strictly better.
    const bool keep = keep_existing != nullptr && keep_existing(it->second->second.get(), value.get());
    if (!keep) it->second->second = std::move(value);
    lru.order.splice(lru.order.begin(), lru.order, it->second);
    return !keep;
  }
  lru.order.emplace_front(key, std::move(value));
  lru.index.emplace(key, lru.order.begin());
  insertions_.add();
  while (lru.order.size() > per_shard_capacity_[space]) {
    lru.index.erase(lru.order.back().first);
    lru.order.pop_back();
    evictions_.add();
  }
  return true;
}

std::shared_ptr<const ReductionEntry> SolveCache::find_reduction(const std::string& key) {
  return std::static_pointer_cast<const ReductionEntry>(
      find(key, kReductionSpace, reduction_hits_, reduction_misses_));
}

void SolveCache::put_reduction(const std::string& key,
                               std::shared_ptr<const ReductionEntry> entry) {
  put(key, kReductionSpace, std::move(entry));
}

std::shared_ptr<const ResultEntry> SolveCache::find_result(const std::string& key) {
  auto entry = std::static_pointer_cast<const ResultEntry>(
      find(key, kResultSpace, result_hits_, result_misses_));
  if (entry != nullptr && entry->from_disk) {
    persisted_hits_.add();
  }
  return entry;
}

bool SolveCache::keep_better_result(const void* existing_ptr, const void* incoming_ptr) {
  // Concurrent solves of the same instance race to publish (coalescing
  // keys include the deadline budget, so different-budget requests solve
  // independently); keep whichever labeling is strictly better.
  const auto* existing = static_cast<const ResultEntry*>(existing_ptr);
  const auto* incoming = static_cast<const ResultEntry*>(incoming_ptr);
  return existing->span < incoming->span ||
         (existing->span == incoming->span && existing->optimal && !incoming->optimal);
}

void SolveCache::put_result(const std::string& key, std::shared_ptr<const ResultEntry> entry) {
  put(key, kResultSpace, std::move(entry), &SolveCache::keep_better_result);
}

void SolveCache::put_result(const std::string& key, const Graph& canon, const PVec& p,
                            std::shared_ptr<const ResultEntry> entry) {
  const bool accepted = put(key, kResultSpace, entry, &SolveCache::keep_better_result);
  // Write-through happens outside the shard lock; the store serializes
  // appends internally. Gating on `accepted` filters entries the resident
  // in-memory entry already beats; the backend then re-checks against the
  // record on DISK (which may be better than anything in memory after an
  // eviction), so the store itself is monotone-improving per key.
  if (accepted && backend_ != nullptr) backend_->put_result(key, canon, p, *entry);
}

void SolveCache::attach_backend(std::shared_ptr<PersistentBackend> backend) {
  backend_ = std::move(backend);
}

SolveCache::WarmStats SolveCache::warm_from_disk() {
  WarmStats stats;
  if (backend_ == nullptr) return stats;
  const Timer timer;
  stats.rejected += backend_->for_each_result(
      [&](const std::string& key, PersistedResult&& record) {
        // Trust nothing but the record's own bytes: rebuild the distance
        // matrix from the persisted canonical graph and re-check the
        // labeling against it. This catches corruption the CRC cannot
        // (records written by a buggy/foreign producer) at the cost of one
        // O(n^2/64 * n) BFS per record — microseconds at service sizes.
        try {
          Labeling labeling{std::move(record.entry.labels)};
          if (record.canon.n() == 0 ||
              labeling.labels.size() != static_cast<std::size_t>(record.canon.n())) {
            ++stats.rejected;
            return;
          }
          const PVec p(record.p_entries);
          const DistanceMatrix dist = all_pairs_distances(record.canon, 1);
          if (!dist.all_finite() || labeling.span() != record.entry.span ||
              !is_valid_labeling(record.canon, dist, p, labeling)) {
            ++stats.rejected;
            return;
          }
          auto entry = std::make_shared<ResultEntry>(std::move(record.entry));
          entry->labels = std::move(labeling.labels);
          entry->from_disk = true;
          // Plain in-memory insert: these records are already on disk, so
          // no write-through; the better-entry policy still applies.
          put(key, kResultSpace, std::shared_ptr<const ResultEntry>(std::move(entry)),
              &SolveCache::keep_better_result);
          ++stats.loaded;
        } catch (const std::exception&) {
          // Structurally valid bytes the library still chokes on — a
          // precondition violation (empty p vector), an allocation the
          // verification matrix cannot satisfy — get the same treatment as
          // any bad record: counted, skipped, never fatal. A store file
          // must not be able to stop the service from starting.
          ++stats.rejected;
        }
      });
  stats.seconds = timer.seconds();
  return stats;
}

std::size_t SolveCache::space_entries(Space space) const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    total += shard->spaces[space].order.size();
  }
  return total;
}

std::size_t SolveCache::size() const {
  return space_entries(kResultSpace) + space_entries(kReductionSpace);
}

std::size_t SolveCache::result_entries() const { return space_entries(kResultSpace); }

std::size_t SolveCache::reduction_entries() const { return space_entries(kReductionSpace); }

CacheStats SolveCache::stats() const {
  CacheStats stats;
  stats.result_hits = result_hits_.value();
  stats.result_misses = result_misses_.value();
  stats.reduction_hits = reduction_hits_.value();
  stats.reduction_misses = reduction_misses_.value();
  stats.insertions = insertions_.value();
  stats.evictions = evictions_.value();
  stats.persisted_hits = persisted_hits_.value();
  return stats;
}

void SolveCache::register_metrics(obs::MetricRegistry& registry, const void* owner) const {
  if (owner == nullptr) owner = this;
  registry.register_counter("cache_result_hits", &result_hits_, owner);
  registry.register_counter("cache_result_misses", &result_misses_, owner);
  registry.register_counter("cache_reduction_hits", &reduction_hits_, owner);
  registry.register_counter("cache_reduction_misses", &reduction_misses_, owner);
  registry.register_counter("cache_insertions", &insertions_, owner);
  registry.register_counter("cache_evictions", &evictions_, owner);
  registry.register_counter("cache_persisted_hits", &persisted_hits_, owner);
  registry.register_gauge(
      "cache_result_entries",
      [this] { return static_cast<std::int64_t>(result_entries()); }, owner);
  registry.register_gauge(
      "cache_reduction_entries",
      [this] { return static_cast<std::int64_t>(reduction_entries()); }, owner);
}

void SolveCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    for (Lru& lru : shard->spaces) {
      lru.order.clear();
      lru.index.clear();
    }
  }
}

}  // namespace lptsp
