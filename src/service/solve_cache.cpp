#include "service/solve_cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.hpp"

namespace lptsp {

SolveCache::SolveCache(const Config& config) : config_(config) {
  LPTSP_REQUIRE(config.shards >= 1, "cache needs at least one shard");
  LPTSP_REQUIRE(config.capacity >= config.shards,
                "cache capacity must cover at least one entry per shard");
  // Ceiling division: the configured total must be reachable even when it
  // does not divide evenly across shards.
  per_shard_capacity_ =
      std::max<std::size_t>(1, (config.capacity + config.shards - 1) / config.shards);
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const void> SolveCache::find(const std::string& key,
                                             std::atomic<std::uint64_t>& hits,
                                             std::atomic<std::uint64_t>& misses) {
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Move-to-front keeps the LRU order without invalidating map iterators.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void SolveCache::put(const std::string& key, std::shared_ptr<const void> value,
                     bool (*keep_existing)(const void*, const void*)) {
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (e.g. a better labeling for the same instance),
    // unless the policy says the resident entry is strictly better.
    if (keep_existing == nullptr || !keep_existing(it->second->second.get(), value.get())) {
      it->second->second = std::move(value);
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const ReductionEntry> SolveCache::find_reduction(const std::string& key) {
  return std::static_pointer_cast<const ReductionEntry>(
      find(key, reduction_hits_, reduction_misses_));
}

void SolveCache::put_reduction(const std::string& key,
                               std::shared_ptr<const ReductionEntry> entry) {
  put(key, std::move(entry));
}

std::shared_ptr<const ResultEntry> SolveCache::find_result(const std::string& key) {
  return std::static_pointer_cast<const ResultEntry>(find(key, result_hits_, result_misses_));
}

void SolveCache::put_result(const std::string& key, std::shared_ptr<const ResultEntry> entry) {
  // Concurrent solves of the same instance race to publish (coalescing
  // keys include the deadline budget, so different-budget requests solve
  // independently); keep whichever labeling is strictly better.
  put(key, std::move(entry), [](const void* existing_ptr, const void* incoming_ptr) {
    const auto* existing = static_cast<const ResultEntry*>(existing_ptr);
    const auto* incoming = static_cast<const ResultEntry*>(incoming_ptr);
    return existing->span < incoming->span ||
           (existing->span == incoming->span && existing->optimal && !incoming->optimal);
  });
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

CacheStats SolveCache::stats() const {
  CacheStats stats;
  stats.result_hits = result_hits_.load(std::memory_order_relaxed);
  stats.result_misses = result_misses_.load(std::memory_order_relaxed);
  stats.reduction_hits = reduction_hits_.load(std::memory_order_relaxed);
  stats.reduction_misses = reduction_misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

void SolveCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace lptsp
