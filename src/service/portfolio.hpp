#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/solvers.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "tsp/instance.hpp"
#include "tsp/path.hpp"
#include "util/thread_pool.hpp"

namespace lptsp {

class EngineTuner;

struct PortfolioOptions {
  /// Default per-race wall-clock budget; 0 = run every engine to
  /// completion. Cancellable engines (BranchBound, ChainedLK) are stopped
  /// at the deadline and contribute their incumbent.
  std::chrono::milliseconds deadline{250};
  /// Held–Karp takes the exact slot up to this n (its 2^n * n memory cap).
  /// The DP polls the race's cancel flag at layer boundaries, so it races
  /// even when its predicted runtime overruns the deadline by up to 4x;
  /// beyond that — or beyond this cap — the O(n)-memory BranchBound takes
  /// the slot, whose cancellation still yields an anytime incumbent.
  int exact_max_n = 20;
  /// BranchBound search cap per race, independent of the deadline.
  long long bb_node_limit = 20'000'000;
  std::uint64_t seed = 1;
  /// Record race winners per instance-size bucket and skip the exact
  /// engine once it has demonstrably never won at that size.
  bool learn = true;
};

/// One engine's run inside a race, for provenance and tests.
struct EngineAttempt {
  Engine engine = Engine::ChainedLK;
  bool finished = false;   ///< ran to completion (not cancelled / no cap hit)
  bool verified = false;   ///< order is a permutation and cost re-checks
  bool optimal = false;    ///< exact engine AND finished
  Weight cost = -1;
  double seconds = 0;
  obs::EngineWork work;    ///< work this attempt performed (its fields only)
};

struct PortfolioOutcome {
  PathSolution solution;
  bool optimal = false;
  Engine winner = Engine::ChainedLK;
  std::vector<EngineAttempt> attempts;
  double seconds = 0;
  obs::EngineWork work;    ///< all attempts' work, merged
};

/// Deadline-aware engine racing. Each race launches an exact engine
/// (Held–Karp for small n, BranchBound above) and the strongest heuristic
/// (ChainedLK) concurrently on a TaskPool, cancels stragglers at the
/// deadline, and returns the best result among those that verify
/// (permutation check + independent cost recomputation). Race winners are
/// recorded per size bucket, so over time the portfolio learns which
/// engine to trust for which instance sizes.
class EnginePortfolio {
 public:
  explicit EnginePortfolio(TaskPool& pool, const PortfolioOptions& options = {});

  /// Race engines on one reduced instance. `deadline_override`, when set,
  /// replaces options.deadline for this race (per-request deadlines).
  PortfolioOutcome race(const MetricInstance& instance,
                        std::optional<std::chrono::milliseconds> deadline_override = {});

  /// The engine that has won most races for instances of size n (falls
  /// back to a size-based static choice before any race has been run).
  [[nodiscard]] Engine preferred_engine(int n) const;

  /// Total races recorded per (size bucket, engine slot); exposed for
  /// tests and monitoring.
  [[nodiscard]] std::uint64_t wins(int n, Engine engine) const;

  [[nodiscard]] const PortfolioOptions& options() const noexcept { return options_; }

  /// Win-table dimensions, public so the durable store can persist the
  /// table with its shape and refuse records from a build that changed it.
  static constexpr int kBuckets = 32;           // bucket = bit_width(n)
  static constexpr int kSlots = 3;              // HeldKarp / BranchBound / ChainedLK

  /// Held-Karp's hard memory cap: its 2^n * n DP table stops being a
  /// sane allocation above this n regardless of what exact_max_n asks
  /// for. One constant shared by preferred_engine and race, so the two
  /// call sites cannot drift.
  static constexpr int kHeldKarpMemoryCapN = 22;

  /// Attach the learning layer (not owned; must outlive every race).
  /// When attached and options.learn is set, race() consults the tuner
  /// for the exact-engine pre-trim decision and per-bucket effort, and
  /// reports every finished race back. Call before serving traffic —
  /// attachment is not synchronized against in-flight races.
  void attach_tuner(EngineTuner* tuner) noexcept { tuner_ = tuner; }

  /// Flat snapshot of the win table (kBuckets * kSlots counters,
  /// bucket-major) — what BatchSolver checkpoints to the durable store.
  [[nodiscard]] std::vector<std::uint64_t> win_table() const;

  /// Add persisted counters into the live table (element-wise). Merging
  /// rather than overwriting means a restart resumes learning where the
  /// previous process stopped, and racing in-flight wins are never lost.
  /// Inputs of the wrong length are ignored.
  void merge_win_table(const std::vector<std::uint64_t>& counts);

  /// Brownout override (rung 1 of the server's degradation ladder): while
  /// set, race() skips the exact engine entirely and serves the chained-LK
  /// heuristic alone — bounded work per request, no optimality
  /// certificates. Safe to toggle from any thread; in-flight races finish
  /// under the mode they started with.
  void force_heuristic_only(bool on) noexcept {
    heuristic_only_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool heuristic_only() const noexcept {
    return heuristic_only_.load(std::memory_order_relaxed);
  }

  /// Publish race totals, per-engine win/cancel counters and per-engine
  /// latency histograms into `registry`, tagged with `owner` (defaults to
  /// this portfolio). The portfolio must outlive the registry's snapshots
  /// or deregister(owner) first.
  void register_metrics(obs::MetricRegistry& registry, const void* owner = nullptr) const;

  /// Lifetime engine-work totals across every race (engine_work_* in the
  /// registry; the profile JSON renders them with per-second rates).
  [[nodiscard]] const obs::WorkCounters& work() const noexcept { return work_; }

 private:
  static int bucket_of(int n) noexcept;
  static int slot_of(Engine engine) noexcept;

  TaskPool& pool_;
  PortfolioOptions options_;
  EngineTuner* tuner_ = nullptr;
  std::array<std::array<std::atomic<std::uint64_t>, kSlots>, kBuckets> wins_{};
  /// Per-bucket otherwise-skipped race counters for the built-in epsilon
  /// re-probe (used when no tuner is attached): every Nth skip launches
  /// the exact engine anyway, so the skip rule can never freeze on a
  /// merged heuristic-heavy win table.
  std::array<std::atomic<std::uint64_t>, kBuckets> skip_streak_{};
  // Observability storage, indexed by slot_of(). The win table above is
  // learning state (bucketed by size, persisted); these are monitoring
  // counters (global per engine, reset on restart) — different consumers,
  // so they stay separate.
  std::atomic<bool> heuristic_only_{false};
  obs::Counter races_total_;
  obs::Counter races_failed_;
  obs::Counter races_heuristic_only_;  ///< races run with the exact slot shed
  std::array<obs::Counter, kSlots> slot_wins_;
  std::array<obs::Counter, kSlots> slot_cancelled_;
  std::array<obs::LatencyHistogram, kSlots> slot_latency_;
  obs::WorkCounters work_;
};

}  // namespace lptsp
