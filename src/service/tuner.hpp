#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

/// The learning layer over the portfolio's win table and the profile
/// plumbing (PR 9's named contract). Three policies, all fed from signals
/// the service already collects:
///
///   - Pre-trim with re-probe: replaces the frozen "skip the exact engine
///     after 8 heuristic wins" rule with decayed per-bucket win scores —
///     evidence ages out instead of accumulating forever — plus an epsilon
///     re-probe: every Nth otherwise-skipped race still launches the exact
///     engine. A heuristic-heavy persisted win table can bias the learner
///     but can never freeze it.
///   - Effort tuning: per-bucket effort percentage derived from observed
///     deadline hit/miss windows and slack, applied by the portfolio to
///     ChainedLK kick counts, BranchBound node budgets, and the Held-Karp
///     deadline-overrun factor. Steps are clamped and every change is
///     journaled (TunerEffort), so policy drift is auditable.
///   - Work-priced admission: predicts a request's engine cost from the
///     per-bucket race-latency histograms and the KeyProfileTable's
///     hot-key stats, so BatchSolver can admit against predicted pending
///     work (nanoseconds) instead of request count and overload rejects
///     expensive requests first instead of starving cheap traffic.
namespace lptsp {

struct TunerOptions {
  /// Master switch: disabled, admit_exact always launches the exact
  /// engine's slot per the static rules and effort stays at 100%.
  bool enabled = true;

  // --- pre-trim with re-probe ---
  /// Halve both win scores in a bucket every this many observed races
  /// there (0 = never decay). Decay is what lets a bucket un-learn a
  /// stale verdict when deadlines or hardware change.
  std::uint32_t decay_every = 64;
  /// Trim the exact engine only when the heuristic's decayed score is at
  /// least this and the exact score has decayed to (effectively) zero.
  double skip_score = 8.0;
  /// Every Nth otherwise-trimmed race still launches the exact engine
  /// (0 = never re-probe — restores the frozen behavior, operators only).
  std::uint32_t reprobe_every = 16;

  // --- effort tuning ---
  /// Re-evaluate a bucket's effort after this many deadline-bounded races
  /// there (0 = effort tuning off, stays at 100%).
  std::uint32_t effort_update_every = 32;
  /// Clamped step per update and the overall range, in percent of the
  /// static engine budgets (100 = the portfolio's built-in effort).
  int effort_step_percent = 25;
  int effort_min_percent = 25;
  int effort_max_percent = 400;
  /// Raise effort only when a window hits at least this percent of its
  /// deadlines AND has comfortable slack; shed effort below it.
  int target_hit_percent = 95;

  // --- work-priced admission ---
  /// Which per-bucket race-latency quantile prices a request.
  double admission_quantile = 0.90;
};

/// What the portfolio applies to one race, resolved per size bucket.
struct EffortPolicy {
  /// Scales ChainedLK kicks and the BranchBound node budget.
  int percent = 100;
  /// Held-Karp races while its predicted runtime is within this factor of
  /// the deadline (the historical constant was 4.0).
  double hk_overrun_factor = 4.0;
};

class EngineTuner {
 public:
  /// Must match EnginePortfolio::kBuckets (asserted in portfolio.cpp);
  /// duplicated here so this header does not depend on the portfolio's.
  static constexpr int kBuckets = 32;
  static constexpr double kBaseHkOverrunFactor = 4.0;

  EngineTuner() : EngineTuner(TunerOptions{}, std::chrono::milliseconds{250}) {}
  /// `default_deadline` prices requests that carry no deadline of their
  /// own (the service default race budget; <= 0 falls back to 250ms).
  EngineTuner(const TunerOptions& options, std::chrono::milliseconds default_deadline);

  EngineTuner(const EngineTuner&) = delete;
  EngineTuner& operator=(const EngineTuner&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }
  [[nodiscard]] const TunerOptions& options() const noexcept { return options_; }

  /// Attach the solver's hot-key table as the admission predictor's
  /// second signal (optional; the table must outlive this tuner).
  void attach_key_profile(const obs::KeyProfileTable* profile) noexcept {
    key_profile_ = profile;
  }

  /// Seed the decayed scores from a persisted portfolio win table
  /// (bucket-major kBuckets x `slots` flat counters, slots ordered
  /// HeldKarp/BranchBound/ChainedLK). Counts are capped at a few
  /// skip_scores so stale history biases the first decisions but decays
  /// away within a couple of windows. Wrong-shape inputs are ignored.
  void seed_from_win_table(const std::vector<std::uint64_t>& counts, int slots);

  /// Pre-trim decision for one race at `bucket`: true = launch the exact
  /// engine (either the bucket is not trimmed, or this race is the
  /// epsilon re-probe). Emits TunerPretrim on trim-state flips.
  [[nodiscard]] bool admit_exact(int bucket);

  /// Feed one finished race back. `contested` mirrors the win table's
  /// rule (>= 2 verified attempts); only contested races move the win
  /// scores, but every race feeds the latency predictor and — when
  /// deadline-bounded — the effort window.
  void observe_race(int bucket, bool exact_won, bool contested, std::uint64_t race_ns,
                    std::int64_t deadline_ms);

  /// Current effort for a bucket (lock-free; read on the race path).
  [[nodiscard]] EffortPolicy effort(int bucket) const;

  /// Predicted engine cost of one request: max of the bucket's race
  /// latency quantile and the hot-key table's bucket mean, falling back
  /// to the full race budget when the bucket has no history (admission
  /// must price unknown sizes conservatively). Capped at twice the
  /// request's own budget — a race cannot run much past its deadline.
  [[nodiscard]] std::uint64_t predicted_work_ns(int n, std::int64_t deadline_ms) const;

  /// tuner_reprobes / tuner_pretrim_skips / tuner_effort_changes.
  void register_metrics(obs::MetricRegistry& registry, const void* owner) const;

  /// The profile_json "tuner" block:
  /// {"enabled":..,"reprobes":..,"pretrim_skips":..,"effort_changes":..,
  ///  "buckets":[{"bucket":..,"exact_score":..,"heuristic_score":..,
  ///              "trimmed":..,"effort_percent":..,"races":..,
  ///              "predicted_ns":..},...]}  (observed buckets only)
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::uint64_t reprobes() const noexcept { return reprobes_.value(); }
  [[nodiscard]] std::uint64_t pretrim_skips() const noexcept { return pretrim_skips_.value(); }
  [[nodiscard]] std::uint64_t effort_changes() const noexcept { return effort_changes_.value(); }

 private:
  struct Bucket {
    double exact_score = 0;
    double heuristic_score = 0;
    std::uint64_t observations = 0;
    std::uint32_t skips_since_probe = 0;
    bool trimmed = false;
    // Effort window: deadline-bounded races since the last update.
    std::uint32_t window_total = 0;
    std::uint32_t window_misses = 0;
    double window_slack_frac_sum = 0;  ///< sum over hits of (budget-elapsed)/budget
  };

  static int clamp_bucket(int bucket) noexcept;
  [[nodiscard]] bool trimmed_now(const Bucket& bucket) const noexcept;

  TunerOptions options_;
  std::chrono::milliseconds default_deadline_;
  const obs::KeyProfileTable* key_profile_ = nullptr;

  /// One mutex over all bucket learning state: admit/observe run once per
  /// engine race (milliseconds apart), so contention is negligible — and
  /// the race-path reads (effort, prediction) never take it.
  mutable std::mutex mutex_;
  std::array<Bucket, kBuckets> buckets_;

  /// Lock-free views of the learned policy, written under mutex_.
  std::array<std::atomic<int>, kBuckets> effort_percent_;
  std::array<obs::LatencyHistogram, kBuckets> race_ns_;

  obs::Counter reprobes_;        ///< trimmed races that launched exact anyway
  obs::Counter pretrim_skips_;   ///< races that skipped the exact engine
  obs::Counter effort_changes_;  ///< effort policy adjustments applied
};

}  // namespace lptsp
