#pragma once

#include "graph/graph.hpp"

namespace lptsp {

/// Theorem 1 gadget (Hamiltonian Cycle -> Hamiltonian Path, clique-width
/// preserving up to +4): given G and a pivot vertex v, add a false twin v'
/// of v, a pendant w adjacent to v, and a pendant w' adjacent to v'.
/// G has a Hamiltonian cycle iff the gadget has a Hamiltonian path (which
/// is then forced to run from w to w').
struct HcToHpGadget {
  Graph graph;
  int twin = -1;      ///< v' = n
  int pendant = -1;   ///< w  = n + 1 (attached to the pivot)
  int pendant2 = -1;  ///< w' = n + 2 (attached to the twin)
};
HcToHpGadget hc_to_hp_gadget(const Graph& graph, int pivot = 0);

/// Theorem 3 / Griggs–Yeh gadget (Hamiltonian Path -> L(2,1)-labeling on
/// diameter-2 graphs): the complement of G plus a universal vertex
/// (index n). The gadget H always has diameter <= 2, and
///   lambda_{2,1}(H) = n + 1  iff  G has a Hamiltonian path,
///   lambda_{2,1}(H) >= n + 2 otherwise,
/// because in the reduced {1,2}-weighted Path TSP the universal vertex
/// forces at least one heavy edge and G-path edges are exactly the cheap
/// ones.
Graph griggs_yeh_gadget(const Graph& graph);

}  // namespace lptsp
