#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lptsp {

/// Hamiltonian path existence via the endpoint-set dynamic program:
/// reach[S] = bitmask of vertices v such that some Hamiltonian path of
/// G[S] ends at v. O(2^n * n) words of work. Requires n <= 24.
bool has_hamiltonian_path(const Graph& graph);

/// As above, returning a witness order when one exists.
std::optional<std::vector<int>> hamiltonian_path(const Graph& graph);

/// Hamiltonian cycle existence (graphs with n < 3 return false).
bool has_hamiltonian_cycle(const Graph& graph);

/// Minimum number of vertex-disjoint paths covering all vertices
/// (PARTITION INTO PATHS, the target of the paper's Corollary 2).
///
/// Computed as 1 + (optimal Path TSP value on the 0/1 instance that
/// charges 0 for edges of G and 1 for non-edges) — exactly the
/// equivalence the paper's Corollary 2 exploits in reverse. Uses the
/// Held–Karp engine, so it requires n <= 22.
int min_path_partition_exact(const Graph& graph);

/// Greedy upper bound for PARTITION INTO PATHS: repeatedly grow a path
/// from an arbitrary unused vertex, extending at both ends. Deterministic;
/// used at scales where the exact DP is unavailable.
int min_path_partition_greedy(const Graph& graph);

}  // namespace lptsp
