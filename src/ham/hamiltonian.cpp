#include "ham/hamiltonian.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "tsp/held_karp.hpp"
#include "util/check.hpp"

namespace lptsp {

namespace {

/// reach[S] = endpoint mask: v ∈ reach[S] iff G[S] has a Hamiltonian path
/// ending at v. reach[{v}] = {v}; reach[S] accumulates v ∈ S whose
/// neighborhood meets reach[S \ {v}].
std::vector<std::uint32_t> endpoint_dp(const Graph& graph) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1 && n <= 24, "Hamiltonian DP supports 1..24 vertices");
  // Adjacency rows as 32-bit masks.
  std::vector<std::uint32_t> adj(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    for (const int u : graph.neighbors(v)) adj[static_cast<std::size_t>(v)] |= 1u << u;
  }
  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  std::vector<std::uint32_t> reach(static_cast<std::size_t>(full) + 1, 0);
  for (int v = 0; v < n; ++v) reach[std::size_t{1} << v] = 1u << v;
  for (std::uint32_t set = 1; set <= full; ++set) {
    if (std::popcount(set) < 2) continue;
    std::uint32_t ends = 0;
    for (std::uint32_t candidates = set; candidates != 0; candidates &= candidates - 1) {
      const int v = std::countr_zero(candidates);
      if (reach[set ^ (1u << v)] & adj[static_cast<std::size_t>(v)]) ends |= 1u << v;
    }
    reach[set] = ends;
  }
  return reach;
}

}  // namespace

bool has_hamiltonian_path(const Graph& graph) {
  if (graph.n() == 0) return false;
  if (graph.n() == 1) return true;
  const auto reach = endpoint_dp(graph);
  return reach.back() != 0;
}

std::optional<std::vector<int>> hamiltonian_path(const Graph& graph) {
  if (graph.n() == 0) return std::nullopt;
  if (graph.n() == 1) return std::vector<int>{0};
  const auto reach = endpoint_dp(graph);
  const std::uint32_t full = static_cast<std::uint32_t>(reach.size() - 1);
  if (reach[full] == 0) return std::nullopt;

  std::vector<int> order;
  std::uint32_t set = full;
  int end = std::countr_zero(reach[full]);
  order.push_back(end);
  while (std::popcount(set) > 1) {
    const std::uint32_t rest = set ^ (1u << end);
    // Any predecessor that is both an endpoint of rest and adjacent to end.
    std::uint32_t candidates = reach[rest];
    int prev = -1;
    while (candidates != 0) {
      const int v = std::countr_zero(candidates);
      if (graph.has_edge(v, end)) {
        prev = v;
        break;
      }
      candidates &= candidates - 1;
    }
    LPTSP_ENSURE(prev != -1, "Hamiltonian path reconstruction failed");
    set = rest;
    end = prev;
    order.push_back(end);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

bool has_hamiltonian_cycle(const Graph& graph) {
  const int n = graph.n();
  if (n < 3) return false;
  LPTSP_REQUIRE(n <= 24, "Hamiltonian DP supports at most 24 vertices");
  // Fix vertex 0 as the cycle anchor: paths over S ∋ 0 starting at 0.
  std::vector<std::uint32_t> adj(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    for (const int u : graph.neighbors(v)) adj[static_cast<std::size_t>(v)] |= 1u << u;
  }
  const std::uint32_t full = (1u << n) - 1;
  std::vector<std::uint32_t> reach(static_cast<std::size_t>(full) + 1, 0);
  reach[1] = 1;  // path = {0}, ending at 0
  for (std::uint32_t set = 1; set <= full; ++set) {
    if (!(set & 1u) || std::popcount(set) < 2) continue;
    std::uint32_t ends = 0;
    for (std::uint32_t candidates = set & ~1u; candidates != 0; candidates &= candidates - 1) {
      const int v = std::countr_zero(candidates);
      if (reach[set ^ (1u << v)] & adj[static_cast<std::size_t>(v)]) ends |= 1u << v;
    }
    reach[set] = ends;
  }
  return (reach[full] & adj[0]) != 0;
}

int min_path_partition_exact(const Graph& graph) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1, "graph must be non-empty");
  if (n == 1) return 1;
  // Corollary-2 equivalence in reverse: charge 0 for edges and 1 for
  // non-edges; an optimal Hamiltonian path then breaks into (cost + 1)
  // edge-paths of G.
  MetricInstance instance(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) instance.set_weight(u, v, graph.has_edge(u, v) ? 0 : 1);
  }
  const PathSolution solution = held_karp_path(instance);
  return static_cast<int>(solution.cost) + 1;
}

int min_path_partition_greedy(const Graph& graph) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1, "graph must be non-empty");
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  int paths = 0;
  for (int start = 0; start < n; ++start) {
    if (used[static_cast<std::size_t>(start)]) continue;
    ++paths;
    used[static_cast<std::size_t>(start)] = true;
    // Grow from both endpoints until stuck.
    int head = start;
    int tail = start;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const int v : graph.neighbors(head)) {
        if (!used[static_cast<std::size_t>(v)]) {
          used[static_cast<std::size_t>(v)] = true;
          head = v;
          grew = true;
          break;
        }
      }
      for (const int v : graph.neighbors(tail)) {
        if (!used[static_cast<std::size_t>(v)]) {
          used[static_cast<std::size_t>(v)] = true;
          tail = v;
          grew = true;
          break;
        }
      }
    }
  }
  return paths;
}

}  // namespace lptsp
