#include "ham/gadgets.hpp"

#include "graph/operations.hpp"
#include "util/check.hpp"

namespace lptsp {

HcToHpGadget hc_to_hp_gadget(const Graph& graph, int pivot) {
  const int n = graph.n();
  LPTSP_REQUIRE(n >= 1, "gadget needs a non-empty graph");
  LPTSP_REQUIRE(pivot >= 0 && pivot < n, "pivot out of range");
  HcToHpGadget gadget{Graph(n + 3), n, n + 1, n + 2};
  for (const auto& [u, v] : graph.edges()) gadget.graph.add_edge(u, v);
  // v' is a false twin of the pivot: same open neighborhood, non-adjacent.
  for (const int u : graph.neighbors(pivot)) gadget.graph.add_edge(gadget.twin, u);
  gadget.graph.add_edge(gadget.pendant, pivot);
  gadget.graph.add_edge(gadget.pendant2, gadget.twin);
  return gadget;
}

Graph griggs_yeh_gadget(const Graph& graph) {
  LPTSP_REQUIRE(graph.n() >= 1, "gadget needs a non-empty graph");
  return add_universal_vertex(complement(graph));
}

}  // namespace lptsp
