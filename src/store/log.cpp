#include "store/log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32.hpp"
#include "util/endian.hpp"
#include "util/fault.hpp"

namespace lptsp {

namespace {

constexpr char kMagic[8] = {'L', 'P', 'T', 'S', 'P', 'L', 'O', 'G'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 16;  // magic(8) + version(4) + crc(4)
constexpr std::size_t kFrameSize = 8;    // payload_len(4) + payload_crc(4)

std::vector<std::uint8_t> encode_header() {
  std::vector<std::uint8_t> header(kMagic, kMagic + sizeof(kMagic));
  endian::put_u32(header, kVersion);
  endian::put_u32(header, crc32::of(header.data(), header.size()));
  return header;
}

std::string errno_text(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// write(2) the whole buffer, retrying on short writes and EINTR.
bool write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

/// Read the whole file from offset 0 into `out`; false on IO error.
bool read_all(int fd, std::vector<std::uint8_t>& out) {
  out.clear();
  std::uint8_t buffer[1u << 16];
  std::uint64_t offset = 0;
  while (true) {
    const ssize_t got = ::pread(fd, buffer, sizeof(buffer), static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return true;
    out.insert(out.end(), buffer, buffer + got);
    offset += static_cast<std::uint64_t>(got);
  }
}

}  // namespace

std::unique_ptr<RecordLog> RecordLog::open(const Options& options, const RecordFn& on_record,
                                           OpenStats& stats, std::string& error) {
  stats = OpenStats{};
  const int fd = ::open(options.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    error = errno_text("cannot open", options.path);
    return nullptr;
  }

  std::vector<std::uint8_t> file;
  if (!read_all(fd, file)) {
    error = errno_text("cannot read", options.path);
    ::close(fd);
    return nullptr;
  }

  if (file.empty()) {
    const std::vector<std::uint8_t> header = encode_header();
    if (!write_fully(fd, header.data(), header.size())) {
      error = errno_text("cannot write header to", options.path);
      ::close(fd);
      return nullptr;
    }
    stats.created = true;
    return std::unique_ptr<RecordLog>(new RecordLog(options, fd, kHeaderSize));
  }

  // Non-empty file: the header must be intact — a log whose first bytes are
  // garbage is not "a log with a damaged tail", it is some other file, and
  // silently truncating it to empty would destroy data we do not own.
  const std::vector<std::uint8_t> expected_header = encode_header();
  if (file.size() < kHeaderSize ||
      !std::equal(expected_header.begin(), expected_header.end(), file.begin())) {
    error = "not a lptsp store log (bad header): " + options.path;
    ::close(fd);
    return nullptr;
  }

  // Sequential scan. `good_end` chases the end of the last cleanly framed
  // record so a damaged tail can be cut exactly where the damage starts.
  std::size_t pos = kHeaderSize;
  std::size_t good_end = kHeaderSize;
  bool truncate_tail = false;
  while (pos < file.size()) {
    if (file.size() - pos < kFrameSize) {
      truncate_tail = true;  // torn frame header
      break;
    }
    const std::uint32_t payload_len = endian::get_u32(file.data() + pos);
    const std::uint32_t expected_crc = endian::get_u32(file.data() + pos + 4);
    if (payload_len > options.max_record_bytes ||
        payload_len > file.size() - pos - kFrameSize) {
      // Implausible or overrunning length: either a torn append or a
      // corrupted length field. There is no trustworthy way to find the
      // next frame boundary, so everything from here on is a damaged tail.
      truncate_tail = true;
      break;
    }
    const std::uint8_t* payload = file.data() + pos + kFrameSize;
    if (crc32::of(payload, payload_len) != expected_crc) {
      // Payload bit rot inside an intact frame: the next frame boundary is
      // still known, so only this record is lost.
      ++stats.dropped_records;
    } else {
      on_record(payload, payload_len);
      ++stats.records;
    }
    pos += kFrameSize + payload_len;
    good_end = pos;
  }

  std::uint64_t size = file.size();
  if (truncate_tail && good_end < file.size()) {
    stats.truncated_bytes = file.size() - good_end;
    if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
      error = errno_text("cannot truncate damaged tail of", options.path);
      ::close(fd);
      return nullptr;
    }
    size = good_end;
  }
  if (::lseek(fd, static_cast<off_t>(size), SEEK_SET) < 0) {
    error = errno_text("cannot seek", options.path);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<RecordLog>(new RecordLog(options, fd, size));
}

std::unique_ptr<RecordLog> RecordLog::create(const Options& options, std::string& error) {
  const int fd =
      ::open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    error = errno_text("cannot create", options.path);
    return nullptr;
  }
  const std::vector<std::uint8_t> header = encode_header();
  if (!write_fully(fd, header.data(), header.size())) {
    error = errno_text("cannot write header to", options.path);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<RecordLog>(new RecordLog(options, fd, kHeaderSize));
}

RecordLog::~RecordLog() {
  if (fd_ >= 0) ::close(fd_);
}

bool RecordLog::append(const std::uint8_t* payload, std::size_t size) {
  if (failed_) return false;
  // An oversized payload is refused, but nothing was written, so the log
  // is still intact — later (fitting) appends must keep working. Only a
  // failed WRITE poisons the log: a half-written frame would corrupt the
  // scan of anything appended after it.
  if (size > options_.max_record_bytes) return false;
  // Injected append failure: models a failed write(2). Nothing reaches
  // the disk, but the caller-visible contract is the real one — the
  // append failed and the log is poisoned (a genuine failure could have
  // left a half-written frame).
  if (fault::should_fail(FaultSite::StoreAppend)) {
    failed_ = true;
    return false;
  }
  // One buffer, one write: the frame and payload land contiguously, so a
  // crash leaves at worst a torn tail (which open() repairs), never an
  // intact frame pointing at someone else's bytes.
  std::vector<std::uint8_t> record;
  record.reserve(kFrameSize + size);
  endian::put_u32(record, static_cast<std::uint32_t>(size));
  endian::put_u32(record, crc32::of(payload, size));
  record.insert(record.end(), payload, payload + size);
  if (!write_fully(fd_, record.data(), record.size())) {
    failed_ = true;
    return false;
  }
  size_ += record.size();
  return true;
}

bool RecordLog::sync() {
  if (failed_) return false;
  // An injected fsync failure does not poison the log: the data is
  // intact, only the durability point was refused — same as a real
  // transient fsync error.
  if (fault::should_fail(FaultSite::StoreFsync)) return false;
  return ::fsync(fd_) == 0;
}

bool sync_parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace lptsp
