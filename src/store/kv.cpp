#include "store/kv.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "util/endian.hpp"
#include "util/fault.hpp"

namespace lptsp {

namespace {

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpErase = 2;

void append_bytes(std::vector<std::uint8_t>& out, const std::string& bytes) {
  endian::put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

bool read_bytes(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                std::string& out) {
  std::uint32_t len = 0;
  if (!endian::try_get_u32(data, size, offset, len) || len > size - offset) return false;
  out.assign(reinterpret_cast<const char*>(data + offset), len);
  offset += len;
  return true;
}

std::vector<std::uint8_t> encode_put(std::uint8_t ns, const std::string& key,
                                     const std::string& value) {
  std::vector<std::uint8_t> payload;
  payload.reserve(2 + 8 + key.size() + value.size());
  payload.push_back(kOpPut);
  payload.push_back(ns);
  append_bytes(payload, key);
  append_bytes(payload, value);
  return payload;
}

std::vector<std::uint8_t> encode_erase(std::uint8_t ns, const std::string& key) {
  std::vector<std::uint8_t> payload;
  payload.reserve(2 + 4 + key.size());
  payload.push_back(kOpErase);
  payload.push_back(ns);
  append_bytes(payload, key);
  return payload;
}

}  // namespace

std::unique_ptr<KvStore> KvStore::open(const Options& options, std::string& error) {
  // A leftover sibling from a compaction that crashed before its rename is
  // dead weight (the main log is still the valid one); reclaim it.
  std::remove((options.path + ".compact").c_str());
  std::unique_ptr<KvStore> store(new KvStore(options));
  RecordLog::Options log_options;
  log_options.path = options.path;
  log_options.max_record_bytes = options.max_record_bytes;
  RecordLog::OpenStats log_stats;
  store->log_ = RecordLog::open(
      log_options,
      [&store](const std::uint8_t* payload, std::size_t size) {
        // One KV operation per record. Unknown ops/namespaces (a newer
        // format writing into an old reader) and malformed payloads are
        // data loss already contained to one record: count and move on.
        if (size < 2) {
          ++store->dropped_records_;
          return;
        }
        const std::uint8_t op = payload[0];
        const std::uint8_t ns = payload[1];
        std::size_t offset = 2;
        std::string key;
        if (ns >= kNamespaces || !read_bytes(payload, size, offset, key)) {
          ++store->dropped_records_;
          return;
        }
        if (op == kOpPut) {
          std::string value;
          if (!read_bytes(payload, size, offset, value) || offset != size) {
            ++store->dropped_records_;
            return;
          }
          store->maps_[ns][std::move(key)] = std::move(value);
        } else if (op == kOpErase && offset == size) {
          store->maps_[ns].erase(key);
        } else {
          ++store->dropped_records_;
          return;
        }
        ++store->total_records_;
      },
      log_stats, error);
  if (store->log_ == nullptr) return nullptr;
  store->dropped_records_ += log_stats.dropped_records;
  store->truncated_bytes_ = log_stats.truncated_bytes;
  store->created_ = log_stats.created;
  return store;
}

bool KvStore::append_locked(std::vector<std::uint8_t>&& payload) {
  if (!log_->append(payload)) return false;
  ++total_records_;
  if (options_.sync_every_put && !log_->sync()) return false;
  maybe_compact_locked();
  return true;
}

bool KvStore::put(std::uint8_t ns, const std::string& key, const std::string& value) {
  if (ns >= kNamespaces) return false;
  const std::lock_guard lock(mutex_);
  maps_[ns][key] = value;
  return append_locked(encode_put(ns, key, value));
}

bool KvStore::erase(std::uint8_t ns, const std::string& key) {
  if (ns >= kNamespaces) return false;
  const std::lock_guard lock(mutex_);
  if (maps_[ns].erase(key) == 0) return true;  // nothing to tombstone
  return append_locked(encode_erase(ns, key));
}

std::optional<std::string> KvStore::get(std::uint8_t ns, const std::string& key) const {
  if (ns >= kNamespaces) return std::nullopt;
  const std::lock_guard lock(mutex_);
  const auto it = maps_[ns].find(key);
  if (it == maps_[ns].end()) return std::nullopt;
  return it->second;
}

void KvStore::for_each(
    std::uint8_t ns,
    const std::function<void(const std::string&, const std::string&)>& fn) const {
  if (ns >= kNamespaces) return;
  const std::lock_guard lock(mutex_);
  for (const auto& [key, value] : maps_[ns]) fn(key, value);
}

std::size_t KvStore::size(std::uint8_t ns) const {
  if (ns >= kNamespaces) return 0;
  const std::lock_guard lock(mutex_);
  return maps_[ns].size();
}

std::uint64_t KvStore::live_locked() const {
  std::uint64_t live = 0;
  for (const auto& map : maps_) live += map.size();
  return live;
}

KvStore::Stats KvStore::stats() const {
  const std::lock_guard lock(mutex_);
  Stats stats;
  stats.live_records = live_locked();
  stats.total_records = total_records_;
  stats.dropped_records = dropped_records_;
  stats.truncated_bytes = truncated_bytes_;
  stats.compactions = compactions_;
  stats.file_bytes = log_->bytes();
  stats.created = created_;
  return stats;
}

bool KvStore::sync() {
  const std::lock_guard lock(mutex_);
  return log_->sync();
}

void KvStore::maybe_compact_locked() {
  if (total_records_ < options_.compact_min_records) return;
  const std::uint64_t live = live_locked();
  const double garbage =
      1.0 - static_cast<double>(live) / static_cast<double>(total_records_);
  if (garbage > options_.compact_garbage_ratio) compact_locked();
}

bool KvStore::compact() {
  const std::lock_guard lock(mutex_);
  return compact_locked();
}

bool KvStore::compact_locked() {
  // Rewrite-and-rename: write the live set to a sibling file, fsync it,
  // then atomically rename over the log. The fresh RecordLog's fd follows
  // the inode across the rename, so appends continue seamlessly. A crash
  // before the rename leaves the old log; after, the new one — both valid.
  RecordLog::Options log_options;
  log_options.path = options_.path + ".compact";
  log_options.max_record_bytes = options_.max_record_bytes;
  std::string error;
  std::unique_ptr<RecordLog> fresh = RecordLog::create(log_options, error);
  if (fresh == nullptr) return false;
  // Any failure before the rename must not leave a full-size orphan
  // sitting next to the log (painful exactly when the disk is full).
  const auto abandon = [&fresh, &log_options] {
    fresh.reset();  // close the fd before unlinking
    std::remove(log_options.path.c_str());
    return false;
  };
  for (std::uint8_t ns = 0; ns < kNamespaces; ++ns) {
    for (const auto& [key, value] : maps_[ns]) {
      if (!fresh->append(encode_put(ns, key, value))) return abandon();
    }
  }
  if (!fresh->sync()) return abandon();
  // Injected crash in the rename window: the fully written sibling stays
  // on disk (deliberately NOT abandon() — a killed process cleans nothing
  // up) and the old log remains live. open() reclaims the orphan; the
  // compaction-crash-window tests assert reopen serves the pre-compaction
  // state with no lost records.
  if (fault::should_fail(FaultSite::StoreCompactRename)) {
    fresh.reset();
    return false;
  }
  if (std::rename(log_options.path.c_str(), options_.path.c_str()) != 0) {
    return abandon();
  }
  sync_parent_directory(options_.path);
  log_ = std::move(fresh);
  total_records_ = live_locked();
  ++compactions_;
  return true;
}

}  // namespace lptsp
