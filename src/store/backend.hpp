#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/pvec.hpp"
#include "obs/metrics.hpp"
#include "store/codec.hpp"
#include "store/kv.hpp"

namespace lptsp {

/// The durable face of the serving layer: one KvStore file holding the
/// solve cache's verified results (namespace 0, keyed by the exact
/// canonical result keys the in-memory cache uses) and the engine
/// portfolio's win table (namespace 1). SolveCache writes results through
/// here and warms itself back up via for_each_result; BatchSolver
/// checkpoints the win table on shutdown.
///
/// Persistence is best-effort by design: an IO failure flips writes into
/// counted no-ops instead of failing solves — the store is a cache of
/// re-derivable results, never the source of truth.
class PersistentBackend {
 public:
  static constexpr std::uint8_t kResultsNamespace = 0;
  static constexpr std::uint8_t kMetaNamespace = 1;

  struct Options {
    std::string path;
    bool sync_every_put = false;
    double compact_garbage_ratio = 0.5;
    std::uint64_t compact_min_records = 256;
  };

  /// Open or create the store file. nullptr + `error` on failure (corrupt
  /// header, unwritable path); torn tails and bad records inside a valid
  /// log are repaired/skipped by the layers below, never open failures.
  static std::unique_ptr<PersistentBackend> open(const Options& options, std::string& error);

  /// Persist one verified result under its canonical cache key. The
  /// canonical graph and p are stored alongside the labels so the record
  /// re-verifies on load without trusting the key bytes. The store is
  /// monotone-improving per key: an incoming entry strictly worse than the
  /// resident record is dropped (compared under an internal lock, so
  /// racing writers cannot LWW-overwrite a better record — the in-memory
  /// cache's "accepted" gate alone cannot guarantee this once the better
  /// entry has been LRU-evicted from memory). Graphs above
  /// kMaxPersistedGraphVertices are not persisted (they could never be
  /// re-verified on reload).
  void put_result(const std::string& key, const Graph& canon, const PVec& p,
                  const ResultEntry& entry);

  /// Decode every live result record into `fn`; undecodable values are
  /// counted (returned) and skipped. Runs under the store lock.
  std::uint64_t for_each_result(
      const std::function<void(const std::string& key, PersistedResult&& record)>& fn) const;

  void put_win_table(const WinTableRecord& table);
  [[nodiscard]] std::optional<WinTableRecord> load_win_table() const;

  /// Writes that failed at the KV/log layer since open (observability).
  [[nodiscard]] std::uint64_t write_failures() const noexcept { return write_failures_.value(); }

  /// Publish the append-latency histogram, write-failure counter, and
  /// gauges over KvStore::stats() (live/total records, file bytes,
  /// compactions) into `registry`, tagged with `owner` (defaults to this
  /// backend).
  void register_metrics(obs::MetricRegistry& registry, const void* owner = nullptr) const;

  [[nodiscard]] KvStore& kv() noexcept { return *kv_; }
  [[nodiscard]] const KvStore& kv() const noexcept { return *kv_; }

 private:
  explicit PersistentBackend(std::unique_ptr<KvStore> kv) : kv_(std::move(kv)) {}

  std::unique_ptr<KvStore> kv_;
  /// Serializes put_result's read-compare-write so the monotonicity check
  /// is atomic across racing result writers (win-table puts don't need it).
  std::mutex result_put_mutex_;
  obs::Counter write_failures_;
  /// End-to-end latency of durable appends (encode + monotonicity peek +
  /// KV put), recorded in both put_result and put_win_table.
  obs::LatencyHistogram append_ns_;
};

}  // namespace lptsp
