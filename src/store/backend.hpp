#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/pvec.hpp"
#include "obs/metrics.hpp"
#include "store/codec.hpp"
#include "store/kv.hpp"

namespace lptsp {

/// The durable face of the serving layer: one KvStore file holding the
/// solve cache's verified results (namespace 0, keyed by the exact
/// canonical result keys the in-memory cache uses) and the engine
/// portfolio's win table (namespace 1). SolveCache writes results through
/// here and warms itself back up via for_each_result; BatchSolver
/// checkpoints the win table on shutdown.
///
/// Persistence is best-effort by design: an IO failure flips writes into
/// counted no-ops instead of failing solves — the store is a cache of
/// re-derivable results, never the source of truth.
///
/// Degradation ladder: after `degraded_after_failures` CONSECUTIVE write
/// failures the backend enters read-only degraded mode (the
/// `store_degraded` gauge flips to 1). Serving continues from the
/// in-memory cache; writes become counted skips instead of repeated
/// syscall failures. While degraded, at most once per
/// `reopen_probe_interval` a write attempt turns into a reopen probe: a
/// forced compaction that rewrites the full live in-memory state to a
/// fresh log and atomically renames it over the old one. A successful
/// probe heals the store — including every record whose append failed
/// while degraded, because the in-memory index kept them — and exits
/// degraded mode.
class PersistentBackend {
 public:
  static constexpr std::uint8_t kResultsNamespace = 0;
  static constexpr std::uint8_t kMetaNamespace = 1;

  struct Options {
    std::string path;
    bool sync_every_put = false;
    double compact_garbage_ratio = 0.5;
    std::uint64_t compact_min_records = 256;
    /// Consecutive write failures before entering read-only degraded
    /// mode. <= 0 disables degradation (every write keeps trying).
    int degraded_after_failures = 3;
    /// While degraded, attempt a reopen/heal at most this often.
    std::chrono::milliseconds reopen_probe_interval{1000};
  };

  /// Open or create the store file. nullptr + `error` on failure (corrupt
  /// header, unwritable path); torn tails and bad records inside a valid
  /// log are repaired/skipped by the layers below, never open failures.
  static std::unique_ptr<PersistentBackend> open(const Options& options, std::string& error);

  /// Persist one verified result under its canonical cache key. The
  /// canonical graph and p are stored alongside the labels so the record
  /// re-verifies on load without trusting the key bytes. The store is
  /// monotone-improving per key: an incoming entry strictly worse than the
  /// resident record is dropped (compared under an internal lock, so
  /// racing writers cannot LWW-overwrite a better record — the in-memory
  /// cache's "accepted" gate alone cannot guarantee this once the better
  /// entry has been LRU-evicted from memory). Graphs above
  /// kMaxPersistedGraphVertices are not persisted (they could never be
  /// re-verified on reload).
  void put_result(const std::string& key, const Graph& canon, const PVec& p,
                  const ResultEntry& entry);

  /// Decode every live result record into `fn`; undecodable values are
  /// counted (returned) and skipped. Runs under the store lock.
  std::uint64_t for_each_result(
      const std::function<void(const std::string& key, PersistedResult&& record)>& fn) const;

  void put_win_table(const WinTableRecord& table);
  [[nodiscard]] std::optional<WinTableRecord> load_win_table() const;

  /// Writes that failed at the KV/log layer since open (observability).
  [[nodiscard]] std::uint64_t write_failures() const noexcept { return write_failures_.value(); }

  /// True while the backend is in read-only degraded mode.
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Attempt a heal right now regardless of the probe interval: force a
  /// compaction (full live-state rewrite + atomic rename). On success the
  /// backend leaves degraded mode. Exposed for tests and operator tooling;
  /// the write path calls this automatically on the probe cadence.
  bool probe_reopen();

  /// Publish the append-latency histogram, write-failure counter, and
  /// gauges over KvStore::stats() (live/total records, file bytes,
  /// compactions) into `registry`, tagged with `owner` (defaults to this
  /// backend).
  void register_metrics(obs::MetricRegistry& registry, const void* owner = nullptr) const;

  [[nodiscard]] KvStore& kv() noexcept { return *kv_; }
  [[nodiscard]] const KvStore& kv() const noexcept { return *kv_; }

 private:
  PersistentBackend(std::unique_ptr<KvStore> kv, const Options& options)
      : kv_(std::move(kv)), options_(options) {}

  /// Gate every durable write through the degradation ladder: true =
  /// proceed with the write; false = skip it (degraded, and no probe due
  /// or the probe failed). May heal the store as a side effect.
  bool allow_write();
  /// Account one write outcome: success resets the consecutive-failure
  /// run; failure counts it and may enter degraded mode.
  void note_write(bool ok);

  std::unique_ptr<KvStore> kv_;
  Options options_;
  /// Serializes put_result's read-compare-write so the monotonicity check
  /// is atomic across racing result writers (win-table puts don't need it).
  std::mutex result_put_mutex_;
  obs::Counter write_failures_;
  /// End-to-end latency of durable appends (encode + monotonicity peek +
  /// KV put), recorded in both put_result and put_win_table.
  obs::LatencyHistogram append_ns_;

  // Degradation ladder state. `degraded_` is the mode flag (also the
  // store_degraded gauge); the rest drives entry/exit accounting.
  std::atomic<bool> degraded_{false};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<std::uint64_t> last_probe_ns_{0};
  obs::Counter degraded_entered_;   ///< times the backend flipped read-only
  obs::Counter writes_skipped_;     ///< writes dropped while degraded
  obs::Counter reopen_probes_;      ///< heal attempts (successful or not)
  obs::Counter reopens_;            ///< successful heals
};

}  // namespace lptsp
