#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lptsp {

/// Append-only, crash-safe record log — the durability primitive under the
/// KV layer (store/kv.hpp).
///
/// File layout (all integers little-endian, via util/endian.hpp):
///
///   header:  "LPTSPLOG" (8)  | u32 version (=1) | u32 crc32(magic+version)
///   record:  u32 payload_len | u32 crc32(payload) | payload bytes
///
/// Crash-safety contract, enforced by open():
///  - a torn tail (partial frame or payload at EOF, e.g. the process died
///    mid-write) is truncated away, never reported as data and never fatal;
///  - a framed record whose CRC does not match (bit rot) is skipped and
///    counted, and scanning resumes at the next frame — only that record
///    is lost;
///  - a frame whose declared length is implausible (exceeds the remaining
///    file or max_record_bytes) cannot be resynced past, so the rest of the
///    file is treated as a damaged tail and truncated;
///  - a corrupt header is an open error (the file is not a log), reported
///    via the error string — opening never throws on bad file contents.
class RecordLog {
 public:
  struct Options {
    std::string path;
    /// Upper bound on a single payload; a frame declaring more is treated
    /// as corruption rather than an allocation request.
    std::size_t max_record_bytes = 64u << 20;
  };

  struct OpenStats {
    std::uint64_t records = 0;           ///< valid records delivered to the callback
    std::uint64_t dropped_records = 0;   ///< framed but CRC-mismatched, skipped
    std::uint64_t truncated_bytes = 0;   ///< damaged tail removed from the file
    bool created = false;                ///< the file was absent or empty
  };

  using RecordFn = std::function<void(const std::uint8_t* payload, std::size_t size)>;

  /// Open `options.path` (creating it with a fresh header when absent or
  /// empty), replay every valid record through `on_record` in append order,
  /// repair the tail per the contract above, and leave the file positioned
  /// for append(). Returns nullptr with `error` set on IO failure or a
  /// corrupt header.
  static std::unique_ptr<RecordLog> open(const Options& options, const RecordFn& on_record,
                                         OpenStats& stats, std::string& error);

  /// Create or truncate `options.path` as an empty log (compaction rewrites
  /// go through this, then rename over the live path).
  static std::unique_ptr<RecordLog> create(const Options& options, std::string& error);

  ~RecordLog();
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Append one record (frame + payload in a single write). Returns false
  /// on IO error or oversized payload; the log is then poisoned (every
  /// later append fails) so a half-written frame is never followed by more
  /// data it would corrupt the scan of.
  bool append(const std::uint8_t* payload, std::size_t size);
  bool append(const std::vector<std::uint8_t>& payload) {
    return append(payload.data(), payload.size());
  }

  /// fsync the file (and nothing else); false on IO error.
  bool sync();

  /// Current file size in bytes (header + records appended so far).
  [[nodiscard]] std::uint64_t bytes() const noexcept { return size_; }

  [[nodiscard]] const std::string& path() const noexcept { return options_.path; }

  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  RecordLog(Options options, int fd, std::uint64_t size)
      : options_(std::move(options)), fd_(fd), size_(size) {}

  Options options_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  bool failed_ = false;
};

/// fsync the directory containing `path`, making a just-renamed file
/// durable against the directory entry itself being lost. Best effort:
/// returns false on failure but callers treat that as advisory.
bool sync_parent_directory(const std::string& path);

}  // namespace lptsp
