#include "store/codec.hpp"

#include "graph/io.hpp"
#include "util/endian.hpp"

namespace lptsp {

namespace {

constexpr std::uint8_t kResultFormatVersion = 1;
constexpr std::uint8_t kWinTableFormatVersion = 1;

/// Engines are persisted as their enum value; anything beyond the last
/// enumerator is a corrupt or future record.
constexpr std::uint8_t kMaxEngine = static_cast<std::uint8_t>(Engine::BranchBound);

constexpr std::uint32_t kMaxPDimension = 64;        // k far beyond any real request
constexpr std::uint32_t kMaxWinTableCells = 4096;   // buckets * slots sanity bound

using endian::try_get_u32;
using endian::try_get_u64;
using endian::try_get_u8;

}  // namespace

void encode_persisted_result(std::vector<std::uint8_t>& out, const Graph& canon,
                             const std::vector<int>& p_entries, const ResultEntry& entry) {
  out.push_back(kResultFormatVersion);
  append_graph_binary(out, canon);
  endian::put_u32(out, static_cast<std::uint32_t>(p_entries.size()));
  for (const int p : p_entries) endian::put_u32(out, static_cast<std::uint32_t>(p));
  endian::put_u32(out, static_cast<std::uint32_t>(entry.labels.size()));
  for (const Weight label : entry.labels) {
    endian::put_u64(out, static_cast<std::uint64_t>(label));
  }
  // Fixed-size trailer — peek_persisted_result_quality reads span/optimal
  // straight off the record's tail, so its layout is part of format v1.
  endian::put_u64(out, static_cast<std::uint64_t>(entry.span));
  out.push_back(entry.optimal ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(entry.engine));
  endian::put_u64(out, static_cast<std::uint64_t>(entry.deadline_ms));
}

bool peek_persisted_result_quality(const std::uint8_t* data, std::size_t size, Weight& span,
                                   bool& optimal) {
  // Smallest possible v1 record: version(1) + empty graph n(4) + k(4) +
  // one p entry(4) + label count(4) + trailer(18).
  constexpr std::size_t kTrailerSize = 18;  // span u64 | optimal u8 | engine u8 | deadline u64
  constexpr std::size_t kMinRecordSize = 1 + 4 + 4 + 4 + 4 + kTrailerSize;
  if (size < kMinRecordSize || data[0] != kResultFormatVersion) return false;
  const std::uint8_t optimal_byte = data[size - 10];
  if (optimal_byte > 1) return false;
  span = static_cast<Weight>(endian::get_u64(data + size - kTrailerSize));
  if (span < 0) return false;
  optimal = optimal_byte == 1;
  return true;
}

bool decode_persisted_result(const std::uint8_t* data, std::size_t size,
                             PersistedResult& result, std::string& error) {
  std::size_t offset = 0;
  std::uint8_t version = 0;
  if (!try_get_u8(data, size, offset, version)) {
    error = "result record: truncated version byte";
    return false;
  }
  if (version != kResultFormatVersion) {
    error = "result record: unsupported format version " + std::to_string(version);
    return false;
  }
  if (!decode_graph_binary(data, size, offset, result.canon, error,
                           kMaxPersistedGraphVertices)) {
    error = "result record graph: " + error;
    return false;
  }
  std::uint32_t k = 0;
  if (!try_get_u32(data, size, offset, k) || k == 0 || k > kMaxPDimension) {
    error = "result record: bad p dimension";
    return false;
  }
  result.p_entries.assign(k, 0);
  for (std::uint32_t i = 0; i < k; ++i) {
    std::uint32_t p = 0;
    if (!try_get_u32(data, size, offset, p) || p > (1u << 30)) {
      error = "result record: bad p entry";
      return false;
    }
    result.p_entries[i] = static_cast<int>(p);
  }
  std::uint32_t label_count = 0;
  if (!try_get_u32(data, size, offset, label_count) ||
      label_count != static_cast<std::uint32_t>(result.canon.n())) {
    error = "result record: label count disagrees with graph order";
    return false;
  }
  result.entry.labels.assign(label_count, 0);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    std::uint64_t label = 0;
    if (!try_get_u64(data, size, offset, label)) {
      error = "result record: truncated labels";
      return false;
    }
    result.entry.labels[i] = static_cast<Weight>(label);
    if (result.entry.labels[i] < 0) {
      error = "result record: negative label";
      return false;
    }
  }
  std::uint64_t span = 0;
  std::uint8_t optimal = 0;
  std::uint8_t engine = 0;
  std::uint64_t deadline_ms = 0;
  if (!try_get_u64(data, size, offset, span) || !try_get_u8(data, size, offset, optimal) ||
      !try_get_u8(data, size, offset, engine) || !try_get_u64(data, size, offset, deadline_ms)) {
    error = "result record: truncated trailer";
    return false;
  }
  if (optimal > 1 || engine > kMaxEngine || static_cast<Weight>(span) < 0 ||
      static_cast<std::int64_t>(deadline_ms) < 0) {
    error = "result record: out-of-range trailer field";
    return false;
  }
  if (offset != size) {
    error = "result record: trailing bytes";
    return false;
  }
  result.entry.span = static_cast<Weight>(span);
  result.entry.optimal = optimal == 1;
  result.entry.engine = static_cast<Engine>(engine);
  result.entry.deadline_ms = static_cast<std::int64_t>(deadline_ms);
  return true;
}

void encode_win_table(std::vector<std::uint8_t>& out, const WinTableRecord& table) {
  out.push_back(kWinTableFormatVersion);
  endian::put_u32(out, table.buckets);
  endian::put_u32(out, table.slots);
  for (const std::uint64_t count : table.counts) endian::put_u64(out, count);
}

bool decode_win_table(const std::uint8_t* data, std::size_t size, WinTableRecord& table,
                      std::string& error) {
  std::size_t offset = 0;
  std::uint8_t version = 0;
  if (!try_get_u8(data, size, offset, version) || version != kWinTableFormatVersion) {
    error = "win table record: bad version";
    return false;
  }
  if (!try_get_u32(data, size, offset, table.buckets) ||
      !try_get_u32(data, size, offset, table.slots)) {
    error = "win table record: truncated dimensions";
    return false;
  }
  const std::uint64_t cells =
      static_cast<std::uint64_t>(table.buckets) * static_cast<std::uint64_t>(table.slots);
  if (cells == 0 || cells > kMaxWinTableCells) {
    error = "win table record: implausible dimensions";
    return false;
  }
  table.counts.assign(cells, 0);
  for (std::uint64_t i = 0; i < cells; ++i) {
    if (!try_get_u64(data, size, offset, table.counts[i])) {
      error = "win table record: truncated counts";
      return false;
    }
  }
  if (offset != size) {
    error = "win table record: trailing bytes";
    return false;
  }
  return true;
}

}  // namespace lptsp
