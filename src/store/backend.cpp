#include "store/backend.hpp"

#include <utility>
#include <vector>

#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace lptsp {

namespace {

constexpr char kWinTableKey[] = "win-table";

}  // namespace

std::unique_ptr<PersistentBackend> PersistentBackend::open(const Options& options,
                                                           std::string& error) {
  KvStore::Options kv_options;
  kv_options.path = options.path;
  kv_options.sync_every_put = options.sync_every_put;
  kv_options.compact_garbage_ratio = options.compact_garbage_ratio;
  kv_options.compact_min_records = options.compact_min_records;
  std::unique_ptr<KvStore> kv = KvStore::open(kv_options, error);
  if (kv == nullptr) return nullptr;
  return std::unique_ptr<PersistentBackend>(new PersistentBackend(std::move(kv), options));
}

bool PersistentBackend::allow_write() {
  if (!degraded_.load(std::memory_order_relaxed)) return true;
  const std::uint64_t now_ns = obs::steady_now_ns();
  const auto interval_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.reopen_probe_interval)
          .count());
  std::uint64_t last_ns = last_probe_ns_.load(std::memory_order_relaxed);
  // One writer wins the probe slot per interval (CAS): a heal attempt is
  // a full live-state rewrite, not something every racing put should pay.
  if (now_ns - last_ns >= interval_ns &&
      last_probe_ns_.compare_exchange_strong(last_ns, now_ns, std::memory_order_relaxed)) {
    if (probe_reopen()) return true;
  }
  writes_skipped_.add();
  return false;
}

bool PersistentBackend::probe_reopen() {
  reopen_probes_.add();
  // compact() rewrites the complete in-memory live set to a fresh log and
  // renames it over the (possibly poisoned) old one — so a successful
  // heal also recovers every record whose append failed while degraded.
  if (!kv_->compact()) return false;
  reopens_.add();
  consecutive_failures_.store(0, std::memory_order_relaxed);
  degraded_.store(false, std::memory_order_relaxed);
  obs::journal().emit(obs::EventType::StoreHealed, obs::EventLevel::Info);
  return true;
}

void PersistentBackend::note_write(bool ok) {
  if (ok) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    return;
  }
  write_failures_.add();
  if (options_.degraded_after_failures <= 0) return;
  const int failures = consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.degraded_after_failures &&
      !degraded_.exchange(true, std::memory_order_relaxed)) {
    degraded_entered_.add();
    obs::journal().emit(obs::EventType::StoreDegraded, obs::EventLevel::Error, nullptr, 0, 0,
                        failures);
    last_probe_ns_.store(obs::steady_now_ns(), std::memory_order_relaxed);
  }
}

void PersistentBackend::put_result(const std::string& key, const Graph& canon, const PVec& p,
                                   const ResultEntry& entry) {
  // A record this size could never be re-verified on reload (the O(n^2)
  // verification matrix is bounded by the same constant), so writing it
  // would only burn disk.
  if (canon.n() > kMaxPersistedGraphVertices) return;
  if (!allow_write()) return;
  const std::uint64_t begin_ns = obs::steady_now_ns();
  const std::lock_guard lock(result_put_mutex_);
  // Monotone-improving per key: the in-memory cache's better-entry policy
  // cannot vouch for an entry it has already evicted, so the comparison
  // against the resident DISK record happens here, atomically — via the
  // O(1) trailer peek, not a full graph decode under the lock.
  if (const std::optional<std::string> existing_value = kv_->get(kResultsNamespace, key)) {
    Weight existing_span = 0;
    bool existing_optimal = false;
    if (peek_persisted_result_quality(
            reinterpret_cast<const std::uint8_t*>(existing_value->data()),
            existing_value->size(), existing_span, existing_optimal) &&
        (existing_span < entry.span ||
         (existing_span == entry.span && existing_optimal && !entry.optimal))) {
      return;  // the record on disk is strictly better; keep it
    }
  }
  std::vector<std::uint8_t> value;
  encode_persisted_result(value, canon, p.entries(), entry);
  note_write(kv_->put(kResultsNamespace, key,
                      std::string(reinterpret_cast<const char*>(value.data()), value.size())));
  append_ns_.record(obs::steady_now_ns() - begin_ns);
}

std::uint64_t PersistentBackend::for_each_result(
    const std::function<void(const std::string&, PersistedResult&&)>& fn) const {
  std::uint64_t undecodable = 0;
  kv_->for_each(kResultsNamespace, [&](const std::string& key, const std::string& value) {
    PersistedResult record;
    std::string error;
    if (decode_persisted_result(reinterpret_cast<const std::uint8_t*>(value.data()),
                                value.size(), record, error)) {
      fn(key, std::move(record));
    } else {
      ++undecodable;
    }
  });
  return undecodable;
}

void PersistentBackend::put_win_table(const WinTableRecord& table) {
  if (!allow_write()) return;
  const std::uint64_t begin_ns = obs::steady_now_ns();
  std::vector<std::uint8_t> value;
  encode_win_table(value, table);
  note_write(kv_->put(kMetaNamespace, kWinTableKey,
                      std::string(reinterpret_cast<const char*>(value.data()), value.size())));
  append_ns_.record(obs::steady_now_ns() - begin_ns);
}

void PersistentBackend::register_metrics(obs::MetricRegistry& registry, const void* owner) const {
  if (owner == nullptr) owner = this;
  registry.register_counter("store_write_failures", &write_failures_, owner);
  registry.register_histogram("store_append_ns", &append_ns_, owner);
  registry.register_gauge(
      "store_live_records",
      [this] { return static_cast<std::int64_t>(kv_->stats().live_records); }, owner);
  registry.register_gauge(
      "store_total_records",
      [this] { return static_cast<std::int64_t>(kv_->stats().total_records); }, owner);
  registry.register_gauge(
      "store_file_bytes", [this] { return static_cast<std::int64_t>(kv_->stats().file_bytes); },
      owner);
  registry.register_gauge(
      "store_compactions", [this] { return static_cast<std::int64_t>(kv_->stats().compactions); },
      owner);
  registry.register_gauge(
      "store_degraded",
      [this] { return degraded_.load(std::memory_order_relaxed) ? 1 : 0; }, owner);
  registry.register_counter("store_degraded_entered", &degraded_entered_, owner);
  registry.register_counter("store_writes_skipped_degraded", &writes_skipped_, owner);
  registry.register_counter("store_reopen_probes", &reopen_probes_, owner);
  registry.register_counter("store_reopens", &reopens_, owner);
}

std::optional<WinTableRecord> PersistentBackend::load_win_table() const {
  const std::optional<std::string> value = kv_->get(kMetaNamespace, kWinTableKey);
  if (!value.has_value()) return std::nullopt;
  WinTableRecord table;
  std::string error;
  if (!decode_win_table(reinterpret_cast<const std::uint8_t*>(value->data()), value->size(),
                        table, error)) {
    return std::nullopt;
  }
  return table;
}

}  // namespace lptsp
