#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "service/solve_cache.hpp"

namespace lptsp {

/// Serialization for the durable store's two record types. Kept in the
/// style of graph/io's binary codec (little-endian, validate-before-
/// allocate, non-throwing decode): the graph payload inside a result
/// record IS the canonical binary encoding from graph/io.hpp.

/// Upper bound on the order of a persisted graph. Re-verifying a record on
/// reload costs an O(n^2) distance matrix, so this bounds the allocation a
/// hostile or corrupt (but CRC-valid) record can force on a restarting
/// service: larger graphs are rejected at decode time and never written in
/// the first place. 4096 vertices = a 64 MB matrix, far above any instance
/// the engines solve interactively.
constexpr int kMaxPersistedGraphVertices = 4096;

/// A solve-cache result as persisted: the canonical graph and p travel
/// with the labeling, which makes every record independently verifiable on
/// reload (is_valid_labeling needs nothing but the record itself) — the
/// store never has to trust its own bytes.
struct PersistedResult {
  Graph canon{0};               ///< canonical-numbering graph
  std::vector<int> p_entries;   ///< the constraint vector p
  ResultEntry entry;            ///< labels in canonical numbering + provenance
};

/// Append the encoding of one result record to `out`.
void encode_persisted_result(std::vector<std::uint8_t>& out, const Graph& canon,
                             const std::vector<int>& p_entries, const ResultEntry& entry);

/// Decode a result record. Returns false with a diagnostic on any
/// structural problem (truncation, counts that disagree, out-of-range
/// enums); never throws and never allocates more than the input implies.
[[nodiscard]] bool decode_persisted_result(const std::uint8_t* data, std::size_t size,
                                           PersistedResult& result, std::string& error);

/// Read just (span, optimal) from a result record's fixed-size trailer —
/// the last 18 bytes of every version-1 record — without decoding the
/// graph. This is the O(1) read behind the backend's "is the record on
/// disk already better?" check; a full decode would parse the whole graph
/// under the backend's write lock. False when the bytes cannot be a
/// version-1 record.
[[nodiscard]] bool peek_persisted_result_quality(const std::uint8_t* data, std::size_t size,
                                                 Weight& span, bool& optimal);

/// The engine portfolio's win table as persisted: a flat bucket-major
/// counter matrix. Dimensions are recorded so a build that resizes the
/// table simply ignores old records instead of misattributing counts.
struct WinTableRecord {
  std::uint32_t buckets = 0;
  std::uint32_t slots = 0;
  std::vector<std::uint64_t> counts;  ///< buckets * slots, bucket-major
};

void encode_win_table(std::vector<std::uint8_t>& out, const WinTableRecord& table);

[[nodiscard]] bool decode_win_table(const std::uint8_t* data, std::size_t size,
                                    WinTableRecord& table, std::string& error);

}  // namespace lptsp
