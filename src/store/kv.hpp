#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "store/log.hpp"

namespace lptsp {

/// Typed key-value layer over the append-only RecordLog: last-writer-wins
/// maps in a handful of small integer namespaces (the service uses one for
/// solve results and one for portfolio metadata).
///
/// Record payload (inside the log's CRC framing):
///
///   put:    u8 op (=1) | u8 namespace | u32 key_len | key | u32 val_len | value
///   erase:  u8 op (=2) | u8 namespace | u32 key_len | key
///
/// The in-memory index (which holds the live values — entries here are
/// small: a labeling plus a small graph) is rebuilt by the single
/// sequential scan RecordLog::open performs; malformed or unknown-namespace
/// payloads are counted and skipped, never fatal. Overwrites and erases
/// leave dead records behind; when the dead fraction exceeds
/// `compact_garbage_ratio` the store compacts itself in-line (no background
/// thread) by rewriting the live set to `<path>.compact` and renaming it
/// over the log — rename(2) is atomic, so a crash at any point leaves
/// either the old or the new file, both valid.
///
/// Thread safety: every public method locks one internal mutex; disk
/// appends are tiny and the store sits behind caches, so a single lock is
/// not a throughput concern. Single-process use only (no file locking).
class KvStore {
 public:
  static constexpr std::uint8_t kNamespaces = 4;

  struct Options {
    std::string path;
    /// fsync after every put/erase. Off by default: the service's cached
    /// results are re-derivable, so the durability window of the OS page
    /// cache is an acceptable trade for not paying an fsync per solve.
    bool sync_every_put = false;
    /// Compact when dead_records / total_records exceeds this...
    double compact_garbage_ratio = 0.5;
    /// ...but never before this many total records (tiny stores churn).
    std::uint64_t compact_min_records = 256;
    std::size_t max_record_bytes = 64u << 20;
  };

  struct Stats {
    std::uint64_t live_records = 0;      ///< keys currently resident
    std::uint64_t total_records = 0;     ///< log records incl. dead ones
    std::uint64_t dropped_records = 0;   ///< CRC/decode failures on open
    std::uint64_t truncated_bytes = 0;   ///< damaged tail removed on open
    std::uint64_t compactions = 0;
    std::uint64_t file_bytes = 0;
    bool created = false;                ///< the store file was new
  };

  /// Open or create the store at options.path and rebuild the index.
  /// Returns nullptr with `error` set on IO failure or corrupt header.
  static std::unique_ptr<KvStore> open(const Options& options, std::string& error);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Insert or overwrite; false on IO error (the store keeps serving reads
  /// but further writes fail — callers treat persistence as best-effort).
  bool put(std::uint8_t ns, const std::string& key, const std::string& value);
  bool erase(std::uint8_t ns, const std::string& key);

  [[nodiscard]] std::optional<std::string> get(std::uint8_t ns, const std::string& key) const;

  /// Visit every live (key, value) in `ns`. The callback runs under the
  /// store lock: do not call back into this store from inside it.
  void for_each(std::uint8_t ns,
                const std::function<void(const std::string& key, const std::string& value)>& fn)
      const;

  [[nodiscard]] std::size_t size(std::uint8_t ns) const;
  [[nodiscard]] Stats stats() const;

  /// fsync the log now (for callers that batch their durability points).
  bool sync();

  /// Force a compaction regardless of the garbage ratio (tests, shutdown).
  bool compact();

 private:
  explicit KvStore(Options options) : options_(std::move(options)) {}

  bool append_locked(std::vector<std::uint8_t>&& payload);
  bool compact_locked();
  void maybe_compact_locked();
  [[nodiscard]] std::uint64_t live_locked() const;

  Options options_;
  mutable std::mutex mutex_;
  std::unique_ptr<RecordLog> log_;
  std::unordered_map<std::string, std::string> maps_[kNamespaces];
  std::uint64_t total_records_ = 0;
  std::uint64_t dropped_records_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t compactions_ = 0;
  bool created_ = false;
};

}  // namespace lptsp
