#pragma once

#include <string>
#include <vector>

namespace lptsp {

/// Fixed-column ASCII table used by every benchmark binary to print
/// paper-style result tables, with optional CSV emission for scripting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Render as RFC-4180-ish CSV (cells containing commas are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Print the ASCII rendering to stdout with a title banner.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benchmark mains.
std::string format_double(double value, int precision = 3);
std::string format_ratio(double value);

}  // namespace lptsp
