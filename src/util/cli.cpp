#include "util/cli.hpp"

#include <cstdlib>

namespace lptsp {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const std::string value = get(name, "");
  return value.empty() ? fallback : std::atoi(value.c_str());
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const std::string value = get(name, "");
  return value.empty() ? fallback : std::atof(value.c_str());
}

std::vector<std::string> CliArgs::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, _] : values_) {
    if (!queried_.count(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace lptsp
