#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
/// checksum of the durable store's log framing (store/log.cpp). Kept next
/// to util/endian.hpp so any future binary codec that wants integrity
/// bytes uses the same polynomial by construction.
namespace lptsp::crc32 {

namespace detail {

inline const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

}  // namespace detail

/// One-shot checksum of a byte range. `seed` chains incremental updates:
/// crc32::of(b, n1+n2) == of(b+n1, n2, of(b, n1)).
inline std::uint32_t of(const std::uint8_t* data, std::size_t size, std::uint32_t seed = 0) {
  const auto& table = detail::table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace lptsp::crc32
