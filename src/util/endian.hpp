#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// Little-endian integer primitives shared by every binary codec in the
/// library (the graph payload in graph/io.cpp and the lptspd frame codec
/// in net/wire.cpp). One definition keeps the two byte-compatible by
/// construction instead of by hand.
namespace lptsp::endian {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

/// Unchecked reads: the caller has verified `width` bytes are available.
inline std::uint16_t get_u16(const std::uint8_t* data) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(data[0]) |
                                    (static_cast<std::uint16_t>(data[1]) << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t value = 0;
  for (int b = 3; b >= 0; --b) value = (value << 8) | data[b];
  return value;
}

inline std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t value = 0;
  for (int b = 7; b >= 0; --b) value = (value << 8) | data[b];
  return value;
}

// ---------------------------------------------------------------------------
// Bounds-checked reads for untrusted buffers: verify the bytes are there,
// read, advance `offset`. One definition shared by every binary decoder
// (graph/io, net/wire-adjacent codecs, store/kv, store/codec) so the
// validate-then-advance pattern cannot drift between them. Callers keep
// the invariant offset <= size.
// ---------------------------------------------------------------------------

inline bool try_get_u8(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                       std::uint8_t& value) {
  if (size - offset < 1) return false;
  value = data[offset];
  offset += 1;
  return true;
}

inline bool try_get_u32(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                        std::uint32_t& value) {
  if (size - offset < 4) return false;
  value = get_u32(data + offset);
  offset += 4;
  return true;
}

inline bool try_get_u64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                        std::uint64_t& value) {
  if (size - offset < 8) return false;
  value = get_u64(data + offset);
  offset += 8;
  return true;
}

}  // namespace lptsp::endian
