#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace lptsp {

/// Deterministic fault injection for the serving stack's failure paths.
///
/// Every named site below sits on one real failure surface (a write(2)
/// that can fail, a socket that can reset, an engine that can stall) and
/// is compiled in unconditionally: the disarmed cost is a single relaxed
/// atomic load per crossing, so production binaries carry the sites for
/// free and chaos tests arm them without a rebuild.
///
/// Arming is programmatic (tests) or environmental (whole-process runs):
///
///   LPTSP_FAULTS=site:prob:seed[:param],site:prob:seed[:param],...
///
/// e.g. `LPTSP_FAULTS=store.append:1:42` fails every log append, and
/// `LPTSP_FAULTS=engine.stall:0.2:7:50` stalls 20% of engine races for
/// 50ms. Firing is seeded-deterministic: a site armed with the same
/// (probability, seed) produces the same fire/no-fire sequence across
/// runs — concurrency may interleave which thread draws which value, but
/// the drawn sequence itself never changes, so single-threaded schedules
/// replay exactly.
enum class FaultSite : std::uint8_t {
  StoreAppend,         ///< RecordLog::append fails (log poisons, as a real torn write would)
  StoreFsync,          ///< RecordLog::sync reports failure
  StoreCompactRename,  ///< KvStore compaction "crashes" in the rename window
  NetReadShort,        ///< socket reads truncated to one byte
  NetWriteShort,       ///< socket writes truncated to one byte
  NetDisconnect,       ///< connection reset injected at the transport
  EngineStall,         ///< artificial sleep on the engine-race path
};

inline constexpr std::size_t kFaultSiteCount = 7;

/// Compile-checked site names (no default + -Werror=switch: an unnamed
/// new enumerator fails the build). These are the LPTSP_FAULTS spellings.
constexpr const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::StoreAppend: return "store.append";
    case FaultSite::StoreFsync: return "store.fsync";
    case FaultSite::StoreCompactRename: return "store.compact_rename";
    case FaultSite::NetReadShort: return "net.read_short";
    case FaultSite::NetWriteShort: return "net.write_short";
    case FaultSite::NetDisconnect: return "net.disconnect";
    case FaultSite::EngineStall: return "engine.stall";
  }
  return "unknown";  // out-of-range cast, not a missing enumerator
}

/// The inverse of fault_site_name; nullopt for unknown names.
std::optional<FaultSite> parse_fault_site(const std::string& name);

namespace fault {

namespace detail {
// One armed flag per site at namespace scope (no function-local-static
// guard on the hot path). Everything else a site needs — probability,
// RNG state, fire caps — lives behind a mutex in fault.cpp, touched only
// when the flag is already set.
extern std::atomic<bool> g_armed[kFaultSiteCount];
bool fire_slow(FaultSite site);
}  // namespace detail

/// Should this crossing of `site` fail? Disarmed (the default, and the
/// production state) this is one relaxed atomic load and a branch.
inline bool should_fail(FaultSite site) {
  if (!detail::g_armed[static_cast<std::size_t>(site)].load(std::memory_order_relaxed)) {
    return false;
  }
  return detail::fire_slow(site);
}

/// Arm `site`: each crossing fails with `probability`, drawn from a
/// deterministic stream seeded by `seed`. `max_fires` > 0 caps the total
/// number of failures (a one-shot fault is prob=1, max_fires=1);
/// `param` is a site-specific argument — for engine.stall, milliseconds
/// to sleep (default 25). Re-arming resets the stream and the fire count.
void arm(FaultSite site, double probability, std::uint64_t seed, std::uint64_t max_fires = 0,
         std::uint64_t param = 0);

void disarm(FaultSite site);
void disarm_all();

[[nodiscard]] bool armed(FaultSite site);
/// Failures injected at `site` since it was (re)armed.
[[nodiscard]] std::uint64_t fires(FaultSite site);
/// The site's `param` (0 when disarmed or unset).
[[nodiscard]] std::uint64_t param(FaultSite site);

/// Sleep for the site's param milliseconds (default 25) when the site
/// fires. The stall helper for FaultSite::EngineStall.
void maybe_stall(FaultSite site);

/// Parse and apply one LPTSP_FAULTS spec ("site:prob:seed[:param],...").
/// Returns false with `error` set on the first malformed entry; entries
/// before it are already armed.
bool arm_from_spec(const std::string& spec, std::string& error);

/// One-line description of every armed site ("none" when all disarmed),
/// for daemon startup logs.
[[nodiscard]] std::string describe();

}  // namespace fault

}  // namespace lptsp
