#pragma once

#include <stdexcept>
#include <string>

/// Precondition / invariant checking for the lptsp library.
///
/// Following the library-wide error policy, violated preconditions throw
/// std::invalid_argument (caller error) and violated internal invariants
/// throw std::logic_error (library bug). Checks stay enabled in release
/// builds: all inputs here are untrusted user graphs and the checks are
/// O(1) or amortized into already-linear work.
namespace lptsp {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (indicates a library bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg) {
  throw precondition_error("precondition failed: " + std::string(expr) +
                           (msg.empty() ? "" : " — " + msg));
}
[[noreturn]] inline void throw_invariant(const char* expr, const std::string& msg) {
  throw invariant_error("invariant failed: " + std::string(expr) +
                        (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace lptsp

/// Validate a documented precondition of a public API function.
#define LPTSP_REQUIRE(expr, msg)                           \
  do {                                                     \
    if (!(expr)) ::lptsp::detail::throw_precondition(#expr, (msg)); \
  } while (false)

/// Validate an internal invariant; failure means a bug in lptsp itself.
#define LPTSP_ENSURE(expr, msg)                            \
  do {                                                     \
    if (!(expr)) ::lptsp::detail::throw_invariant(#expr, (msg)); \
  } while (false)
