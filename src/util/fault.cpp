#include "util/fault.hpp"

#include "obs/journal.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace lptsp {

std::optional<FaultSite> parse_fault_site(const std::string& name) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == fault_site_name(site)) return site;
  }
  return std::nullopt;
}

namespace fault {

namespace detail {
std::atomic<bool> g_armed[kFaultSiteCount]{};
}  // namespace detail

namespace {

constexpr std::uint64_t kDefaultStallMs = 25;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct SiteState {
  double probability = 0;
  std::uint64_t rng_state = 0;
  std::uint64_t max_fires = 0;  ///< 0 = unlimited
  std::uint64_t param = 0;
  std::uint64_t fires = 0;
};

// The slow path's shared state: one mutex for all sites. Contention only
// exists while a chaos schedule is armed; the disarmed hot path never
// takes it.
std::mutex g_mutex;
SiteState g_sites[kFaultSiteCount];

/// Process-wide LPTSP_FAULTS arming, run once before main() from this
/// TU's initializer. It touches only this file's own statics (constant-
/// initialized), so static-init order cannot bite; a malformed spec is
/// reported on stderr rather than aborting a production daemon.
struct EnvArmer {
  EnvArmer() {
    const char* spec = std::getenv("LPTSP_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return;
    std::string error;
    if (!arm_from_spec(spec, error)) {
      std::fprintf(stderr, "lptsp: ignoring malformed LPTSP_FAULTS entry: %s\n", error.c_str());
    }
  }
} g_env_armer;

}  // namespace

namespace detail {

bool fire_slow(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  const std::lock_guard lock(g_mutex);
  // Re-check under the lock: a concurrent disarm between the relaxed
  // check and here must win.
  if (!g_armed[index].load(std::memory_order_relaxed)) return false;
  SiteState& state = g_sites[index];
  if (state.max_fires != 0 && state.fires >= state.max_fires) return false;
  // Deterministic draw: the k-th value of this stream is a pure function
  // of (seed, k), so a schedule replays bit-identically.
  const double draw =
      static_cast<double>(splitmix64(state.rng_state) >> 11) * 0x1.0p-53;  // [0, 1)
  if (draw >= state.probability) return false;
  ++state.fires;
  // Chaos forensics: the journal records which site fired, so a failing
  // schedule can be read back as a timeline instead of a diff of counters.
  obs::journal().emit(obs::EventType::FaultFired, obs::EventLevel::Warn, fault_site_name(site),
                      0, 0, static_cast<std::int64_t>(state.fires));
  return true;
}

}  // namespace detail

void arm(FaultSite site, double probability, std::uint64_t seed, std::uint64_t max_fires,
         std::uint64_t param) {
  const auto index = static_cast<std::size_t>(site);
  const std::lock_guard lock(g_mutex);
  SiteState& state = g_sites[index];
  state.probability = probability < 0 ? 0.0 : (probability > 1 ? 1.0 : probability);
  std::uint64_t mix = seed;
  (void)splitmix64(mix);  // decorrelate adjacent seeds
  state.rng_state = mix;
  state.max_fires = max_fires;
  state.param = param;
  state.fires = 0;
  detail::g_armed[index].store(true, std::memory_order_relaxed);
}

void disarm(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  const std::lock_guard lock(g_mutex);
  detail::g_armed[index].store(false, std::memory_order_relaxed);
  g_sites[index] = SiteState{};
}

void disarm_all() {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) disarm(static_cast<FaultSite>(i));
}

bool armed(FaultSite site) {
  return detail::g_armed[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t fires(FaultSite site) {
  const std::lock_guard lock(g_mutex);
  return g_sites[static_cast<std::size_t>(site)].fires;
}

std::uint64_t param(FaultSite site) {
  const std::lock_guard lock(g_mutex);
  return g_sites[static_cast<std::size_t>(site)].param;
}

void maybe_stall(FaultSite site) {
  if (!should_fail(site)) return;
  std::uint64_t stall_ms;
  {
    const std::lock_guard lock(g_mutex);
    stall_ms = g_sites[static_cast<std::size_t>(site)].param;
  }
  if (stall_ms == 0) stall_ms = kDefaultStallMs;
  std::this_thread::sleep_for(std::chrono::milliseconds{stall_ms});
}

bool arm_from_spec(const std::string& spec, std::string& error) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;  // tolerate trailing/double commas

    // site:prob:seed[:param]
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 = c1 == std::string::npos ? std::string::npos : entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      error = "'" + entry + "' (want site:prob:seed[:param])";
      return false;
    }
    const std::size_t c3 = entry.find(':', c2 + 1);
    const std::string site_name = entry.substr(0, c1);
    const std::optional<FaultSite> site = parse_fault_site(site_name);
    if (!site.has_value()) {
      error = "unknown fault site '" + site_name + "'";
      return false;
    }
    try {
      const double probability = std::stod(entry.substr(c1 + 1, c2 - c1 - 1));
      const auto seed = static_cast<std::uint64_t>(
          std::stoull(entry.substr(c2 + 1, (c3 == std::string::npos ? entry.size() : c3) - c2 - 1)));
      const std::uint64_t site_param =
          c3 == std::string::npos ? 0
                                  : static_cast<std::uint64_t>(std::stoull(entry.substr(c3 + 1)));
      arm(*site, probability, seed, /*max_fires=*/0, site_param);
    } catch (const std::exception&) {
      error = "'" + entry + "' has a non-numeric prob/seed/param";
      return false;
    }
  }
  return true;
}

std::string describe() {
  std::string out;
  const std::lock_guard lock(g_mutex);
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    if (!detail::g_armed[i].load(std::memory_order_relaxed)) continue;
    const SiteState& state = g_sites[i];
    if (!out.empty()) out += ", ";
    out += fault_site_name(static_cast<FaultSite>(i));
    out += ":p=" + std::to_string(state.probability);
    if (state.param != 0) out += ":param=" + std::to_string(state.param);
  }
  return out.empty() ? "none" : out;
}

}  // namespace fault

}  // namespace lptsp
