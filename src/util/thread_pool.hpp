#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lptsp {

/// Fixed-size worker pool for data-parallel loops.
///
/// The pool is created once and reused across parallel regions; workers
/// sleep on a condition variable between regions, so an idle pool costs
/// nothing measurable. Exceptions thrown by loop bodies are captured and
/// rethrown on the calling thread (first one wins), matching the
/// Core Guidelines advice that worker threads must not let exceptions
/// escape into std::thread.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for every i in [0, count), split into blocks across workers.
  /// Blocks until the whole range is processed. The body must be safe to
  /// run concurrently for distinct indices.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Run fn(block_begin, block_end) on contiguous blocks of [0, count).
  /// Lower scheduling overhead than the per-index overload for tight loops.
  void parallel_blocks(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// The process-wide shared pool (lazily constructed with hardware size).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  // Current parallel region; guarded by mutex_.
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_block_ = 0;
  std::size_t block_size_ = 1;
  std::size_t active_workers_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::shared().parallel_for. `threads`
/// values of 0 or 1 run inline on the calling thread (useful for
/// benchmarking serial baselines with identical code paths).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// Queue-based companion to ThreadPool for heterogeneous tasks with
/// results: submit() hands back a std::future, tasks run FIFO across a
/// fixed worker set. ThreadPool's region model (one homogeneous loop at a
/// time, caller blocks) fits data-parallel kernels; the batch labeling
/// service instead needs many independent solves in flight at once, which
/// is exactly this shape. Exceptions propagate through the future.
class TaskPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Tasks submitted but not yet finished (approximate, for monitoring).
  [[nodiscard]] std::size_t pending() const;

  /// Block until every task submitted so far has finished (queue empty and
  /// nothing in flight). Tasks submitted while draining extend the wait.
  /// Must not be called from inside a task of this pool.
  void drain();

  /// Enqueue `fn` and return a future for its result. Safe to call from
  /// any thread, including from inside a running task (the queue is
  /// unbounded, so no deadlock — but a task blocking on a future of
  /// another queued task can still starve; the service layer never does).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// The process-wide shared task pool (lazily constructed, hardware size).
  static TaskPool& shared();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;  ///< signaled when the pool goes idle
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace lptsp
