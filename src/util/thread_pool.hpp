#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lptsp {

/// Fixed-size worker pool for data-parallel loops.
///
/// The pool is created once and reused across parallel regions; workers
/// sleep on a condition variable between regions, so an idle pool costs
/// nothing measurable. Exceptions thrown by loop bodies are captured and
/// rethrown on the calling thread (first one wins), matching the
/// Core Guidelines advice that worker threads must not let exceptions
/// escape into std::thread.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for every i in [0, count), split into blocks across workers.
  /// Blocks until the whole range is processed. The body must be safe to
  /// run concurrently for distinct indices.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Run fn(block_begin, block_end) on contiguous blocks of [0, count).
  /// Lower scheduling overhead than the per-index overload for tight loops.
  void parallel_blocks(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// The process-wide shared pool (lazily constructed with hardware size).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  // Current parallel region; guarded by mutex_.
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_block_ = 0;
  std::size_t block_size_ = 1;
  std::size_t active_workers_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::shared().parallel_for. `threads`
/// values of 0 or 1 run inline on the calling thread (useful for
/// benchmarking serial baselines with identical code paths).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace lptsp
