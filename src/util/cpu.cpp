#include "util/cpu.hpp"

#include <cstdio>
#include <cstdlib>

namespace lptsp {

namespace {

IsaTier probe_hw_tier() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // __builtin_cpu_supports folds in the XGETBV OS-state check, so "avx2"
  // is false when the kernel did not enable YMM state even if cpuid
  // advertises the instruction set. The AVX-512 tier needs all four of
  // F/BW/DQ/VL: BW for 16-bit masked ops (the int16 Held-Karp table),
  // DQ/VL for the 64-bit compares the weight-scan kernels use.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl")) {
    return IsaTier::Avx512;
  }
  if (__builtin_cpu_supports("avx2")) return IsaTier::Avx2;
  return IsaTier::Scalar;
#else
  return IsaTier::Scalar;
#endif
}

constexpr char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

}  // namespace

IsaTier hw_isa_tier() noexcept {
  static const IsaTier tier = probe_hw_tier();
  return tier;
}

std::optional<IsaTier> parse_isa_tier(std::string_view name) noexcept {
  for (const IsaTier tier : {IsaTier::Scalar, IsaTier::Avx2, IsaTier::Avx512}) {
    if (iequals(name, isa_tier_name(tier))) return tier;
  }
  return std::nullopt;
}

std::optional<IsaTier> forced_isa_tier_from_env() noexcept {
  const char* value = std::getenv("LPTSP_FORCE_ISA");
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  const std::optional<IsaTier> tier = parse_isa_tier(value);
  if (!tier.has_value()) {
    // Report once: a typo'd override silently running the wrong tier is
    // exactly the failure mode the env var exists to prevent.
    static const bool warned = [value] {
      std::fprintf(stderr,
                   "lptsp: ignoring LPTSP_FORCE_ISA=%s (expected scalar|avx2|avx512)\n", value);
      return true;
    }();
    (void)warned;
  }
  return tier;
}

}  // namespace lptsp
