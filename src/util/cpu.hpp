#pragma once

#include <optional>
#include <string_view>

namespace lptsp {

/// Instruction-set tiers the kernel layer ships explicit implementations
/// for. Ordered: a higher tier strictly extends the capabilities of the
/// lower ones, so "clamp to what the hardware supports" is a min().
enum class IsaTier {
  Scalar = 0,  ///< portable C++; the correctness reference on every platform
  Avx2 = 1,    ///< x86-64 AVX2 (256-bit integer SIMD)
  Avx512 = 2,  ///< x86-64 AVX-512 F+BW+DQ+VL (512-bit SIMD + mask registers)
};

/// Exhaustive enum-to-string; no default case so -Werror=switch turns an
/// unnamed new tier into a compile error (same contract as engine_name).
constexpr const char* isa_tier_name(IsaTier tier) {
  switch (tier) {
    case IsaTier::Scalar: return "scalar";
    case IsaTier::Avx2: return "avx2";
    case IsaTier::Avx512: return "avx512";
  }
  return "?";  // unreachable; keeps -Wreturn-type quiet on GCC
}

/// The widest tier THIS CPU can execute (cpuid-derived on x86, including
/// the OS-enabled-state checks folded into __builtin_cpu_supports; Scalar
/// everywhere else). Says nothing about what this binary was built with —
/// see lptsp::kernels::detected_isa_tier() for hardware AND build support.
/// Detection runs once; subsequent calls return the cached answer.
IsaTier hw_isa_tier() noexcept;

/// Parse a tier name ("scalar" | "avx2" | "avx512", ASCII case-insensitive).
std::optional<IsaTier> parse_isa_tier(std::string_view name) noexcept;

/// The LPTSP_FORCE_ISA environment override, if set and well-formed.
/// Unset or unparseable values yield nullopt (callers keep auto-detection;
/// a bad value is reported once on stderr rather than silently ignored).
std::optional<IsaTier> forced_isa_tier_from_env() noexcept;

}  // namespace lptsp
