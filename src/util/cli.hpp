#pragma once

#include <map>
#include <string>
#include <vector>

namespace lptsp {

/// Minimal --key=value / --flag command-line parser for examples and
/// benchmark binaries. Unknown keys are collected so callers can reject
/// typos instead of silently ignoring them.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name or --name=... was passed.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name=value, or fallback when absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Positional (non --) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Keys seen on the command line that were never queried via get/has.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace lptsp
