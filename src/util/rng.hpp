#pragma once

#include <cstdint>
#include <vector>

namespace lptsp {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// We deliberately avoid std::mt19937 + std::uniform_int_distribution in
/// library code: their outputs differ across standard-library
/// implementations, which would make generator-driven tests and benchmark
/// workloads non-reproducible across toolchains. Rng guarantees identical
/// streams for identical seeds everywhere.
class Rng {
 public:
  /// Seeds the four-word xoshiro state via splitmix64 so that nearby seeds
  /// produce uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit word.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Uniform value in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  bool bernoulli(double prob) noexcept;

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      using std::swap;
      swap(values[i - 1], values[uniform_index(i)]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<int> permutation(int n);

  /// Derive an independent child generator (for per-thread streams).
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace lptsp
