#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace lptsp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LPTSP_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  LPTSP_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '+';
    for (const std::size_t width : widths) out << std::string(width + 2, '-') << '+';
    out << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << quote(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), to_ascii().c_str());
  std::fflush(stdout);
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string format_ratio(double value) {
  return format_double(value, 4);
}

}  // namespace lptsp
