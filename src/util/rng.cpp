#include "util/rng.hpp"

#include <numeric>

namespace lptsp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : state_) word = splitmix64(seed);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

int Rng::uniform_int(int lo, int hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(uniform_index(static_cast<std::size_t>(range)));
}

std::size_t Rng::uniform_index(std::size_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return static_cast<std::size_t>(draw % bound);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double prob) noexcept {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return uniform01() < prob;
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  shuffle(order);
  return order;
}

Rng Rng::split() noexcept {
  return Rng(next());
}

}  // namespace lptsp
