#include "util/thread_pool.hpp"

#include <algorithm>

namespace lptsp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock lock(mutex_);
    work_ready_.wait(lock, [&] { return stopping_ || (job_ != nullptr && generation_ != seen_generation); });
    if (stopping_) return;
    seen_generation = generation_;
    ++active_workers_;
    const auto* job = job_;
    while (true) {
      const std::size_t begin = next_block_;
      if (begin >= job_count_) break;
      const std::size_t end = std::min(job_count_, begin + block_size_);
      next_block_ = end;
      lock.unlock();
      try {
        (*job)(begin, end);
      } catch (...) {
        lock.lock();
        if (!first_error_) first_error_ = std::current_exception();
        continue;
      }
      lock.lock();
    }
    --active_workers_;
    if (active_workers_ == 0 && next_block_ >= job_count_) work_done_.notify_all();
  }
}

void ThreadPool::parallel_blocks(std::size_t count,
                                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.size() <= 1) {
    fn(0, count);
    return;
  }
  std::unique_lock lock(mutex_);
  job_ = &fn;
  job_count_ = count;
  next_block_ = 0;
  // Aim for ~4 blocks per worker so stragglers get rebalanced without
  // drowning small loops in scheduling overhead.
  block_size_ = std::max<std::size_t>(1, count / (workers_.size() * 4));
  first_error_ = nullptr;
  ++generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [&] { return active_workers_ == 0 && next_block_ >= job_count_; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_blocks(count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (threads == 1 || ThreadPool::shared().size() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::shared().parallel_for(count, fn);
}

TaskPool::TaskPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t TaskPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size() + in_flight_;
}

void TaskPool::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void TaskPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void TaskPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

TaskPool& TaskPool::shared() {
  static TaskPool pool;
  return pool;
}

}  // namespace lptsp
