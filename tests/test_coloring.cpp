#include <gtest/gtest.h>

#include <numeric>

#include "core/coloring.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

std::vector<int> identity_order(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(GreedyColoring, ProperOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = erdos_renyi(15, 0.4, rng);
    const Coloring coloring = greedy_coloring(graph, identity_order(15));
    EXPECT_TRUE(is_proper_coloring(graph, coloring));
  }
}

TEST(GreedyColoring, PathUsesTwoColors) {
  const Coloring coloring = greedy_coloring(path_graph(7), identity_order(7));
  EXPECT_EQ(coloring.count, 2);
}

TEST(Dsatur, ProperAndAtMostGreedy) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = erdos_renyi(16, 0.35, rng);
    const Coloring dsatur = dsatur_coloring(graph);
    EXPECT_TRUE(is_proper_coloring(graph, dsatur));
    EXPECT_LE(dsatur.count, greedy_coloring(graph, identity_order(16)).count + 1);
  }
}

TEST(Dsatur, BipartiteUsesTwoColors) {
  // DSATUR is exact on bipartite graphs.
  EXPECT_EQ(dsatur_coloring(complete_bipartite(4, 5)).count, 2);
  EXPECT_EQ(dsatur_coloring(cycle_graph(8)).count, 2);
  EXPECT_EQ(dsatur_coloring(grid_graph(3, 5)).count, 2);
}

TEST(GreedyClique, FindsKnownCliques) {
  EXPECT_EQ(greedy_clique(complete_graph(6)).size(), 6u);
  EXPECT_EQ(greedy_clique(cycle_graph(6)).size(), 2u);
  EXPECT_EQ(greedy_clique(Graph(4)).size(), 1u);
}

TEST(ExactColoring, KnownChromaticNumbers) {
  EXPECT_EQ(exact_coloring(complete_graph(5)).count, 5);
  EXPECT_EQ(exact_coloring(cycle_graph(6)).count, 2);
  EXPECT_EQ(exact_coloring(cycle_graph(7)).count, 3);  // odd cycle
  EXPECT_EQ(exact_coloring(petersen_graph()).count, 3);
  EXPECT_EQ(exact_coloring(complete_bipartite(3, 4)).count, 2);
  EXPECT_EQ(exact_coloring(wheel_graph(6)).count, 4);  // odd rim + hub
  EXPECT_EQ(exact_coloring(wheel_graph(7)).count, 3);  // even rim + hub
  EXPECT_EQ(exact_coloring(Graph(5)).count, 1);
}

TEST(ExactColoring, EmptyGraph) {
  EXPECT_EQ(exact_coloring(Graph(0)).count, 0);
}

class ColoringSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 769 + 5)};
};

TEST_P(ColoringSweep, ExactAtMostDsaturAtLeastClique) {
  const Graph graph = erdos_renyi(13, 0.25 + 0.05 * (GetParam() % 6), rng_);
  const Coloring exact = exact_coloring(graph);
  EXPECT_TRUE(is_proper_coloring(graph, exact));
  EXPECT_LE(exact.count, dsatur_coloring(graph).count);
  EXPECT_GE(exact.count, static_cast<int>(greedy_clique(graph).size()));
}

TEST_P(ColoringSweep, ExactIsMinimalByBruteForce) {
  // Verify optimality against a tiny brute-force k-colorability check.
  const Graph graph = erdos_renyi(8, 0.4, rng_);
  const Coloring exact = exact_coloring(graph);
  const int k = exact.count - 1;
  if (k >= 1) {
    // Try all k-colorings of 8 vertices (k <= ~6, 6^8 = 1.7M worst case).
    std::vector<int> assignment(8, 0);
    bool colorable = false;
    while (true) {
      bool proper = true;
      for (const auto& [u, v] : graph.edges()) {
        if (assignment[static_cast<std::size_t>(u)] == assignment[static_cast<std::size_t>(v)]) {
          proper = false;
          break;
        }
      }
      if (proper) {
        colorable = true;
        break;
      }
      int pos = 7;
      while (pos >= 0 && assignment[static_cast<std::size_t>(pos)] == k - 1) {
        assignment[static_cast<std::size_t>(pos)] = 0;
        --pos;
      }
      if (pos < 0) break;
      ++assignment[static_cast<std::size_t>(pos)];
    }
    EXPECT_FALSE(colorable) << "exact_coloring missed a " << k << "-coloring";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace lptsp
