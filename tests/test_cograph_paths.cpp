#include <gtest/gtest.h>

#include "core/cograph_paths.hpp"
#include "core/partition_paths.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "ham/hamiltonian.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(CographPaths, KnownValues) {
  EXPECT_EQ(cograph_min_path_cover(complete_graph(6)), 1);
  EXPECT_EQ(cograph_min_path_cover(Graph(5)), 5);
  EXPECT_EQ(cograph_min_path_cover(star_graph(6)), 4);        // K_{1,5}
  EXPECT_EQ(cograph_min_path_cover(complete_bipartite(2, 5)), 3);  // max(1, 5-2)
  EXPECT_EQ(cograph_min_path_cover(complete_bipartite(3, 4)), 1);  // |a-b| <= 1
  EXPECT_EQ(cograph_min_path_cover(Graph(1)), 1);
}

TEST(CographPaths, DisjointUnionAdds) {
  const Graph graph = disjoint_union(complete_graph(3), Graph(2));
  EXPECT_EQ(cograph_min_path_cover(graph), 3);
}

TEST(CographPaths, JoinFormulaMatchesIntuition) {
  // join(empty_5, empty_1) = K_{1,5}: 5 - 1 = 4 paths.
  const Graph graph = join(Graph(5), Graph(1));
  EXPECT_EQ(cograph_min_path_cover(graph), 4);
  // join(empty_4, empty_4) = K_{4,4}: Hamiltonian.
  EXPECT_EQ(cograph_min_path_cover(join(Graph(4), Graph(4))), 1);
}

TEST(CographPaths, RejectsNonCographs) {
  EXPECT_THROW(cograph_min_path_cover(path_graph(4)), precondition_error);
  EXPECT_THROW(cograph_min_path_cover(cycle_graph(5)), precondition_error);
}

TEST(CographPaths, HamiltonicityHelper) {
  EXPECT_TRUE(cograph_has_hamiltonian_path(complete_graph(4)));
  EXPECT_FALSE(cograph_has_hamiltonian_path(star_graph(5)));
}

class CographSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 283 + 7)};
};

TEST_P(CographSweep, CotreeDpMatchesExactDp) {
  // The modular-decomposition route (cotree fold) must agree with the
  // reduction-based exact path partition on random cographs.
  const Graph graph = random_cograph(13, rng_);
  EXPECT_EQ(cograph_min_path_cover(graph), min_path_partition_exact(graph));
}

TEST_P(CographSweep, HamiltonicityMatchesDp) {
  const Graph graph = random_cograph(12, rng_);
  EXPECT_EQ(cograph_has_hamiltonian_path(graph), has_hamiltonian_path(graph));
}

TEST_P(CographSweep, Corollary2CographSolverMatchesExact) {
  // Join-rooted cographs are connected with diameter <= 2, the exact
  // setting of Corollary 2 with the CographDP solver.
  const Graph graph = join(random_cograph(5, rng_), random_cograph(5, rng_));
  ASSERT_TRUE(is_connected(graph));
  ASSERT_LE(diameter(graph), 2);
  const Diameter2Result exact = lpq_span_diameter2(graph, 2, 1, PartitionSolver::Exact);
  const Diameter2Result cotree = lpq_span_diameter2(graph, 2, 1, PartitionSolver::CographDP);
  EXPECT_EQ(cotree.span, exact.span);
  EXPECT_EQ(cotree.partition_size, exact.partition_size);
}

TEST_P(CographSweep, ComplementCaseAlsoCograph) {
  // Complements of cographs are cographs, so the p > q branch works with
  // the cotree solver as well.
  const Graph graph = join(random_cograph(5, rng_), random_cograph(4, rng_));
  const Diameter2Result exact = lpq_span_diameter2(graph, 3, 2, PartitionSolver::Exact);
  const Diameter2Result cotree = lpq_span_diameter2(graph, 3, 2, PartitionSolver::CographDP);
  EXPECT_EQ(cotree.span, exact.span);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CographSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace lptsp
