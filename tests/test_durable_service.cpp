#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "service/batch_solver.hpp"
#include "store/backend.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

std::string temp_store(const std::string& name) {
  return ::testing::TempDir() + "lptsp_" + name + "_" + std::to_string(::getpid()) + ".store";
}

std::vector<Graph> make_graphs(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    graphs.push_back(random_with_diameter_at_most(12, 2, 0.3, rng));
  }
  return graphs;
}

SolveRequest request_for(const Graph& graph) {
  SolveRequest request;
  request.graph = graph;
  request.p = PVec::L21();
  return request;
}

BatchSolver::Options durable_options(const std::string& path) {
  BatchSolver::Options options;
  options.store_path = path;
  options.request_workers = 2;
  options.engine_workers = 2;
  return options;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// The acceptance scenario: a restarted solver serves everything the
/// previous process solved straight from disk — zero engine runs — and
/// reports the hits as cache hits, even when the graphs arrive relabeled.
TEST(DurableService, RestartServesFromDiskWithZeroResolves) {
  const std::string path = temp_store("restart");
  std::remove(path.c_str());
  const std::vector<Graph> graphs = make_graphs(6, 11);
  {
    BatchSolver solver(durable_options(path));
    EXPECT_EQ(solver.warm_stats().loaded, 0u);
    for (const Graph& graph : graphs) {
      const SolveResponse response = solver.solve_one(request_for(graph));
      ASSERT_TRUE(response.ok()) << response.message;
    }
    EXPECT_GT(solver.engine_solves(), 0u);
  }
  {
    BatchSolver solver(durable_options(path));
    EXPECT_EQ(solver.warm_stats().loaded, 6u);
    EXPECT_EQ(solver.warm_stats().rejected, 0u);
    Rng rng(99);
    for (const Graph& graph : graphs) {
      // A relabeled copy must still hit: the durable key is canonical.
      const SolveResponse response =
          solver.solve_one(request_for(relabel(graph, rng.permutation(graph.n()))));
      ASSERT_TRUE(response.ok()) << response.message;
      EXPECT_EQ(response.source, ResponseSource::ResultCache);
    }
    EXPECT_EQ(solver.engine_solves(), 0u);
    EXPECT_EQ(solver.cache().stats().persisted_hits, 6u);
  }
  std::remove(path.c_str());
}

TEST(DurableService, TruncatedStoreReopensAndOnlyDamagedEntriesResolve) {
  const std::string path = temp_store("truncated");
  std::remove(path.c_str());
  const std::vector<Graph> graphs = make_graphs(6, 23);
  {
    BatchSolver solver(durable_options(path));
    for (const Graph& graph : graphs) {
      ASSERT_TRUE(solver.solve_one(request_for(graph)).ok());
    }
  }
  // Kill two thirds of the file mid-record: everything after the cut is a
  // damaged tail the store must repair away without losing the prefix.
  std::vector<char> file = read_file(path);
  ASSERT_GT(file.size(), 64u);
  file.resize(file.size() * 2 / 3);
  write_file(path, file);

  BatchSolver solver(durable_options(path));
  const std::uint64_t loaded = solver.warm_stats().loaded;
  EXPECT_GE(loaded, 1u);
  EXPECT_LT(loaded, 6u);
  for (const Graph& graph : graphs) {
    ASSERT_TRUE(solver.solve_one(request_for(graph)).ok());
  }
  // Exactly the lost entries re-solved; the surviving prefix served.
  EXPECT_EQ(solver.engine_solves(), 6u - loaded);
  std::remove(path.c_str());
}

TEST(DurableService, BitFlippedRecordDropsOnlyThatEntry) {
  const std::string path = temp_store("bitflip");
  std::remove(path.c_str());
  const std::vector<Graph> graphs = make_graphs(5, 37);
  {
    BatchSolver solver(durable_options(path));
    for (const Graph& graph : graphs) {
      ASSERT_TRUE(solver.solve_one(request_for(graph)).ok());
    }
  }
  // Flip one byte inside the FIRST record's payload (the log header is 16
  // bytes, each record frame 8 — offset 40 is safely inside record 1).
  std::vector<char> file = read_file(path);
  ASSERT_GT(file.size(), 64u);
  file[40] = static_cast<char>(file[40] ^ 0x10);
  write_file(path, file);

  BatchSolver solver(durable_options(path));
  EXPECT_EQ(solver.warm_stats().loaded, 4u);  // CRC catches the flip
  for (const Graph& graph : graphs) {
    ASSERT_TRUE(solver.solve_one(request_for(graph)).ok());
  }
  EXPECT_EQ(solver.engine_solves(), 1u);
  std::remove(path.c_str());
}

TEST(DurableService, WinTablePersistsAcrossRestart) {
  const std::string path = temp_store("wintable");
  std::remove(path.c_str());
  std::vector<std::uint64_t> before;
  {
    BatchSolver solver(durable_options(path));
    for (const Graph& graph : make_graphs(8, 53)) {
      ASSERT_TRUE(solver.solve_one(request_for(graph)).ok());
    }
    before = solver.portfolio().win_table();
  }
  std::uint64_t races = 0;
  for (const std::uint64_t count : before) races += count;
  ASSERT_GT(races, 0u) << "expected at least one contested race to be recorded";

  BatchSolver solver(durable_options(path));
  EXPECT_EQ(solver.portfolio().win_table(), before);
  std::remove(path.c_str());
}

/// Records whose bytes are intact (CRC passes) but whose contents are
/// wrong — tampering, a buggy foreign writer — are caught by the
/// re-verification pass and never served.
TEST(DurableService, TamperedRecordsAreRejectedByVerifyOnLoad) {
  const std::string path = temp_store("tampered");
  std::remove(path.c_str());
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  const PVec p = PVec::L21();
  {
    PersistentBackend::Options options;
    options.path = path;
    std::string error;
    auto backend = PersistentBackend::open(options, error);
    ASSERT_NE(backend, nullptr) << error;
    // Valid: K3 under L(2,1) wants pairwise label gaps >= 2.
    backend->put_result("good", triangle, p,
                        ResultEntry{{0, 2, 4}, 4, true, Engine::HeldKarp, 0, false});
    // Invalid labels: every pair violates the distance-1 constraint.
    backend->put_result("bad-labels", triangle, p,
                        ResultEntry{{0, 0, 0}, 0, true, Engine::HeldKarp, 0, false});
    // Valid labels but a lying span.
    backend->put_result("bad-span", triangle, p,
                        ResultEntry{{0, 2, 4}, 7, true, Engine::HeldKarp, 0, false});
  }
  PersistentBackend::Options options;
  options.path = path;
  std::string error;
  std::shared_ptr<PersistentBackend> backend = PersistentBackend::open(options, error);
  ASSERT_NE(backend, nullptr) << error;
  SolveCache cache;
  cache.attach_backend(backend);
  const SolveCache::WarmStats warm = cache.warm_from_disk();
  EXPECT_EQ(warm.loaded, 1u);
  EXPECT_EQ(warm.rejected, 2u);
  EXPECT_NE(cache.find_result("good"), nullptr);
  EXPECT_EQ(cache.find_result("bad-labels"), nullptr);
  EXPECT_EQ(cache.find_result("bad-span"), nullptr);
  std::remove(path.c_str());
}

/// The store is monotone-improving per key even when the in-memory cache
/// can no longer vouch for the better entry (it was evicted): a later,
/// worse write must not overwrite a better disk record.
TEST(DurableService, WorseLaterWriteCannotDegradeABetterStoredRecord) {
  const std::string path = temp_store("monotone");
  std::remove(path.c_str());
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  const PVec p = PVec::L21();
  {
    PersistentBackend::Options options;
    options.path = path;
    std::string error;
    auto backend = PersistentBackend::open(options, error);
    ASSERT_NE(backend, nullptr) << error;
    backend->put_result("k", triangle, p,
                        ResultEntry{{0, 2, 4}, 4, true, Engine::HeldKarp, 0, false});
    // Strictly worse (span 6, not optimal) but a valid labeling: the kind
    // of entry a short-deadline re-solve produces after an LRU eviction.
    backend->put_result("k", triangle, p,
                        ResultEntry{{0, 3, 6}, 6, false, Engine::ChainedLK, 40, false});
  }
  PersistentBackend::Options options;
  options.path = path;
  std::string error;
  std::shared_ptr<PersistentBackend> backend = PersistentBackend::open(options, error);
  ASSERT_NE(backend, nullptr) << error;
  SolveCache cache;
  cache.attach_backend(backend);
  EXPECT_EQ(cache.warm_from_disk().loaded, 1u);
  const auto entry = cache.find_result("k");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->span, 4);
  EXPECT_TRUE(entry->optimal);
  std::remove(path.c_str());
}

/// A CRC-valid record declaring a huge graph must be rejected at decode
/// time — reopening a store can never cost an O(n^2) verification matrix
/// beyond the documented bound, let alone OOM the restarting service.
TEST(DurableService, OversizedRecordIsRejectedNotFatal) {
  const std::string path = temp_store("oversized");
  std::remove(path.c_str());
  {
    PersistentBackend::Options options;
    options.path = path;
    std::string error;
    auto backend = PersistentBackend::open(options, error);
    ASSERT_NE(backend, nullptr) << error;
    const int n = kMaxPersistedGraphVertices + 1;
    ResultEntry entry;
    entry.labels.assign(static_cast<std::size_t>(n), 0);
    // put_result refuses to write it in the first place...
    backend->put_result("huge", Graph(n), PVec::L21(), entry);
    EXPECT_EQ(backend->kv().size(PersistentBackend::kResultsNamespace), 0u);
    // ...and a record smuggled past that gate (foreign writer) is
    // rejected by the decoder on reload, before any allocation.
    std::vector<std::uint8_t> encoded;
    encode_persisted_result(encoded, Graph(n), PVec::L21().entries(), entry);
    ASSERT_TRUE(backend->kv().put(
        PersistentBackend::kResultsNamespace, "huge",
        std::string(reinterpret_cast<const char*>(encoded.data()), encoded.size())));
  }
  PersistentBackend::Options options;
  options.path = path;
  std::string error;
  std::shared_ptr<PersistentBackend> backend = PersistentBackend::open(options, error);
  ASSERT_NE(backend, nullptr) << error;
  SolveCache cache;
  cache.attach_backend(backend);
  const SolveCache::WarmStats warm = cache.warm_from_disk();
  EXPECT_EQ(warm.loaded, 0u);
  EXPECT_EQ(warm.rejected, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lptsp
