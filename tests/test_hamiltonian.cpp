#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "ham/hamiltonian.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(HamiltonianPath, KnownGraphs) {
  EXPECT_TRUE(has_hamiltonian_path(path_graph(6)));
  EXPECT_TRUE(has_hamiltonian_path(cycle_graph(6)));
  EXPECT_TRUE(has_hamiltonian_path(complete_graph(5)));
  EXPECT_TRUE(has_hamiltonian_path(petersen_graph()));
  EXPECT_TRUE(has_hamiltonian_path(Graph(1)));
  EXPECT_FALSE(has_hamiltonian_path(star_graph(5)));
  EXPECT_FALSE(has_hamiltonian_path(Graph(3)));  // no edges
  EXPECT_FALSE(has_hamiltonian_path(Graph(0)));
}

TEST(HamiltonianPath, StarThresholds) {
  // K_{1,1} and K_{1,2} are paths; bigger stars are not traceable.
  EXPECT_TRUE(has_hamiltonian_path(star_graph(2)));
  EXPECT_TRUE(has_hamiltonian_path(star_graph(3)));
  EXPECT_FALSE(has_hamiltonian_path(star_graph(4)));
}

TEST(HamiltonianPath, WitnessIsValid) {
  const Graph graph = petersen_graph();
  const auto witness = hamiltonian_path(graph);
  ASSERT_TRUE(witness.has_value());
  ASSERT_EQ(witness->size(), 10u);
  std::vector<bool> seen(10, false);
  for (std::size_t i = 0; i < witness->size(); ++i) {
    EXPECT_FALSE(seen[static_cast<std::size_t>((*witness)[i])]);
    seen[static_cast<std::size_t>((*witness)[i])] = true;
    if (i > 0) {
      EXPECT_TRUE(graph.has_edge((*witness)[i - 1], (*witness)[i]));
    }
  }
}

TEST(HamiltonianPath, NoWitnessWhenAbsent) {
  EXPECT_FALSE(hamiltonian_path(star_graph(6)).has_value());
}

TEST(HamiltonianCycle, KnownGraphs) {
  EXPECT_TRUE(has_hamiltonian_cycle(cycle_graph(5)));
  EXPECT_TRUE(has_hamiltonian_cycle(complete_graph(4)));
  EXPECT_TRUE(has_hamiltonian_cycle(wheel_graph(6)));
  EXPECT_FALSE(has_hamiltonian_cycle(path_graph(5)));
  EXPECT_FALSE(has_hamiltonian_cycle(petersen_graph()));  // famously not
  EXPECT_FALSE(has_hamiltonian_cycle(star_graph(5)));
  EXPECT_FALSE(has_hamiltonian_cycle(Graph(2)));
}

TEST(HamiltonianCycle, CompleteBipartiteBalancedOnly) {
  EXPECT_TRUE(has_hamiltonian_cycle(complete_bipartite(3, 3)));
  EXPECT_FALSE(has_hamiltonian_cycle(complete_bipartite(3, 4)));
}

TEST(Hamiltonian, SizeCaps) {
  EXPECT_THROW(has_hamiltonian_path(complete_graph(25)), precondition_error);
  EXPECT_THROW(has_hamiltonian_cycle(complete_graph(25)), precondition_error);
}

TEST(PathPartition, KnownValues) {
  EXPECT_EQ(min_path_partition_exact(path_graph(7)), 1);
  EXPECT_EQ(min_path_partition_exact(cycle_graph(6)), 1);
  EXPECT_EQ(min_path_partition_exact(complete_graph(5)), 1);
  EXPECT_EQ(min_path_partition_exact(Graph(4)), 4);       // no edges
  EXPECT_EQ(min_path_partition_exact(star_graph(6)), 4);  // K_{1,5}: center+2 leaves, 3 leftovers
  EXPECT_EQ(min_path_partition_exact(Graph(1)), 1);
}

TEST(PathPartition, DisjointUnionAdds) {
  const Graph graph = disjoint_union(path_graph(3), path_graph(4));
  EXPECT_EQ(min_path_partition_exact(graph), 2);
}

class PartitionProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 167 + 43)};
};

TEST_P(PartitionProperty, GreedyUpperBoundsExact) {
  const Graph graph = erdos_renyi(12, 0.15 + 0.05 * (GetParam() % 5), rng_);
  const int exact = min_path_partition_exact(graph);
  const int greedy = min_path_partition_greedy(graph);
  EXPECT_GE(greedy, exact);
  EXPECT_GE(exact, 1);
  EXPECT_LE(exact, graph.n());
}

TEST_P(PartitionProperty, HamiltonianPathIffPartitionOne) {
  const Graph graph = erdos_renyi(10, 0.3, rng_);
  EXPECT_EQ(has_hamiltonian_path(graph) && is_connected(graph) ? 1 : 0,
            min_path_partition_exact(graph) == 1 ? 1 : 0)
      << "partition=1 must coincide with having a Hamiltonian path";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace lptsp
