#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

/// Oracle comparison: the bit-parallel/fallback dispatcher and the
/// frontier-bitset BFS must agree with the adjacency-list reference on
/// every vertex pair, including unreachable ones.
void expect_all_kernels_agree(const Graph& graph, const char* label) {
  const DistanceMatrix fast = all_pairs_distances(graph, 1);
  const DistanceMatrix reference = all_pairs_distances_reference(graph, 1);
  ASSERT_EQ(fast.n(), graph.n()) << label;
  for (int src = 0; src < graph.n(); ++src) {
    const auto list_bfs = bfs_distances(graph, src);
    const auto frontier = bfs_distances_frontier(graph, src);
    for (int v = 0; v < graph.n(); ++v) {
      EXPECT_EQ(fast.at(src, v), list_bfs[static_cast<std::size_t>(v)])
          << label << " src=" << src << " v=" << v;
      EXPECT_EQ(frontier[static_cast<std::size_t>(v)], list_bfs[static_cast<std::size_t>(v)])
          << label << " src=" << src << " v=" << v;
      EXPECT_EQ(reference.at(src, v), list_bfs[static_cast<std::size_t>(v)])
          << label << " src=" << src << " v=" << v;
    }
  }
}

TEST(DistanceKernels, ErdosRenyiRandomized) {
  Rng rng(7);
  // Sweep density from empty-ish (all-fallback, unreachable pairs) through
  // dense (pure diameter-2 fast path). Sizes straddle the 64-bit word
  // boundary so multi-word intersections are exercised.
  for (const int n : {1, 2, 5, 17, 33, 63, 64, 65, 70, 129}) {
    for (const double p : {0.02, 0.1, 0.3, 0.7}) {
      for (int trial = 0; trial < 3; ++trial) {
        const Graph graph = erdos_renyi(n, p, rng);
        expect_all_kernels_agree(graph, "erdos-renyi");
      }
    }
  }
}

TEST(DistanceKernels, GeneratorFamilies) {
  Rng rng(11);
  expect_all_kernels_agree(petersen_graph(), "petersen");
  expect_all_kernels_agree(grid_graph(5, 7), "grid");  // diameter 10: fallback only
  expect_all_kernels_agree(path_graph(130), "path");   // deep BFS, 3 words
  expect_all_kernels_agree(star_graph(70), "star");
  expect_all_kernels_agree(complete_graph(40), "complete");
  expect_all_kernels_agree(wheel_graph(20), "wheel");
  expect_all_kernels_agree(complete_bipartite(60, 70), "bipartite");  // diam 2, 3 words
  expect_all_kernels_agree(fig1_graph(), "fig1");
  expect_all_kernels_agree(random_tree(80, rng), "tree");
  expect_all_kernels_agree(random_cograph(50, rng), "cograph");
  expect_all_kernels_agree(random_split_graph(60, 0.4, 0.2, rng), "split");
  for (const int diam : {2, 3}) {
    for (const int n : {30, 65, 100}) {
      expect_all_kernels_agree(random_with_diameter_at_most(n, diam, 0.08, rng), "diam-capped");
    }
  }
}

TEST(DistanceKernels, DisconnectedGraphs) {
  Rng rng(23);
  // Unions force unreachable pairs through both the fast-path bailout and
  // the frontier fallback.
  const Graph two_cliques = disjoint_union(complete_graph(30), complete_graph(40));
  expect_all_kernels_agree(two_cliques, "two-cliques");
  const Graph sparse_islands = disjoint_union(erdos_renyi(40, 0.05, rng), path_graph(30));
  expect_all_kernels_agree(sparse_islands, "sparse-islands");
  expect_all_kernels_agree(Graph(66), "edgeless");
}

TEST(DistanceKernels, ThreadCountsAgree) {
  Rng rng(31);
  const Graph graph = random_with_diameter_at_most(90, 3, 0.05, rng);
  const DistanceMatrix serial = all_pairs_distances(graph, 1);
  for (const unsigned threads : {0u, 2u, 4u}) {
    const DistanceMatrix parallel = all_pairs_distances(graph, threads);
    for (int u = 0; u < graph.n(); ++u) {
      for (int v = 0; v < graph.n(); ++v) {
        ASSERT_EQ(serial.at(u, v), parallel.at(u, v)) << "threads=" << threads;
      }
    }
  }
}

TEST(DistanceMatrixAccessors, RowAndUncheckedMatchCheckedApi) {
  Rng rng(41);
  const Graph graph = random_connected(25, 0.2, rng);
  const DistanceMatrix dist = all_pairs_distances(graph);
  for (int u = 0; u < graph.n(); ++u) {
    const int* row = dist.row(u);
    for (int v = 0; v < graph.n(); ++v) {
      EXPECT_EQ(row[v], dist.at(u, v));
      EXPECT_EQ(dist.at_unchecked(u, v), dist.at(u, v));
    }
  }
}

}  // namespace
}  // namespace lptsp
