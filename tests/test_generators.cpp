#include <gtest/gtest.h>

#include <map>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "params/cotree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(ClassicFamilies, PathGraph) {
  const Graph graph = path_graph(6);
  EXPECT_EQ(graph.m(), 5);
  EXPECT_EQ(graph.degree(0), 1);
  EXPECT_EQ(graph.degree(3), 2);
}

TEST(ClassicFamilies, CycleGraph) {
  const Graph graph = cycle_graph(5);
  EXPECT_EQ(graph.m(), 5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(graph.degree(v), 2);
  EXPECT_THROW(cycle_graph(2), precondition_error);
}

TEST(ClassicFamilies, CompleteGraph) {
  const Graph graph = complete_graph(6);
  EXPECT_EQ(graph.m(), 15);
  EXPECT_EQ(diameter(graph), 1);
}

TEST(ClassicFamilies, StarAndWheel) {
  const Graph star = star_graph(7);
  EXPECT_EQ(star.m(), 6);
  EXPECT_EQ(star.degree(0), 6);

  const Graph wheel = wheel_graph(7);
  EXPECT_EQ(wheel.m(), 12);  // 6 rim + 6 spokes
  EXPECT_EQ(wheel.degree(6), 6);
  EXPECT_EQ(diameter(wheel), 2);
}

TEST(ClassicFamilies, CompleteBipartiteAndMultipartite) {
  const Graph bip = complete_bipartite(3, 4);
  EXPECT_EQ(bip.m(), 12);
  EXPECT_EQ(diameter(bip), 2);

  const Graph multi = complete_multipartite({2, 2, 2});
  EXPECT_EQ(multi.m(), 12);  // K_{2,2,2} octahedron
  for (int v = 0; v < 6; ++v) EXPECT_EQ(multi.degree(v), 4);
}

TEST(ClassicFamilies, Grid) {
  const Graph grid = grid_graph(3, 4);
  EXPECT_EQ(grid.n(), 12);
  EXPECT_EQ(grid.m(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(diameter(grid), 5);
}

TEST(ClassicFamilies, Petersen) {
  const Graph petersen = petersen_graph();
  EXPECT_EQ(petersen.n(), 10);
  EXPECT_EQ(petersen.m(), 15);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(petersen.degree(v), 3);
  EXPECT_EQ(diameter(petersen), 2);
}

TEST(Fig1, DistanceMultisetMatchesPaper) {
  // Figure 1 shows weights {p1 x5, p2 x3, p3 x2} on the 10 pairs.
  const Graph graph = fig1_graph();
  EXPECT_EQ(graph.n(), 5);
  EXPECT_EQ(graph.m(), 5);
  EXPECT_EQ(diameter(graph), 3);
  const auto dist = all_pairs_distances(graph);
  std::map<int, int> histogram;
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) ++histogram[dist.at(u, v)];
  }
  EXPECT_EQ(histogram[1], 5);
  EXPECT_EQ(histogram[2], 3);
  EXPECT_EQ(histogram[3], 2);
}

TEST(EdgeMask, RoundTripsAllPairs) {
  // Mask with all bits set must give the complete graph.
  const int n = 5;
  const std::uint64_t full = (std::uint64_t{1} << (n * (n - 1) / 2)) - 1;
  EXPECT_TRUE(graph_from_edge_mask(n, full) == complete_graph(n));
  EXPECT_TRUE(graph_from_edge_mask(n, 0) == Graph(n));
}

TEST(EdgeMask, RejectsTooManyVertices) {
  EXPECT_THROW(graph_from_edge_mask(12, 0), precondition_error);
}

TEST(EdgeMask, SpecificBitsMapLexicographically) {
  // Bit 0 = {0,1}, bit 1 = {0,2}, bit 2 = {0,3}, bit 3 = {1,2}.
  const Graph graph = graph_from_edge_mask(4, 0b1001);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 2));
  EXPECT_EQ(graph.m(), 2);
}

class RandomFamilies : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 7919 + 1)};
};

TEST_P(RandomFamilies, ErdosRenyiExtremes) {
  EXPECT_EQ(erdos_renyi(10, 0.0, rng_).m(), 0);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng_).m(), 45);
}

TEST_P(RandomFamilies, RandomTreeIsTree) {
  const Graph tree = random_tree(17, rng_);
  EXPECT_EQ(tree.m(), 16);
  EXPECT_TRUE(is_connected(tree));
}

TEST_P(RandomFamilies, RandomConnectedIsConnected) {
  const Graph graph = random_connected(25, 0.05, rng_);
  EXPECT_TRUE(is_connected(graph));
}

TEST_P(RandomFamilies, DiameterCapIsRespected) {
  for (const int cap : {2, 3}) {
    const Graph graph = random_with_diameter_at_most(20, cap, 0.1, rng_);
    EXPECT_TRUE(is_connected(graph));
    EXPECT_LE(diameter(graph), cap);
  }
}

TEST_P(RandomFamilies, GeometricSmallDiameter) {
  const Graph graph = random_geometric_small_diameter(30, 6.0, 3, rng_);
  EXPECT_TRUE(is_connected(graph));
  EXPECT_LE(diameter(graph), 3);
}

TEST_P(RandomFamilies, RandomCographIsCograph) {
  const Graph graph = random_cograph(20, rng_);
  EXPECT_EQ(graph.n(), 20);
  EXPECT_TRUE(is_cograph(graph));
}

TEST_P(RandomFamilies, SplitGraphHasCliqueAndIndependentSide) {
  const Graph graph = random_split_graph(20, 0.5, 0.3, rng_);
  EXPECT_TRUE(is_connected(graph));
  std::vector<int> clique_side;
  for (int v = 0; v < 10; ++v) clique_side.push_back(v);
  EXPECT_TRUE(is_clique(graph, clique_side));
  std::vector<int> independent_side;
  for (int v = 10; v < 20; ++v) independent_side.push_back(v);
  EXPECT_TRUE(is_independent_set(graph, independent_side));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFamilies, ::testing::Range(0, 6));

}  // namespace
}  // namespace lptsp
