#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/held_karp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

TEST(HeldKarpCancel, PresetFlagStopsBeforeSolving) {
  Rng rng(1);
  const MetricInstance instance = random_instance(18, rng);
  std::atomic<bool> cancel{true};
  HeldKarpOptions options;
  options.cancel = &cancel;
  const auto start = std::chrono::steady_clock::now();
  const HeldKarpRun run = held_karp_path_run(instance, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(run.completed);
  EXPECT_EQ(run.solution.cost, -1);
  EXPECT_TRUE(run.solution.order.empty());
  // A pre-set flag must be honored at the first layer boundary — well
  // before the DP would finish (n=18 takes tens of milliseconds).
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.05);
}

TEST(HeldKarpCancel, ThrowingFrontEndRejectsCancelledRun) {
  Rng rng(2);
  const MetricInstance instance = random_instance(10, rng);
  std::atomic<bool> cancel{true};
  HeldKarpOptions options;
  options.cancel = &cancel;
  EXPECT_THROW(held_karp_path(instance, options), precondition_error);
}

TEST(HeldKarpCancel, NullAndUnfiredFlagsMatchPlainRun) {
  Rng rng(3);
  const MetricInstance instance = random_instance(14, rng);
  const PathSolution plain = held_karp_path(instance);
  std::atomic<bool> cancel{false};
  HeldKarpOptions options;
  options.cancel = &cancel;
  const HeldKarpRun run = held_karp_path_run(instance, options);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.solution.cost, plain.cost);
  EXPECT_TRUE(is_valid_order(run.solution.order, 14));
  EXPECT_EQ(path_length(instance, run.solution.order), run.solution.cost);
}

TEST(HeldKarpCancel, MidRunCancellationReturnsPromptly) {
  Rng rng(4);
  // Large enough that the DP runs for a while on any machine this test
  // meets; the watcher thread fires the flag shortly after launch and the
  // run must come back quickly without a valid solution.
  const MetricInstance instance = random_instance(21, rng);
  std::atomic<bool> cancel{false};
  HeldKarpOptions options;
  options.cancel = &cancel;
  std::thread watcher([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancel.store(true, std::memory_order_relaxed);
  });
  const HeldKarpRun run = held_karp_path_run(instance, options);
  watcher.join();
  if (!run.completed) {
    EXPECT_EQ(run.solution.cost, -1);
  } else {
    // The machine outran the watcher; the result must then be a real
    // optimum-shaped answer.
    EXPECT_TRUE(is_valid_order(run.solution.order, 21));
  }
}

TEST(HeldKarpCancel, CancelledParallelScheduleStops) {
  Rng rng(5);
  const MetricInstance instance = random_instance(16, rng);
  std::atomic<bool> cancel{true};
  HeldKarpOptions options;
  options.cancel = &cancel;
  options.threads = 2;
  const HeldKarpRun run = held_karp_path_run(instance, options);
  EXPECT_FALSE(run.completed);
  EXPECT_EQ(run.solution.cost, -1);
}

TEST(HeldKarpCancel, NarrowAndWideTablesAgree) {
  Rng rng(6);
  // Small weights use the int16 table; scaling the same instance past the
  // 16-bit budget forces the int32 table. Costs must scale exactly.
  MetricInstance narrow(12);
  MetricInstance wide(12);
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) {
      const Weight w = rng.uniform_int(1, 9);
      narrow.set_weight(i, j, w);
      wide.set_weight(i, j, w * 10'000);  // (n-1) * max exceeds int16 range
    }
  }
  const PathSolution narrow_solution = held_karp_path(narrow);
  const PathSolution wide_solution = held_karp_path(wide);
  EXPECT_EQ(narrow_solution.cost * 10'000, wide_solution.cost);
}

}  // namespace
}  // namespace lptsp
