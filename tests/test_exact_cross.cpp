#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/order_labeling.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

/// Three independent exact algorithms must agree on lambda_p:
///  1. solve_labeling with Held-Karp = Theorem-2 reduction + Corollary 1;
///  2. min_span_over_all_orders = order enumeration + general per-order DP
///     (independent of Claim 1's prefix-sum argument);
///  3. exact_labeling_branch_and_bound = direct search over label
///     assignments (independent of the reduction entirely).
class ThreeOracles : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 947 + 19)};

  void expect_all_equal(const Graph& graph, const PVec& p) {
    SolveOptions options;
    options.engine = Engine::HeldKarp;
    const Weight via_tsp = solve_labeling(graph, p, options).span;
    const Weight via_orders = min_span_over_all_orders(graph, p);
    const ExactBBResult via_direct = exact_labeling_branch_and_bound(graph, p);
    EXPECT_EQ(via_tsp, via_orders) << "p = " << p.to_string();
    EXPECT_EQ(via_tsp, via_direct.span) << "p = " << p.to_string();
    EXPECT_TRUE(is_valid_labeling(graph, p, via_direct.labeling));
  }
};

TEST_P(ThreeOracles, Diameter2L21) {
  const Graph graph = random_with_diameter_at_most(7, 2, 0.3, rng_);
  expect_all_equal(graph, PVec::L21());
}

TEST_P(ThreeOracles, Diameter2VariousP) {
  const Graph graph = random_with_diameter_at_most(6, 2, 0.35, rng_);
  for (const PVec& p : {PVec({1, 1}), PVec::Lpq(3, 2), PVec({2, 2}), PVec({4, 2})}) {
    expect_all_equal(graph, p);
  }
}

TEST_P(ThreeOracles, Diameter3VariousP) {
  const Graph graph = random_with_diameter_at_most(7, 3, 0.25, rng_);
  for (const PVec& p : {PVec({2, 1, 1}), PVec({2, 2, 1}), PVec({1, 1, 1}), PVec({4, 3, 2})}) {
    expect_all_equal(graph, p);
  }
}

TEST_P(ThreeOracles, Diameter4) {
  const Graph graph = random_with_diameter_at_most(7, 4, 0.2, rng_);
  expect_all_equal(graph, PVec({2, 2, 1, 1}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeOracles, ::testing::Range(0, 8));

/// Property-based ISA cross-check: the full pipeline (Theorem-2 reduce ->
/// Held-Karp solve -> label) must be bit-for-bit span-identical whether
/// the kernels run on the forced-scalar tier or whatever wider tier this
/// machine dispatches natively. 200 seeded random diameter-2 instances
/// over mixed p-vectors; any tail-masking or overflow bug in a wide
/// kernel that survives the unit differentials shows up here as a span
/// disagreement on a concrete reproducible instance.
TEST(IsaCrossCheck, PipelineSpanIdenticalUnderScalarAndNativeDispatch) {
  const IsaTier native = kernels::detected_isa_tier();
  const IsaTier restore = kernels::active_isa_tier();
  const PVec pvecs[] = {PVec::L21(), PVec({1, 1}), PVec({2, 2}), PVec::Lpq(3, 2)};
  for (int seed = 0; seed < 200; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 41);
    const int n = 5 + static_cast<int>(rng.uniform_index(5));  // 5..9
    const double density = 0.2 + 0.15 * static_cast<double>(rng.uniform_index(3));
    const Graph graph = random_with_diameter_at_most(n, 2, density, rng);
    const PVec& p = pvecs[seed % 4];
    SolveOptions options;
    options.engine = Engine::HeldKarp;

    kernels::set_isa_tier(IsaTier::Scalar);
    const SolveResult scalar_result = solve_labeling(graph, p, options);
    kernels::set_isa_tier(native);
    const SolveResult native_result = solve_labeling(graph, p, options);

    ASSERT_EQ(scalar_result.span, native_result.span)
        << "seed=" << seed << " n=" << n << " p=" << p.to_string()
        << " native=" << isa_tier_name(native);
    EXPECT_TRUE(is_valid_labeling(graph, p, scalar_result.labeling)) << "seed=" << seed;
    EXPECT_TRUE(is_valid_labeling(graph, p, native_result.labeling)) << "seed=" << seed;
  }
  kernels::set_isa_tier(restore);
}

TEST(ScalingLaw, LambdaScalesLinearly) {
  // lambda_{c*p} = c * lambda_p (used by Corollary 3's proof).
  Rng rng(5);
  const Graph graph = random_with_diameter_at_most(7, 2, 0.3, rng);
  const PVec p = PVec::L21();
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const Weight base = solve_labeling(graph, p, options).span;
  for (int c = 2; c <= 4; ++c) {
    EXPECT_EQ(solve_labeling(graph, p.scaled(c), options).span, c * base);
  }
}

TEST(KnownOptima, FigureOneGraph) {
  // All 5 vertices are pairwise within distance 3, so labels are distinct
  // and lambda >= 4; the manual labeling in test_pvec_labeling achieves 4.
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  EXPECT_EQ(solve_labeling(fig1_graph(), PVec({2, 1, 1}), options).span, 4);
}

TEST(KnownOptima, CompleteGraphL21) {
  // K_n: all pairs adjacent -> labels 0, 2, 4, ..., span 2(n-1).
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  for (int n : {2, 4, 6}) {
    EXPECT_EQ(solve_labeling(complete_graph(n), PVec::L21(), options).span, 2 * (n - 1));
  }
}

TEST(KnownOptima, StarL21) {
  // K_{1,m} (diameter 2): known lambda_{2,1} = m + 1.
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  for (int n : {4, 6, 8}) {
    EXPECT_EQ(solve_labeling(star_graph(n), PVec::L21(), options).span, n);
  }
}

TEST(KnownOptima, CycleL21) {
  // Griggs–Yeh: lambda_{2,1}(C_n) = 4 for every cycle n >= 3 with diam<=2,
  // i.e. C_3, C_4, C_5 (C_3 = K_3 has span 4 as well).
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  EXPECT_EQ(solve_labeling(cycle_graph(4), PVec::L21(), options).span, 4);
  EXPECT_EQ(solve_labeling(cycle_graph(5), PVec::L21(), options).span, 4);
}

TEST(KnownOptima, PetersenL21) {
  // The Petersen graph is a Moore graph of diameter 2; its lambda_{2,1}
  // is 9 (known tight value).
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  EXPECT_EQ(solve_labeling(petersen_graph(), PVec::L21(), options).span, 9);
}

TEST(KnownOptima, CompleteBipartiteL21) {
  // lambda_{2,1}(K_{m,n}) = m + n (Griggs–Yeh).
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  EXPECT_EQ(solve_labeling(complete_bipartite(2, 3), PVec::L21(), options).span, 5);
  EXPECT_EQ(solve_labeling(complete_bipartite(3, 3), PVec::L21(), options).span, 6);
  EXPECT_EQ(solve_labeling(complete_bipartite(4, 2), PVec::L21(), options).span, 6);
}

TEST(KnownOptima, WheelL21) {
  // Wheel W_n (hub + cycle n-1): lambda_{2,1} = n + 1 for n-1 >= 6? The
  // hub is adjacent to all, rim pairs are within distance 2, so labels are
  // all distinct and hub needs gap 2 from everyone: lambda = n + 1 for
  // large enough wheels (Griggs–Yeh give Delta + 2 lower bounds).
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const SolveResult result = solve_labeling(wheel_graph(8), PVec::L21(), options);
  // Sanity: diameter-2 graph on 8 vertices, so span >= 7; hub forces more.
  EXPECT_GE(result.span, 8);
  EXPECT_TRUE(result.optimal);
}

}  // namespace
}  // namespace lptsp
