#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lptsp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int value = rng.uniform_int(-3, 5);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 5);
  }
}

TEST(Rng, UniformIntHitsAllValues) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform01();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatches) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(13);
  const auto perm = rng.permutation(20);
  std::set<int> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 20u);
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), 19);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> values{1, 1, 2, 3, 5, 8, 13};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::multiset<int> before(values.begin(), values.end());
  std::multiset<int> after(shuffled.begin(), shuffled.end());
  EXPECT_EQ(before, after);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // Streams should differ from each other.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.next() != child.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Timer, MeasuresNonNegativeTime) {
  const Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), 0.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelBlocksCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_blocks(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForHelper, SerialModeMatchesParallel) {
  std::vector<int> serial(64, 0);
  std::vector<std::atomic<int>> parallel(64);
  parallel_for(64, [&](std::size_t i) { serial[i] = static_cast<int>(i) * 3; }, 1);
  parallel_for(64, [&](std::size_t i) { parallel[i] = static_cast<int>(i) * 3; }, 0);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(serial[i], parallel[i].load());
}

TEST(Table, AsciiContainsHeadersAndCells) {
  Table table({"engine", "span"});
  table.add_row({"held-karp", "17"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("engine"), std::string::npos);
  EXPECT_NE(ascii.find("held-karp"), std::string::npos);
  EXPECT_NE(ascii.find("17"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), precondition_error);
}

TEST(Table, CsvQuotesCommas) {
  Table table({"name"});
  table.add_row({"a,b"});
  EXPECT_NE(table.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(Table, CsvRoundTripLineCount) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), precondition_error);
}

TEST(FormatHelpers, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_ratio(1.5), "1.5000");
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=20", "--verbose", "input.txt"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("n", 0), 20);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(CliArgs, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("engine", "held-karp"), "held-karp");
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.25), 0.25);
}

TEST(CliArgs, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--typo=1", "--used=2"};
  CliArgs args(3, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(LPTSP_REQUIRE(false, "msg"), precondition_error);
  EXPECT_NO_THROW(LPTSP_REQUIRE(true, "msg"));
}

TEST(Check, EnsureThrowsInvariantError) {
  EXPECT_THROW(LPTSP_ENSURE(false, "msg"), invariant_error);
  EXPECT_NO_THROW(LPTSP_ENSURE(true, "msg"));
}

}  // namespace
}  // namespace lptsp
