#include <gtest/gtest.h>

#include "core/partition_paths.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(PathPartitionWitness, ValidityChecker) {
  const Graph graph = path_graph(4);
  EXPECT_TRUE(is_valid_path_partition(graph, {{{0, 1, 2, 3}}}));
  EXPECT_TRUE(is_valid_path_partition(graph, {{{0, 1}, {2, 3}}}));
  EXPECT_FALSE(is_valid_path_partition(graph, {{{0, 2}, {1, 3}}}));  // non-edges
  EXPECT_FALSE(is_valid_path_partition(graph, {{{0, 1}}}));          // misses vertices
  EXPECT_FALSE(is_valid_path_partition(graph, {{{0, 1}, {1, 2, 3}}}));  // reuse
}

TEST(PathPartitionWitness, ExactOnKnownGraphs) {
  EXPECT_EQ(path_partition_exact(path_graph(6)).size(), 1);
  EXPECT_EQ(path_partition_exact(star_graph(6)).size(), 4);
  EXPECT_EQ(path_partition_exact(Graph(3)).size(), 3);
  EXPECT_EQ(path_partition_exact(Graph(1)).size(), 1);
}

class PartitionSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 431 + 3)};
};

TEST_P(PartitionSweep, WitnessesAreValid) {
  const Graph graph = erdos_renyi(11, 0.2 + 0.04 * (GetParam() % 6), rng_);
  const PathPartition exact = path_partition_exact(graph);
  const PathPartition greedy = path_partition_greedy(graph);
  EXPECT_TRUE(is_valid_path_partition(graph, exact));
  EXPECT_TRUE(is_valid_path_partition(graph, greedy));
  EXPECT_LE(exact.size(), greedy.size());
}

TEST_P(PartitionSweep, Corollary2MatchesTspPipeline) {
  // The heart of Corollary 2: the path-partition formula must equal the
  // Theorem-2 + Held-Karp span on diameter-2 graphs, for both p <= q and
  // p > q (complement case).
  const Graph graph = random_with_diameter_at_most(9, 2, 0.3, rng_);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  for (const auto& [p, q] : std::vector<std::pair<int, int>>{
           {2, 1}, {1, 1}, {1, 2}, {3, 2}, {2, 3}, {2, 2}, {4, 3}, {3, 4}}) {
    const Weight via_tsp = solve_labeling(graph, PVec::Lpq(p, q), options).span;
    const Diameter2Result via_partition = lpq_span_diameter2(graph, p, q);
    EXPECT_EQ(via_partition.span, via_tsp) << "p=" << p << " q=" << q;
    EXPECT_EQ(via_partition.used_complement, p > q);
    if (!via_partition.labeling.labels.empty()) {
      EXPECT_TRUE(is_valid_labeling(graph, PVec::Lpq(p, q), via_partition.labeling));
      EXPECT_EQ(via_partition.labeling.span(), via_partition.span);
    }
  }
}

TEST_P(PartitionSweep, GreedySolverUpperBounds) {
  const Graph graph = random_with_diameter_at_most(10, 2, 0.3, rng_);
  const Diameter2Result exact = lpq_span_diameter2(graph, 2, 1, PartitionSolver::Exact);
  const Diameter2Result greedy = lpq_span_diameter2(graph, 2, 1, PartitionSolver::Greedy);
  EXPECT_GE(greedy.span, exact.span);
  EXPECT_GE(greedy.partition_size, exact.partition_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep, ::testing::Range(0, 8));

TEST(Corollary2, CompleteGraph) {
  // K_5 with p=2 > q=1: the partition runs on the complement (empty
  // graph), s* = 5, and lambda = 4*1 + (2-1)*4 = 8 = 2(n-1).
  const Diameter2Result result = lpq_span_diameter2(complete_graph(5), 2, 1);
  EXPECT_TRUE(result.used_complement);
  EXPECT_EQ(result.partition_size, 5);
  EXPECT_EQ(result.span, 8);
}

TEST(Corollary2, StarGraphL21) {
  // K_{1,5} with p=2 > q=1: complement = K_5 on the leaves + isolated hub,
  // so s* = 2 and lambda_{2,1} = 5*1 + 1*1 = 6 (the known m+1 value).
  const Diameter2Result result = lpq_span_diameter2(star_graph(6), 2, 1);
  EXPECT_TRUE(result.used_complement);
  EXPECT_EQ(result.span, 6);
  EXPECT_EQ(result.partition_size, 2);
}

TEST(Corollary2, ComplementCaseUsesComplementPartition) {
  // Star with p > q: cheap edges are the distance-2 pairs = leaf pairs,
  // which form K_{m} on the leaves plus an isolated hub.
  const Graph star = star_graph(5);
  const Diameter2Result result = lpq_span_diameter2(star, 3, 2);
  EXPECT_TRUE(result.used_complement);
  // Complement of K_{1,4} = K_4 + isolated hub: 2 paths.
  EXPECT_EQ(result.partition_size, 2);
  EXPECT_EQ(result.span, 4 * 2 + (3 - 2) * 1);
}

TEST(Corollary2, SingleVertex) {
  EXPECT_EQ(lpq_span_diameter2(Graph(1), 2, 1).span, 0);
}

TEST(Corollary2, Preconditions) {
  EXPECT_THROW(lpq_span_diameter2(path_graph(4), 2, 1), precondition_error);  // diameter 3
  EXPECT_THROW(lpq_span_diameter2(star_graph(4), 3, 1), precondition_error);  // 3 > 2*1
  Graph disconnected(3);
  EXPECT_THROW(lpq_span_diameter2(disconnected, 2, 1), precondition_error);
}

TEST(Fig2, OrderSplitsIntoPaths) {
  // Reproduce the Figure-2 mechanics: an order whose consecutive pairs
  // alternate between edges (A_pi) and non-edges (B_pi) splits into
  // |B_pi| + 1 paths.
  Graph graph(9);
  // Build paths {0,1,2}, {3}, {4,5}, {6,7}, {8} and make the graph their
  // disjoint union plus extra edges so it stays the witness structure.
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(4, 5);
  graph.add_edge(6, 7);
  const Order order{0, 1, 2, 3, 4, 5, 6, 7, 8};
  // Count boundary (non-edge) steps: (2,3), (3,4), (5,6), (7,8) -> 4.
  int heavy = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (!graph.has_edge(order[i], order[i + 1])) ++heavy;
  }
  EXPECT_EQ(heavy, 4);
  const PathPartition greedy = path_partition_greedy(graph);
  EXPECT_EQ(greedy.size(), 5);  // |B_pi| + 1
}

}  // namespace
}  // namespace lptsp
