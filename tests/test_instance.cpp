#include <gtest/gtest.h>

#include <sstream>

#include "tsp/instance.hpp"
#include "tsp/path.hpp"
#include "util/check.hpp"

namespace lptsp {
namespace {

TEST(MetricInstance, DefaultsToZeroWeights) {
  const MetricInstance instance(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(instance.weight(i, j), 0);
  }
}

TEST(MetricInstance, SetWeightIsSymmetric) {
  MetricInstance instance(3);
  instance.set_weight(0, 2, 7);
  EXPECT_EQ(instance.weight(0, 2), 7);
  EXPECT_EQ(instance.weight(2, 0), 7);
}

TEST(MetricInstance, RejectsDiagonalAndNegative) {
  MetricInstance instance(3);
  EXPECT_THROW(instance.set_weight(1, 1, 5), precondition_error);
  EXPECT_THROW(instance.set_weight(0, 1, -1), precondition_error);
}

TEST(MetricInstance, FromMatrixValidates) {
  EXPECT_NO_THROW(MetricInstance::from_matrix(2, {0, 3, 3, 0}));
  EXPECT_THROW(MetricInstance::from_matrix(2, {0, 3, 4, 0}), precondition_error);  // asymmetric
  EXPECT_THROW(MetricInstance::from_matrix(2, {1, 3, 3, 0}), precondition_error);  // diagonal
  EXPECT_THROW(MetricInstance::from_matrix(2, {0, 3, 3}), precondition_error);     // size
}

TEST(MetricInstance, MinMaxDistinct) {
  MetricInstance instance(3);
  instance.set_weight(0, 1, 2);
  instance.set_weight(0, 2, 4);
  instance.set_weight(1, 2, 2);
  EXPECT_EQ(instance.min_weight(), 2);
  EXPECT_EQ(instance.max_weight(), 4);
  EXPECT_EQ(instance.distinct_weights(), (std::vector<Weight>{2, 4}));
}

TEST(MetricInstance, MetricCheck) {
  MetricInstance good(3);
  good.set_weight(0, 1, 1);
  good.set_weight(1, 2, 1);
  good.set_weight(0, 2, 2);
  EXPECT_TRUE(good.is_metric());

  MetricInstance bad(3);
  bad.set_weight(0, 1, 1);
  bad.set_weight(1, 2, 1);
  bad.set_weight(0, 2, 3);  // 3 > 1 + 1
  EXPECT_FALSE(bad.is_metric());
}

TEST(MetricInstance, ZeroDepotBreaksMetricityButKeepsWeights) {
  MetricInstance instance(3);
  instance.set_weight(0, 1, 2);
  instance.set_weight(0, 2, 2);
  instance.set_weight(1, 2, 2);
  const MetricInstance with_depot = instance.with_zero_depot();
  EXPECT_EQ(with_depot.n(), 4);
  EXPECT_EQ(with_depot.weight(3, 0), 0);
  EXPECT_EQ(with_depot.weight(0, 1), 2);
  EXPECT_FALSE(with_depot.is_metric());
}

TEST(MetricInstance, TsplibExportContainsMatrix) {
  MetricInstance instance(2);
  instance.set_weight(0, 1, 9);
  std::ostringstream out;
  instance.write_tsplib(out, "toy");
  const std::string text = out.str();
  EXPECT_NE(text.find("NAME: toy"), std::string::npos);
  EXPECT_NE(text.find("DIMENSION: 2"), std::string::npos);
  EXPECT_NE(text.find("FULL_MATRIX"), std::string::npos);
  EXPECT_NE(text.find("0 9"), std::string::npos);
}

TEST(PathUtilities, ValidOrderChecks) {
  EXPECT_TRUE(is_valid_order({2, 0, 1}, 3));
  EXPECT_FALSE(is_valid_order({0, 0, 1}, 3));
  EXPECT_FALSE(is_valid_order({0, 1}, 3));
  EXPECT_FALSE(is_valid_order({0, 1, 3}, 3));
}

TEST(PathUtilities, PathAndTourLength) {
  MetricInstance instance(3);
  instance.set_weight(0, 1, 1);
  instance.set_weight(1, 2, 2);
  instance.set_weight(0, 2, 4);
  EXPECT_EQ(path_length(instance, {0, 1, 2}), 3);
  EXPECT_EQ(tour_length(instance, {0, 1, 2}), 7);
  EXPECT_EQ(path_length(instance, {1, 0, 2}), 5);
}

TEST(PathUtilities, PathLengthValidatesOrder) {
  const MetricInstance instance(3);
  EXPECT_THROW(path_length(instance, {0, 1}), precondition_error);
}

TEST(PathUtilities, DepotTourConversion) {
  const Order tour{4, 2, 3, 0, 1};
  EXPECT_EQ(path_from_depot_tour(tour, 3), (Order{0, 1, 4, 2}));
  EXPECT_EQ(path_from_depot_tour(tour, 4), (Order{2, 3, 0, 1}));
  EXPECT_THROW(path_from_depot_tour(tour, 9), precondition_error);
}

TEST(PathUtilities, CanonicalPathOrientsBySmallerEndpoint) {
  EXPECT_EQ(canonical_path({3, 1, 0}), (Order{0, 1, 3}));
  EXPECT_EQ(canonical_path({0, 1, 3}), (Order{0, 1, 3}));
}

}  // namespace
}  // namespace lptsp
