#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "obs/delta.hpp"
#include "obs/metrics.hpp"

namespace lptsp::obs {
namespace {

MetricsSnapshot snapshot_at(std::uint64_t timestamp_ns) {
  MetricsSnapshot snap;
  snap.timestamp_ns = timestamp_ns;
  snap.uptime_ns = timestamp_ns;
  return snap;
}

// ----------------------------------------------------------------- between

TEST(SnapshotDelta, CounterRatesUseTheSnapshotInterval) {
  MetricsSnapshot older = snapshot_at(1'000'000'000);  // t = 1s
  MetricsSnapshot newer = snapshot_at(3'000'000'000);  // t = 3s
  older.counters.push_back({"requests_total", 100});
  newer.counters.push_back({"requests_total", 500});

  const SnapshotDelta delta = SnapshotDelta::between(older, newer);
  EXPECT_DOUBLE_EQ(delta.interval_seconds, 2.0);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].delta, 400u);
  EXPECT_DOUBLE_EQ(delta.counters[0].per_second, 200.0);
}

TEST(SnapshotDelta, BackwardsCounterClampsToZeroNotWrap) {
  MetricsSnapshot older = snapshot_at(1'000'000'000);
  MetricsSnapshot newer = snapshot_at(2'000'000'000);
  older.counters.push_back({"requests_total", 500});
  newer.counters.push_back({"requests_total", 10});  // daemon restarted

  const SnapshotDelta delta = SnapshotDelta::between(older, newer);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].delta, 0u);
  EXPECT_DOUBLE_EQ(delta.counters[0].per_second, 0.0);
}

TEST(SnapshotDelta, ShapeChangedMetricsAreSkippedNotInvented) {
  MetricsSnapshot older = snapshot_at(1'000'000'000);
  MetricsSnapshot newer = snapshot_at(2'000'000'000);
  older.counters.push_back({"old_only", 5});
  newer.counters.push_back({"new_only", 7});
  newer.gauges.push_back({"fresh_gauge", 3});

  const SnapshotDelta delta = SnapshotDelta::between(older, newer);
  EXPECT_TRUE(delta.counters.empty());
  EXPECT_TRUE(delta.gauges.empty());
}

TEST(SnapshotDelta, GaugesReportLevelAndSignedDelta) {
  MetricsSnapshot older = snapshot_at(1'000'000'000);
  MetricsSnapshot newer = snapshot_at(2'000'000'000);
  older.gauges.push_back({"pending", 12});
  newer.gauges.push_back({"pending", 4});

  const SnapshotDelta delta = SnapshotDelta::between(older, newer);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, 4);
  EXPECT_EQ(delta.gauges[0].delta, -8);
}

TEST(SnapshotDelta, HistogramDeltaYieldsIntervalQuantiles) {
  // Lifetime: 1000 fast samples; interval: 50 slow ones. The cumulative
  // histogram's p50 stays fast, the interval delta's p50 must be slow.
  LatencyHistogram lifetime;
  for (int i = 0; i < 1000; ++i) lifetime.record(100);
  MetricsSnapshot older = snapshot_at(1'000'000'000);
  older.histograms.push_back({"request_ns", lifetime.snapshot()});

  for (int i = 0; i < 50; ++i) lifetime.record(1'000'000);
  MetricsSnapshot newer = snapshot_at(2'000'000'000);
  newer.histograms.push_back({"request_ns", lifetime.snapshot()});

  const SnapshotDelta delta = SnapshotDelta::between(older, newer);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const HistogramSnapshot& interval = delta.histograms[0].hist;
  EXPECT_EQ(interval.count, 50u);
  EXPECT_DOUBLE_EQ(delta.histograms[0].per_second, 50.0);
  // Every interval sample was ~1ms; the cumulative p50 would be 100ns.
  EXPECT_GE(interval.quantile(0.5), std::uint64_t{1} << 19);
  EXPECT_LE(interval.quantile(0.99), newer.histograms[0].hist.max);
}

TEST(SnapshotDelta, EqualTimestampsYieldVisibleDeltasNotNaN) {
  MetricsSnapshot older = snapshot_at(5);
  MetricsSnapshot newer = snapshot_at(5);
  older.counters.push_back({"x", 1});
  newer.counters.push_back({"x", 3});
  const SnapshotDelta delta = SnapshotDelta::between(older, newer);
  EXPECT_GT(delta.interval_seconds, 0.0);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].delta, 2u);
}

TEST(SnapshotDelta, ToTextListsEverySection) {
  MetricsSnapshot older = snapshot_at(1'000'000'000);
  MetricsSnapshot newer = snapshot_at(2'000'000'000);
  older.counters.push_back({"requests_total", 0});
  newer.counters.push_back({"requests_total", 42});
  older.gauges.push_back({"pending", 1});
  newer.gauges.push_back({"pending", 2});
  LatencyHistogram hist;
  older.histograms.push_back({"request_ns", hist.snapshot()});
  hist.record(500);
  newer.histograms.push_back({"request_ns", hist.snapshot()});

  const std::string text = SnapshotDelta::between(older, newer).to_text();
  EXPECT_NE(text.find("interval 1.00s"), std::string::npos) << text;
  EXPECT_NE(text.find("requests_total"), std::string::npos) << text;
  EXPECT_NE(text.find("42.0/s"), std::string::npos) << text;
  EXPECT_NE(text.find("pending"), std::string::npos) << text;
  EXPECT_NE(text.find("request_ns"), std::string::npos) << text;
}

// --------------------------------------------------- exposition round-trip

TEST(ParsePrometheus, RoundTripsARealRegistrySnapshot) {
  MetricRegistry registry;
  Counter hits;
  LatencyHistogram lat;
  registry.register_counter("cache_hits", &hits);
  registry.register_gauge("queue_depth", [] { return -3; });
  registry.register_histogram("solve_ns", &lat);
  hits.add(41);
  lat.record(0);
  lat.record(900);
  lat.record(900);
  lat.record(123456);

  const MetricsSnapshot original = registry.snapshot();
  const std::optional<MetricsSnapshot> parsed = parse_prometheus(original.to_prometheus());
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->timestamp_ns, original.timestamp_ns);
  EXPECT_EQ(parsed->uptime_ns, original.uptime_ns);
  EXPECT_EQ(parsed->counter_or("cache_hits"), 41u);
  // The timestamp/uptime anchors fold into the snapshot fields; the only
  // gauge series left is queue_depth.
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_EQ(parsed->gauges[0].name, "queue_depth");
  EXPECT_EQ(parsed->gauges[0].value, -3);
  const HistogramSnapshot* hist = parsed->histogram("solve_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 4u);
  EXPECT_EQ(hist->sum, original.histogram("solve_ns")->sum);
  EXPECT_EQ(hist->max, 123456u);
  EXPECT_EQ(hist->counts, original.histogram("solve_ns")->counts);
}

TEST(ParsePrometheus, AnchorsAreFieldsNotGauges) {
  MetricRegistry registry;
  registry.register_gauge("queue_depth", [] { return 9; });
  const std::optional<MetricsSnapshot> parsed =
      parse_prometheus(registry.snapshot().to_prometheus());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_EQ(parsed->gauges[0].name, "queue_depth");
  EXPECT_EQ(parsed->gauges[0].value, 9);
  EXPECT_GT(parsed->timestamp_ns, 0u);
}

TEST(ParsePrometheus, DeltaOfParsedScrapesMatchesDirectDelta) {
  // The --watch pipeline end to end, minus the socket: two expositions,
  // parsed, diffed — rates must match the in-process delta.
  MetricRegistry registry;
  Counter requests;
  LatencyHistogram lat;
  registry.register_counter("requests_total", &requests);
  registry.register_histogram("request_ns", &lat);

  requests.add(10);
  lat.record(1000);
  const MetricsSnapshot first = registry.snapshot();
  const std::string first_text = first.to_prometheus();
  requests.add(30);
  for (int i = 0; i < 5; ++i) lat.record(8000);
  const MetricsSnapshot second = registry.snapshot();
  const std::string second_text = second.to_prometheus();

  const std::optional<MetricsSnapshot> a = parse_prometheus(first_text);
  const std::optional<MetricsSnapshot> b = parse_prometheus(second_text);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const SnapshotDelta via_text = SnapshotDelta::between(*a, *b);
  const SnapshotDelta direct = SnapshotDelta::between(first, second);

  ASSERT_EQ(via_text.counters.size(), direct.counters.size());
  EXPECT_EQ(via_text.counters[0].delta, direct.counters[0].delta);
  ASSERT_EQ(via_text.histograms.size(), 1u);
  EXPECT_EQ(via_text.histograms[0].hist.count, 5u);
  EXPECT_EQ(via_text.histograms[0].hist.quantile(0.5),
            direct.histograms[0].hist.quantile(0.5));
}

TEST(ParsePrometheus, ForeignTextIsRejectedUnknownLinesIgnored) {
  EXPECT_FALSE(parse_prometheus("").has_value());
  EXPECT_FALSE(parse_prometheus("node_cpu_seconds_total 1\n# HELP foo bar\n").has_value());
  // Unknown lptsp-prefixed series and future comment forms do not derail
  // the ones the parser knows.
  const std::string text =
      "# TYPE lptsp_known counter\n"
      "lptsp_known 7\n"
      "lptsp_mystery{shard=\"3\"} 12\n"
      "# EXOTIC comment\n";
  const std::optional<MetricsSnapshot> parsed = parse_prometheus(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->counter_or("known"), 7u);
}

}  // namespace
}  // namespace lptsp::obs
